#!/usr/bin/env python3
"""Planetesimal-driven migration: the protoplanet's orbit drifts.

Momentum conservation makes scattering a two-way street: as the
protoplanet flings planetesimals around, its own semi-major axis moves
— the mechanism behind Neptune's outward migration (Fernández & Ip
1984) that simulations like the paper's were built to capture.

This example embeds one protoplanet in rings of increasing mass and
tracks its osculating semi-major axis.

Run:  python examples/migration.py
"""

from __future__ import annotations

import numpy as np

from repro.core import HostDirectBackend, KeplerField, Simulation, TimestepParams
from repro.planetesimal import (
    MigrationTracker,
    PlanetesimalDiskConfig,
    Protoplanet,
    build_disk_system,
)


def run_case(disk_mass: float, t_end: float = 1000.0):
    proto = Protoplanet(mass=3e-4, radius_au=25.0, phase=0.0)
    config = PlanetesimalDiskConfig(
        n_planetesimals=200, r_inner=22.0, r_outer=28.0, e_rms=0.01,
        protoplanets=[proto], seed=61, total_mass=disk_mass,
    )
    system = build_disk_system(config)
    key = int(system.key[200])
    sim = Simulation(
        system, HostDirectBackend(eps=0.05),
        external_field=KeplerField(),
        timestep_params=TimestepParams(eta=0.03, dt_max=2.0),
    )
    sim.initialize()
    tracker = MigrationTracker([key])
    tracker.sample(sim)
    for t in np.linspace(t_end / 5, t_end, 5):
        sim.evolve(float(t))
        tracker.sample(sim)
    return tracker, key


def main() -> None:
    m_earth = 3.0e-6
    print("protoplanet: 3e-4 Msun (~100 M_earth core) at 25 AU")
    print("ring: 200 planetesimals, 22-28 AU, T = 1000 (~160 yr)\n")
    print(f"{'disk mass [M_earth]':>20} {'a(T=0)':>8} {'a(end)':>8} "
          f"{'da [AU]':>10} {'direction':>10}")
    for disk_mass in (1e-6, 2e-4, 5e-4):
        tracker, key = run_case(disk_mass)
        rec = tracker.record(key)
        direction = "outward" if rec.da > 0 else "inward"
        if abs(rec.da) < 1e-3:
            direction = "(noise)"
        print(f"{disk_mass / m_earth:>20.1f} {rec.a_initial:>8.3f} "
              f"{rec.a_final:>8.3f} {rec.da:>+10.4f} {direction:>10}")

    print("""
Momentum bookkeeping: the drift grows with the mass the protoplanet
scatters.  The direction depends on the asymmetry of the scattered
population (inner vs outer encounters); sustained outward migration of
a Neptune needs the full disk the paper simulated.""")


if __name__ == "__main__":
    main()
