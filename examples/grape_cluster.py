#!/usr/bin/env python3
"""Drive the GRAPE-6 machine simulator and read off its accounting.

Runs the same disk on three machine configurations — one processor
board, one node, and the paper's full 2048-chip system — and prints
what the hardware simulator records: pipeline cycles, link traffic,
modelled wall time per configuration, and the sustained-Tflops
projection to the paper's 1.8-million-particle run.

Run:  python examples/grape_cluster.py
"""

from __future__ import annotations

from repro.constants import PAPER_ACHIEVED_TFLOPS, PAPER_N_PLANETESIMALS
from repro.grape import Grape6Backend, Grape6Config, Grape6Machine
from repro.perf import extrapolate_from_histogram, run_scaled_disk


def main() -> None:
    configs = [
        ("single board", Grape6Config.single_board()),
        ("single node", Grape6Config.single_node()),
        ("full system", Grape6Config.paper_full_system()),
    ]

    print(f"{'configuration':<14} {'chips':>6} {'peak Tflops':>12} "
          f"{'model wall [s]':>15} {'achieved Tflops':>16} {'efficiency':>11}")
    results = {}
    for label, cfg in configs:
        machine = Grape6Machine(cfg, eps=0.008, mode="flat")
        res = run_scaled_disk(
            Grape6Backend(machine), n=512, t_end=20.0, seed=1, dt_max=16.0,
            measure_energy=False,
        )
        results[label] = (machine, res)
        print(f"{label:<14} {cfg.total_chips:>6} {cfg.peak_flops / 1e12:>12.2f} "
              f"{machine.totals.total_seconds:>15.4f} "
              f"{machine.achieved_flops() / 1e12:>16.3f} "
              f"{machine.efficiency():>10.1%}")

    machine, res = results["full system"]
    t = machine.totals
    print("\nFull-system per-component time share (this workload):")
    for name, val in (("host", t.host), ("pci", t.pci), ("lvds", t.lvds),
                      ("pipe", t.pipe), ("gbe", t.gbe)):
        print(f"  {name:<5} {val:>10.4f} s  ({val / t.total_seconds:>5.1%})")
    print(f"\nNote: at N = {res.n} the 63-Tflops machine idles — the pipelines"
          f"\nare {t.pipe / t.total_seconds:.0%} of the step but nearly empty."
          " The paper's regime needs N ~ 1e6:")

    est = extrapolate_from_histogram(
        Grape6Config.paper_full_system(),
        PAPER_N_PLANETESIMALS + 2,
        res.sim.scheduler.stats.size_counts,
        n_measured=res.n,
    )
    print(f"\nProjection to N = 1.8e6 from this run's block histogram:")
    print(f"  sustained: {est.sustained_tflops:.1f} Tflops "
          f"({est.efficiency:.1%} of peak; paper: {PAPER_ACHIEVED_TFLOPS} Tflops)")

    graph = machine.topology_graph()
    kinds = {}
    for _, d in graph.nodes(data=True):
        kinds[d["kind"]] = kinds.get(d["kind"], 0) + 1
    print(f"\nFull-system topology graph: {dict(sorted(kinds.items()))}")


if __name__ == "__main__":
    main()
