#!/usr/bin/env python3
"""Figure 13: protoplanets carve gaps in the planetesimal disk.

The paper's science result — "Gap of the distribution is formed near
the radius of protoplanets" — reproduced at laptop scale.  Heavier
protoplanets (with softening scaled in proportion, still far below the
Hill radius) compress the synodic clearing timescale so the late-time
morphology appears within a few minutes of compute; see DESIGN.md for
the scaling argument.

Prints an ASCII rendition of the figure: the radial distribution of
planetesimals before and after, with the protoplanet positions marked.

Run:  python examples/gap_formation.py [--fast]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import HostDirectBackend, KeplerField, Simulation, TimestepParams
from repro.planetesimal import (
    PlanetesimalDiskConfig,
    Protoplanet,
    build_disk_system,
    cartesian_to_elements,
)
from repro.units import hill_radius


def ascii_histogram(values, edges, width: int = 50, mark=()):
    """Render a horizontal-bar histogram with markers."""
    counts, _ = np.histogram(values, bins=edges)
    peak = max(counts.max(), 1)
    lines = []
    for i, c in enumerate(counts):
        mid = 0.5 * (edges[i] + edges[i + 1])
        bar = "#" * int(round(width * c / peak))
        tag = " <= protoplanet" if any(abs(mid - m) < 0.5 for m in mark) else ""
        lines.append(f"  {mid:5.1f} AU |{bar:<{width}}| {c:3d}{tag}")
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="shorter run (weaker gaps, ~30 s)")
    parser.add_argument("--n", type=int, default=500, help="planetesimal count")
    args = parser.parse_args()

    proto_mass = 3e-4
    eps = 0.05
    t_end = 3000.0 if args.fast else 10_000.0
    protos = [
        Protoplanet(mass=proto_mass, radius_au=20.0, phase=0.0),
        Protoplanet(mass=proto_mass, radius_au=30.0, phase=np.pi),
    ]
    system = build_disk_system(
        PlanetesimalDiskConfig(n_planetesimals=args.n, seed=7, protoplanets=protos)
    )
    sim = Simulation(
        system,
        HostDirectBackend(eps=eps),
        external_field=KeplerField(),
        timestep_params=TimestepParams(eta=0.03, dt_max=2.0),
    )
    sim.initialize()

    n = args.n
    edges = np.linspace(14, 36, 23)
    a0 = cartesian_to_elements(system.pos[:n], system.vel[:n]).a

    print(f"T = 0: semi-major-axis distribution of {n} planetesimals")
    print(ascii_histogram(a0, edges, mark=(20.0, 30.0)))

    print(f"\nIntegrating to T = {t_end:g} "
          f"({t_end / (2 * np.pi):.0f} yr, ~{t_end / 562:.0f} orbits at 20 AU)...")
    sim.evolve(t_end)
    snap = sim.predicted_state()
    el = cartesian_to_elements(snap.pos[:n], snap.vel[:n])
    bound = (el.e < 1.0) & (el.a > 0.0)

    print(f"\nT = {t_end:g}: {int(bound.sum())} bound planetesimals remain")
    print(ascii_histogram(el.a[bound], edges, mark=(20.0, 30.0)))

    for radius in (20.0, 30.0):
        w = 3.0 * float(hill_radius(radius, proto_mass))
        init = int(np.sum(np.abs(a0 - radius) < w))
        now = int(np.sum(bound & (np.abs(el.a - radius) < w)))
        print(f"\nFeeding zone at {radius:.0f} AU (±{w:.2f} AU): "
              f"{init} -> {now} planetesimals "
              f"({1 - now / init:.0%} cleared)")


if __name__ == "__main__":
    main()
