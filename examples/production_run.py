#!/usr/bin/env python3
"""A production-style run: logging, scheduled snapshots, restart.

The paper's 10.3-hour figure includes "file operations" — a production
N-body run is a managed process.  This example shows the library's run
infrastructure end to end:

1. integrate a disk with a JSONL run log and scheduled snapshots;
2. "crash" (stop) mid-run;
3. restart from the latest snapshot and continue to the target time;
4. verify the restarted trajectory's energy account.

Run:  python examples/production_run.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import (
    EnergyTracker,
    HostDirectBackend,
    KeplerField,
    Simulation,
    TimestepParams,
)
from repro.planetesimal import PlanetesimalDiskConfig, build_disk_system
from repro.runio import OutputManager, RunLogger, SnapshotSchedule, read_run_log


def make_sim(system) -> Simulation:
    sim = Simulation(
        system,
        HostDirectBackend(eps=0.008),
        external_field=KeplerField(),
        timestep_params=TimestepParams(),
    )
    sim.initialize()
    return sim


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-run-"))
    print(f"run directory: {workdir}")

    # ---- phase 1: the run that "crashes" ------------------------------
    system = build_disk_system(PlanetesimalDiskConfig(n_planetesimals=200, seed=31))
    sim = make_sim(system)
    tracker = EnergyTracker(0.008, sim.external_field)
    tracker.start(sim.system)

    om = OutputManager(workdir, SnapshotSchedule(interval=5.0))
    with RunLogger(workdir / "run.jsonl", run_id="disk-n200",
                   metadata={"n": 200, "seed": 31}) as log:
        def per_block(s):
            path = om.maybe_write(s, {"phase": 1})
            if path is not None:
                log.event("snapshot", file=path.name, t=s.time)

        sim.evolve(12.0, callback=per_block)  # "crash" before t=30
        log.record(sim, note="crashed here")

    print(f"phase 1 stopped at T = {sim.time:g} with "
          f"{om.n_snapshots} snapshots on disk")

    # ---- phase 2: restart from the latest snapshot --------------------
    state, meta = om.latest()
    print(f"restarting from {meta['snapshot_index']} at T = {meta['time']:g}")
    sim2 = make_sim(state)
    om2 = OutputManager(workdir, SnapshotSchedule(interval=5.0, t_start=meta["time"]))
    with RunLogger(workdir / "run.jsonl", run_id="disk-n200-restart") as log:
        sim2.evolve(30.0, callback=lambda s: om2.maybe_write(s, {"phase": 2}))
        sim2.synchronize(30.0)
        err = tracker.sample(sim2.system)
        log.record(sim2, energy_error=err, note="completed")

    print(f"completed at T = {sim2.time:g}; total snapshots: {om2.n_snapshots}")
    print(f"energy error across crash + restart: {err:.2e}")

    records = read_run_log(workdir / "run.jsonl")
    kinds = [r["kind"] for r in records]
    print(f"run log: {len(records)} records "
          f"({kinds.count('snapshot')} snapshot events, "
          f"{kinds.count('sample')} samples, {kinds.count('header')} headers)")
    print("\n(The restart re-seeds timesteps from the snapshot state, so the")
    print("trajectory is statistically — not bitwise — continuous; the energy")
    print("account above is the correctness check that matters.)")


if __name__ == "__main__":
    main()
