#!/usr/bin/env python3
"""Planetary accretion: planetesimals merging into larger bodies.

Paper Section 2: "planetesimals accrete to form terrestrial and uranian
(icy) planets" — the process the production run's disk is the initial
condition for.  This example enables the library's collision/merging
extension on a dense cold clump of planetesimals and watches runaway
growth: the largest body's mass ratio to the mean climbs as it eats its
neighbours.

Run:  python examples/accretion.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    CollisionPolicy,
    HostDirectBackend,
    KeplerField,
    ParticleSystem,
    Simulation,
    TimestepParams,
)
from repro.planetesimal import AccretionHistory, radius_from_mass
from repro.units import au_to_m


def build_clump(n: int = 40, seed: int = 11) -> ParticleSystem:
    """A tidally bound cold clump of planetesimals at 20 AU.

    Clump size 0.02 AU << its collective Hill radius (~0.1 AU), so
    self-gravity beats the solar tide and the clump collapses — a
    gravitational-instability patch, the textbook planetesimal nursery.
    """
    rng = np.random.default_rng(seed)
    pos = np.array([20.0, 0.0, 0.0]) + 0.02 * rng.normal(size=(n, 3))
    v_circ = 1.0 / np.sqrt(20.0)
    vel = np.tile([0.0, v_circ, 0.0], (n, 1))
    vel += 1e-4 * rng.normal(size=(n, 3))  # small internal dispersion
    mass = np.full(n, 2e-8)
    return ParticleSystem(mass, pos, vel)


def main() -> None:
    n0 = 40
    system = build_clump(n=n0)
    policy = CollisionPolicy(f_enhance=50.0)
    sim = Simulation(
        system,
        HostDirectBackend(eps=1e-6),
        external_field=KeplerField(),
        timestep_params=TimestepParams(dt_max=0.25),
        collision_policy=policy,
    )
    sim.initialize()

    r_km = float(au_to_m(radius_from_mass(2e-8))) / 1e3
    print(f"{n0} planetesimals of 2e-8 Msun (~{r_km:.0f} km bodies), "
          f"clump of 0.02 AU at 20 AU")
    print(f"collision radii enhanced {policy.f_enhance:g}x "
          "(super-particle convention, see DESIGN.md)\n")

    history = AccretionHistory()
    history.sample(0.0, sim.system.mass)
    print(f"{'T':>7} {'bodies':>7} {'mergers':>8} {'m_max/m_mean':>13} "
          f"{'largest [Msun]':>15}")
    for t in (0.0, 5.0, 10.0, 20.0, 40.0, 80.0):
        if t > 0:
            sim.evolve(t)
        snap = history.sample(t, sim.system.mass)
        print(f"{t:>7.0f} {snap.n_bodies:>7} {sim.mergers:>8} "
              f"{snap.growth_ratio:>13.2f} {snap.max_mass:>15.3e}")

    assert history.mass_conserved(), "perfect merging must conserve mass"
    print(f"\nmass conserved: {history.mass_conserved()}")
    print(f"bodies {history.initial.n_bodies} -> {history.latest.n_bodies} "
          f"({history.mergers_so_far()} mergers)")
    print("\nThe growth of m_max/m_mean is the runaway-accretion signature;"
          "\nthe paper's Neptune-formation question is whether this runs to"
          "\ncompletion at 30 AU within the Solar system's age.")


if __name__ == "__main__":
    main()
