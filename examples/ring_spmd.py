#!/usr/bin/env python3
"""Distributed direct summation on the SPMD runtime (systolic ring).

The software analogue of the paper's Figures 4-5 hardware exchange:
p ranks each own N/p particles; j-slices hop around a ring so every
rank accumulates the full force on its slice while only ever talking to
its neighbours.  The run executes deterministically in-process on the
repro SPMD virtual machine, so we can print both the physics check
(identical to single-node direct summation) and the communication bill.

Run:  python examples/ring_spmd.py
"""

from __future__ import annotations

import numpy as np

from repro.core.forces import acc_jerk
from repro.parallel import VirtualMachine, ring_forces
from repro.planetesimal import PlanetesimalDiskConfig, build_disk_system


def main() -> None:
    system = build_disk_system(
        PlanetesimalDiskConfig(n_planetesimals=600, seed=3, protoplanets=[])
    )
    pos, vel, mass = system.pos, system.vel, system.mass
    n = system.n

    a_ref, j_ref = acc_jerk(
        pos, vel, pos, vel, mass, 0.008, self_indices=np.arange(n)
    )

    print(f"N = {n} particles, all-pairs force+jerk, eps = 0.008 AU\n")
    print(f"{'ranks':>6} {'max |da|/|a|':>14} {'messages':>9} "
          f"{'total MB':>9} {'MB/rank':>8} {'logical time [ms]':>18}")
    for p in (1, 2, 4, 8):
        vm = VirtualMachine(n_ranks=p, bandwidth=100e6, latency=50e-6)
        res = ring_forces(pos, vel, mass, eps=0.008, n_ranks=p, vm=vm)
        err = float(
            np.max(np.linalg.norm(res.acc - a_ref, axis=1)
                   / np.linalg.norm(a_ref, axis=1))
        )
        mb = res.total_bytes / 1e6
        print(f"{p:>6} {err:>14.2e} {res.messages:>9} {mb:>9.2f} "
              f"{mb / p:>8.2f} {max(res.clock) * 1e3:>18.2f}")

    print("""
The physics is exact at every rank count (float-reordering level).
The communication column is the paper's Section 4.3 lesson in numbers:
per-rank traffic stays O(N) per force evaluation no matter how many
hosts share the work — which is why GRAPE-6 moved this exchange onto
dedicated network-board links instead of host NICs.""")


if __name__ == "__main__":
    main()
