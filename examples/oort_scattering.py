#!/usr/bin/env python3
"""Planetesimal scattering by proto-Neptune: the Oort-cloud channel.

Paper Section 2: "It is widely accepted that the so-called Oort cloud
... is formed by gravitational scattering of planetesimals mainly by
Neptune. ... This scattering efficiency is an important key."

This example seeds a narrow ring of planetesimals straddling a single
proto-Neptune and tracks each particle's dynamical fate over time:
still in the disk, dynamically excited, on an Oort-cloud-candidate
orbit (bound, aphelion beyond 100 AU), or ejected (hyperbolic).

Run:  python examples/oort_scattering.py
"""

from __future__ import annotations

import numpy as np

from repro.core import HostDirectBackend, KeplerField, Simulation, TimestepParams
from repro.planetesimal import (
    PlanetesimalDiskConfig,
    Protoplanet,
    ScatteringMonitor,
    build_disk_system,
)


def main() -> None:
    # A narrow annulus around one massive perturber maximises the
    # encounter rate so the fate statistics converge at small N in
    # minutes (the paper's 1e-5-Msun protoplanet produces the same
    # channel over ~1e5x more encounters; the mass is scaled up and the
    # softening with it, keeping eps << Hill radius).
    proto = Protoplanet(mass=2e-3, radius_au=30.0, phase=0.0)
    n = 250
    config = PlanetesimalDiskConfig(
        n_planetesimals=n,
        r_inner=26.0,
        r_outer=34.0,
        e_rms=0.03,
        protoplanets=[proto],
        seed=99,
    )
    system = build_disk_system(config)
    sim = Simulation(
        system,
        HostDirectBackend(eps=0.1),
        external_field=KeplerField(),
        timestep_params=TimestepParams(eta=0.03, dt_max=2.0),
    )
    sim.initialize()

    monitor = ScatteringMonitor(e_excited=0.2, aphelion_cut=100.0)
    print(f"proto-Neptune: m = {proto.mass:g} Msun at {proto.radius_au:g} AU "
          f"(Hill radius {proto.hill_radius():.2f} AU)")
    print(f"{n} planetesimals in [{config.r_inner:g}, {config.r_outer:g}] AU\n")
    header = (f"{'T':>8} {'in disk':>8} {'excited':>8} "
              f"{'oort cand.':>11} {'ejected':>8}")
    print(header)

    checkpoints = [0.0, 2000.0, 5000.0, 10_000.0, 20_000.0]
    for t in checkpoints:
        if t > 0:
            sim.evolve(t)
        snap = sim.predicted_state()
        counts = monitor.sample(t, snap.pos[:n], snap.vel[:n])
        print(f"{t:>8.0f} {counts.bound_disk:>8} {counts.excited:>8} "
              f"{counts.oort_candidate:>11} {counts.ejected:>8}")

    final = monitor.latest()
    fr = final.fractions()
    print("\nScattering efficiency after "
          f"{checkpoints[-1] / (2 * np.pi):.0f} yr:")
    print(f"  stirred or scattered: {1 - fr['bound_disk']:.0%} of the ring")
    print(f"  Oort-cloud candidates: {fr['oort_candidate']:.1%}")
    print(f"  ejected (hyperbolic):  {fr['ejected']:.1%}")
    print("\nThe ratio of (oort + ejected) to accreted-like orbits is the"
          "\nquantity the paper's production run was built to measure.")


if __name__ == "__main__":
    main()
