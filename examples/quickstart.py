#!/usr/bin/env python3
"""Quickstart: integrate a small planetesimal disk and check energy.

Builds the paper's Uranus-Neptune ring at laptop scale (256
planetesimals + proto-Uranus + proto-Neptune), integrates it with the
block individual-timestep Hermite scheme, and prints conservation
diagnostics — the 60-second tour of the library.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import quick_simulation
from repro.core import angular_momentum, energy
from repro.planetesimal import rms_eccentricity_inclination


def main() -> None:
    print("Building a 256-planetesimal Uranus-Neptune disk...")
    sim = quick_simulation(n=256, seed=42)
    eps = sim.backend.eps

    e0 = energy(sim.system, eps, sim.external_field)
    l0 = angular_momentum(sim.system)
    print(f"  particles:          {sim.system.n}")
    print(f"  total disk mass:    {sim.system.mass[:256].sum():.3e} Msun")
    print(f"  initial energy:     {e0.total:+.6e}")

    t_end = 50.0  # code units; 1 year = 2*pi
    print(f"\nIntegrating to T = {t_end:g} ({t_end / (2 * np.pi):.1f} yr)...")
    sim.evolve(t_end)
    sim.synchronize(t_end)

    e1 = energy(sim.system, eps, sim.external_field)
    l1 = angular_momentum(sim.system)
    e_rms, i_rms = rms_eccentricity_inclination(
        sim.system.pos[:256], sim.system.vel[:256]
    )

    print(f"  block steps:        {sim.block_steps}")
    print(f"  particle steps:     {sim.particle_steps}")
    print(f"  mean block size:    {sim.scheduler.stats.mean_block:.1f}")
    print(f"  pairwise forces:    {sim.backend.counter.force_interactions:,}")
    print(f"\nConservation checks:")
    print(f"  |dE/E|:             {abs(e1.total - e0.total) / abs(e0.total):.2e}")
    print(f"  |dL_z/L_z|:         {abs(l1[2] - l0[2]) / abs(l0[2]):.2e}")
    print(f"\nDisk velocity state:")
    print(f"  RMS eccentricity:   {e_rms:.4f}")
    print(f"  RMS inclination:    {i_rms:.4f}")
    print("\nDone. Next: examples/gap_formation.py reproduces Figure 13.")


if __name__ == "__main__":
    main()
