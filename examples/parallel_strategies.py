#!/usr/bin/env python3
"""Why GRAPE-6 has network boards: the Section 4.3 design study as code.

Compares the four ways of attaching p hosts to GRAPE hardware that the
paper walks through (Figures 3-7), using the simulated communication
substrate: per-host NIC traffic and step time over each scheme's real
topology, as the host count and the active-block size grow.

Run:  python examples/parallel_strategies.py
"""

from __future__ import annotations

from repro.parallel import all_strategies

BLOCKS = (1000, 5000, 20_000)


def main() -> None:
    for p in (4, 16, 64):
        print(f"\n=== p = {p} hosts ===")
        print(f"{'strategy':<16} " + "".join(
            f"{'nic B/step @' + str(b):>18}" for b in BLOCKS
        ) + f"{'step ms @5000':>15}")
        for s in all_strategies(p):
            nic = [s.host_nic_bytes_per_step(b) for b in BLOCKS]
            t = s.step(5000) * 1e3
            print(f"{s.name:<16} " + "".join(f"{int(v):>18,}" for v in nic)
                  + f"{t:>15.3f}")

    print("""
Reading the table (the paper's argument):
 * naive-copy: per-host traffic is O(block) no matter how many hosts —
   "the parallel system ... is no better than a single host, as far as
   the communication bandwidth is concerned" (Fig 3);
 * grape-exchange: network boards move the data on dedicated links, so
   host NICs carry only synchronisation (Figs 4-5);
 * host-2d-grid: traffic falls as 1/sqrt(p) (Fig 6);
 * hybrid: hardware exchange inside clusters + Ethernet columns between
   them — what GRAPE-6 actually built (Fig 7).""")


if __name__ == "__main__":
    main()
