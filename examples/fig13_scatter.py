#!/usr/bin/env python3
"""Figure 13 itself: the (x, y) planetesimal distribution, in ASCII.

Renders the paper's scatter-plot view of the disk before and after the
protoplanets act (scaled configuration, see DESIGN.md), with the Sun at
'O' and the protoplanets at 'U' (proto-Uranus, 20 AU) and 'N'
(proto-Neptune, 30 AU).

Run:  python examples/fig13_scatter.py [--fast]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import HostDirectBackend, KeplerField, Simulation, TimestepParams
from repro.planetesimal import (
    PlanetesimalDiskConfig,
    Protoplanet,
    build_disk_system,
)
from repro.viz import scatter_map


def render(snapshot, n_planetesimals: int, title: str) -> None:
    print(f"\n{title}")
    markers = [
        (snapshot.pos[n_planetesimals, 0], snapshot.pos[n_planetesimals, 1], "U"),
        (snapshot.pos[n_planetesimals + 1, 0], snapshot.pos[n_planetesimals + 1, 1], "N"),
    ]
    print(
        scatter_map(
            snapshot.pos[:n_planetesimals, 0],
            snapshot.pos[:n_planetesimals, 1],
            extent=40.0,
            size=41,
            markers=markers,
        )
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="shorter run")
    args = parser.parse_args()

    n = 500
    t_end = 2000.0 if args.fast else 8000.0
    protos = [
        Protoplanet(mass=3e-4, radius_au=20.0, phase=0.0),
        Protoplanet(mass=3e-4, radius_au=30.0, phase=np.pi),
    ]
    system = build_disk_system(
        PlanetesimalDiskConfig(n_planetesimals=n, seed=7, protoplanets=protos)
    )
    sim = Simulation(
        system,
        HostDirectBackend(eps=0.05),
        external_field=KeplerField(),
        timestep_params=TimestepParams(eta=0.03, dt_max=2.0),
    )
    sim.initialize()

    render(sim.predicted_state(), n, "T = 0 (paper fig 13, 'left panel')")
    print(f"\nintegrating to T = {t_end:g} ...")
    sim.evolve(t_end)
    render(sim.predicted_state(), n, f"T = {t_end:g} ('right panel')")
    print("\nLook for the thinning of the ring around the U and N orbits —")
    print("the paper: 'Gap of the distribution is formed near the radius of")
    print("protoplanets.'")


if __name__ == "__main__":
    main()
