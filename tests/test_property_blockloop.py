"""Property test of the abstract block-timestep loop.

Drives the scheduler + quantiser through many synthetic block steps
(no forces — desired timesteps drawn at random) and checks the
algorithm's structural invariants survive arbitrary step-change
sequences:

* particle times always sit on their own step grid;
* the system's global time never decreases;
* every particle is eventually advanced (no starvation);
* steps stay inside [dt_min, dt_max] and on the power-of-two ladder.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import BlockScheduler
from repro.core.timestep import TimestepParams, quantize


@given(
    n=st.integers(2, 12),
    seed=st.integers(0, 10_000),
    steps=st.integers(10, 80),
)
@settings(max_examples=40, deadline=None)
def test_block_loop_invariants(n, seed, steps):
    rng = np.random.default_rng(seed)
    params = TimestepParams(dt_max=1.0, dt_min=2.0**-12)

    t = np.zeros(n)
    dt = quantize(10.0 ** rng.uniform(-4, 1, n), t, None, params)
    sched = BlockScheduler()
    last_time = 0.0
    advanced = np.zeros(n, dtype=int)

    for _ in range(steps):
        t_next, active = sched.next_block(t, dt)
        # global time monotonic
        assert t_next >= last_time
        last_time = t_next
        t[active] = t_next
        advanced[active] += 1
        # random new desired steps (an encounter, a calm patch, ...)
        desired = 10.0 ** rng.uniform(-5, 2, active.size)
        dt[active] = quantize(desired, t[active], dt[active], params)

        # invariants after every block
        assert np.all(dt >= params.dt_min)
        assert np.all(dt <= params.dt_max)
        levels = np.log2(params.dt_max / dt)
        assert np.allclose(levels, np.round(levels))
        ratio = t / dt
        assert np.allclose(ratio, np.round(ratio), atol=1e-9)

    # no starvation *in time*: every particle's next update sits at or
    # beyond the frontier the loop has reached (a dt_max particle may
    # legitimately wait thousands of small blocks, but never falls
    # behind the clock)
    assert np.all(t + dt >= last_time - 1e-12)
    # and whoever has the earliest pending update defines the frontier
    assert (t + dt).min() >= last_time


@given(seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_block_times_exactly_representable(seed):
    """Times reached by the loop are exact power-of-two sums, so exact
    equality grouping in the scheduler is sound."""
    rng = np.random.default_rng(seed)
    params = TimestepParams(dt_max=1.0, dt_min=2.0**-10)
    n = 6
    t = np.zeros(n)
    dt = quantize(10.0 ** rng.uniform(-3, 0.5, n), t, None, params)
    sched = BlockScheduler()
    for _ in range(50):
        t_next, active = sched.next_block(t, dt)
        t[active] = t_next
        dt[active] = quantize(
            10.0 ** rng.uniform(-3, 0.5, active.size), t[active], dt[active], params
        )
    # every time is an integer multiple of dt_min, exactly
    k = t / params.dt_min
    assert np.array_equal(k, np.round(k))
