"""Tests for event detection and logging."""

import numpy as np

from repro.core.events import Event, EventLog, detect_escapers
from repro.core.particles import ParticleSystem


class TestEventLog:
    def test_append_and_query(self):
        log = EventLog()
        log.append(Event("escape", 1.0, 3))
        log.append(Event("close_encounter", 2.0, 4, {"partner": 5}))
        log.append(Event("escape", 3.0, 6))
        assert len(log) == 3
        assert log.count("escape") == 2
        assert [e.key for e in log.of_kind("escape")] == [3, 6]

    def test_extend(self):
        log = EventLog()
        log.extend([Event("escape", 0.0, i) for i in range(4)])
        assert len(log) == 4

    def test_iteration_order(self):
        log = EventLog()
        for i in range(5):
            log.append(Event("x", float(i), i))
        assert [e.time for e in log] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_append_bumps_kind_counter(self):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        log = EventLog(metrics=reg)
        log.append(Event("escape", 1.0, 3))
        log.extend([Event("merger", 2.0, (1, 2)), Event("escape", 3.0, 7)])
        snap = reg.snapshot()
        assert snap["events.escape_total"] == 2.0
        assert snap["events.merger_total"] == 1.0


class TestEventLogJsonl:
    def sample(self):
        log = EventLog()
        log.append(Event("escape", 1.5, 3))
        log.append(Event("merger", 2.25, (1, 2), {"m_new": 0.5}))
        log.append(Event("close_encounter", 3.0, 4, {"partner": 5}))
        return log

    def test_round_trip(self, tmp_path):
        log = self.sample()
        path = log.to_jsonl(tmp_path / "events.jsonl", run_id="r9")
        back = EventLog.from_jsonl(path)
        assert len(back) == len(log)
        for a, b in zip(back, log):
            assert (a.kind, a.time, a.key, a.data) == (b.kind, b.time, b.key, b.data)

    def test_header_first(self, tmp_path):
        from repro.runio.runlog import read_run_log

        path = self.sample().to_jsonl(tmp_path / "events.jsonl", run_id="r9")
        records = read_run_log(path)
        assert records[0]["kind"] == "header"
        assert records[0]["run_id"] == "r9"
        assert records[0]["format"] == "repro-events-v1"

    def test_restore_fires_counters(self, tmp_path):
        from repro.obs import MetricsRegistry

        path = self.sample().to_jsonl(tmp_path / "events.jsonl")
        reg = MetricsRegistry()
        EventLog.from_jsonl(path, metrics=reg)
        snap = reg.snapshot()
        assert snap["events.escape_total"] == 1.0
        assert snap["events.merger_total"] == 1.0
        assert snap["events.close_encounter_total"] == 1.0

    def test_tuple_keys_survive(self, tmp_path):
        log = EventLog()
        log.append(Event("merger", 1.0, (3, 9)))
        path = log.to_jsonl(tmp_path / "e.jsonl")
        back = EventLog.from_jsonl(path)
        assert next(iter(back)).key == (3, 9)


class TestEscapers:
    def make(self, pos, vel):
        n = len(pos)
        return ParticleSystem(np.ones(n) * 1e-10, np.array(pos, float), np.array(vel, float))

    def test_bound_particle_not_flagged(self):
        # circular orbit at r=60 (outside r_min but bound)
        v = 1.0 / np.sqrt(60.0)
        s = self.make([[60.0, 0, 0]], [[0, v, 0]])
        assert detect_escapers(s).size == 0

    def test_hyperbolic_far_particle_flagged(self):
        r = 80.0
        v_esc = np.sqrt(2.0 / r)
        s = self.make([[r, 0, 0]], [[0, 1.5 * v_esc, 0]])
        assert np.array_equal(detect_escapers(s), [0])

    def test_hyperbolic_near_particle_not_flagged(self):
        # fast but inside r_min: could still be deflected
        r = 20.0
        v_esc = np.sqrt(2.0 / r)
        s = self.make([[r, 0, 0]], [[0, 2.0 * v_esc, 0]])
        assert detect_escapers(s, r_min=50.0).size == 0

    def test_mixed_population(self):
        r = 70.0
        v_circ = 1.0 / np.sqrt(r)
        v_esc = np.sqrt(2.0) * v_circ
        s = self.make(
            [[r, 0, 0], [0, r, 0], [0, 0, r]],
            [[0, v_circ, 0], [1.2 * v_esc, 0, 0], [0, 0.5 * v_circ, 0]],
        )
        assert np.array_equal(detect_escapers(s), [1])
