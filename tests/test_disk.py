"""Tests for planetesimal-disk initial conditions."""

import numpy as np
import pytest

from repro.constants import PAPER_RING_INNER_AU, PAPER_RING_OUTER_AU
from repro.errors import ConfigurationError
from repro.planetesimal import (
    HayashiNebula,
    PlanetesimalDiskConfig,
    build_disk_system,
    cartesian_to_elements,
    sample_ring_radii,
)


class TestRadiusSampling:
    def test_within_ring(self, rng):
        r = sample_ring_radii(5000, 15.0, 35.0, -1.5, rng)
        assert r.min() >= 15.0
        assert r.max() <= 35.0

    def test_distribution_shape(self, rng):
        """p(r) ∝ r^-0.5 for the paper's Sigma ∝ r^-1.5."""
        from scipy import stats

        r = sample_ring_radii(30_000, 15.0, 35.0, -1.5, rng)

        def cdf(x):
            x = np.clip(x, 15.0, 35.0)
            return (np.sqrt(x) - np.sqrt(15.0)) / (np.sqrt(35.0) - np.sqrt(15.0))

        d, p = stats.kstest(r, cdf)
        assert p > 1e-3

    def test_uniform_surface_density_case(self, rng):
        # exponent 0: p(r) ∝ r
        r = sample_ring_radii(50_000, 1.0, 2.0, 0.0, rng)
        # E[r] for p∝r on [1,2] = (2/3)(2^3-1)/(2^2-1) = 14/9
        assert r.mean() == pytest.approx(14.0 / 9.0, rel=0.01)

    def test_rejects_bad_ring(self, rng):
        with pytest.raises(ConfigurationError):
            sample_ring_radii(10, 35.0, 15.0, -1.5, rng)


class TestConfig:
    def test_defaults(self):
        c = PlanetesimalDiskConfig()
        assert c.r_inner == PAPER_RING_INNER_AU
        assert c.r_outer == PAPER_RING_OUTER_AU
        assert len(c.protoplanets) == 2
        assert c.i_rms == pytest.approx(c.e_rms / 2)

    def test_total_mass_defaults_to_hayashi(self):
        c = PlanetesimalDiskConfig()
        expected = HayashiNebula().ring_mass(c.r_inner, c.r_outer)
        assert c.resolved_total_mass() == pytest.approx(expected)

    def test_explicit_total_mass(self):
        c = PlanetesimalDiskConfig(total_mass=1e-4)
        assert c.resolved_total_mass() == 1e-4

    def test_rejects_zero_particles(self):
        with pytest.raises(ConfigurationError):
            PlanetesimalDiskConfig(n_planetesimals=0)

    def test_no_protoplanets_option(self):
        c = PlanetesimalDiskConfig(protoplanets=[])
        s = build_disk_system(c)
        assert s.n == c.n_planetesimals


class TestBuildSystem:
    def test_particle_count_and_order(self):
        c = PlanetesimalDiskConfig(n_planetesimals=100, seed=1)
        s = build_disk_system(c)
        assert s.n == 102
        # protoplanets are the last two and the most massive
        assert np.argmax(s.mass) >= 100

    def test_total_planetesimal_mass_matches_target(self):
        c = PlanetesimalDiskConfig(n_planetesimals=2000, seed=2)
        s = build_disk_system(c)
        disk_mass = s.mass[:2000].sum()
        # sampled mean converges to the scaled mean at the few-% level
        assert disk_mass == pytest.approx(c.resolved_total_mass(), rel=0.1)

    def test_planetesimals_inside_ring(self):
        c = PlanetesimalDiskConfig(n_planetesimals=500, seed=3)
        s = build_disk_system(c)
        el = cartesian_to_elements(s.pos[:500], s.vel[:500])
        assert el.a.min() > 14.0
        assert el.a.max() < 36.0

    def test_eccentricity_distribution(self):
        c = PlanetesimalDiskConfig(n_planetesimals=5000, seed=4, e_rms=0.01)
        s = build_disk_system(c)
        el = cartesian_to_elements(s.pos[:5000], s.vel[:5000])
        e_rms = np.sqrt(np.mean(el.e**2))
        assert e_rms == pytest.approx(0.01, rel=0.1)

    def test_inclination_distribution(self):
        c = PlanetesimalDiskConfig(n_planetesimals=5000, seed=4, e_rms=0.01)
        s = build_disk_system(c)
        el = cartesian_to_elements(s.pos[:5000], s.vel[:5000])
        i_rms = np.sqrt(np.mean(el.inc**2))
        assert i_rms == pytest.approx(0.005, rel=0.1)

    def test_protoplanets_on_circular_orbits(self):
        c = PlanetesimalDiskConfig(n_planetesimals=10, seed=5)
        s = build_disk_system(c)
        el = cartesian_to_elements(s.pos[10:], s.vel[10:])
        assert np.allclose(el.e, 0.0, atol=1e-12)
        assert np.allclose(sorted(el.a), [20.0, 30.0])
        assert np.allclose(el.inc, 0.0, atol=1e-14)

    def test_cold_disk_option(self):
        c = PlanetesimalDiskConfig(n_planetesimals=50, seed=6, e_rms=0.0)
        s = build_disk_system(c)
        el = cartesian_to_elements(s.pos[:50], s.vel[:50])
        assert np.allclose(el.e, 0.0, atol=1e-12)

    def test_reproducible_with_seed(self):
        c1 = build_disk_system(PlanetesimalDiskConfig(n_planetesimals=64, seed=42))
        c2 = build_disk_system(PlanetesimalDiskConfig(n_planetesimals=64, seed=42))
        assert np.array_equal(c1.pos, c2.pos)
        assert np.array_equal(c1.mass, c2.mass)

    def test_different_seeds_differ(self):
        c1 = build_disk_system(PlanetesimalDiskConfig(n_planetesimals=64, seed=1))
        c2 = build_disk_system(PlanetesimalDiskConfig(n_planetesimals=64, seed=2))
        assert not np.array_equal(c1.pos, c2.pos)


class TestNebula:
    def test_ring_mass_positive_and_increasing(self):
        neb = HayashiNebula()
        m1 = neb.ring_mass(15.0, 25.0)
        m2 = neb.ring_mass(15.0, 35.0)
        assert 0 < m1 < m2

    def test_paper_ring_mass_order_of_magnitude(self):
        """The 15-35 AU MMSN solid ring holds tens of Earth masses."""
        m = HayashiNebula().ring_mass(15.0, 35.0)
        m_earth = 3.0e-6
        assert 10 * m_earth < m < 100 * m_earth

    def test_surface_density_slope(self):
        neb = HayashiNebula()
        s15 = neb.surface_density(15.0)
        s35 = neb.surface_density(35.0)
        assert s15 / s35 == pytest.approx((35.0 / 15.0) ** 1.5)

    def test_enhancement_factor(self):
        m1 = HayashiNebula().ring_mass(15.0, 35.0)
        m3 = HayashiNebula(enhancement=3.0).ring_mass(15.0, 35.0)
        assert m3 == pytest.approx(3.0 * m1)
