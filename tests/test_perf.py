"""Tests for flop accounting, the projection model, harness and tables."""

import numpy as np
import pytest

from repro.constants import (
    PAPER_ACHIEVED_TFLOPS,
    PAPER_PEAK_TFLOPS,
)
from repro.core import HostDirectBackend
from repro.core.forces import InteractionCounter
from repro.errors import ConfigurationError
from repro.grape import Grape6Config
from repro.perf import (
    RunResult,
    Table,
    extrapolate_from_histogram,
    extrapolate_sustained,
    flops_for_interactions,
    flops_from_counter,
    format_quantity,
    paper_projection,
    paper_total_flops,
    run_scaled_disk,
    tflops,
)


class TestFlops:
    def test_conventions(self):
        assert flops_for_interactions(100, with_jerk=True) == 5700
        assert flops_for_interactions(100, with_jerk=False) == 3800

    def test_counter_conversion(self):
        c = InteractionCounter()
        c.add(10, 10, with_jerk=True)   # 100 interactions, force+jerk
        c.add(10, 10, with_jerk=False)  # 100 interactions, force only
        assert flops_from_counter(c) == 100 * 57 + 100 * 38

    def test_paper_total_is_1e18_scale(self):
        """Paper: ~1.1e18 operations (29.5 Tflops x 10.3 hours)."""
        total = paper_total_flops()
        assert total == pytest.approx(
            PAPER_ACHIEVED_TFLOPS * 1e12 * 10.3 * 3600, rel=0.05
        )

    def test_tflops(self):
        assert tflops(29.5e12) == pytest.approx(29.5)


class TestExtrapolation:
    def test_sustained_monotone_in_block(self):
        cfg = Grape6Config.paper_full_system()
        speeds = [
            extrapolate_sustained(cfg, 1_800_000, b).sustained_tflops
            for b in (100, 1000, 10000)
        ]
        assert speeds[0] < speeds[1] < speeds[2]

    def test_sustained_below_peak(self):
        cfg = Grape6Config.paper_full_system()
        est = extrapolate_sustained(cfg, 1_800_000, 100_000)
        assert est.sustained_tflops < PAPER_PEAK_TFLOPS

    def test_paper_projection_shape(self):
        """The model must land in the paper's performance regime:
        tens of Tflops, tens of percent of peak, hours of wall time."""
        p = paper_projection(block_fraction=0.002)
        assert 10.0 < p["model_sustained_tflops"] < PAPER_PEAK_TFLOPS
        assert 0.15 < p["model_efficiency"] < 0.9
        assert 1.0 < p["model_wall_hours"] < 100.0
        assert p["paper_sustained_tflops"] == PAPER_ACHIEVED_TFLOPS

    def test_projection_validates_fraction(self):
        with pytest.raises(ConfigurationError):
            paper_projection(0.0)
        with pytest.raises(ConfigurationError):
            paper_projection(1.5)

    def test_histogram_extrapolation_below_mean_only(self):
        """A wide block-size distribution must cost more than its mean
        (small blocks are disproportionately slow)."""
        cfg = Grape6Config.paper_full_system()
        n = 1_800_000
        wide = {10: 500, 4000: 50}
        mean = sum(s * c for s, c in wide.items()) / sum(wide.values())
        est_wide = extrapolate_from_histogram(cfg, n, wide, n_measured=n)
        est_mean = extrapolate_sustained(cfg, n, mean)
        assert est_wide.sustained_tflops < est_mean.sustained_tflops

    def test_histogram_scaling(self):
        """Scaling histogram from a small run preserves block fractions."""
        cfg = Grape6Config.paper_full_system()
        est = extrapolate_from_histogram(
            cfg, 1_800_000, {8: 10, 64: 5}, n_measured=1000
        )
        # 8/1000 -> 14400, 64/1000 -> 115200 at N=1.8e6
        assert est.mean_block == pytest.approx((14400 * 10 + 115200 * 5) / 15, rel=0.01)

    def test_empty_histogram_rejected(self):
        with pytest.raises(ConfigurationError):
            extrapolate_from_histogram(Grape6Config(), 1000, {}, 100)


class TestHarness:
    def test_run_scaled_disk_basic(self):
        backend = HostDirectBackend(eps=0.008)
        res = run_scaled_disk(backend, n=32, t_end=2.0, seed=1)
        assert isinstance(res, RunResult)
        assert res.n == 34  # 32 planetesimals + 2 protoplanets
        assert res.block_steps > 0
        assert res.particle_steps >= res.block_steps
        assert 0 < res.mean_block <= res.n
        assert 0 < res.block_fraction <= 1
        assert res.energy_error < 1e-6
        assert res.interactions > 0
        assert res.wall_seconds > 0
        assert res.interactions_per_second > 0

    def test_no_protoplanets_option(self):
        backend = HostDirectBackend(eps=0.008)
        res = run_scaled_disk(backend, n=16, t_end=1.0, protoplanets=[])
        assert res.n == 16

    def test_max_block_steps_bounds_work(self):
        backend = HostDirectBackend(eps=0.008)
        res = run_scaled_disk(backend, n=16, t_end=1e9, max_block_steps=5)
        assert res.block_steps <= 6  # 5 evolve blocks (+ maybe sync)


class TestTable:
    def test_render_contains_data(self):
        t = Table(["a", "b"], title="T")
        t.add_row(1, 2.5)
        t.add_row("x", 1_000_000)
        out = t.render()
        assert "== T ==" in out
        assert "1,000,000" in out
        assert "2.5" in out

    def test_row_length_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ConfigurationError):
            t.add_row(1)

    def test_empty_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            Table([])

    def test_format_quantity(self):
        assert format_quantity(1234567) == "1,234,567"
        assert format_quantity(0.0) == "0"
        assert format_quantity(1.23456e-7) == "1.235e-07"
        assert format_quantity(True) == "True"
        assert format_quantity("s") == "s"
