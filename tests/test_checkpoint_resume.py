"""Tests for checkpoint-restart: manager, driver resume, CLI workflow."""

import numpy as np
import pytest

from repro.core import (
    HostDirectBackend,
    KeplerField,
    TimestepParams,
    save_snapshot,
)
from repro.errors import CheckpointError, ConfigurationError, SimulationKilled
from repro.obs import Observability
from repro.resilience import CheckpointManager
from repro.runio import ProductionRun, read_run_log

from conftest import make_disk_sim, make_random_cluster


class TestCheckpointManager:
    def test_write_load_roundtrip(self, tmp_path):
        obs = Observability()
        mgr = CheckpointManager(tmp_path / "ck", obs=obs)
        s = make_random_cluster(12, seed=2)
        state = {"time": 3.5, "block_steps": 40, "run_id": "t"}
        path = mgr.write(s, state)
        assert path.name == "ckpt_000001.npz"
        loaded, got = mgr.load_latest()
        assert got == state
        assert np.array_equal(loaded.pos, s.pos)
        assert obs.metrics.counter("checkpoint.writes_total").value == 1
        assert obs.metrics.counter("checkpoint.restores_total").value == 1

    def test_pointer_tracks_newest(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        s = make_random_cluster(4)
        mgr.write(s, {"time": 1.0})
        p2 = mgr.write(s, {"time": 2.0})
        assert p2.name == "ckpt_000002.npz"
        assert (tmp_path / "latest").read_text().strip() == p2.name
        _, state = mgr.load_latest()
        assert state["time"] == 2.0

    def test_lost_pointer_falls_back_to_newest_file(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        s = make_random_cluster(4)
        mgr.write(s, {"time": 1.0})
        p2 = mgr.write(s, {"time": 2.0})
        (tmp_path / "latest").unlink()
        assert mgr.latest_path() == p2

    def test_stale_pointer_falls_back(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        s = make_random_cluster(4)
        p1 = mgr.write(s, {"time": 1.0})
        (tmp_path / "latest").write_text("ckpt_999999.npz\n")
        assert mgr.latest_path() == p1

    def test_empty_directory_raises_actionable_error(self, tmp_path):
        mgr = CheckpointManager(tmp_path / "none")
        assert mgr.latest_path() is None
        with pytest.raises(CheckpointError, match="no checkpoint found"):
            mgr.load_latest()

    def test_plain_snapshot_rejected(self, tmp_path):
        save_snapshot(tmp_path / "ckpt_000001.npz", make_random_cluster(4))
        with pytest.raises(CheckpointError, match="not a checkpoint"):
            CheckpointManager(tmp_path).load_latest()


def make_managed_run(tmp_path, name, on_block=None):
    """A small managed disk run with checkpoints every 5 blocks."""
    sim = make_disk_sim(n=24, seed=5, dt_max=0.5)
    run = ProductionRun(
        sim,
        tmp_path / name,
        snapshot_interval=2.0,
        diagnostics_interval=2.0,
        checkpoint_interval=5,
        run_id="ck-test",
        on_block=on_block,
    )
    return run


class TestKillAndResume:
    def test_resume_is_bit_identical(self, tmp_path):
        """Kill mid-run, resume from checkpoint: final state matches an
        uninterrupted run exactly (not just approximately)."""
        ref = make_managed_run(tmp_path, "ref")
        ref_report = ref.execute(t_end=6.0)

        blocks = [0]

        def killer(s):
            blocks[0] += 1
            if blocks[0] == 12:
                raise SimulationKilled("power cut")

        run = make_managed_run(tmp_path, "killed", on_block=killer)
        with pytest.raises(SimulationKilled):
            run.execute(t_end=6.0)
        assert run.checkpoints_written >= 1

        resumed = ProductionRun.resume(
            tmp_path / "killed",
            HostDirectBackend(eps=0.008),
            external_field=KeplerField(),
            timestep_params=TimestepParams(eta=0.02, dt_max=0.5),
        )
        assert resumed.sim.time < 6.0  # picked up mid-run
        report = resumed.execute()  # t_end restored from the checkpoint

        assert report.t_final == ref_report.t_final
        assert report.block_steps == ref_report.block_steps
        assert np.array_equal(resumed.sim.system.pos, ref.sim.system.pos)
        assert np.array_equal(resumed.sim.system.vel, ref.sim.system.vel)
        assert report.max_energy_error == pytest.approx(
            ref_report.max_energy_error, rel=1e-9
        )

    def test_resumed_log_appends_idempotently(self, tmp_path):
        blocks = [0]

        def killer(s):
            blocks[0] += 1
            if blocks[0] == 8:
                raise SimulationKilled("power cut")

        run = make_managed_run(tmp_path, "log", on_block=killer)
        with pytest.raises(SimulationKilled):
            run.execute(t_end=6.0)
        ProductionRun.resume(
            tmp_path / "log",
            HostDirectBackend(eps=0.008),
            external_field=KeplerField(),
            timestep_params=TimestepParams(eta=0.02, dt_max=0.5),
        ).execute()

        records = read_run_log(tmp_path / "log" / "run.jsonl")
        kinds = [r["kind"] for r in records]
        # append is idempotent: the resumed session reuses the file
        # without emitting a second header, and marks where it took over
        assert kinds.count("header") == 1
        assert kinds[0] == "header"
        assert "resume" in kinds
        assert records[-1].get("note") == "final"

    def test_intervals_restored_from_checkpoint(self, tmp_path):
        blocks = [0]

        def killer(s):
            blocks[0] += 1
            if blocks[0] == 8:
                raise SimulationKilled("power cut")

        run = make_managed_run(tmp_path, "iv", on_block=killer)
        with pytest.raises(SimulationKilled):
            run.execute(t_end=6.0)
        resumed = ProductionRun.resume(
            tmp_path / "iv",
            HostDirectBackend(eps=0.008),
            external_field=KeplerField(),
            timestep_params=TimestepParams(eta=0.02, dt_max=0.5),
        )
        assert resumed.snapshot_interval == 2.0
        assert resumed.checkpoint_interval == 5
        assert resumed.run_id == "ck-test"

    def test_t_end_required_without_restore(self, tmp_path):
        run = make_managed_run(tmp_path, "noend")
        with pytest.raises(ConfigurationError):
            run.execute()

    def test_resume_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint found"):
            ProductionRun.resume(tmp_path / "nothing", HostDirectBackend(eps=0.008))


class TestCLICheckpointWorkflow:
    RUN = [
        "run", "--n", "16", "--t-end", "3", "--dt-max", "0.25",
        "--checkpoint-interval", "4", "--snapshot-interval", "1",
    ]

    def test_managed_run_then_resume(self, capsys, tmp_path):
        from repro.cli import main

        d = tmp_path / "rundir"
        assert main(self.RUN + ["--run-dir", str(d)]) == 0
        out = capsys.readouterr().out
        assert "production run complete" in out
        assert sorted((d / "checkpoints").glob("ckpt_*.npz"))

        assert main(["run", "--resume", str(d)]) == 0
        out = capsys.readouterr().out
        assert "resuming from ckpt_" in out
        assert "production run complete" in out

    def test_resume_without_checkpoint_exits_2(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["run", "--resume", str(tmp_path / "void")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: no checkpoint found")
        assert "--checkpoint-interval" in err  # tells the user what to do
