"""Tests for checkpoint-restart: manager, driver resume, CLI workflow."""

import numpy as np
import pytest

from repro.core import (
    HostDirectBackend,
    KeplerField,
    TimestepParams,
    save_snapshot,
)
from repro.errors import CheckpointError, ConfigurationError, SimulationKilled
from repro.obs import Observability
from repro.resilience import CheckpointManager
from repro.runio import ProductionRun, read_run_log

from conftest import make_disk_sim, make_random_cluster


class TestCheckpointManager:
    def test_write_load_roundtrip(self, tmp_path):
        obs = Observability()
        mgr = CheckpointManager(tmp_path / "ck", obs=obs)
        s = make_random_cluster(12, seed=2)
        state = {"time": 3.5, "block_steps": 40, "run_id": "t"}
        path = mgr.write(s, state)
        assert path.name == "ckpt_000001.npz"
        loaded, got = mgr.load_latest()
        assert got == state
        assert np.array_equal(loaded.pos, s.pos)
        assert obs.metrics.counter("checkpoint.writes_total").value == 1
        assert obs.metrics.counter("checkpoint.restores_total").value == 1

    def test_pointer_tracks_newest(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        s = make_random_cluster(4)
        mgr.write(s, {"time": 1.0})
        p2 = mgr.write(s, {"time": 2.0})
        assert p2.name == "ckpt_000002.npz"
        assert (tmp_path / "latest").read_text().strip() == p2.name
        _, state = mgr.load_latest()
        assert state["time"] == 2.0

    def test_lost_pointer_falls_back_to_newest_file(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        s = make_random_cluster(4)
        mgr.write(s, {"time": 1.0})
        p2 = mgr.write(s, {"time": 2.0})
        (tmp_path / "latest").unlink()
        assert mgr.latest_path() == p2

    def test_stale_pointer_falls_back(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        s = make_random_cluster(4)
        p1 = mgr.write(s, {"time": 1.0})
        (tmp_path / "latest").write_text("ckpt_999999.npz\n")
        assert mgr.latest_path() == p1

    def test_empty_directory_raises_actionable_error(self, tmp_path):
        mgr = CheckpointManager(tmp_path / "none")
        assert mgr.latest_path() is None
        with pytest.raises(CheckpointError, match="no checkpoint found"):
            mgr.load_latest()

    def test_plain_snapshot_rejected(self, tmp_path):
        save_snapshot(tmp_path / "ckpt_000001.npz", make_random_cluster(4))
        with pytest.raises(CheckpointError, match="not a checkpoint"):
            CheckpointManager(tmp_path).load_latest()


class TestCorruptCheckpointFallback:
    """A damaged newest checkpoint must cost one interval, not the run."""

    def _write_two(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        s = make_random_cluster(4)
        p1 = mgr.write(s, {"time": 1.0})
        p2 = mgr.write(s, {"time": 2.0})
        return mgr, p1, p2

    def test_truncated_newest_falls_back(self, tmp_path):
        obs = Observability()
        _, p1, p2 = self._write_two(tmp_path)
        p2.write_bytes(p2.read_bytes()[:100])  # torn by a host crash
        mgr = CheckpointManager(tmp_path, obs=obs)
        _, state = mgr.load_latest()
        assert state["time"] == 1.0
        assert mgr.loaded_path == p1
        assert obs.metrics.counter("checkpoint.skipped_total").value == 1

    def test_garbage_newest_falls_back(self, tmp_path):
        _, p1, p2 = self._write_two(tmp_path)
        p2.write_bytes(b"\x00" * 512)
        mgr = CheckpointManager(tmp_path)
        _, state = mgr.load_latest()
        assert state["time"] == 1.0
        assert mgr.loaded_path == p1

    def test_all_corrupt_raises_with_details(self, tmp_path):
        _, p1, p2 = self._write_two(tmp_path)
        p1.write_bytes(b"junk")
        p2.write_bytes(b"junk")
        with pytest.raises(CheckpointError, match="2 candidate"):
            CheckpointManager(tmp_path).load_latest()

    def test_candidates_order_pointer_first(self, tmp_path):
        mgr, p1, p2 = self._write_two(tmp_path)
        # a stale pointer must still lead the candidate list
        (tmp_path / "latest").write_text(p1.name + "\n")
        assert mgr.candidates() == [p1, p2]

    def test_intact_load_records_path_and_skips_nothing(self, tmp_path):
        obs = Observability()
        _, _, p2 = self._write_two(tmp_path)
        mgr = CheckpointManager(tmp_path, obs=obs)
        mgr.load_latest()
        assert mgr.loaded_path == p2
        assert obs.metrics.counter("checkpoint.skipped_total").value == 0

    def test_file_as_directory_raises_checkpoint_error(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        with pytest.raises(CheckpointError, match="not a directory"):
            CheckpointManager(blocker / "ck")


def make_managed_run(tmp_path, name, on_block=None):
    """A small managed disk run with checkpoints every 5 blocks."""
    sim = make_disk_sim(n=24, seed=5, dt_max=0.5)
    run = ProductionRun(
        sim,
        tmp_path / name,
        snapshot_interval=2.0,
        diagnostics_interval=2.0,
        checkpoint_interval=5,
        run_id="ck-test",
        on_block=on_block,
    )
    return run


class TestKillAndResume:
    def test_resume_is_bit_identical(self, tmp_path):
        """Kill mid-run, resume from checkpoint: final state matches an
        uninterrupted run exactly (not just approximately)."""
        ref = make_managed_run(tmp_path, "ref")
        ref_report = ref.execute(t_end=6.0)

        blocks = [0]

        def killer(s):
            blocks[0] += 1
            if blocks[0] == 12:
                raise SimulationKilled("power cut")

        run = make_managed_run(tmp_path, "killed", on_block=killer)
        with pytest.raises(SimulationKilled):
            run.execute(t_end=6.0)
        assert run.checkpoints_written >= 1

        resumed = ProductionRun.resume(
            tmp_path / "killed",
            HostDirectBackend(eps=0.008),
            external_field=KeplerField(),
            timestep_params=TimestepParams(eta=0.02, dt_max=0.5),
        )
        assert resumed.sim.time < 6.0  # picked up mid-run
        report = resumed.execute()  # t_end restored from the checkpoint

        assert report.t_final == ref_report.t_final
        assert report.block_steps == ref_report.block_steps
        assert np.array_equal(resumed.sim.system.pos, ref.sim.system.pos)
        assert np.array_equal(resumed.sim.system.vel, ref.sim.system.vel)
        assert report.max_energy_error == pytest.approx(
            ref_report.max_energy_error, rel=1e-9
        )

    def test_resumed_log_appends_idempotently(self, tmp_path):
        blocks = [0]

        def killer(s):
            blocks[0] += 1
            if blocks[0] == 8:
                raise SimulationKilled("power cut")

        run = make_managed_run(tmp_path, "log", on_block=killer)
        with pytest.raises(SimulationKilled):
            run.execute(t_end=6.0)
        ProductionRun.resume(
            tmp_path / "log",
            HostDirectBackend(eps=0.008),
            external_field=KeplerField(),
            timestep_params=TimestepParams(eta=0.02, dt_max=0.5),
        ).execute()

        records = read_run_log(tmp_path / "log" / "run.jsonl")
        kinds = [r["kind"] for r in records]
        # append is idempotent: the resumed session reuses the file
        # without emitting a second header, and marks where it took over
        assert kinds.count("header") == 1
        assert kinds[0] == "header"
        assert "resume" in kinds
        assert records[-1].get("note") == "final"

    def test_intervals_restored_from_checkpoint(self, tmp_path):
        blocks = [0]

        def killer(s):
            blocks[0] += 1
            if blocks[0] == 8:
                raise SimulationKilled("power cut")

        run = make_managed_run(tmp_path, "iv", on_block=killer)
        with pytest.raises(SimulationKilled):
            run.execute(t_end=6.0)
        resumed = ProductionRun.resume(
            tmp_path / "iv",
            HostDirectBackend(eps=0.008),
            external_field=KeplerField(),
            timestep_params=TimestepParams(eta=0.02, dt_max=0.5),
        )
        assert resumed.snapshot_interval == 2.0
        assert resumed.checkpoint_interval == 5
        assert resumed.run_id == "ck-test"

    def test_t_end_required_without_restore(self, tmp_path):
        run = make_managed_run(tmp_path, "noend")
        with pytest.raises(ConfigurationError):
            run.execute()

    def test_resume_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint found"):
            ProductionRun.resume(tmp_path / "nothing", HostDirectBackend(eps=0.008))


class TestCLICheckpointWorkflow:
    RUN = [
        "run", "--n", "16", "--t-end", "3", "--dt-max", "0.25",
        "--checkpoint-interval", "4", "--snapshot-interval", "1",
    ]

    def test_managed_run_then_resume(self, capsys, tmp_path):
        from repro.cli import main

        d = tmp_path / "rundir"
        assert main(self.RUN + ["--run-dir", str(d)]) == 0
        out = capsys.readouterr().out
        assert "production run complete" in out
        assert sorted((d / "checkpoints").glob("ckpt_*.npz"))

        assert main(["run", "--resume", str(d)]) == 0
        out = capsys.readouterr().out
        assert "resuming from ckpt_" in out
        assert "production run complete" in out

    def test_resume_without_checkpoint_exits_2(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["run", "--resume", str(tmp_path / "void")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: no checkpoint found")
        assert "--checkpoint-interval" in err  # tells the user what to do

    def test_resume_with_all_corrupt_checkpoints_exits_2(self, capsys, tmp_path):
        from repro.cli import main

        d = tmp_path / "rundir"
        assert main(self.RUN + ["--run-dir", str(d)]) == 0
        capsys.readouterr()
        for p in (d / "checkpoints").glob("ckpt_*.npz"):
            p.write_bytes(b"\x00" * 64)
        assert main(["run", "--resume", str(d)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: no valid checkpoint")
        assert "rejected" in err

    def test_resume_falls_back_over_corrupt_newest(self, capsys, tmp_path):
        from repro.cli import main

        d = tmp_path / "rundir"
        assert main(self.RUN + ["--run-dir", str(d)]) == 0
        capsys.readouterr()
        ckpts = sorted((d / "checkpoints").glob("ckpt_*.npz"))
        assert len(ckpts) >= 2
        ckpts[-1].write_bytes(ckpts[-1].read_bytes()[:80])  # torn newest
        assert main(["run", "--resume", str(d)]) == 0
        out = capsys.readouterr().out
        assert f"resuming from {ckpts[-2].name}" in out
        assert "production run complete" in out

    def test_second_resume_keeps_backend_config(self, capsys, tmp_path):
        """Checkpoints written *after* a resume keep the config metadata,
        so a chain of resumes can always rebuild the backend."""
        from repro.cli import main

        d = tmp_path / "rundir"
        blocks = [0]

        def killer(s):
            blocks[0] += 1
            if blocks[0] == 6:
                raise SimulationKilled("power cut")

        sim = make_disk_sim(n=16, seed=5, dt_max=0.25)
        run = ProductionRun(
            sim, d, checkpoint_interval=4, run_id="chain",
            checkpoint_metadata={"backend": "host", "eta": 0.02,
                                 "dt_max": 0.25, "eps": 0.008},
            on_block=killer,
        )
        with pytest.raises(SimulationKilled):
            run.execute(t_end=3.0)

        # first resume finishes the run and writes further checkpoints
        assert main(["run", "--resume", str(d)]) == 0
        capsys.readouterr()
        mgr = CheckpointManager(d / "checkpoints")
        _, state = mgr.load_latest()
        assert state["block_steps"] > 6  # written after the resume
        assert state.get("config", {}).get("backend") == "host"

        # so a second resume can still rebuild the backend from disk
        assert main(["run", "--resume", str(d)]) == 0
        assert "production run complete" in capsys.readouterr().out
