"""Integration tests: instrumentation wired through the stack.

Covers the acceptance criteria of the observability PR: the Prometheus
totals reproduce the GRAPE timing-model breakdown to within 1%, the
Chrome-trace export of a real run is well-formed, and the disabled
(null) instrumentation does not measurably slow the scaled run.
"""

import json
import time

import numpy as np
import pytest

from repro.core import HostDirectBackend
from repro.grape import Grape6Backend, Grape6Config, Grape6Machine
from repro.obs import Observability, parse_prometheus
from repro.parallel import CommSimulator, ring_forces, switch_topology
from repro.perf import run_scaled_disk

from conftest import make_random_cluster
from test_obs import _assert_properly_nested


def run_grape(obs, n=48, t_end=2.0):
    machine = Grape6Machine(Grape6Config.paper_full_system(), eps=0.008)
    backend = Grape6Backend(machine)
    res = run_scaled_disk(backend, n=n, t_end=t_end, obs=obs)
    return res, machine


class TestGrapeMetrics:
    def test_prometheus_reproduces_timing_totals(self, tmp_path):
        obs = Observability()
        res, machine = run_grape(obs)
        path = tmp_path / "metrics.prom"
        obs.export_prometheus(path)
        prom = parse_prometheus(path)
        totals = machine.totals
        comm = totals.pci + totals.lvds + totals.gbe
        assert prom["grape_pipeline_seconds"] == pytest.approx(totals.pipe, rel=0.01)
        assert prom["grape_host_seconds"] == pytest.approx(totals.host, rel=0.01)
        assert prom["grape_comm_seconds"] == pytest.approx(comm, rel=0.01)
        assert prom["grape_interactions_total"] == totals.interactions
        assert prom["grape_blocks_total"] == totals.blocks

    def test_integrator_counters_match_sim(self):
        obs = Observability()
        res, _ = run_grape(obs)
        snap = res.metrics
        assert snap["blockstep.total"] == res.sim.block_steps
        assert snap["blockstep.active_particles"] == res.sim.particle_steps
        # the scheduler histogram saw exactly the block-loop blocks
        assert snap["scheduler.block_size.count"] == res.sim.block_steps
        assert snap["run.particles"] == res.sim.system.n

    def test_model_spans_sum_to_totals(self):
        obs = Observability()
        _, machine = run_grape(obs)
        pipe = obs.tracer.total_seconds("grape.pipeline", track="model")
        assert pipe == pytest.approx(machine.totals.pipe, rel=1e-6, abs=2e-9)
        blocks = [s for s in obs.tracer.spans if s.name == "grape.block_step"]
        assert len(blocks) == machine.totals.blocks

    def test_breakdown_renders_from_run(self):
        obs = Observability()
        run_grape(obs)
        text = obs.render_time_breakdown()
        assert "t_pipe" in text and "of peak" in text


class TestTraceSchema:
    def test_chrome_trace_of_real_run_is_nested(self, tmp_path):
        obs = Observability()
        run_grape(obs)
        path = obs.export_chrome_trace(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert events, "trace must contain spans"
        names = {e["name"] for e in events}
        for expected in ("run", "block_step", "predict", "force", "correct",
                         "grape.block_step", "grape.pipeline"):
            assert expected in names, expected
        for tid in sorted({e["tid"] for e in events}):
            _assert_properly_nested([e for e in events if e["tid"] == tid])

    def test_wall_phases_inside_block_step(self):
        obs = Observability()
        run_grape(obs)
        wall = obs.tracer.of_track("wall")
        blocks = [s for s in wall if s.name == "block_step"]
        phases = [s for s in wall if s.name in ("predict", "force", "correct")]
        assert blocks and phases
        for p in phases:
            assert any(
                b.ts_ns <= p.ts_ns and p.ts_ns + p.dur_ns <= b.ts_ns + b.dur_ns
                for b in blocks
            ), f"phase {p.name} not nested in any block_step"


class TestCommInstrumentation:
    def test_comm_simulator_metrics(self):
        obs = Observability()
        sim = CommSimulator(switch_topology(4), obs=obs)
        sim.broadcast("h0", 1000)
        sim.allgather(500)
        snap = obs.metrics.snapshot()
        assert snap["comm.phases_total"] == 2.0
        assert snap["comm.bytes_sent"] == sim.total_bytes
        assert snap["comm.phase_seconds"] == pytest.approx(sim.total_seconds)
        assert snap["comm.phase_bytes.count"] == 2.0
        spans = [s for s in obs.tracer.spans if s.name == "comm.phase"]
        assert len(spans) == 2

    def test_ring_forces_metrics(self):
        obs = Observability()
        cluster = make_random_cluster(24, seed=7)
        result = ring_forces(
            cluster.pos, cluster.vel, cluster.mass, eps=0.01, n_ranks=4, obs=obs
        )
        snap = obs.metrics.snapshot()
        assert snap["comm.bytes_sent"] == result.total_bytes
        assert snap["comm.messages_total"] == result.messages
        assert any(s.name == "ring.forces" for s in obs.tracer.spans)


class TestOverheadGuard:
    def test_disabled_instrumentation_is_not_slower(self):
        """Null-object instrumentation must not slow the scaled run.

        The enabled run does strictly more work (span bookkeeping,
        counter updates), so the disabled run must not be meaningfully
        slower than it; the generous margin absorbs scheduler noise.
        """

        def timed(obs):
            best = float("inf")
            for _ in range(3):
                backend = HostDirectBackend(eps=0.008)
                t0 = time.perf_counter()
                run_scaled_disk(
                    backend, n=128, t_end=2.0, obs=obs,
                    measure_energy=False, max_block_steps=40,
                )
                best = min(best, time.perf_counter() - t0)
            return best

        t_disabled = timed(None)
        t_enabled = timed(Observability())
        assert t_disabled <= t_enabled * 1.25 + 0.05

    def test_null_counter_inc_is_cheap(self):
        # a crude ceiling: 100k null incs must stay well under 100 ms
        from repro.obs import NULL_REGISTRY

        c = NULL_REGISTRY.counter("blockstep.total")
        t0 = time.perf_counter()
        for _ in range(100_000):
            c.inc()
        assert time.perf_counter() - t0 < 0.1


class TestEscapeEventCounters:
    def test_escape_counter_increments(self):
        obs = Observability()
        backend = HostDirectBackend(eps=0.008)
        res = run_scaled_disk(backend, n=32, t_end=1.0, obs=obs)
        sim = res.sim
        # fling one particle out and prune it
        sim.system.pos[0] = np.array([80.0, 0.0, 0.0])
        sim.system.vel[0] = np.array([0.0, 1.0, 0.0])  # v^2/2 > M/r
        removed = sim.remove_escapers()
        assert removed == 1
        assert obs.metrics.snapshot()["events.escape_total"] == 1.0
