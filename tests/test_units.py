"""Tests for repro.units: the AU/Msun/G=1 unit system of the paper."""

import math

import numpy as np
import pytest

from repro import units


def test_one_year_is_two_pi():
    assert units.years_to_code(1.0) == pytest.approx(2.0 * math.pi)


def test_years_roundtrip():
    t = np.array([0.5, 1.0, 1878.8])
    assert np.allclose(units.code_to_years(units.years_to_code(t)), t)


def test_au_roundtrip():
    assert units.m_to_au(units.au_to_m(35.0)) == pytest.approx(35.0)


def test_msun_roundtrip():
    assert units.kg_to_msun(units.msun_to_kg(1e-5)) == pytest.approx(1e-5)


def test_orbital_period_at_1au_is_one_year():
    assert units.orbital_period(1.0) == pytest.approx(2.0 * math.pi)


def test_orbital_period_kepler_third_law():
    # P^2 ∝ a^3: the period at 4 AU is 8x the period at 1 AU.
    assert units.orbital_period(4.0) == pytest.approx(8.0 * units.orbital_period(1.0))


def test_circular_velocity_at_1au_is_unity():
    assert units.circular_velocity(1.0) == pytest.approx(1.0)


def test_circular_velocity_scales_inverse_sqrt():
    assert units.circular_velocity(25.0) == pytest.approx(0.2)


def test_circular_velocity_si_is_29_8_kms():
    v = units.velocity_code_to_si(units.circular_velocity(1.0))
    assert v == pytest.approx(29.78e3, rel=1e-3)


def test_keplerian_omega_matches_period():
    a = 20.0
    assert units.keplerian_omega(a) * units.orbital_period(a) == pytest.approx(
        2.0 * math.pi
    )


def test_hill_radius_formula():
    # m = 3e-6 Msun at 1 AU: r_H = (1e-6)^(1/3) = 0.01 AU.
    assert units.hill_radius(1.0, 3e-6) == pytest.approx(0.01)


def test_paper_softening_well_below_protoplanet_hill_radius():
    """Paper: softening is two orders of magnitude below the Hill radius."""
    from repro.constants import (
        PAPER_PROTOPLANET_MASS,
        PAPER_PROTOPLANET_RADII_AU,
        PAPER_SOFTENING_AU,
    )

    for a in PAPER_PROTOPLANET_RADII_AU:
        r_h = units.hill_radius(a, PAPER_PROTOPLANET_MASS)
        assert PAPER_SOFTENING_AU < r_h / 30.0


def test_escape_velocity_is_sqrt2_circular():
    r = 5.0
    assert units.escape_velocity(r) == pytest.approx(
        math.sqrt(2.0) * units.circular_velocity(r)
    )


def test_vector_inputs_broadcast():
    a = np.array([15.0, 20.0, 35.0])
    p = units.orbital_period(a)
    assert p.shape == (3,)
    assert np.all(np.diff(p) > 0)
