"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.forces import acc_jerk, potential_energy
from repro.core.scheduler import BlockScheduler
from repro.core.timestep import TimestepParams, floor_power_of_two, quantize
from repro.grape.board import round_robin_slices
from repro.grape.fixedpoint import round_mantissa
from repro.planetesimal.massfunction import PowerLawMassFunction
from repro.planetesimal.orbital import solve_kepler

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def positions(n):
    return hnp.arrays(
        np.float64, (n, 3),
        elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
    )


class TestForceProperties:
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 20))
    @settings(max_examples=30, deadline=None)
    def test_momentum_conservation(self, seed, n):
        """Mutual forces: sum_i m_i a_i = 0 and sum_i m_i jdot_i = 0."""
        rng = np.random.default_rng(seed)
        pos = rng.normal(size=(n, 3)) * 10
        vel = rng.normal(size=(n, 3))
        mass = rng.uniform(0.1, 10, n)
        a, j = acc_jerk(pos, vel, pos, vel, mass, eps=0.01, self_indices=np.arange(n))
        scale = np.abs(mass[:, None] * a).max() + 1e-30
        assert np.abs((mass[:, None] * a).sum(axis=0)).max() < 1e-10 * scale * n
        jscale = np.abs(mass[:, None] * j).max() + 1e-30
        assert np.abs((mass[:, None] * j).sum(axis=0)).max() < 1e-10 * jscale * n

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_potential_energy_negative(self, seed):
        rng = np.random.default_rng(seed)
        pos = rng.normal(size=(8, 3))
        mass = rng.uniform(0.1, 1, 8)
        assert potential_energy(pos, mass, eps=0.01) < 0

    @given(seed=st.integers(0, 10_000), eps1=st.floats(0.01, 0.5))
    @settings(max_examples=20, deadline=None)
    def test_softening_weakens_binding(self, seed, eps1):
        """More softening -> shallower (less negative) potential."""
        rng = np.random.default_rng(seed)
        pos = rng.normal(size=(8, 3))
        mass = rng.uniform(0.1, 1, 8)
        w_soft = potential_energy(pos, mass, eps=eps1 * 2)
        w_hard = potential_energy(pos, mass, eps=eps1)
        assert w_soft >= w_hard

    @given(seed=st.integers(0, 10_000), shift=finite_floats)
    @settings(max_examples=20, deadline=None)
    def test_translation_invariance(self, seed, shift):
        """Mutual forces are invariant under global translation."""
        rng = np.random.default_rng(seed)
        pos = rng.normal(size=(6, 3))
        vel = rng.normal(size=(6, 3))
        mass = rng.uniform(0.1, 1, 6)
        idx = np.arange(6)
        a1, j1 = acc_jerk(pos, vel, pos, vel, mass, 0.01, self_indices=idx)
        pos2 = pos + shift
        a2, j2 = acc_jerk(pos2, vel, pos2, vel, mass, 0.01, self_indices=idx)
        atol = 1e-9 * (np.abs(a1).max() + 1e-30) * max(1.0, abs(shift))
        assert np.allclose(a1, a2, atol=atol)


class TestTimestepProperties:
    @given(
        dts=hnp.arrays(
            np.float64, st.integers(1, 50),
            elements=st.floats(min_value=1e-12, max_value=1e6, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_floor_power_of_two_bounds(self, dts):
        out = floor_power_of_two(dts)
        assert np.all(out <= dts)
        assert np.all(out > dts / 2.0)

    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 30),
    )
    @settings(max_examples=30, deadline=None)
    def test_quantize_invariants(self, seed, n):
        rng = np.random.default_rng(seed)
        params = TimestepParams(dt_max=1.0, dt_min=2.0**-20)
        desired = 10.0 ** rng.uniform(-8, 3, n)
        dt = quantize(desired, np.zeros(n), None, params)
        assert np.all(dt >= params.dt_min)
        assert np.all(dt <= params.dt_max)
        levels = np.log2(params.dt_max / dt)
        assert np.allclose(levels, np.round(levels))
        # never larger than the (clipped) desired step
        assert np.all(dt <= np.clip(desired, params.dt_min, params.dt_max) + 1e-15)

    @given(seed=st.integers(0, 10_000), n=st.integers(2, 40))
    @settings(max_examples=30, deadline=None)
    def test_scheduler_block_nonempty_and_minimal(self, seed, n):
        rng = np.random.default_rng(seed)
        t = np.zeros(n)
        dt = 2.0 ** rng.integers(-8, 0, n).astype(float)
        sched = BlockScheduler()
        t_next, active = sched.next_block(t, dt)
        assert active.size >= 1
        assert t_next == (t + dt).min()
        # all selected share the update time; none excluded wrongly
        assert np.all((t + dt)[active] == t_next)
        others = np.setdiff1d(np.arange(n), active)
        assert np.all((t + dt)[others] > t_next)


class TestRoundRobinProperties:
    @given(n=st.integers(0, 500), bins=st.integers(1, 64))
    @settings(max_examples=50, deadline=None)
    def test_partition(self, n, bins):
        slices = round_robin_slices(n, bins)
        assert len(slices) == bins
        joined = np.sort(np.concatenate(slices)) if n else np.array([])
        assert np.array_equal(joined, np.arange(n))
        sizes = [len(s) for s in slices]
        assert max(sizes) - min(sizes) <= 1


class TestFixedPointProperties:
    @given(
        x=st.floats(min_value=-1e10, max_value=1e10, allow_nan=False),
        bits=st.integers(1, 52),
    )
    @settings(max_examples=100, deadline=None)
    def test_round_mantissa_relative_error(self, x, bits):
        y = round_mantissa(np.array([x]), bits)[0]
        if x == 0:
            assert y == 0
        else:
            assert abs(y - x) <= 2.0 ** (-bits) * abs(x) * (1 + 1e-12)

    @given(x=st.floats(min_value=-1e10, max_value=1e10, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_round_mantissa_idempotent(self, x):
        a = round_mantissa(np.array([x]), 12)
        b = round_mantissa(a, 12)
        assert np.array_equal(a, b)


class TestMassFunctionProperties:
    @given(
        alpha=st.floats(-4.0, 1.0),
        lo_exp=st.floats(-14, -6),
        ratio=st.floats(1.5, 1e4),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_samples_in_bounds(self, alpha, lo_exp, ratio, seed):
        lo = 10.0**lo_exp
        mf = PowerLawMassFunction(alpha, lo, lo * ratio)
        m = mf.sample(200, np.random.default_rng(seed))
        assert np.all(m >= lo * (1 - 1e-12))
        assert np.all(m <= lo * ratio * (1 + 1e-12))

    @given(alpha=st.floats(-4.0, 1.0), ratio=st.floats(1.5, 1e4))
    @settings(max_examples=40, deadline=None)
    def test_mean_between_cutoffs(self, alpha, ratio):
        mf = PowerLawMassFunction(alpha, 1.0, ratio)
        assert 1.0 <= mf.mean_mass() <= ratio

    @given(
        n=st.integers(10, 10_000),
        total_exp=st.floats(-8, -2),
    )
    @settings(max_examples=40, deadline=None)
    def test_scaled_mean_exact(self, n, total_exp):
        total = 10.0**total_exp
        mf = PowerLawMassFunction(-2.5, 2e-12, 4e-10).scaled_to(n, total)
        assert abs(n * mf.mean_mass() - total) < 1e-9 * total


class TestKeplerProperties:
    @given(
        m=st.floats(-50, 50, allow_nan=False),
        e=st.floats(0, 0.999),
    )
    @settings(max_examples=100, deadline=None)
    def test_kepler_residual(self, m, e):
        E = solve_kepler(np.array([m]), np.array([e]))[0]
        assert abs(E - e * np.sin(E) - m) < 1e-10
