"""Tests for scattering/fate classification."""

import numpy as np
import pytest

from repro.planetesimal import FateCounts, ScatteringMonitor, classify_fates
from repro.planetesimal.orbital import OrbitalElements, elements_to_cartesian


def states_from(a, e):
    n = len(a)
    el = OrbitalElements(
        a=np.asarray(a, float),
        e=np.asarray(e, float),
        inc=np.zeros(n),
        Omega=np.zeros(n),
        omega=np.zeros(n),
        M=np.linspace(0.1, 1.0, n),
    )
    return elements_to_cartesian(el)


class TestClassify:
    def test_quiet_disk_all_bound(self):
        pos, vel = states_from([20.0, 25.0, 30.0], [0.01, 0.02, 0.05])
        c = classify_fates(pos, vel)
        assert c.bound_disk == 3
        assert c.ejected == 0
        assert c.total == 3

    def test_excited_orbit(self):
        pos, vel = states_from([25.0], [0.5])
        c = classify_fates(pos, vel, e_excited=0.2)
        assert c.excited == 1

    def test_oort_candidate(self):
        # a=60, e=0.8 -> aphelion 108 > 100
        pos, vel = states_from([60.0], [0.8])
        c = classify_fates(pos, vel, aphelion_cut=100.0)
        assert c.oort_candidate == 1

    def test_ejected(self):
        pos = np.array([[30.0, 0, 0]])
        vel = np.array([[0.5, 0.0, 0]])  # v^2 = 0.25 >> 2/30
        c = classify_fates(pos, vel)
        assert c.ejected == 1

    def test_fractions_sum_to_one(self):
        pos, vel = states_from([20.0, 25.0, 60.0], [0.01, 0.5, 0.9])
        c = classify_fates(pos, vel)
        fr = c.fractions()
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_empty_fractions(self):
        c = FateCounts(0, 0, 0, 0)
        assert c.fractions() == {}


class TestMonitor:
    def test_series_accumulates(self):
        mon = ScatteringMonitor()
        pos, vel = states_from([20.0, 30.0], [0.01, 0.01])
        mon.sample(0.0, pos, vel)
        mon.sample(10.0, pos, vel)
        assert mon.times == [0.0, 10.0]
        assert mon.latest().bound_disk == 2

    def test_latest_requires_samples(self):
        with pytest.raises(RuntimeError):
            ScatteringMonitor().latest()
