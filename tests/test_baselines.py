"""Tests for the tree, shared-step and host-only baselines."""

import numpy as np
import pytest

from repro.baselines import (
    HostOnlyBackend,
    Octree,
    SharedHermite,
    SharedLeapfrog,
    TreeBackend,
)
from repro.core import KeplerField, ParticleSystem, Simulation, TimestepParams, energy
from repro.core.forces import acc_jerk
from repro.errors import ConfigurationError

from conftest import make_random_cluster, make_two_body


@pytest.fixture
def cluster300(rng):
    pos = rng.normal(size=(300, 3)) * 10
    vel = rng.normal(size=(300, 3))
    mass = rng.uniform(0.1, 1, 300)
    return pos, vel, mass


class TestOctreeBuild:
    def test_counts(self, cluster300):
        pos, vel, mass = cluster300
        tree = Octree(pos, mass, vel=vel, leaf_size=8)
        assert tree.stats.n_nodes >= tree.stats.n_leaves
        assert tree.node_mass[tree.root] == pytest.approx(mass.sum())

    def test_root_com(self, cluster300):
        pos, vel, mass = cluster300
        tree = Octree(pos, mass)
        com = (mass[:, None] * pos).sum(axis=0) / mass.sum()
        assert np.allclose(tree.node_com[tree.root], com)

    def test_leaf_perm_is_permutation(self, cluster300):
        pos, _, mass = cluster300
        tree = Octree(pos, mass)
        assert np.array_equal(np.sort(tree.leaf_perm), np.arange(300))

    def test_leaf_size_respected(self, cluster300):
        pos, _, mass = cluster300
        tree = Octree(pos, mass, leaf_size=4)
        leaf_counts = tree.node_leaf_count[tree.node_leaf_start >= 0]
        assert leaf_counts.max() <= 4

    def test_single_particle_tree(self):
        tree = Octree(np.zeros((1, 3)), np.ones(1))
        acc, _ = tree.accelerations(np.array([[1.0, 0, 0]]), theta=0.5, eps=0.0)
        assert np.allclose(acc, [[-1.0, 0, 0]])

    def test_rejects_bad_leaf_size(self):
        with pytest.raises(ConfigurationError):
            Octree(np.zeros((2, 3)), np.ones(2), leaf_size=0)


class TestOctreeForces:
    def test_theta_zero_exact(self, cluster300):
        pos, vel, mass = cluster300
        tree = Octree(pos, mass, vel=vel)
        a_t, j_t = tree.accelerations(
            pos, theta=0.0, eps=0.01, vel_i=vel, exclude_self=np.arange(300)
        )
        a_d, j_d = acc_jerk(pos, vel, pos, vel, mass, 0.01, self_indices=np.arange(300))
        assert np.allclose(a_t, a_d, rtol=1e-12, atol=1e-15)
        assert np.allclose(j_t, j_d, rtol=1e-12, atol=1e-15)

    def test_accuracy_improves_with_smaller_theta(self, cluster300):
        pos, _, mass = cluster300
        a_d, _ = acc_jerk(pos, np.zeros_like(pos), pos, np.zeros_like(pos), mass,
                          0.01, self_indices=np.arange(300))
        errs = []
        for theta in (1.0, 0.5, 0.25):
            tree = Octree(pos, mass)
            a_t, _ = tree.accelerations(pos, theta=theta, eps=0.01,
                                        exclude_self=np.arange(300))
            errs.append(np.median(
                np.linalg.norm(a_t - a_d, axis=1) / np.linalg.norm(a_d, axis=1)
            ))
        assert errs[0] > errs[1] > errs[2]

    def test_opening_reduces_interactions(self, rng):
        """theta=0.7 must evaluate far fewer terms than direct at N=2000."""
        n = 2000
        pos = rng.normal(size=(n, 3)) * 10
        mass = rng.uniform(0.1, 1, n)
        tree = Octree(pos, mass)
        tree.accelerations(pos, theta=0.7, eps=0.01, exclude_self=np.arange(n))
        assert tree.stats.total_interactions < 0.5 * n * n

    def test_negative_theta_rejected(self, cluster300):
        pos, _, mass = cluster300
        tree = Octree(pos, mass)
        with pytest.raises(ConfigurationError):
            tree.accelerations(pos, theta=-1.0, eps=0.0)

    def test_theta_zero_exact_singleton_leaves(self, cluster300):
        """Regression: self-interaction must be excluded when every leaf
        holds exactly one particle (leaf_size=1)."""
        pos, vel, mass = cluster300
        tree = Octree(pos, mass, vel=vel, leaf_size=1)
        a_t, j_t = tree.accelerations(
            pos, theta=0.0, eps=0.01, vel_i=vel, exclude_self=np.arange(300)
        )
        a_d, j_d = acc_jerk(pos, vel, pos, vel, mass, 0.01,
                            self_indices=np.arange(300))
        assert np.allclose(a_t, a_d, rtol=1e-12, atol=1e-15)
        assert np.allclose(j_t, j_d, rtol=1e-12, atol=1e-15)

    def test_zero_mass_nodes_give_finite_jerk(self, rng):
        """Regression: massless subtrees used to produce NaN node
        velocities (0/0) that poisoned the far-field jerk."""
        pos = rng.normal(size=(64, 3)) * 10
        vel = rng.normal(size=(64, 3))
        mass = rng.uniform(0.1, 1, 64)
        mass[32:] = 0.0  # a whole spatial octant can end up massless
        pos[32:, 0] += 100.0
        tree = Octree(pos, mass, vel=vel)
        with np.errstate(invalid="raise", divide="raise"):
            acc, jerk = tree.accelerations(
                pos, theta=0.8, eps=0.01, vel_i=vel,
                exclude_self=np.arange(64),
            )
        assert np.all(np.isfinite(acc))
        assert np.all(np.isfinite(jerk))

    def test_large_theta_does_not_absorb_self_mass(self, cluster300):
        """Regression: for theta > 2/sqrt(3) a node containing the sink
        could pass the MAC and contribute the sink's own mass.  The
        containment guard caps the error at the multipole level."""
        pos, _, mass = cluster300
        a_d, _ = acc_jerk(pos, np.zeros_like(pos), pos, np.zeros_like(pos),
                          mass, 0.01, self_indices=np.arange(300))
        tree = Octree(pos, mass)
        a_t, _ = tree.accelerations(pos, theta=2.5, eps=0.01,
                                    exclude_self=np.arange(300))
        err = np.median(
            np.linalg.norm(a_t - a_d, axis=1) / np.linalg.norm(a_d, axis=1)
        )
        assert err < 0.3  # was ~5.6 with the self-mass leak

    def test_h_i_sphere_excluded_from_force(self, rng):
        """With per-sink radii the tree must drop exactly the pairs
        inside each neighbour sphere (the hybrid's near field)."""
        n = 120
        pos = rng.normal(size=(n, 3)) * 2
        vel = rng.normal(size=(n, 3))
        mass = rng.uniform(0.1, 1, n)
        h = np.full(n, 1.5)
        eps = 0.01
        tree = Octree(pos, mass, vel=vel)
        a_t, _ = tree.accelerations(
            pos, theta=0.0, eps=eps, vel_i=vel,
            exclude_self=np.arange(n), h_i=h,
        )
        dr = pos[None, :, :] - pos[:, None, :]
        dist2 = (dr**2).sum(axis=2)
        keep = dist2 >= h[:, None] ** 2
        np.fill_diagonal(keep, False)
        r2 = dist2 + eps**2
        w = np.where(keep, mass[None, :] / r2**1.5, 0.0)
        a_ref = (w[:, :, None] * dr).sum(axis=1)
        assert np.allclose(a_t, a_ref, rtol=1e-12, atol=1e-15)

    def test_h_i_negative_rejected(self, cluster300):
        pos, _, mass = cluster300
        tree = Octree(pos, mass)
        with pytest.raises(ConfigurationError):
            tree.accelerations(pos, theta=0.5, eps=0.01, h_i=-1.0)


class TestTreeBackend:
    def test_energy_conservation_under_block_steps(self):
        from repro.planetesimal import PlanetesimalDiskConfig, build_disk_system

        sys_ = build_disk_system(PlanetesimalDiskConfig(n_planetesimals=48, seed=21))
        backend = TreeBackend(eps=0.008, theta=0.3)
        sim = Simulation(
            sys_, backend, external_field=KeplerField(),
            timestep_params=TimestepParams(),
        )
        sim.initialize()
        e0 = energy(sim.system, 0.008, sim.external_field).total
        sim.evolve(5.0)
        sim.synchronize(5.0)
        e1 = energy(sim.system, 0.008, sim.external_field).total
        # multipole error dominates; must still be well-behaved
        assert abs(e1 - e0) / abs(e0) < 1e-3
        # one build at init, one more at synchronize unless nothing was pending
        assert backend.builds in (sim.block_steps + 1, sim.block_steps + 2)

    def test_rebuild_count_tracks_blocks(self):
        from repro.planetesimal import PlanetesimalDiskConfig, build_disk_system

        sys_ = build_disk_system(PlanetesimalDiskConfig(n_planetesimals=24, seed=22))
        backend = TreeBackend(eps=0.008, theta=0.5)
        sim = Simulation(sys_, backend, external_field=KeplerField(),
                         timestep_params=TimestepParams())
        sim.initialize()
        builds0 = backend.builds
        sim.evolve(2.0)
        assert backend.builds == builds0 + sim.block_steps


class TestSharedHermite:
    def test_two_body_energy(self):
        s = make_two_body(e=0.3)
        integ = SharedHermite(s, eps=0.0, dt=0.005)
        e0 = energy(s, eps=0.0).total
        integ.evolve(2 * np.pi)
        e1 = energy(s, eps=0.0).total
        assert abs(e1 - e0) / abs(e0) < 1e-10

    def test_matches_block_integrator_at_fixed_dt(self):
        """Shared Hermite and the block driver agree when the block
        driver is forced to a single global step."""
        from repro.core import HostDirectBackend

        s1 = make_random_cluster(16, seed=31)
        s2 = s1.copy()
        dt = 2.0**-6
        shared = SharedHermite(s1, eps=0.05, dt=dt)
        shared.evolve(0.25)

        sim = Simulation(
            s2, HostDirectBackend(eps=0.05),
            timestep_params=TimestepParams(
                eta=1e9, eta_start=1e9, dt_max=dt, dt_min=dt
            ),
        )
        sim.initialize()
        sim.evolve(0.25)
        assert np.allclose(s1.pos, s2.pos, rtol=1e-12, atol=1e-14)

    def test_steps_counted(self):
        s = make_two_body()
        integ = SharedHermite(s, eps=0.0, dt=0.01)
        integ.evolve(0.1)
        assert integ.steps == 10

    def test_rejects_bad_dt(self):
        with pytest.raises(ConfigurationError):
            SharedHermite(make_two_body(), eps=0.0, dt=0.0)


class TestSharedLeapfrog:
    def test_two_body_energy_bounded(self):
        s = make_two_body(e=0.2)
        integ = SharedLeapfrog(s, eps=0.0, dt=0.005)
        e0 = energy(s, eps=0.0).total
        integ.evolve(4 * np.pi)
        e1 = energy(s, eps=0.0).total
        assert abs(e1 - e0) / abs(e0) < 1e-4

    def test_second_order_convergence(self):
        def final_error(dt):
            s = make_two_body(e=0.3)
            e0 = energy(s, eps=0.0).total
            integ = SharedLeapfrog(s, eps=0.0, dt=dt)
            integ.evolve(1.0)
            return abs(energy(s, eps=0.0).total - e0) / abs(e0)

        # energy error of leapfrog scales ~dt^2
        assert final_error(0.01) / final_error(0.005) == pytest.approx(4.0, rel=0.5)

    def test_hermite_beats_leapfrog_at_same_dt(self):
        """Mid-orbit (where the symplectic error oscillation is maximal)
        the 4th-order Hermite energy error is orders of magnitude below
        leapfrog's at the same step size."""

        def err(cls):
            s = make_two_body(e=0.5)
            e0 = energy(s, eps=0.0).total
            integ = cls(s, eps=0.0, dt=0.01)
            integ.evolve(2.5)  # deliberately not a full period
            return abs(energy(s, eps=0.0).total - e0) / abs(e0)

        assert err(SharedHermite) < err(SharedLeapfrog) / 100


class TestHostOnly:
    def test_modelled_time_accumulates(self):
        s = make_random_cluster(32, seed=41)
        backend = HostOnlyBackend(eps=0.05, host_flops=4e8)
        sim = Simulation(s, backend, timestep_params=TimestepParams())
        sim.initialize()
        sim.evolve(0.5)
        expected = backend.counter.force_interactions * 57 / 4e8
        assert backend.modelled_seconds == pytest.approx(expected)
        assert backend.achieved_flops() == pytest.approx(4e8)

    def test_rejects_bad_flops(self):
        with pytest.raises(ConfigurationError):
            HostOnlyBackend(eps=0.0, host_flops=-1)
