"""Tests for the block scheduler."""

import numpy as np
import pytest

from repro.core.scheduler import BlockScheduler, BlockStats
from repro.errors import SchedulerError


class TestNextBlock:
    def test_selects_minimum_time(self):
        s = BlockScheduler()
        t = np.array([0.0, 0.0, 0.0])
        dt = np.array([0.5, 0.25, 1.0])
        t_next, active = s.next_block(t, dt)
        assert t_next == 0.25
        assert np.array_equal(active, [1])

    def test_groups_equal_times(self):
        s = BlockScheduler()
        t = np.array([0.0, 0.25, 0.0, 0.25])
        dt = np.array([0.5, 0.25, 0.5, 0.25])
        t_next, active = s.next_block(t, dt)
        assert t_next == 0.5
        assert np.array_equal(active, [0, 1, 2, 3])

    def test_exact_power_of_two_grouping(self):
        """Times built from power-of-two sums compare exactly equal."""
        s = BlockScheduler()
        t = np.array([0.125 + 0.125 + 0.25, 0.5])  # both exactly 0.5
        dt = np.array([0.25, 0.25])
        _, active = s.next_block(t, dt)
        assert active.size == 2

    def test_raises_on_nonpositive_dt(self):
        s = BlockScheduler()
        with pytest.raises(SchedulerError):
            s.next_block(np.array([0.0]), np.array([0.0]))

    def test_raises_on_nonfinite(self):
        s = BlockScheduler()
        with pytest.raises(SchedulerError):
            s.next_block(np.array([0.0]), np.array([np.inf]))

    def test_peek_does_not_record(self):
        s = BlockScheduler()
        t = np.zeros(3)
        dt = np.array([1.0, 0.5, 0.5])
        assert s.peek_time(t, dt) == 0.5
        assert s.stats.n_blocks == 0


class TestStats:
    def test_record_accumulates(self):
        st = BlockStats()
        for size in [10, 20, 30]:
            st.record(size)
        assert st.n_blocks == 3
        assert st.n_particle_steps == 60
        assert st.mean_block == pytest.approx(20.0)
        assert st.min_block == 10
        assert st.max_block == 30

    def test_median(self):
        st = BlockStats()
        for size in [1, 1, 1, 100]:
            st.record(size)
        assert st.median_block() == 1.0

    def test_empty_stats(self):
        st = BlockStats()
        assert st.mean_block == 0.0
        assert st.median_block() == 0.0

    def test_reset(self):
        st = BlockStats()
        st.record(5)
        st.reset()
        assert st.n_blocks == 0
        assert st.size_counts == {}

    def test_scheduler_stats_integration(self):
        s = BlockScheduler()
        t = np.zeros(4)
        dt = np.array([0.25, 0.25, 0.5, 1.0])
        s.next_block(t, dt)
        assert s.stats.n_blocks == 1
        assert s.stats.mean_block == 2.0

    def test_size_histogram_covers_all_blocks(self):
        st = BlockStats()
        for size in (1, 2, 5, 50, 500, 500):
            st.record(size)
        rows = st.size_histogram(n_bins=4)
        assert sum(c for _, _, c in rows) == 6
        # bins are contiguous and ordered
        for (a1, b1, _), (a2, _, _) in zip(rows, rows[1:]):
            assert a2 == b1 + 1

    def test_size_histogram_empty(self):
        assert BlockStats().size_histogram() == []
