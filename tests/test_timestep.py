"""Tests for timestep criteria and block quantisation."""

import numpy as np
import pytest

from repro.core.timestep import (
    TimestepParams,
    aarseth_dt,
    block_level,
    floor_power_of_two,
    quantize,
    startup_dt,
)
from repro.errors import ConfigurationError


class TestParams:
    def test_defaults_valid(self):
        p = TimestepParams()
        assert p.dt_min < p.dt_max
        assert p.max_level > 0

    def test_rejects_negative_eta(self):
        with pytest.raises(ConfigurationError):
            TimestepParams(eta=-1.0)

    def test_rejects_non_power_of_two_ratio(self):
        with pytest.raises(ConfigurationError):
            TimestepParams(dt_max=1.0, dt_min=0.3)

    def test_rejects_dt_min_above_dt_max(self):
        with pytest.raises(ConfigurationError):
            TimestepParams(dt_max=0.25, dt_min=1.0)

    def test_max_level(self):
        p = TimestepParams(dt_max=1.0, dt_min=2.0**-10)
        assert p.max_level == 10


class TestFloorPowerOfTwo:
    def test_exact_powers_unchanged(self):
        dt = np.array([1.0, 0.5, 0.125, 2.0**-20])
        assert np.array_equal(floor_power_of_two(dt), dt)

    def test_rounds_down(self):
        assert floor_power_of_two(np.array([0.7]))[0] == 0.5
        assert floor_power_of_two(np.array([1.9]))[0] == 1.0
        assert floor_power_of_two(np.array([0.24]))[0] == 0.125

    def test_inf_passthrough(self):
        assert floor_power_of_two(np.array([np.inf]))[0] == np.inf

    def test_zero_stays_zero(self):
        assert floor_power_of_two(np.array([0.0]))[0] == 0.0


class TestBlockLevel:
    def test_levels(self):
        dt = np.array([1.0, 0.5, 0.25, 0.03125])
        assert np.array_equal(block_level(dt, 1.0), [0, 1, 2, 5])


class TestAarseth:
    def test_scale_invariance(self):
        """dt is homogeneous: scaling all derivatives consistently rescales dt."""
        rng = np.random.default_rng(0)
        a = rng.normal(size=(4, 3))
        j = rng.normal(size=(4, 3))
        s = rng.normal(size=(4, 3))
        c = rng.normal(size=(4, 3))
        dt1 = aarseth_dt(a, j, s, c, eta=0.01)
        # scale time by k: a->a, j->j/k, s->s/k^2, c->c/k^3
        k = 2.0
        dt2 = aarseth_dt(a, j / k, s / k**2, c / k**3, eta=0.01)
        assert np.allclose(dt2, k * dt1)

    def test_eta_scaling(self):
        rng = np.random.default_rng(1)
        args = [rng.normal(size=(3, 3)) for _ in range(4)]
        dt1 = aarseth_dt(*args, eta=0.01)
        dt4 = aarseth_dt(*args, eta=0.04)
        assert np.allclose(dt4, 2.0 * dt1)

    def test_degenerate_zero_derivatives_gives_inf(self):
        z = np.zeros((2, 3))
        dt = aarseth_dt(z, z, z, z, eta=0.01)
        assert np.all(np.isinf(dt))

    def test_all_positive(self):
        rng = np.random.default_rng(2)
        args = [rng.normal(size=(10, 3)) for _ in range(4)]
        dt = aarseth_dt(*args, eta=0.02)
        assert np.all(dt > 0)


class TestStartup:
    def test_formula(self):
        a = np.array([[3.0, 0, 0]])
        j = np.array([[0.0, 4.0, 0]])
        dt = startup_dt(a, j, eta_start=0.02)
        assert dt[0] == pytest.approx(0.02 * 3.0 / 4.0)

    def test_zero_jerk_gives_inf(self):
        a = np.array([[1.0, 0, 0]])
        j = np.zeros((1, 3))
        assert np.isinf(startup_dt(a, j, 0.01)[0])


class TestQuantize:
    def setup_method(self):
        self.params = TimestepParams(dt_max=1.0, dt_min=2.0**-16)

    def test_startup_quantisation(self):
        dt = quantize(np.array([0.7, 0.3, np.inf]), np.zeros(3), None, self.params)
        assert np.array_equal(dt, [0.5, 0.25, 1.0])

    def test_clipped_to_dt_min(self):
        dt = quantize(np.array([1e-30]), np.zeros(1), None, self.params)
        assert dt[0] == self.params.dt_min

    def test_clipped_to_dt_max(self):
        dt = quantize(np.array([123.0]), np.zeros(1), None, self.params)
        assert dt[0] == 1.0

    def test_shrink_always_allowed(self):
        dt = quantize(
            np.array([0.1]), np.array([0.375]), np.array([0.25]), self.params
        )
        assert dt[0] == 0.0625

    def test_growth_requires_commensurate_time(self):
        # particle at t=0.375 with dt=0.125 wants 0.5: 0.375/0.25 is not
        # an integer, so the step must stay at 0.125.
        dt = quantize(
            np.array([0.5]), np.array([0.375]), np.array([0.125]), self.params
        )
        assert dt[0] == 0.125

    def test_growth_allowed_on_grid(self):
        # particle at t=0.5 with dt=0.25 may double to 0.5 (0.5/0.5 = 1).
        dt = quantize(
            np.array([0.9]), np.array([0.5]), np.array([0.25]), self.params
        )
        assert dt[0] == 0.5

    def test_growth_is_at_most_doubling(self):
        # even at a commensurate time, a particle cannot jump 0.125 -> 1.0
        dt = quantize(
            np.array([1.0]), np.array([2.0]), np.array([0.125]), self.params
        )
        assert dt[0] == 0.25

    def test_result_is_always_power_of_two_of_dt_max(self):
        rng = np.random.default_rng(3)
        desired = 10.0 ** rng.uniform(-4, 2, size=100)
        dt = quantize(desired, np.zeros(100), None, self.params)
        levels = np.log2(self.params.dt_max / dt)
        assert np.allclose(levels, np.round(levels))
        assert np.all(dt >= self.params.dt_min)
        assert np.all(dt <= self.params.dt_max)
