"""Every example script must at least parse and import cleanly."""

import ast
import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_parses(path):
    tree = ast.parse(path.read_text())
    # every example must be main-guarded (imports must not run the demo)
    guards = [
        node for node in tree.body
        if isinstance(node, ast.If)
        and isinstance(node.test, ast.Compare)
        and getattr(node.test.left, "id", "") == "__name__"
    ]
    assert guards, f"{path.name} lacks an if __name__ == '__main__' guard"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_without_running(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    # examples importing conftest-style helpers need their dir on the path
    sys.path.insert(0, str(path.parent))
    try:
        spec.loader.exec_module(module)
    finally:
        sys.path.pop(0)
    assert hasattr(module, "main")


def test_examples_exist():
    assert len(EXAMPLES) >= 8
