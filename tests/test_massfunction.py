"""Tests for the power-law mass function."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.planetesimal import PowerLawMassFunction


class TestAnalytics:
    def test_mean_mass_uniform_case(self):
        # alpha = 0 (uniform in m): mean is midpoint
        mf = PowerLawMassFunction(0.0, 1.0, 3.0)
        assert mf.mean_mass() == pytest.approx(2.0)

    def test_mean_mass_paper_exponent(self):
        mf = PowerLawMassFunction(-2.5, 2e-12, 4e-10)
        # mean = I(-1.5)/I(-2.5)
        lo, hi = 2e-12, 4e-10
        i1 = (hi**-0.5 - lo**-0.5) / -0.5
        i0 = (hi**-1.5 - lo**-1.5) / -1.5
        assert mf.mean_mass() == pytest.approx(i1 / i0)

    def test_cdf_endpoints(self):
        mf = PowerLawMassFunction(-2.5, 1e-12, 1e-10)
        assert mf.cdf(np.array([1e-12]))[0] == pytest.approx(0.0)
        assert mf.cdf(np.array([1e-10]))[0] == pytest.approx(1.0)

    def test_cdf_monotone(self):
        mf = PowerLawMassFunction(-2.5, 1e-12, 1e-10)
        m = np.geomspace(1e-12, 1e-10, 50)
        assert np.all(np.diff(mf.cdf(m)) >= 0)

    def test_rejects_bad_cutoffs(self):
        with pytest.raises(ConfigurationError):
            PowerLawMassFunction(-2.5, 1e-10, 1e-12)
        with pytest.raises(ConfigurationError):
            PowerLawMassFunction(-2.5, 0.0, 1e-12)


class TestSampling:
    def test_samples_within_cutoffs(self, rng):
        mf = PowerLawMassFunction(-2.5, 2e-12, 4e-10)
        m = mf.sample(5000, rng)
        assert m.min() >= 2e-12
        assert m.max() <= 4e-10

    def test_sample_mean_matches_analytic(self, rng):
        mf = PowerLawMassFunction(-2.5, 1e-12, 1e-10)
        m = mf.sample(200_000, rng)
        assert m.mean() == pytest.approx(mf.mean_mass(), rel=0.02)

    def test_sample_distribution_ks(self, rng):
        """KS test of the sampler against the analytic CDF."""
        from scipy import stats

        mf = PowerLawMassFunction(-2.5, 1e-12, 4e-10)
        m = mf.sample(20_000, rng)
        d, p = stats.kstest(m, lambda x: mf.cdf(x))
        assert p > 1e-3

    def test_log_uniform_special_case(self, rng):
        mf = PowerLawMassFunction(-1.0, 1.0, 100.0)
        m = mf.sample(100_000, rng)
        # log-uniform: median = geometric mean of cutoffs
        assert np.median(m) == pytest.approx(10.0, rel=0.05)

    def test_zero_samples(self, rng):
        mf = PowerLawMassFunction(-2.5, 1e-12, 1e-10)
        assert mf.sample(0, rng).shape == (0,)

    def test_deterministic_with_seed(self):
        mf = PowerLawMassFunction(-2.5, 1e-12, 1e-10)
        m1 = mf.sample(100, np.random.default_rng(7))
        m2 = mf.sample(100, np.random.default_rng(7))
        assert np.array_equal(m1, m2)


class TestScaling:
    def test_scaled_to_total_mass(self, rng):
        mf = PowerLawMassFunction(-2.5, 2e-12, 4e-10)
        target = 1e-4
        n = 5000
        scaled = mf.scaled_to(n, target)
        assert n * scaled.mean_mass() == pytest.approx(target, rel=1e-10)

    def test_scaling_preserves_dynamic_range_and_slope(self):
        mf = PowerLawMassFunction(-2.5, 2e-12, 4e-10)
        scaled = mf.scaled_to(100, 1e-4)
        assert scaled.alpha == mf.alpha
        assert scaled.m_hi / scaled.m_lo == pytest.approx(mf.m_hi / mf.m_lo)

    def test_paper_n_reproduces_paper_cutoffs(self):
        """At the paper's N the scaling factor should be ~1 by design."""
        from repro.constants import PAPER_N_PLANETESIMALS

        mf = PowerLawMassFunction(-2.5, 2e-12, 4e-10)
        total = PAPER_N_PLANETESIMALS * mf.mean_mass()
        scaled = mf.scaled_to(PAPER_N_PLANETESIMALS, total)
        assert scaled.m_lo == pytest.approx(mf.m_lo)
        assert scaled.m_hi == pytest.approx(mf.m_hi)

    def test_rejects_bad_args(self):
        mf = PowerLawMassFunction(-2.5, 2e-12, 4e-10)
        with pytest.raises(ConfigurationError):
            mf.scaled_to(0, 1.0)
        with pytest.raises(ConfigurationError):
            mf.scaled_to(10, -1.0)
