"""Tests for the unified observability subsystem (repro.obs)."""

import json
import time

import pytest

from repro.errors import ConfigurationError, SnapshotError
from repro.obs import (
    NULL_OBS,
    NULL_REGISTRY,
    NULL_TRACER,
    METRIC_CATALOGUE,
    MetricsRegistry,
    Observability,
    Tracer,
    is_declared,
    parse_prometheus,
    render_time_breakdown,
    time_breakdown,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.runio.runlog import read_run_log


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("blockstep.total")
        c.inc()
        c.inc(4)
        assert c.value == 5.0
        assert reg.counter("blockstep.total") is c  # idempotent per name

    def test_counter_cannot_decrease(self):
        c = MetricsRegistry().counter("blockstep.total")
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_gauge_set_inc_dec(self):
        g = MetricsRegistry().gauge("run.wall_seconds")
        g.set(2.0)
        g.inc(1.0)
        g.dec(0.5)
        assert g.value == 2.5

    def test_histogram_summary(self):
        h = MetricsRegistry().histogram("scheduler.block_size")
        for v in (4, 16, 10):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 30.0
        assert h.min == 4.0
        assert h.max == 16.0
        assert h.mean == 10.0

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("blockstep.total")
        with pytest.raises(ConfigurationError):
            reg.gauge("blockstep.total")

    def test_bad_name_rejected(self):
        reg = MetricsRegistry()
        for bad in ("Blocks", "no_dots", "a..b", "blockstep.Total"):
            with pytest.raises(ConfigurationError):
                reg.counter(bad)

    def test_strict_requires_declaration(self):
        reg = MetricsRegistry(strict=True)
        reg.counter("blockstep.total")  # declared
        reg.counter("events.whatever_total")  # dynamic family
        with pytest.raises(ConfigurationError):
            reg.counter("nope.not_declared")

    def test_snapshot_flattens_histograms(self):
        reg = MetricsRegistry()
        reg.counter("blockstep.total").inc(3)
        reg.histogram("scheduler.block_size").observe(8)
        snap = reg.snapshot()
        assert snap["blockstep.total"] == 3.0
        assert snap["scheduler.block_size.count"] == 1.0
        assert snap["scheduler.block_size.sum"] == 8.0

    def test_catalogue_names_are_well_formed(self):
        from repro.obs.catalogue import NAME_RE

        for name in METRIC_CATALOGUE:
            assert NAME_RE.match(name), name
            assert is_declared(name)


class TestNullObjects:
    def test_null_registry_noops(self):
        c = NULL_REGISTRY.counter("anything.at_all")
        c.inc(100)
        assert c.value == 0.0
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.to_prometheus() == ""
        assert len(NULL_REGISTRY) == 0

    def test_null_metrics_are_shared_singletons(self):
        assert NULL_REGISTRY.counter("a.b") is NULL_REGISTRY.counter("c.d")
        assert NULL_REGISTRY.gauge("a.b") is NULL_REGISTRY.gauge("c.d")

    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("x", n=1):
            pass
        NULL_TRACER.model_span("y", 1.0)
        assert list(NULL_TRACER.spans) == []
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")

    def test_null_obs_exports_are_empty_but_valid(self, tmp_path):
        p = NULL_OBS.export_chrome_trace(tmp_path / "t.json")
        doc = json.loads(p.read_text())
        assert all(e["ph"] == "M" for e in doc["traceEvents"])
        assert NULL_OBS.render_time_breakdown() == ""


class TestTracer:
    def test_wall_spans_nest(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner", n=3):
                pass
        inner, outer = tr.spans[0], tr.spans[1]  # children finish first
        assert (inner.name, outer.name) == ("inner", "outer")
        assert inner.depth == 1 and outer.depth == 0
        assert outer.ts_ns <= inner.ts_ns
        assert inner.ts_ns + inner.dur_ns <= outer.ts_ns + outer.dur_ns
        assert inner.attrs == {"n": 3}

    def test_model_spans_lay_out_sequentially(self):
        tr = Tracer()
        tr.model_span("a", 1e-3, children=[("a1", 0.4e-3), ("a2", 0.6e-3)])
        tr.model_span("b", 2e-3)
        a, a1, a2, b = tr.of_track("model")
        assert a.ts_ns == 0 and a.dur_ns == 1_000_000
        assert a1.ts_ns == 0 and a1.dur_ns == 400_000
        assert a2.ts_ns == 400_000
        assert b.ts_ns == 1_000_000  # virtual clock advanced by parent only

    def test_model_children_clamped_to_parent(self):
        tr = Tracer()
        tr.model_span("a", 1e-3, children=[("a1", 0.9e-3), ("a2", 0.9e-3)])
        a, a1, a2 = tr.of_track("model")
        assert a1.dur_ns + a2.dur_ns <= a.dur_ns
        assert a2.ts_ns + a2.dur_ns <= a.ts_ns + a.dur_ns

    def test_total_seconds_sums_by_name(self):
        tr = Tracer()
        tr.model_span("x", 1.0)
        tr.model_span("x", 0.5)
        assert tr.total_seconds("x", track="model") == pytest.approx(1.5)


def _assert_properly_nested(events):
    """Complete events on one tid must be monotonic and properly nested.

    Works in integer nanoseconds, like Chrome/Perfetto importers do
    (they multiply the microsecond floats by 1000 and truncate), so a
    1-ulp float wobble at a sibling boundary is not a false positive.
    """
    spans = sorted(
        (
            (round(e["ts"] * 1000), round(e["dur"] * 1000), e["name"])
            for e in events
        ),
        key=lambda s: (s[0], -s[1]),
    )
    stack = []  # open end-times
    prev_ts = None
    for ts, dur, name in spans:
        if prev_ts is not None:
            assert ts >= prev_ts, "timestamps not monotonic"
        prev_ts = ts
        while stack and ts >= stack[-1]:
            stack.pop()
        if stack:
            assert ts + dur <= stack[-1], (
                f"span {name} overflows its enclosing span"
            )
        stack.append(ts + dur)


class TestExporters:
    def make_traced_obs(self):
        obs = Observability()
        with obs.tracer.span("run"):
            with obs.tracer.span("block_step"):
                with obs.tracer.span("force", n_active=7):
                    time.sleep(0.001)
        obs.tracer.model_span(
            "grape.block_step", 2e-3,
            children=[("grape.pipeline", 1.5e-3), ("grape.host_calc", 0.5e-3)],
        )
        obs.metrics.counter("grape.pipeline_seconds").inc(1.5e-3)
        return obs

    def test_chrome_trace_is_valid_and_nested(self, tmp_path):
        obs = self.make_traced_obs()
        path = write_chrome_trace(obs.tracer, tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["tid"] for e in events} == {1, 2}
        for tid in (1, 2):
            _assert_properly_nested([e for e in events if e["tid"] == tid])
        force = next(e for e in events if e["name"] == "force")
        assert force["args"] == {"n_active": 7}

    def test_spans_jsonl_follows_runlog_conventions(self, tmp_path):
        obs = self.make_traced_obs()
        path = write_spans_jsonl(obs.tracer, tmp_path / "spans.jsonl", run_id="r1")
        records = read_run_log(path)
        assert records[0]["kind"] == "header"
        assert records[0]["run_id"] == "r1"
        assert records[0]["n_spans"] == len(obs.tracer.spans)
        spans = [r for r in records if r["kind"] == "span"]
        assert len(spans) == len(obs.tracer.spans)
        assert {s["track"] for s in spans} == {"wall", "model"}

    def test_prometheus_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("grape.pipeline_seconds").inc(0.25)
        reg.gauge("run.wall_seconds").set(1.5)
        reg.histogram("scheduler.block_size").observe(12)
        path = tmp_path / "m.prom"
        path.write_text(reg.to_prometheus())
        back = parse_prometheus(path)
        assert back["grape_pipeline_seconds"] == 0.25
        assert back["run_wall_seconds"] == 1.5
        assert back["scheduler_block_size_count"] == 1.0
        assert back["scheduler_block_size_sum"] == 12.0

    def test_prometheus_has_help_and_type(self):
        reg = MetricsRegistry()
        reg.counter("grape.pipeline_seconds").inc(1)
        text = reg.to_prometheus()
        assert "# HELP grape_pipeline_seconds" in text
        assert "# TYPE grape_pipeline_seconds counter" in text

    def test_parse_rejects_malformed(self, tmp_path):
        p = tmp_path / "bad.prom"
        p.write_text("a_b 1 2\n")
        with pytest.raises(SnapshotError):
            parse_prometheus(p)
        with pytest.raises(SnapshotError):
            parse_prometheus(tmp_path / "missing.prom")


class TestBreakdown:
    def test_breakdown_from_dotted_and_flat_names(self):
        dotted = {
            "grape.pipeline_seconds": 2.0,
            "grape.host_seconds": 1.0,
            "grape.comm_seconds": 1.0,
            "grape.interactions_total": 1e9,
            "grape.peak_flops": 57e12,
        }
        flat = {k.replace(".", "_"): v for k, v in dotted.items()}
        for metrics in (dotted, flat):
            bd = time_breakdown(metrics)
            assert bd.total_seconds == 4.0
            assert bd.achieved_flops_per_s == pytest.approx(1e9 * 57 / 4.0)
            assert 0 < bd.peak_fraction < 1

    def test_no_grape_time_returns_none(self):
        assert time_breakdown({"run.wall_seconds": 1.0}) is None
        assert render_time_breakdown({}) == ""

    def test_render_contains_paper_terms(self):
        text = render_time_breakdown(
            {
                "grape.pipeline_seconds": 2.0,
                "grape.host_seconds": 1.0,
                "grape.comm_seconds": 1.0,
                "grape.interactions_total": 1e9,
                "grape.peak_flops": 57e12,
            }
        )
        for needle in ("t_pipe", "t_host", "t_comm", "Tflops", "of peak"):
            assert needle in text


class TestPrometheusEscaping:
    def test_escape_help(self):
        from repro.obs import escape_help

        assert escape_help("a\\b\nc") == r"a\\b\nc"
        assert escape_help("plain") == "plain"

    def test_escape_label_value(self):
        from repro.obs import escape_label_value

        assert escape_label_value('say "hi"\\\n') == r'say \"hi\"\\\n'
        assert escape_label_value(42) == "42"

    def test_constant_labels_rendered_and_escaped(self):
        reg = MetricsRegistry()
        reg.counter("blockstep.total").inc(3)
        reg.histogram("blockstep.size").observe(2.0)
        text = reg.to_prometheus(labels={"run_id": 'd"isk\\1', "n": 256})
        # label block on every sample line, keys sorted, values escaped
        assert 'blockstep_total{n="256",run_id="d\\"isk\\\\1"} 3' in text
        assert 'blockstep_size_count{n="256",run_id="d\\"isk\\\\1"} 1' in text
        assert 'blockstep_size_sum{n="256"' in text

    def test_bad_label_name_rejected(self):
        reg = MetricsRegistry()
        reg.counter("blockstep.total")
        with pytest.raises(ConfigurationError):
            reg.to_prometheus(labels={"bad-name": "x"})

    def test_parse_tolerates_label_blocks(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("blockstep.total").inc(7)
        path = tmp_path / "m.prom"
        path.write_text(reg.to_prometheus(labels={"run_id": 'tri"cky}\\'}))
        parsed = parse_prometheus(path)
        assert parsed["blockstep_total"] == 7.0

    def test_unlabelled_round_trip_unchanged(self, tmp_path):
        reg = MetricsRegistry()
        reg.gauge("run.n_particles").set(512)
        path = tmp_path / "m.prom"
        path.write_text(reg.to_prometheus())
        assert parse_prometheus(path)["run_n_particles"] == 512.0

    def test_malformed_line_still_raises(self, tmp_path):
        path = tmp_path / "m.prom"
        path.write_text("ok_metric 1\nthis is } not a sample\n")
        with pytest.raises(SnapshotError):
            parse_prometheus(path)


class TestSpanRoundTrip:
    def make_tracer(self):
        tr = Tracer()
        with tr.span("run"):
            with tr.span("block_step"):
                with tr.span("force"):
                    time.sleep(0.001)
                with tr.span("correct"):
                    pass
        tr.model_span(
            "grape.block_step", 2e-3,
            children=[("grape.pipeline", 1.5e-3), ("grape.host_calc", 0.5e-3)],
        )
        return tr

    def test_jsonl_round_trip_preserves_spans(self, tmp_path):
        from repro.obs import read_spans_jsonl

        tr = self.make_tracer()
        path = write_spans_jsonl(tr, tmp_path / "s.jsonl", run_id="rt")
        log = read_spans_jsonl(path)
        original = sorted(
            (s.name, s.track, s.ts_ns, s.dur_ns, s.depth) for s in tr.spans
        )
        loaded = sorted(
            (s.name, s.track, s.ts_ns, s.dur_ns, s.depth) for s in log.spans
        )
        assert loaded == original

    def test_chrome_round_trip_nesting_and_order(self, tmp_path):
        """JSONL -> SpanLog -> Chrome trace keeps tracks properly nested."""
        from repro.obs import load_spans

        tr = self.make_tracer()
        jsonl = write_spans_jsonl(tr, tmp_path / "s.jsonl")
        log = load_spans(jsonl)
        chrome = write_chrome_trace(log, tmp_path / "t.json")
        events = json.loads(chrome.read_text())["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        for tid in (1, 2):
            _assert_properly_nested([e for e in complete if e["tid"] == tid])

    def test_chrome_reimport_recovers_depth(self, tmp_path):
        from repro.obs import load_spans

        tr = self.make_tracer()
        path = write_chrome_trace(tr, tmp_path / "t.json")
        log = load_spans(path)
        by_name = {s.name: s for s in log.spans}
        assert by_name["run"].depth == 0
        assert by_name["block_step"].depth == 1
        assert by_name["force"].depth == 2
        assert by_name["grape.pipeline"].depth == 1

    def test_load_spans_sniffs_formats(self, tmp_path):
        from repro.obs import load_spans

        tr = self.make_tracer()
        jsonl = write_spans_jsonl(tr, tmp_path / "a.jsonl")
        chrome = write_chrome_trace(tr, tmp_path / "b.json")
        assert len(load_spans(jsonl).spans) == len(tr.spans)
        assert len(load_spans(chrome).spans) == len(tr.spans)

    def test_load_spans_errors(self, tmp_path):
        from repro.obs import load_spans

        with pytest.raises(SnapshotError):
            load_spans(tmp_path / "missing.json")
        empty = tmp_path / "empty.json"
        empty.write_text("   \n")
        with pytest.raises(SnapshotError):
            load_spans(empty)
        garbage = tmp_path / "garbage.json"
        garbage.write_text("not json at all {{{")
        with pytest.raises(SnapshotError):
            load_spans(garbage)

    def test_torn_tail_tolerated(self, tmp_path):
        from repro.obs import read_spans_jsonl

        tr = self.make_tracer()
        path = write_spans_jsonl(tr, tmp_path / "s.jsonl")
        with open(path, "a") as fh:
            fh.write('{"kind": "span", "name": "torn')  # crash mid-write
        log = read_spans_jsonl(path)
        assert len(log.spans) == len(tr.spans)

    def test_malformed_span_record_raises(self, tmp_path):
        from repro.obs import read_spans_jsonl

        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"kind": "header", "run_id": ""}\n'
            '{"kind": "span", "name": "x"}\n'  # missing required fields
        )
        with pytest.raises(SnapshotError):
            read_spans_jsonl(path)
