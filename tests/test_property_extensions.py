"""Property-based tests for the extension subsystems."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.collisions import merge_state
from repro.grape.neighbours import neighbour_search
from repro.parallel import VirtualMachine
from repro.planetesimal.sizes import mass_from_radius, radius_from_mass


class TestMergeProperties:
    @given(
        m1=st.floats(1e-12, 1e-3),
        m2=st.floats(1e-12, 1e-3),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_conservation(self, m1, m2, seed):
        rng = np.random.default_rng(seed)
        p1, p2 = rng.normal(size=3), rng.normal(size=3)
        v1, v2 = rng.normal(size=3), rng.normal(size=3)
        out = merge_state(m1, p1, v1, 1, m2, p2, v2, 2)
        assert np.isclose(out.mass, m1 + m2)
        assert np.allclose(out.mass * out.vel, m1 * v1 + m2 * v2, rtol=1e-12)
        assert np.allclose(out.mass * out.pos, m1 * p1 + m2 * p2, rtol=1e-12)
        assert out.survivor_key in (1, 2)
        assert out.absorbed_key in (1, 2)
        assert out.survivor_key != out.absorbed_key

    @given(m1=st.floats(1e-12, 1e-3), m2=st.floats(1e-12, 1e-3))
    @settings(max_examples=30, deadline=None)
    def test_merged_position_between_progenitors(self, m1, m2):
        p1 = np.array([0.0, 0.0, 0.0])
        p2 = np.array([1.0, 0.0, 0.0])
        out = merge_state(m1, p1, np.zeros(3), 1, m2, p2, np.zeros(3), 2)
        assert 0.0 <= out.pos[0] <= 1.0


class TestSizeProperties:
    @given(m=st.floats(1e-14, 1e-2))
    @settings(max_examples=50, deadline=None)
    def test_radius_mass_roundtrip(self, m):
        r = radius_from_mass(m)
        assert np.isclose(float(mass_from_radius(r)), m, rtol=1e-10)

    @given(m=st.floats(1e-14, 1e-2), factor=st.floats(1.1, 1e3))
    @settings(max_examples=50, deadline=None)
    def test_radius_monotone(self, m, factor):
        assert radius_from_mass(m * factor) > radius_from_mass(m)


class TestNeighbourProperties:
    @given(seed=st.integers(0, 2000), h=st.floats(0.1, 5.0))
    @settings(max_examples=40, deadline=None)
    def test_lists_match_bruteforce(self, seed, h):
        rng = np.random.default_rng(seed)
        n = 15
        pos = rng.normal(size=(n, 3)) * 2
        keys = np.arange(100, 100 + n)
        res = neighbour_search(pos, pos, keys, h=h, exclude_keys=keys)
        for i in range(n):
            d = np.linalg.norm(pos - pos[i], axis=1)
            d[i] = np.inf
            expect = set(keys[d < h].tolist())
            assert set(res.lists[i].tolist()) == expect
            assert res.nearest_key[i] == keys[np.argmin(d)]

    @given(seed=st.integers(0, 2000))
    @settings(max_examples=30, deadline=None)
    def test_nearest_is_in_list_when_within_h(self, seed):
        rng = np.random.default_rng(seed)
        pos = rng.normal(size=(10, 3))
        keys = np.arange(10)
        res = neighbour_search(pos, pos, keys, h=10.0, exclude_keys=keys)
        for i in range(10):
            if res.lists[i].size:
                assert res.nearest_key[i] in res.lists[i]


class TestSpmdProperties:
    @given(
        n_ranks=st.integers(1, 6),
        values=st.lists(st.floats(-100, 100), min_size=6, max_size=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_allreduce_equals_sum(self, n_ranks, values):
        vals = values[:n_ranks]

        def prog(comm):
            got = yield comm.allreduce(vals[comm.rank])
            return got

        res = VirtualMachine(n_ranks).run(prog)
        expect = sum(vals)
        assert all(np.isclose(r, expect) for r in res.returns)

    @given(n_ranks=st.integers(2, 6), seed=st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_ring_rotation_identity(self, n_ranks, seed):
        """Passing a token around the full ring returns it home."""
        rng = np.random.default_rng(seed)
        tokens = rng.integers(0, 1000, n_ranks).tolist()

        def prog(comm):
            token = tokens[comm.rank]
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            for _ in range(comm.size):
                if comm.rank % 2 == 0:
                    yield comm.send(right, token)
                    token = yield comm.recv(left)
                else:
                    incoming = yield comm.recv(left)
                    yield comm.send(right, token)
                    token = incoming
            return token

        res = VirtualMachine(n_ranks).run(prog)
        assert res.returns == tokens

    @given(n_ranks=st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_determinism(self, n_ranks):
        """Two identical runs give identical results and clocks."""

        def prog(comm):
            g = yield comm.allgather(comm.rank * 3)
            s = yield comm.allreduce(float(comm.rank))
            return (tuple(g), s)

        r1 = VirtualMachine(n_ranks).run(prog)
        r2 = VirtualMachine(n_ranks).run(prog)
        assert r1.returns == r2.returns
        assert r1.clock == r2.clock
        assert r1.total_bytes == r2.total_bytes
