"""Tests for mean-motion resonance location."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.planetesimal import (
    Resonance,
    classify_resonant,
    resonance_ladder,
    resonance_semi_major_axis,
)


class TestLocation:
    def test_two_to_one_interior(self):
        # 2:1 interior resonance of a 30 AU perturber: 30 * (1/2)^(2/3)
        a = resonance_semi_major_axis(2, 1, 30.0)
        assert a == pytest.approx(30.0 * 0.5 ** (2 / 3))
        assert a == pytest.approx(18.9, abs=0.05)

    def test_three_to_two(self):
        a = resonance_semi_major_axis(3, 2, 30.0)
        assert a == pytest.approx(30.0 * (2 / 3) ** (2 / 3))

    def test_exterior_resonance_outside(self):
        a = resonance_semi_major_axis(1, 2, 30.0)
        assert a > 30.0
        # Kepler check: period ratio is exactly 2
        assert (a / 30.0) ** 1.5 == pytest.approx(2.0)

    def test_neptune_pluto(self):
        """Pluto sits in Neptune's exterior 2:3 resonance at ~39.4 AU."""
        a = resonance_semi_major_axis(2, 3, 30.07)
        assert a == pytest.approx(39.4, abs=0.2)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            resonance_semi_major_axis(1, 1, 30.0)
        with pytest.raises(ConfigurationError):
            resonance_semi_major_axis(0, 1, 30.0)
        with pytest.raises(ConfigurationError):
            resonance_semi_major_axis(2, 1, -5.0)


class TestLadder:
    def test_sorted_and_deduplicated(self):
        ladder = resonance_ladder(30.0, max_index=4, max_order=2)
        locs = [r.a for r in ladder]
        assert locs == sorted(locs)
        names = [r.name for r in ladder]
        assert len(names) == len(set(names))
        assert "4:2" not in names  # reduces to 2:1

    def test_contains_classics(self):
        ladder = resonance_ladder(30.0, max_index=3, max_order=1)
        names = {r.name for r in ladder}
        assert {"2:1", "3:2", "4:3", "1:2", "2:3", "3:4"} <= names

    def test_interior_exterior_split(self):
        ladder = resonance_ladder(30.0)
        for r in ladder:
            if r.interior:
                assert r.a < 30.0
            else:
                assert r.a > 30.0

    def test_orders(self):
        ladder = resonance_ladder(30.0, max_index=2, max_order=2)
        assert all(r.order in (1, 2) for r in ladder)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            resonance_ladder(30.0, max_index=0)


class TestClassify:
    def test_flags_within_width(self):
        ladder = [Resonance(2, 1, 18.9), Resonance(3, 2, 22.9)]
        a = np.array([18.85, 20.0, 22.95, 35.0])
        out = classify_resonant(a, ladder, width=0.2)
        assert out.tolist() == [0, -1, 1, -1]

    def test_empty_ladder(self):
        out = classify_resonant(np.array([20.0]), [], width=0.2)
        assert out.tolist() == [-1]

    def test_width_validation(self):
        with pytest.raises(ConfigurationError):
            classify_resonant(np.array([20.0]), [Resonance(2, 1, 18.9)], width=0.0)

    def test_nearest_rung_wins(self):
        ladder = [Resonance(2, 1, 18.0), Resonance(3, 2, 19.0)]
        out = classify_resonant(np.array([18.6]), ladder, width=1.0)
        assert out[0] == 1
