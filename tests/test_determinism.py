"""Reproducibility guarantees: same seed, same bits."""

import numpy as np

from conftest import make_disk_sim


class TestDeterminism:
    def test_identical_runs_bitwise(self):
        """Two runs from the same seed produce identical trajectories,
        schedules, and counters — the property that makes regression
        comparisons and restart tests meaningful."""
        sims = [make_disk_sim(n=40, seed=123) for _ in range(2)]
        for sim in sims:
            sim.evolve(8.0)
        a, b = sims
        assert np.array_equal(a.system.pos, b.system.pos)
        assert np.array_equal(a.system.vel, b.system.vel)
        assert np.array_equal(a.system.dt, b.system.dt)
        assert a.block_steps == b.block_steps
        assert a.particle_steps == b.particle_steps
        assert a.scheduler.stats.size_counts == b.scheduler.stats.size_counts

    def test_different_seeds_diverge(self):
        a = make_disk_sim(n=40, seed=1)
        b = make_disk_sim(n=40, seed=2)
        assert not np.array_equal(a.system.pos, b.system.pos)

    def test_ic_generation_isolated_from_global_rng(self):
        """Disk building must not consume or depend on global numpy
        random state."""
        from repro.planetesimal import PlanetesimalDiskConfig, build_disk_system

        np.random.seed(0)
        s1 = build_disk_system(PlanetesimalDiskConfig(n_planetesimals=16, seed=9))
        np.random.seed(999)
        s2 = build_disk_system(PlanetesimalDiskConfig(n_planetesimals=16, seed=9))
        assert np.array_equal(s1.pos, s2.pos)
        assert np.array_equal(s1.mass, s2.mass)
