"""Tests for the production-run driver."""

import numpy as np
import pytest

from repro.core import (
    CollisionPolicy,
    HostDirectBackend,
    KeplerField,
    ParticleSystem,
    Simulation,
    TimestepParams,
)
from repro.errors import ConfigurationError
from repro.grape import Grape6Backend, Grape6Config, Grape6Machine
from repro.runio import ProductionRun, read_run_log

from conftest import make_disk_sim


class TestProductionRun:
    def test_basic_execution(self, tmp_path):
        sim = make_disk_sim(n=32, seed=7)
        run = ProductionRun(
            sim, tmp_path / "r1", snapshot_interval=4.0,
            diagnostics_interval=2.0, run_id="t1",
        )
        report = run.execute(t_end=10.0)
        assert report.t_final == pytest.approx(10.0)
        assert report.block_steps == sim.block_steps
        assert report.snapshots_written >= 2
        assert report.max_energy_error < 1e-7
        assert "production run complete" in report.summary()

    def test_log_contents(self, tmp_path):
        sim = make_disk_sim(n=16, seed=8)
        ProductionRun(
            sim, tmp_path / "r2", snapshot_interval=3.0,
            diagnostics_interval=3.0, run_id="t2",
        ).execute(t_end=9.0)
        records = read_run_log(tmp_path / "r2" / "run.jsonl")
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "header"
        assert "snapshot" in kinds
        assert "sample" in kinds
        assert records[-1].get("note") == "final"

    def test_no_management_options(self, tmp_path):
        """Bare run: just the log header/footer, no snapshots."""
        sim = make_disk_sim(n=16, seed=9)
        report = ProductionRun(sim, tmp_path / "r3").execute(t_end=4.0)
        assert report.snapshots_written == 0
        assert report.escapers_removed == 0

    def test_grape_totals_in_report(self, tmp_path):
        from repro.planetesimal import PlanetesimalDiskConfig, build_disk_system

        system = build_disk_system(PlanetesimalDiskConfig(n_planetesimals=24, seed=10))
        machine = Grape6Machine(Grape6Config.single_node(), eps=0.008, mode="flat")
        sim = Simulation(
            system, Grape6Backend(machine),
            external_field=KeplerField(), timestep_params=TimestepParams(),
        )
        report = ProductionRun(sim, tmp_path / "r4").execute(t_end=4.0)
        assert report.grape_totals is not None
        assert report.grape_totals["blocks"] > 0
        assert "Tflops" in report.summary()

    def test_escaper_pruning(self, tmp_path):
        # a disk plus one runaway particle
        pos = np.array([[20.0, 0, 0], [25.0, 0, 0], [300.0, 0, 0]])
        vel = np.array([
            [0, 1 / np.sqrt(20.0), 0],
            [0, 1 / np.sqrt(25.0), 0],
            [0.5, 0, 0],
        ])
        system = ParticleSystem(np.full(3, 1e-9), pos, vel)
        sim = Simulation(
            system, HostDirectBackend(eps=0.001),
            external_field=KeplerField(), timestep_params=TimestepParams(),
        )
        report = ProductionRun(
            sim, tmp_path / "r5", diagnostics_interval=2.0,
            prune_escapers_beyond=100.0,
        ).execute(t_end=8.0)
        assert report.escapers_removed == 1
        assert report.n_final == 2

    def test_mergers_reported(self, tmp_path):
        rng = np.random.default_rng(4)
        n = 6
        pos = np.array([20.0, 0.0, 0.0]) + 0.01 * rng.normal(size=(n, 3))
        vel = np.tile([0.0, 1 / np.sqrt(20.0), 0.0], (n, 1))
        system = ParticleSystem(np.full(n, 1e-8), pos, vel)
        sim = Simulation(
            system, HostDirectBackend(eps=1e-6),
            external_field=KeplerField(),
            timestep_params=TimestepParams(dt_max=0.25),
            collision_policy=CollisionPolicy(f_enhance=100.0),
        )
        report = ProductionRun(sim, tmp_path / "r6").execute(t_end=20.0)
        assert report.mergers >= 1
        assert report.n_final < n

    def test_invalid_intervals(self, tmp_path):
        sim = make_disk_sim(n=8, seed=11)
        with pytest.raises(ConfigurationError):
            ProductionRun(sim, tmp_path / "x", snapshot_interval=0.0)
        with pytest.raises(ConfigurationError):
            ProductionRun(sim, tmp_path / "x", diagnostics_interval=-1.0)
