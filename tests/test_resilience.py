"""Tests for fault injection, detection and recovery (repro.resilience)."""

import numpy as np
import pytest

from repro.core import KeplerField, Simulation, TimestepParams
from repro.errors import (
    ConfigurationError,
    GrapeError,
    HardwareFaultError,
    SimulationKilled,
)
from repro.grape import Grape6Backend, Grape6Config, Grape6Machine
from repro.obs import Observability
from repro.parallel import CommSimulator, switch_topology
from repro.resilience import (
    EnergyWatchdog,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    force_guard,
    scan_jmem,
)

from conftest import make_random_cluster


def make_machine(obs=None, **kwargs):
    """Hierarchy-mode scaled-down machine (2x2x2x2 = 16 chips)."""
    return Grape6Machine(
        Grape6Config.scaled_down(), eps=0.008, mode="hierarchy",
        obs=obs, **kwargs,
    )


def loaded_machine(n=32, seed=3, obs=None, plan=None, **kwargs):
    """An armed machine with a random cluster resident; returns both."""
    system = make_random_cluster(n, seed=seed)
    machine = make_machine(obs=obs, **kwargs)
    machine.attach_resilience(plan)
    if obs is not None:
        machine.observe(obs)  # re-bind injector/recovery counters
    machine.load(system)
    return machine, system


def reference_forces(machine, system, active, t_now=0.0):
    """Fault-free flat evaluation with the same softening."""
    flat = Grape6Machine(machine.config, eps=machine.eps, mode="flat")
    flat.load(system)
    return flat.compute_block(system, active, t_now)


class TestFaultPlan:
    def test_due_fires_once_with_catchup(self):
        plan = FaultPlan([
            FaultSpec(FaultKind.CHIP_KILL, at_block=2),
            FaultSpec(FaultKind.LINK_DROP, at_block=5),
        ])
        assert plan.due(0) == []
        # index 3 skipped past 2 (recovery re-evaluations can do that)
        fired = plan.due(3)
        assert [s.kind for s in fired] == [FaultKind.CHIP_KILL]
        assert plan.due(3) == []  # one-shot
        assert plan.n_pending == 1
        assert [s.kind for s in plan.due(9)] == [FaultKind.LINK_DROP]
        assert plan.n_pending == 0

    def test_comm_domain_is_separate(self):
        plan = FaultPlan([
            FaultSpec(FaultKind.COMM_DROP, at_block=0),
            FaultSpec(FaultKind.HOST_KILL, at_block=0),
        ])
        assert [s.kind for s in plan.due(0)] == [FaultKind.HOST_KILL]
        assert [s.kind for s in plan.due(0, comm=True)] == [FaultKind.COMM_DROP]

    def test_negative_block_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.CHIP_KILL, at_block=-1)

    def test_random_plan_is_seeded(self):
        kinds = [FaultKind.CHIP_KILL, FaultKind.JMEM_CORRUPT]
        a = FaultPlan.random(kinds, n_faults=5, max_block=100, seed=9)
        b = FaultPlan.random(kinds, n_faults=5, max_block=100, seed=9)
        assert len(a) == 5
        assert [(s.kind, s.at_block) for s in a.specs] == [
            (s.kind, s.at_block) for s in b.specs
        ]
        with pytest.raises(ConfigurationError):
            FaultPlan.random([], n_faults=1, max_block=10)


class TestHardwareFaults:
    """Injection + detection + recovery on the hierarchy machine."""

    def test_chip_kill_detected_and_recovered(self):
        obs = Observability()
        plan = FaultPlan([FaultSpec(FaultKind.CHIP_KILL, at_block=0)])
        machine, system = loaded_machine(obs=obs, plan=plan)
        active = np.arange(system.n)
        acc, jerk = machine.compute_block(system, active, 0.0)

        ref_acc, ref_jerk = reference_forces(machine, system, active)
        assert np.allclose(acc, ref_acc)
        assert np.allclose(jerk, ref_jerk)
        dead = [c for *_, c in machine.iter_chips() if c.pipelines.is_dead]
        assert len(dead) == 1
        m = obs.metrics
        assert m.counter("faults.injected_total").value == 1
        assert m.counter("faults.detected_total").value == 1
        assert m.counter("faults.recovered_total").value == 1
        assert m.counter("recovery.reloads_total").value >= 1
        assert m.gauge("faults.masked_chips").value == 1
        assert m.counter("recovery.seconds").value > 0

    def test_jmem_corrupt_caught_by_force_guard(self):
        obs = Observability()
        plan = FaultPlan([
            FaultSpec(FaultKind.JMEM_CORRUPT, at_block=0, params={"count": 1}),
        ])
        machine, system = loaded_machine(obs=obs, plan=plan)
        assert scan_jmem(machine) == []  # clean before injection
        active = np.arange(system.n)
        acc, jerk = machine.compute_block(system, active, 0.0)
        assert np.all(np.isfinite(acc)) and np.all(np.isfinite(jerk))
        ref_acc, _ = reference_forces(machine, system, active)
        assert np.allclose(acc, ref_acc)
        # the reload rewrote the poisoned words from the host master copy
        assert scan_jmem(machine) == []
        assert obs.metrics.counter("faults.detected_total").value == 1
        assert obs.metrics.counter("recovery.reloads_total").value >= 1

    def test_board_kill_masks_whole_board(self):
        obs = Observability()
        plan = FaultPlan([FaultSpec(FaultKind.BOARD_KILL, at_block=0)])
        machine, system = loaded_machine(obs=obs, plan=plan)
        acc, _ = machine.compute_block(system, np.arange(system.n), 0.0)
        assert np.all(np.isfinite(acc))
        cfg = machine.config
        assert obs.metrics.gauge("faults.masked_chips").value == cfg.chips_per_board
        assert any(not b.alive_chips() for *_, b in machine.iter_boards())

    def test_pipeline_mask_degrades_without_killing(self):
        plan = FaultPlan([
            FaultSpec(
                FaultKind.PIPELINE_MASK, at_block=0,
                target=(0, 0, 0, 0), params={"n_pipelines": 2},
            ),
        ])
        machine, system = loaded_machine(plan=plan)
        machine.compute_block(system, np.arange(system.n), 0.0)
        pipes = machine.clusters[0].nodes[0].boards[0].chips[0].pipelines
        assert pipes.active_pipelines == pipes.n_pipelines - 2
        assert not pipes.is_dead

    def test_targeted_chip_kill(self):
        plan = FaultPlan([
            FaultSpec(FaultKind.CHIP_KILL, at_block=0, target=(1, 0, 1, 1)),
        ])
        machine, system = loaded_machine(plan=plan)
        machine.compute_block(system, np.arange(system.n), 0.0)
        chip = machine.clusters[1].nodes[0].boards[1].chips[1]
        assert chip.pipelines.is_dead

    def test_hardware_kinds_are_noops_in_flat_mode(self):
        obs = Observability()
        plan = FaultPlan([
            FaultSpec(FaultKind.CHIP_KILL, at_block=0),
            FaultSpec(FaultKind.JMEM_CORRUPT, at_block=0),
            FaultSpec(FaultKind.BOARD_KILL, at_block=0),
        ])
        system = make_random_cluster(16, seed=1)
        machine = Grape6Machine(
            Grape6Config.scaled_down(), eps=0.008, mode="flat", obs=obs
        )
        machine.attach_resilience(plan)
        machine.observe(obs)
        machine.load(system)
        acc, _ = machine.compute_block(system, np.arange(16), 0.0)
        assert np.all(np.isfinite(acc))
        assert obs.metrics.counter("faults.injected_total").value == 0

    def test_host_only_fallback_when_capacity_exhausted(self):
        """Killing a chip on a nearly-full machine degrades to the host
        kernel permanently rather than aborting."""
        obs = Observability()
        plan = FaultPlan([FaultSpec(FaultKind.CHIP_KILL, at_block=0)])
        machine, system = loaded_machine(
            n=15, obs=obs, plan=plan, jmem_capacity_per_chip=2
        )
        active = np.arange(system.n)
        acc, jerk = machine.compute_block(system, active, 0.0)
        assert machine.recovery.host_only
        assert obs.metrics.counter("recovery.host_fallback_total").value == 1
        assert obs.metrics.counter("faults.recovered_total").value == 1
        ref_acc, ref_jerk = reference_forces(machine, system, active)
        assert np.allclose(acc, ref_acc)
        # subsequent blocks and reloads stay on the host path
        machine.load(system)
        acc2, _ = machine.compute_block(system, active, 0.0)
        assert np.allclose(acc2, ref_acc)


class TestLinkFaults:
    def _run_block(self, plan):
        machine, system = loaded_machine(n=16, plan=plan)
        machine.compute_block(system, np.arange(16), 0.0)
        return machine

    def test_link_drop_charges_retransmits(self):
        obs = Observability()
        plan = FaultPlan([
            FaultSpec(
                FaultKind.LINK_DROP, at_block=0,
                params={"component": "lvds", "count": 3},
            ),
        ])
        machine, system = loaded_machine(n=16, obs=obs, plan=plan)
        clean = self._run_block(None)
        machine.compute_block(system, np.arange(16), 0.0)
        assert machine.totals.lvds > clean.totals.lvds
        assert machine.totals.blocks == clean.totals.blocks  # overhead only
        m = obs.metrics
        assert m.counter("faults.link_retransmits_total").value == 3
        assert m.counter("faults.injected_total").value == 1

    def test_link_delay_stretches_component(self):
        plan = FaultPlan([
            FaultSpec(
                FaultKind.LINK_DELAY, at_block=0,
                params={"component": "pci", "factor": 8.0},
            ),
        ])
        clean = self._run_block(None)
        machine = self._run_block(plan)
        assert machine.totals.pci > clean.totals.pci
        assert machine.totals.lvds == pytest.approx(clean.totals.lvds)

    def test_unknown_component_rejected(self):
        inj = FaultInjector(None)
        spec = FaultSpec(
            FaultKind.LINK_DROP, at_block=0, params={"component": "warp"}
        )
        with pytest.raises(ConfigurationError):
            inj._inject_link_drop(spec)


class TestCommFaults:
    def test_comm_drop_retransmits_phase(self):
        obs = Observability()
        plan = FaultPlan([
            FaultSpec(FaultKind.COMM_DROP, at_block=0, params={"count": 2}),
        ])
        inj = FaultInjector(plan, obs=obs)
        topo = switch_topology(4)
        clean = CommSimulator(topo).broadcast("h0", 4096)
        comm = CommSimulator(topo, obs=obs, injector=inj)
        report = comm.broadcast("h0", 4096)
        assert report.seconds > clean.seconds
        assert comm.retransmits == 2
        assert obs.metrics.counter("comm.retransmits_total").value == 2
        # the next phase is clean again (one-shot)
        assert comm.broadcast("h0", 4096).seconds == pytest.approx(clean.seconds)


class TestHostKill:
    def test_host_kill_raises_through_recovery(self):
        """SimulationKilled is not a GrapeError: recovery must not eat it."""
        obs = Observability()
        plan = FaultPlan([FaultSpec(FaultKind.HOST_KILL, at_block=0)])
        machine, system = loaded_machine(obs=obs, plan=plan)
        with pytest.raises(SimulationKilled):
            machine.compute_block(system, np.arange(system.n), 0.0)
        assert not isinstance(SimulationKilled("x"), GrapeError)
        assert obs.metrics.counter("faults.detected_total").value == 0


class TestDetection:
    def test_force_guard_passes_clean(self):
        force_guard(np.ones((4, 3)), np.zeros((4, 3)))

    def test_force_guard_catches_nan_and_overflow(self):
        bad = np.ones((4, 3))
        bad[2, 1] = np.nan
        with pytest.raises(HardwareFaultError):
            force_guard(bad, np.zeros((4, 3)))
        with pytest.raises(HardwareFaultError):
            force_guard(np.ones((4, 3)), np.full((4, 3), 1e31))

    def test_scan_jmem_locates_corruption(self):
        machine, system = loaded_machine(n=16)
        chip = machine.clusters[1].nodes[1].boards[0].chips[1]
        chip.jmem.pos[0] = np.nan
        assert scan_jmem(machine) == [(1, 1, 0, 1)]

    def test_energy_watchdog(self):
        obs = Observability()
        dog = EnergyWatchdog(1e-6, obs=obs)
        assert not dog.check(1e-8)
        assert dog.check(1e-3)
        assert obs.metrics.counter("faults.watchdog_trips_total").value == 1


class TestSelfTestSweep:
    def test_sweep_restores_j_memory(self):
        obs = Observability()
        machine, system = loaded_machine(obs=obs)
        report = machine.recovery.selftest_sweep(system)
        assert report is not None and report.all_ok
        # the sweep clobbered j-memory with test vectors, then reloaded
        active = np.arange(system.n)
        acc, _ = machine.compute_block(system, active, 0.0)
        ref_acc, _ = reference_forces(machine, system, active)
        assert np.allclose(acc, ref_acc)
        assert obs.metrics.counter("recovery.selftest_sweeps_total").value == 1

    def test_sweep_is_none_in_flat_mode(self):
        system = make_random_cluster(8)
        machine = Grape6Machine(Grape6Config.scaled_down(), eps=0.008, mode="flat")
        machine.attach_resilience()
        machine.load(system)
        assert machine.recovery.selftest_sweep(system) is None


class TestChaosRun:
    """Acceptance: a seeded multi-fault run survives via recovery and
    checkpoint-restart with energy accounting close to fault-free."""

    def _production(self, machine, tmp_path, name, obs=None, **kwargs):
        from repro.planetesimal import PlanetesimalDiskConfig, build_disk_system
        from repro.runio import ProductionRun

        system = build_disk_system(
            PlanetesimalDiskConfig(n_planetesimals=24, seed=6)
        )
        sim = Simulation(
            system,
            Grape6Backend(machine),
            external_field=KeplerField(),
            timestep_params=TimestepParams(eta=0.02, dt_max=0.25),
            obs=obs,
        )
        return ProductionRun(sim, tmp_path / name, **kwargs)

    def test_chaos_run_completes_via_recovery_and_resume(self, tmp_path):
        from repro.runio import ProductionRun

        baseline = self._production(
            make_machine(), tmp_path, "base"
        ).execute(t_end=4.0)

        obs = Observability()
        plan = FaultPlan(
            [
                FaultSpec(FaultKind.JMEM_CORRUPT, at_block=2),
                FaultSpec(FaultKind.CHIP_KILL, at_block=5),
                FaultSpec(
                    FaultKind.LINK_DROP, at_block=8,
                    params={"component": "lvds", "count": 2},
                ),
                FaultSpec(FaultKind.HOST_KILL, at_block=14),
            ],
            seed=11,
        )
        machine = make_machine(obs=obs)
        machine.attach_resilience(plan)
        machine.observe(obs)
        run = self._production(
            machine, tmp_path, "chaos", obs=obs, checkpoint_interval=4
        )
        with pytest.raises(SimulationKilled):
            run.execute(t_end=4.0)
        assert run.checkpoints_written >= 1
        m = obs.metrics
        assert m.counter("faults.injected_total").value >= 3
        assert m.counter("faults.recovered_total").value >= 1
        assert m.counter("checkpoint.writes_total").value >= 1

        # restart on fresh (repaired) hardware from the latest checkpoint
        machine2 = make_machine()
        machine2.attach_resilience()
        run2 = ProductionRun.resume(
            tmp_path / "chaos",
            Grape6Backend(machine2),
            external_field=KeplerField(),
            timestep_params=TimestepParams(eta=0.02, dt_max=0.25),
        )
        report = run2.execute()
        assert report.t_final == pytest.approx(4.0)
        assert report.max_energy_error <= 10.0 * baseline.max_energy_error + 1e-12
