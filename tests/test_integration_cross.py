"""Cross-subsystem integration tests: features working together."""

import numpy as np
import pytest

from repro.core import (
    CollisionPolicy,
    HostDirectBackend,
    KeplerField,
    ParticleSystem,
    Simulation,
    TimestepParams,
    energy,
)
from repro.grape import Grape6Backend, Grape6Config, Grape6Machine


def colliding_cluster(n=6, seed=4):
    rng = np.random.default_rng(seed)
    pos = np.array([20.0, 0.0, 0.0]) + 0.01 * rng.normal(size=(n, 3))
    v = 1.0 / np.sqrt(20.0)
    vel = np.tile([0.0, v, 0.0], (n, 1))
    return ParticleSystem(np.full(n, 1e-8), pos, vel)


class TestCollisionsOnGrape:
    @pytest.mark.parametrize("mode", ["flat", "hierarchy"])
    def test_merging_with_grape_backend(self, mode):
        """Mergers force a j-memory reload; both machine modes survive."""
        system = colliding_cluster()
        machine = Grape6Machine(Grape6Config.scaled_down(), eps=1e-6, mode=mode)
        sim = Simulation(
            system,
            Grape6Backend(machine),
            external_field=KeplerField(),
            timestep_params=TimestepParams(dt_max=0.25),
            collision_policy=CollisionPolicy(f_enhance=100.0),
        )
        sim.initialize()
        m0 = sim.system.total_mass()
        sim.evolve(20.0)
        assert sim.mergers >= 1
        assert sim.system.total_mass() == pytest.approx(m0)
        sim.system.validate()

    def test_grape_and_host_agree_on_mergers(self):
        """Flat-GRAPE and host backends produce the same merger history."""
        runs = {}
        for name, make_backend in (
            ("host", lambda: HostDirectBackend(eps=1e-6)),
            ("grape", lambda: Grape6Backend(
                Grape6Machine(Grape6Config.single_board(), eps=1e-6, mode="flat")
            )),
        ):
            sim = Simulation(
                colliding_cluster(),
                make_backend(),
                external_field=KeplerField(),
                timestep_params=TimestepParams(dt_max=0.25),
                collision_policy=CollisionPolicy(f_enhance=100.0),
            )
            sim.initialize()
            sim.evolve(20.0)
            runs[name] = sim
        assert runs["host"].mergers == runs["grape"].mergers
        assert runs["host"].system.n == runs["grape"].system.n
        assert np.array_equal(
            np.sort(runs["host"].system.key), np.sort(runs["grape"].system.key)
        )


class TestIteratedCorrectorOnGrape:
    def test_pec2_on_grape_backend(self):
        from repro.planetesimal import PlanetesimalDiskConfig, build_disk_system

        system = build_disk_system(PlanetesimalDiskConfig(n_planetesimals=24, seed=9))
        machine = Grape6Machine(Grape6Config.single_node(), eps=0.008, mode="flat")
        sim = Simulation(
            system,
            Grape6Backend(machine),
            external_field=KeplerField(),
            timestep_params=TimestepParams(),
            corrector_iterations=2,
        )
        sim.initialize()
        e0 = energy(sim.system, 0.008, sim.external_field).total
        sim.evolve(5.0)
        sim.synchronize(5.0)
        e1 = energy(sim.system, 0.008, sim.external_field).total
        assert abs(e1 - e0) / abs(e0) < 1e-8
        # each block evaluates forces twice
        assert machine.totals.blocks >= 2 * sim.block_steps


class TestNeighboursForCollisionScreening:
    def test_hardware_neighbour_query_finds_colliding_pair(self):
        """The GRAPE neighbour list can drive collision screening."""
        system = colliding_cluster()
        machine = Grape6Machine(Grape6Config.scaled_down(), eps=1e-6, mode="hierarchy")
        backend = Grape6Backend(machine)
        backend.load(system)
        # query at the clump scale: every member sees the whole clump
        res = machine.neighbours_of(system, np.arange(system.n), 0.0, h=0.1)
        assert all(lst.size >= 1 for lst in res.lists)
        assert np.all(res.nearest_dist < 0.1)
        # screening: checking only listed pairs finds the same overlaps
        # an all-pairs sweep would
        from repro.core import find_collision_pairs

        policy = CollisionPolicy(f_enhance=100.0)
        radii = policy.radii(system.mass)
        pairs_full = set(
            find_collision_pairs(system.pos, radii, np.arange(system.n))
        )
        key_to_row = {int(k): r for r, k in enumerate(system.key)}
        pairs_screened = set()
        for i, lst in enumerate(res.lists):
            for k in lst:
                j = key_to_row[int(k)]
                d = float(np.linalg.norm(system.pos[i] - system.pos[j]))
                if d < radii[i] + radii[j]:
                    pairs_screened.add((min(i, j), max(i, j)))
        assert pairs_screened == pairs_full
