"""Tests for close-encounter / timescale measurement."""

import numpy as np
import pytest

from repro.core import (
    ParticleSystem,
    TimescaleCensus,
    encounter_timescale,
    measure_timescales,
)
from repro.errors import ConfigurationError


class TestEncounterTimescale:
    def test_formula(self):
        # d=1, m=1: t = 1
        assert encounter_timescale(1.0, 1.0) == pytest.approx(1.0)
        # scales as d^(3/2)
        assert encounter_timescale(4.0, 1.0) == pytest.approx(8.0)
        # scales as m^(-1/2)
        assert encounter_timescale(1.0, 4.0) == pytest.approx(0.5)

    def test_vectorised(self):
        t = encounter_timescale(np.array([1.0, 4.0]), np.array([1.0, 1.0]))
        assert np.allclose(t, [1.0, 8.0])

    def test_rejects_nonpositive_mass(self):
        with pytest.raises(ConfigurationError):
            encounter_timescale(1.0, 0.0)

    def test_paper_contact_encounter_is_hours(self):
        """Two smallest paper planetesimals touching: ~1 hour."""
        from repro.constants import PAPER_MASS_LO
        from repro.planetesimal import radius_from_mass
        from repro.units import code_to_years

        d = 2 * float(radius_from_mass(PAPER_MASS_LO))
        t = encounter_timescale(d, 2 * PAPER_MASS_LO)
        hours = float(code_to_years(t)) * 365.25 * 24
        assert 0.2 < hours < 10.0


class TestCensus:
    def make_system(self):
        # three particles: a close pair and a distant one
        pos = np.array([[20.0, 0, 0], [20.0, 0.01, 0], [30.0, 0, 0]])
        vel = np.zeros((3, 3))
        s = ParticleSystem(np.array([1e-8, 1e-8, 1e-8]), pos, vel)
        s.dt[:] = [0.25, 0.25, 2.0]
        return s

    def test_census_fields(self):
        c = measure_timescales(self.make_system())
        assert isinstance(c, TimescaleCensus)
        assert c.closest_approach == pytest.approx(0.01)
        assert c.dt_min == 0.25
        assert c.dt_max == 2.0
        assert c.dt_dynamic_range == 8.0

    def test_encounter_uses_pair_mass(self):
        c = measure_timescales(self.make_system())
        expected = encounter_timescale(0.01, 2e-8)
        assert c.t_encounter_min == pytest.approx(float(expected))

    def test_physical_range_positive(self):
        c = measure_timescales(self.make_system())
        assert c.physical_dynamic_range > 0

    def test_single_particle_rejected(self):
        s = ParticleSystem(np.ones(1), np.zeros((1, 3)) + 20, np.zeros((1, 3)))
        with pytest.raises(ConfigurationError):
            measure_timescales(s)

    def test_chunked_sweep_consistency(self):
        """The O(N^2) sweep gives the same answer regardless of chunking."""
        import repro.core.forces as forces

        rng = np.random.default_rng(3)
        s = ParticleSystem(
            np.full(40, 1e-9), rng.normal(size=(40, 3)) * 5 + 25,
            np.zeros((40, 3)),
        )
        s.dt[:] = 1.0
        c1 = measure_timescales(s)
        old = forces._TILE_BUDGET
        try:
            forces._TILE_BUDGET = 64
            c2 = measure_timescales(s)
        finally:
            forces._TILE_BUDGET = old
        assert c1.closest_approach == pytest.approx(c2.closest_approach)
        assert c1.t_encounter_min == pytest.approx(c2.t_encounter_min)
