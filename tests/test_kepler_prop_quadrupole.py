"""Tests for analytic Kepler propagation, tree quadrupoles, escaper removal."""

import numpy as np
import pytest

from repro.baselines import Octree
from repro.core import HostDirectBackend, KeplerField, ParticleSystem, Simulation, TimestepParams
from repro.core.forces import acc_jerk
from repro.errors import ConfigurationError, IntegrationError
from repro.planetesimal import (
    OrbitalElements,
    elements_to_cartesian,
    propagate_kepler,
)


class TestPropagateKepler:
    def test_circular_orbit_quarter_turn(self):
        pos = np.array([[1.0, 0.0, 0.0]])
        vel = np.array([[0.0, 1.0, 0.0]])
        p2, v2 = propagate_kepler(pos, vel, dt=np.pi / 2)
        assert np.allclose(p2, [[0.0, 1.0, 0.0]], atol=1e-12)
        assert np.allclose(v2, [[-1.0, 0.0, 0.0]], atol=1e-12)

    def test_full_period_identity(self):
        el = OrbitalElements(*[np.array([v]) for v in (2.0, 0.4, 0.2, 1.0, 0.5, 0.3)])
        pos, vel = elements_to_cartesian(el)
        period = 2 * np.pi * 2.0**1.5
        p2, v2 = propagate_kepler(pos, vel, dt=period)
        assert np.allclose(p2, pos, atol=1e-10)
        assert np.allclose(v2, vel, atol=1e-10)

    def test_energy_invariant(self, rng):
        n = 20
        el = OrbitalElements(
            a=rng.uniform(1, 30, n), e=rng.uniform(0, 0.8, n),
            inc=rng.uniform(0, 0.5, n), Omega=rng.uniform(0, 6, n),
            omega=rng.uniform(0, 6, n), M=rng.uniform(0, 6, n),
        )
        pos, vel = elements_to_cartesian(el)
        p2, v2 = propagate_kepler(pos, vel, dt=123.456)
        e1 = 0.5 * np.einsum("ij,ij->i", vel, vel) - 1.0 / np.linalg.norm(pos, axis=1)
        e2 = 0.5 * np.einsum("ij,ij->i", v2, v2) - 1.0 / np.linalg.norm(p2, axis=1)
        assert np.allclose(e1, e2, rtol=1e-10)

    def test_hyperbolic_rejected(self):
        pos = np.array([[10.0, 0, 0]])
        vel = np.array([[1.0, 0, 0]])
        with pytest.raises(ConfigurationError):
            propagate_kepler(pos, vel, dt=1.0)

    def test_integrator_matches_analytic(self):
        """The Hermite integrator in a pure solar field tracks the
        analytic ellipse to truncation accuracy."""
        el = OrbitalElements(*[np.array([v]) for v in (20.0, 0.3, 0.1, 0.0, 0.0, 0.0)])
        pos, vel = elements_to_cartesian(el)
        # a nearly massless particle: mutual forces negligible
        s = ParticleSystem(np.array([1e-14]), pos, vel)
        sim = Simulation(
            s, HostDirectBackend(eps=0.0), external_field=KeplerField(),
            timestep_params=TimestepParams(eta=0.01, eta_start=0.005, dt_max=1.0),
        )
        sim.initialize()
        t_end = 64.0
        sim.evolve(t_end)
        sim.synchronize(t_end)
        p_ref, v_ref = propagate_kepler(pos, vel, dt=t_end)
        assert np.allclose(sim.system.pos, p_ref, atol=1e-6)
        assert np.allclose(sim.system.vel, v_ref, atol=1e-7)


class TestQuadrupole:
    @pytest.fixture
    def blob(self, rng):
        n = 400
        pos = rng.normal(size=(n, 3)) * 10
        mass = rng.uniform(0.1, 1, n)
        return pos, mass

    def test_quadrupole_beats_monopole(self, blob):
        pos, mass = blob
        n = len(pos)
        z = np.zeros_like(pos)
        a_d, _ = acc_jerk(pos, z, pos, z, mass, 0.01, self_indices=np.arange(n))

        def med_err(quad):
            tree = Octree(pos, mass, quadrupole=quad)
            # pin the per-sink MAC: the grouped walk's conservative
            # group-radius acceptance degenerates to (exact) direct
            # summation at this small N, leaving no approximation error
            # for the quadrupole to improve on
            a_t, _ = tree.accelerations(pos, theta=0.6, eps=0.01,
                                        exclude_self=np.arange(n),
                                        walk="persink")
            return np.median(
                np.linalg.norm(a_t - a_d, axis=1) / np.linalg.norm(a_d, axis=1)
            )

        assert med_err(True) < 0.7 * med_err(False)

    def test_quadrupole_exact_at_theta_zero(self, blob):
        pos, mass = blob
        n = len(pos)
        z = np.zeros_like(pos)
        a_d, _ = acc_jerk(pos, z, pos, z, mass, 0.01, self_indices=np.arange(n))
        tree = Octree(pos, mass, quadrupole=True)
        a_t, _ = tree.accelerations(pos, theta=0.0, eps=0.01,
                                    exclude_self=np.arange(n))
        assert np.allclose(a_t, a_d, rtol=1e-12, atol=1e-15)

    def test_node_quadrupole_traceless(self, blob):
        pos, mass = blob
        tree = Octree(pos, mass, quadrupole=True)
        traces = np.trace(tree.node_quad, axis1=1, axis2=2)
        scale = np.abs(tree.node_quad).max() + 1e-300
        assert np.all(np.abs(traces) < 1e-9 * scale)

    def test_single_particle_node_zero_quad(self):
        tree = Octree(np.zeros((1, 3)), np.ones(1), quadrupole=True)
        assert np.allclose(tree.node_quad[tree.root], 0.0)


class TestRemoveEscapers:
    def make_sim(self):
        # one bound ring particle + one hyperbolic runaway far out
        pos = np.array([[20.0, 0, 0], [80.0, 0, 0], [25.0, 0, 0]])
        vel = np.array([
            [0.0, 1 / np.sqrt(20.0), 0],
            [0.4, 0.0, 0],  # v >> v_esc(80) = 0.158
            [0.0, 1 / np.sqrt(25.0), 0],
        ])
        s = ParticleSystem(np.full(3, 1e-9), pos, vel)
        sim = Simulation(s, HostDirectBackend(eps=0.001),
                         external_field=KeplerField(),
                         timestep_params=TimestepParams())
        sim.initialize()
        return sim

    def test_removes_and_logs(self):
        sim = self.make_sim()
        removed = sim.remove_escapers(r_min=50.0)
        assert removed == 1
        assert sim.system.n == 2
        assert sim.events.count("escape") == 1
        assert sim.events.of_kind("escape")[0].key == 1

    def test_noop_when_none(self):
        sim = self.make_sim()
        assert sim.remove_escapers(r_min=500.0) == 0
        assert sim.system.n == 3

    def test_integration_continues_after_removal(self):
        sim = self.make_sim()
        sim.evolve(5.0)
        sim.remove_escapers(r_min=50.0)
        sim.evolve(10.0)
        sim.system.validate()

    def test_refuses_to_empty_system(self):
        pos = np.array([[80.0, 0, 0]])
        vel = np.array([[0.4, 0, 0]])
        s = ParticleSystem(np.array([1e-9]), pos, vel)
        sim = Simulation(s, HostDirectBackend(eps=0.001),
                         external_field=KeplerField())
        sim.initialize()
        with pytest.raises(IntegrationError):
            sim.remove_escapers(r_min=50.0)

    def test_requires_initialize(self):
        pos = np.array([[20.0, 0, 0]])
        s = ParticleSystem(np.array([1e-9]), pos, np.zeros((1, 3)))
        sim = Simulation(s, HostDirectBackend(eps=0.001))
        with pytest.raises(IntegrationError):
            sim.remove_escapers()
