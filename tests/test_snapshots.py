"""Tests for snapshot round-tripping."""

import numpy as np
import pytest

from repro.core import load_snapshot, save_snapshot
from repro.errors import SnapshotError

from conftest import make_disk_sim, make_random_cluster


class TestRoundTrip:
    def test_bit_identical_arrays(self, tmp_path):
        s = make_random_cluster(20, seed=4)
        s.acc[:] = np.random.default_rng(1).normal(size=(20, 3))
        s.dt[:] = 0.125
        path = save_snapshot(tmp_path / "snap", s, {"run": "test"})
        loaded, meta = load_snapshot(path)
        for name in ("mass", "pos", "vel", "acc", "jerk", "t", "dt", "key"):
            assert np.array_equal(getattr(loaded, name), getattr(s, name)), name
        assert meta == {"run": "test"}

    def test_suffix_enforced(self, tmp_path):
        s = make_random_cluster(4)
        path = save_snapshot(tmp_path / "state", s)
        assert path.suffix == ".npz"

    def test_metadata_optional(self, tmp_path):
        s = make_random_cluster(4)
        path = save_snapshot(tmp_path / "s.npz", s)
        _, meta = load_snapshot(path)
        assert meta == {}

    def test_restart_continues_identically(self, tmp_path):
        """A saved+reloaded simulation reproduces the original run."""
        from repro.core import HostDirectBackend, KeplerField, Simulation, TimestepParams

        sim = make_disk_sim(n=24, seed=20)
        sim.evolve(2.0)
        sim.synchronize(2.0)
        path = save_snapshot(tmp_path / "restart", sim.system)

        # continue the original
        sim.evolve(4.0)
        sim.synchronize(4.0)

        # reload and continue the copy the same way
        loaded, _ = load_snapshot(path)
        sim2 = Simulation(
            loaded,
            HostDirectBackend(eps=0.008),
            external_field=KeplerField(),
            timestep_params=TimestepParams(),
        )
        sim2.initialize()
        sim2.evolve(4.0)
        sim2.synchronize(4.0)
        # identical physics to high precision (startup dt may differ from
        # mid-run dt, so allow integration-error-level differences)
        assert np.allclose(sim2.system.pos, sim.system.pos, atol=1e-7)


class TestAtomicity:
    def test_crash_mid_write_preserves_previous(self, tmp_path, monkeypatch):
        """A crash while writing leaves the old snapshot intact under the
        final name — no torn file, no leftover temp file."""
        s1 = make_random_cluster(8, seed=1)
        s2 = make_random_cluster(8, seed=2)
        path = save_snapshot(tmp_path / "snap", s1)

        def torn_write(fh, *args, **kwargs):
            fh.write(b"PK\x03\x04 half an archive")
            raise OSError("simulated crash mid-write")

        monkeypatch.setattr(np, "savez_compressed", torn_write)
        with pytest.raises(OSError):
            save_snapshot(path, s2)
        monkeypatch.undo()

        loaded, _ = load_snapshot(path)
        assert np.array_equal(loaded.pos, s1.pos)  # previous state survives
        assert list(tmp_path.glob("*.tmp")) == []

    def test_crash_on_fresh_path_leaves_nothing(self, tmp_path, monkeypatch):
        def torn_write(fh, *args, **kwargs):
            raise OSError("simulated crash")

        monkeypatch.setattr(np, "savez_compressed", torn_write)
        with pytest.raises(OSError):
            save_snapshot(tmp_path / "new", make_random_cluster(4))
        assert list(tmp_path.iterdir()) == []


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError):
            load_snapshot(tmp_path / "nope.npz")

    def test_non_serialisable_metadata(self, tmp_path):
        s = make_random_cluster(4)
        with pytest.raises(SnapshotError):
            save_snapshot(tmp_path / "bad", s, {"array": np.zeros(3)})

    def test_corrupt_snapshot_missing_arrays(self, tmp_path):
        p = tmp_path / "corrupt.npz"
        np.savez(p, _metadata=np.array('{"format_version": 1}'), mass=np.ones(3))
        with pytest.raises(SnapshotError):
            load_snapshot(p)
