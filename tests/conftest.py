"""Shared fixtures, factories, and the per-test watchdog alarm."""

from __future__ import annotations

import signal

import numpy as np
import pytest

from repro.core import (
    HostDirectBackend,
    KeplerField,
    ParticleSystem,
    Simulation,
    TimestepParams,
)

# -- per-test watchdog alarm -------------------------------------------------
#
# The multiprocess SPMD suite exercises real deadlock/hang scenarios;
# if supervision ever regresses, a test must fail loudly instead of
# wedging the whole run.  SIGALRM-based so it needs no third-party
# plugin; per-test override via ``@pytest.mark.timeout(seconds)``.

DEFAULT_TEST_TIMEOUT = 120


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): override the per-test watchdog alarm "
        f"(default {DEFAULT_TEST_TIMEOUT}s, SIGALRM-based)",
    )


@pytest.fixture(autouse=True)
def _test_watchdog(request):
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - non-POSIX
        yield
        return
    marker = request.node.get_closest_marker("timeout")
    seconds = int(marker.args[0]) if marker and marker.args else DEFAULT_TEST_TIMEOUT

    def on_alarm(signum, frame):
        pytest.fail(
            f"test exceeded the {seconds}s watchdog alarm "
            "(likely a hung SPMD rank or deadlocked collective)",
            pytrace=False,
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def make_two_body(m1: float = 1.0, m2: float = 1e-3, a: float = 1.0, e: float = 0.0):
    """A bound two-body system in its centre-of-mass frame.

    Returns a :class:`ParticleSystem` with the pair at apocentre
    separation ``a * (1 + e)`` and the corresponding two-body velocity.
    """
    mtot = m1 + m2
    r = a * (1.0 + e)
    # Relative speed at apocentre from the vis-viva equation.
    v_rel = np.sqrt(mtot * (2.0 / r - 1.0 / a))
    pos = np.array([[-m2 / mtot * r, 0.0, 0.0], [m1 / mtot * r, 0.0, 0.0]])
    vel = np.array([[0.0, -m2 / mtot * v_rel, 0.0], [0.0, m1 / mtot * v_rel, 0.0]])
    return ParticleSystem(np.array([m1, m2]), pos, vel)


def make_random_cluster(n: int, seed: int = 0, scale: float = 1.0):
    """A Plummer-ish random particle blob for force-kernel tests."""
    rng = np.random.default_rng(seed)
    pos = rng.normal(scale=scale, size=(n, 3))
    vel = rng.normal(scale=0.1, size=(n, 3))
    mass = rng.uniform(0.5, 1.5, size=n) / n
    return ParticleSystem(mass, pos, vel)


def make_disk_sim(
    n: int = 64,
    seed: int = 1,
    eps: float = 0.008,
    eta: float = 0.02,
    dt_max: float = 1.0,
) -> Simulation:
    """Small paper-style planetesimal simulation, initialised."""
    from repro.planetesimal import PlanetesimalDiskConfig, build_disk_system

    system = build_disk_system(PlanetesimalDiskConfig(n_planetesimals=n, seed=seed))
    sim = Simulation(
        system,
        HostDirectBackend(eps=eps),
        external_field=KeplerField(),
        timestep_params=TimestepParams(eta=eta, dt_max=dt_max),
    )
    sim.initialize()
    return sim


@pytest.fixture
def two_body():
    return make_two_body()


@pytest.fixture
def small_cluster():
    return make_random_cluster(32, seed=42)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
