"""Tests for the structure-of-arrays ParticleSystem container."""

import numpy as np
import pytest

from repro.core import ParticleSystem
from repro.errors import ParticleError

from conftest import make_random_cluster


def make_simple(n=4):
    return ParticleSystem(
        np.ones(n), np.arange(3 * n, dtype=float).reshape(n, 3), np.zeros((n, 3))
    )


class TestConstruction:
    def test_basic_shapes(self):
        s = make_simple(5)
        assert s.n == 5
        assert len(s) == 5
        assert s.pos.shape == (5, 3)
        assert s.acc.shape == (5, 3)
        assert s.jerk.shape == (5, 3)
        assert s.dt.shape == (5,)

    def test_default_keys_are_sequential(self):
        s = make_simple(4)
        assert np.array_equal(s.key, np.arange(4))

    def test_arrays_are_float64_contiguous(self):
        s = ParticleSystem(
            np.ones(3, dtype=np.float32),
            np.zeros((3, 3), dtype=np.float32) + np.arange(3)[:, None],
            np.zeros((3, 3)),
        )
        assert s.mass.dtype == np.float64
        assert s.pos.flags["C_CONTIGUOUS"]

    def test_rejects_wrong_pos_shape(self):
        with pytest.raises(ParticleError):
            ParticleSystem(np.ones(3), np.zeros((4, 3)), np.zeros((3, 3)))

    def test_rejects_wrong_vel_shape(self):
        with pytest.raises(ParticleError):
            ParticleSystem(np.ones(3), np.zeros((3, 3)), np.zeros((3, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ParticleError):
            ParticleSystem(np.ones(0), np.zeros((0, 3)), np.zeros((0, 3)))

    def test_rejects_negative_mass(self):
        with pytest.raises(ParticleError):
            ParticleSystem(np.array([1.0, -1.0]), np.zeros((2, 3)), np.zeros((2, 3)))

    def test_rejects_nan_positions(self):
        pos = np.zeros((2, 3))
        pos[0, 0] = np.nan
        with pytest.raises(ParticleError):
            ParticleSystem(np.ones(2), pos, np.zeros((2, 3)))

    def test_rejects_duplicate_keys(self):
        with pytest.raises(ParticleError):
            ParticleSystem(
                np.ones(2), np.zeros((2, 3)), np.zeros((2, 3)), keys=np.array([7, 7])
            )

    def test_initial_time(self):
        s = ParticleSystem(np.ones(2), np.zeros((2, 3)), np.zeros((2, 3)), time=3.5)
        assert np.all(s.t == 3.5)

    def test_input_arrays_are_copied(self):
        """Regression: the system must not alias caller arrays (the
        integrator mutates its arrays in place)."""
        pos = np.zeros((2, 3))
        vel = np.zeros((2, 3))
        mass = np.ones(2)
        s = ParticleSystem(mass, pos, vel)
        s.pos[0, 0] = 99.0
        s.vel[0, 0] = 99.0
        s.mass[0] = 99.0
        assert pos[0, 0] == 0.0
        assert vel[0, 0] == 0.0
        assert mass[0] == 1.0


class TestDerivedQuantities:
    def test_total_mass(self):
        s = make_simple(4)
        assert s.total_mass() == pytest.approx(4.0)

    def test_center_of_mass(self):
        pos = np.array([[1.0, 0, 0], [-1.0, 0, 0]])
        s = ParticleSystem(np.array([3.0, 1.0]), pos, np.zeros((2, 3)))
        assert np.allclose(s.center_of_mass(), [0.5, 0, 0])

    def test_center_of_mass_velocity(self):
        vel = np.array([[0, 2.0, 0], [0, -2.0, 0]])
        s = ParticleSystem(np.array([1.0, 1.0]), np.zeros((2, 3)) + [[1], [2]], vel)
        assert np.allclose(s.center_of_mass_velocity(), 0.0)

    def test_radii_and_speeds(self):
        s = ParticleSystem(
            np.ones(2),
            np.array([[3.0, 4.0, 0.0], [0, 0, 1.0]]),
            np.array([[0.0, 0.0, 2.0], [1.0, 0, 0]]),
        )
        assert np.allclose(s.radii(), [5.0, 1.0])
        assert np.allclose(s.speeds(), [2.0, 1.0])


class TestCopySelect:
    def test_copy_is_deep(self):
        s = make_random_cluster(8)
        c = s.copy()
        c.pos[0, 0] = 99.0
        assert s.pos[0, 0] != 99.0

    def test_copy_preserves_all_state(self):
        s = make_random_cluster(8)
        s.acc[:] = 1.5
        s.dt[:] = 0.25
        c = s.copy()
        assert np.array_equal(c.acc, s.acc)
        assert np.array_equal(c.dt, s.dt)
        assert np.array_equal(c.key, s.key)

    def test_select_by_indices_preserves_keys(self):
        s = make_random_cluster(8)
        sub = s.select(np.array([2, 5]))
        assert np.array_equal(sub.key, [2, 5])
        assert np.allclose(sub.pos, s.pos[[2, 5]])

    def test_select_by_mask(self):
        s = make_random_cluster(8)
        mask = s.mass > np.median(s.mass)
        sub = s.select(mask)
        assert sub.n == int(mask.sum())

    def test_select_empty_raises(self):
        s = make_random_cluster(4)
        with pytest.raises(ParticleError):
            s.select(np.array([], dtype=int))

    def test_select_wrong_mask_length_raises(self):
        s = make_random_cluster(4)
        with pytest.raises(ParticleError):
            s.select(np.array([True, False]))

    def test_remove(self):
        s = make_random_cluster(6)
        out = s.remove(np.array([0, 3]))
        assert out.n == 4
        assert 0 not in out.key and 3 not in out.key


class TestConcatenate:
    def test_concatenate_counts(self):
        a = make_random_cluster(4, seed=1)
        b = make_random_cluster(6, seed=2)
        c = ParticleSystem.concatenate([a, b])
        assert c.n == 10
        assert len(np.unique(c.key)) == 10

    def test_concatenate_preserves_masses(self):
        a = make_random_cluster(4, seed=1)
        b = make_random_cluster(6, seed=2)
        c = ParticleSystem.concatenate([a, b])
        assert c.total_mass() == pytest.approx(a.total_mass() + b.total_mass())

    def test_concatenate_requires_common_time(self):
        a = make_random_cluster(4)
        b = make_random_cluster(4)
        b.t[:] = 1.0
        with pytest.raises(ParticleError):
            ParticleSystem.concatenate([a, b])

    def test_concatenate_empty_list_raises(self):
        with pytest.raises(ParticleError):
            ParticleSystem.concatenate([])


class TestValidate:
    def test_validate_passes_on_fresh_system(self):
        make_random_cluster(5).validate()

    def test_validate_catches_nan(self):
        s = make_random_cluster(5)
        s.acc[2, 1] = np.nan
        with pytest.raises(ParticleError):
            s.validate()

    def test_validate_catches_negative_dt(self):
        s = make_random_cluster(5)
        s.dt[0] = -1.0
        with pytest.raises(ParticleError):
            s.validate()
