"""Tests for the SPMD runtime and the systolic ring algorithm."""

import numpy as np
import pytest

from repro.core.forces import acc_jerk
from repro.errors import CommError
from repro.parallel import VirtualMachine, ring_forces


class TestPointToPoint:
    def test_send_recv_roundtrip(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, {"x": 42})
                return "sent"
            data = yield comm.recv(0)
            return data["x"]

        res = VirtualMachine(2).run(prog)
        assert res.returns == ["sent", 42]
        assert res.messages == 1

    def test_ndarray_payload_bytes(self):
        arr = np.zeros(100)  # 800 bytes

        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, arr)
            else:
                got = yield comm.recv(0)
                assert got.shape == (100,)
            return None

        res = VirtualMachine(2).run(prog)
        assert res.total_bytes == 800

    def test_fifo_ordering(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "first")
                yield comm.send(1, "second")
                return None
            a = yield comm.recv(0)
            b = yield comm.recv(0)
            return (a, b)

        res = VirtualMachine(2).run(prog)
        assert res.returns[1] == ("first", "second")

    def test_clock_advances_with_transfers(self):
        vm = VirtualMachine(2, bandwidth=1e6, latency=0.0)

        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, np.zeros(125_000))  # 1 MB -> 1 s
            else:
                yield comm.recv(0)
            return None

        res = vm.run(prog)
        assert res.clock[1] == pytest.approx(1.0)

    def test_deadlock_detected(self):
        def prog(comm):
            # both ranks receive first: classic deadlock
            yield comm.recv(1 - comm.rank)
            return None

        with pytest.raises(CommError, match="deadlock"):
            VirtualMachine(2).run(prog)

    def test_invalid_destination(self):
        def prog(comm):
            yield comm.send(5, "x")
            return None

        with pytest.raises(CommError):
            VirtualMachine(2).run(prog)

    def test_self_send_rejected(self):
        def prog(comm):
            yield comm.send(comm.rank, "x")
            return None

        with pytest.raises(CommError):
            VirtualMachine(2).run(prog)


class TestCollectives:
    def test_barrier(self):
        def prog(comm):
            yield comm.barrier()
            return comm.rank

        res = VirtualMachine(3).run(prog)
        assert res.returns == [0, 1, 2]
        # all clocks equal after the barrier
        assert len(set(res.clock)) == 1

    def test_bcast(self):
        def prog(comm):
            data = comm.rank * 10 if comm.rank == 1 else None
            got = yield comm.bcast(data, root=1)
            return got

        res = VirtualMachine(4).run(prog)
        assert res.returns == [10, 10, 10, 10]

    def test_allgather(self):
        def prog(comm):
            got = yield comm.allgather(comm.rank**2)
            return got

        res = VirtualMachine(3).run(prog)
        assert res.returns[0] == [0, 1, 4]
        assert res.returns == [res.returns[0]] * 3

    def test_reduce_to_root(self):
        def prog(comm):
            got = yield comm.reduce(np.full(2, float(comm.rank)), root=0)
            return got

        res = VirtualMachine(4).run(prog)
        assert np.allclose(res.returns[0], [6.0, 6.0])
        assert res.returns[1] is None

    def test_allreduce(self):
        def prog(comm):
            got = yield comm.allreduce(float(comm.rank + 1))
            return got

        res = VirtualMachine(4).run(prog)
        assert res.returns == [10.0] * 4

    def test_allreduce_custom_op(self):
        def prog(comm):
            got = yield comm.allreduce(comm.rank, op=lambda parts: max(parts))
            return got

        res = VirtualMachine(5).run(prog)
        assert res.returns == [4] * 5

    def test_collective_mismatch_detected(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.barrier()
            else:
                yield comm.allreduce(1.0)
            return None

        with pytest.raises(CommError, match="mismatch"):
            VirtualMachine(2).run(prog)

    def test_single_rank_collectives(self):
        def prog(comm):
            g = yield comm.allgather(7)
            s = yield comm.allreduce(3.0)
            return (g, s)

        res = VirtualMachine(1).run(prog)
        assert res.returns[0] == ([7], 3.0)


class TestRingForces:
    @pytest.fixture
    def particles(self, rng):
        n = 37  # deliberately not divisible by typical rank counts
        pos = rng.normal(size=(n, 3)) * 5
        vel = rng.normal(size=(n, 3))
        mass = rng.uniform(0.1, 1.0, n)
        return pos, vel, mass

    def test_matches_direct_summation(self, particles):
        pos, vel, mass = particles
        n = len(pos)
        a_ref, j_ref = acc_jerk(pos, vel, pos, vel, mass, 0.01,
                                self_indices=np.arange(n))
        for p in (1, 2, 3, 5):
            res = ring_forces(pos, vel, mass, eps=0.01, n_ranks=p)
            assert np.allclose(res.acc, a_ref, rtol=1e-12, atol=1e-15), p
            assert np.allclose(res.jerk, j_ref, rtol=1e-12, atol=1e-15), p

    def test_communication_volume_scales_with_n_not_p(self, particles):
        """Each rank ships ~all N particles once per force evaluation,
        regardless of p — the bandwidth wall of host-level rings."""
        pos, vel, mass = particles
        b2 = ring_forces(pos, vel, mass, 0.01, n_ranks=2).total_bytes
        b5 = ring_forces(pos, vel, mass, 0.01, n_ranks=5).total_bytes
        # total ring traffic = (p-1)/p * N per rank * p ranks ~ (p-1) N
        assert b5 > b2  # total grows
        # but per-rank traffic is flat within 2x
        assert b5 / 5 == pytest.approx(b2 / 2, rel=1.0)

    def test_more_ranks_than_particles_rejected(self, particles):
        pos, vel, mass = particles
        with pytest.raises(CommError):
            ring_forces(pos[:2], vel[:2], mass[:2], 0.01, n_ranks=5)

    def test_clocks_reported(self, particles):
        pos, vel, mass = particles
        res = ring_forces(pos, vel, mass, 0.01, n_ranks=3)
        assert len(res.clock) == 3
        assert all(c > 0 for c in res.clock)
