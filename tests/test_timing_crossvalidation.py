"""Cross-validation: analytic timing model vs hierarchy hardware counters.

The PERF benchmarks trust :class:`~repro.grape.timing.Grape6TimingModel`;
these tests pin the model to the simulated hardware it abstracts: the
cycle counts the chips actually accumulate in hierarchy mode must equal
the model's ``chip_cycles`` prediction for the same load shapes.
"""

import numpy as np
import pytest

from repro.grape import Grape6Backend, Grape6Config, Grape6Machine, Grape6TimingModel
from repro.planetesimal import PlanetesimalDiskConfig, build_disk_system


def busiest_chip_cycles(machine) -> int:
    return max(
        chip.force_cycles
        for cluster in machine.clusters
        for node in cluster.nodes
        for board in node.boards
        for chip in board.chips
    )


class TestModelVsHardware:
    @pytest.mark.parametrize("n_active", [4, 17, 60])
    def test_chip_cycles_match(self, n_active):
        cfg = Grape6Config.scaled_down()  # 2x2x2x2 = 16 chips
        sys_ = build_disk_system(
            PlanetesimalDiskConfig(n_planetesimals=62, seed=14)
        )
        machine = Grape6Machine(cfg, eps=0.008, mode="hierarchy")
        backend = Grape6Backend(machine)
        backend.load(sys_)

        active = np.arange(n_active)
        backend.forces_on(sys_, active, 0.0)

        model = Grape6TimingModel(cfg)
        predicted = model.chip_cycles(n_active, sys_.n)
        measured = busiest_chip_cycles(machine)
        # the model uses ceil shares; the hardware's round-robin can be
        # one particle lighter on the busiest chip
        assert measured <= predicted
        assert measured >= 0.7 * predicted

    def test_predictor_cycles_equal_resident_count(self):
        cfg = Grape6Config.scaled_down()
        sys_ = build_disk_system(PlanetesimalDiskConfig(n_planetesimals=30, seed=15))
        machine = Grape6Machine(cfg, eps=0.008, mode="hierarchy")
        backend = Grape6Backend(machine)
        backend.load(sys_)
        backend.forces_on(sys_, np.arange(sys_.n), 0.0)
        for cluster in machine.clusters:
            for node in cluster.nodes:
                for board in node.boards:
                    for chip in board.chips:
                        if chip.n_resident:
                            assert chip.predictor_cycles == chip.n_resident

    def test_interaction_totals_match_counter(self):
        cfg = Grape6Config.scaled_down()
        sys_ = build_disk_system(PlanetesimalDiskConfig(n_planetesimals=30, seed=16))
        machine = Grape6Machine(cfg, eps=0.008, mode="hierarchy")
        backend = Grape6Backend(machine)
        backend.load(sys_)
        backend.forces_on(sys_, np.arange(10), 0.0)
        hw_total = sum(
            chip.interactions
            for cluster in machine.clusters
            for node in cluster.nodes
            for board in node.boards
            for chip in board.chips
        )
        # every cluster holds a full j-copy, but only one cluster serves
        # a given i-particle: total interactions = n_active * n_j
        assert hw_total == 10 * sys_.n

    def test_pci_bytes_scale_with_block(self):
        cfg = Grape6Config.scaled_down()
        sys_ = build_disk_system(PlanetesimalDiskConfig(n_planetesimals=40, seed=17))
        machine = Grape6Machine(cfg, eps=0.008, mode="hierarchy")
        backend = Grape6Backend(machine)
        backend.load(sys_)

        def pci_bytes():
            return sum(
                node.host.pci.bytes_total
                for cluster in machine.clusters
                for node in cluster.nodes
            )

        before = pci_bytes()
        backend.forces_on(sys_, np.arange(10), 0.0)
        mid = pci_bytes()
        backend.forces_on(sys_, np.arange(40), 0.0)
        after = pci_bytes()
        assert mid > before
        assert (after - mid) > (mid - before)
