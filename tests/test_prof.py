"""Tests for the phase profiler (repro.obs.prof)."""

import pytest

from repro.errors import SnapshotError
from repro.obs import (
    MetricsRegistry,
    Observability,
    PhaseProfile,
    Span,
    SpanLog,
    Tracer,
    profile_spans,
    profile_trace_file,
    write_chrome_trace,
    write_spans_jsonl,
)


def _span(name, ts, dur, track="wall", depth=0):
    return Span(name, track, ts, dur, depth, {})


def make_log():
    """run[0,100) > step[10,90) > {force[20,50), correct[60,80)}."""
    return SpanLog(
        [
            _span("run", 0, 100),
            _span("step", 10, 80, depth=1),
            _span("force", 20, 30, depth=2),
            _span("correct", 60, 20, depth=2),
        ]
    )


class TestAggregation:
    def test_total_and_self(self):
        prof = PhaseProfile.from_spans(make_log())
        assert prof.phase("run").total_ns == 100
        assert prof.phase("run").self_ns == 20  # 100 - step(80)
        assert prof.phase("step").self_ns == 30  # 80 - force - correct
        assert prof.phase("force").self_ns == 30  # leaf: self == total
        assert prof.n_spans == 4
        assert prof.track_ns["wall"] == 100

    def test_repeated_phase_accumulates(self):
        log = SpanLog(
            [
                _span("step", 0, 10),
                _span("step", 20, 30),
            ]
        )
        stat = PhaseProfile.from_spans(log).phase("step")
        assert stat.count == 2
        assert stat.total_ns == 40
        assert stat.min_ns == 10 and stat.max_ns == 30

    def test_self_time_clamped_nonnegative(self):
        # rounding overlap: the second child runs past the parent's end,
        # so the children sum to more than the parent duration
        log = SpanLog(
            [
                _span("parent", 0, 10),
                _span("child", 0, 6, depth=1),
                _span("child", 6, 6, depth=1),
            ]
        )
        assert PhaseProfile.from_spans(log).phase("parent").self_ns == 0

    def test_only_direct_children_billed(self):
        prof = PhaseProfile.from_spans(make_log())
        # grandchildren bill "step", not "run"
        assert prof.phase("run").self_ns == 20

    def test_siblings_back_to_back(self):
        log = SpanLog(
            [
                _span("a", 0, 10),
                _span("b", 10, 10),  # starts exactly at a's end: sibling
            ]
        )
        prof = PhaseProfile.from_spans(log)
        assert prof.phase("a").self_ns == 10
        assert prof.phase("b").self_ns == 10
        assert prof.track_ns["wall"] == 20

    def test_tracks_are_independent(self):
        tr = Tracer()
        with tr.span("wall_phase"):
            pass
        tr.model_span("model_phase", 1e-3)
        prof = profile_spans(tr)
        assert prof.phase("wall_phase") is not None
        assert prof.phase("model_phase") is None  # wrong track
        assert prof.phase("model_phase", track="model").total_ns == 1_000_000

    def test_empty_source(self):
        prof = PhaseProfile.from_spans(SpanLog([]))
        assert prof.n_spans == 0
        assert prof.render() == ""


class TestTopOrdering:
    def test_sorted_by_self_with_name_tiebreak(self):
        log = SpanLog(
            [
                _span("zeta", 0, 10),
                _span("alpha", 20, 10),
                _span("big", 40, 50),
            ]
        )
        prof = PhaseProfile.from_spans(log)
        names = [s.name for s in prof.top()]
        assert names == ["big", "alpha", "zeta"]

    def test_sort_by_total(self):
        prof = PhaseProfile.from_spans(make_log())
        names = [s.name for s in prof.top(by="total")]
        assert names == ["run", "step", "force", "correct"]

    def test_limit(self):
        prof = PhaseProfile.from_spans(make_log())
        assert len(prof.top(limit=2)) == 2

    def test_deterministic_across_shuffles(self):
        spans = make_log().spans
        a = PhaseProfile.from_spans(SpanLog(spans))
        b = PhaseProfile.from_spans(SpanLog(list(reversed(spans))))
        assert [s.name for s in a.top()] == [s.name for s in b.top()]
        assert a.folded == b.folded


class TestFolded:
    def test_collapsed_stack_paths(self):
        prof = PhaseProfile.from_spans(make_log())
        assert prof.folded[("wall", "run")] == 20
        assert prof.folded[("wall", "run;step")] == 30
        assert prof.folded[("wall", "run;step;force")] == 30

    def test_collapsed_lines_microseconds(self, tmp_path):
        log = SpanLog(
            [
                _span("a", 0, 5_000_000),
                _span("b", 0, 2_000_000, depth=1),
            ]
        )
        prof = PhaseProfile.from_spans(log)
        lines = prof.collapsed_stacks()
        assert lines == ["a 3000", "a;b 2000"]
        out = prof.write_collapsed(tmp_path / "folded.txt")
        assert out.read_text() == "a 3000\na;b 2000\n"

    def test_zero_self_stacks_dropped(self):
        log = SpanLog(
            [
                _span("wrap", 0, 10),
                _span("inner", 0, 10, depth=1),
            ]
        )
        lines = PhaseProfile.from_spans(log).collapsed_stacks()
        # wrap has zero self time (sub-µs anyway) but survives as prefix
        assert all(line.startswith("wrap") for line in lines)


class TestRendering:
    def test_render_top_table(self):
        text = PhaseProfile.from_spans(make_log()).render_top()
        assert "Phase profile (wall clock)" in text
        assert "force" in text and "self_share" in text

    def test_render_covers_both_tracks(self):
        tr = Tracer()
        with tr.span("w"):
            pass
        tr.model_span("m", 1e-3)
        text = profile_spans(tr).render()
        assert "wall clock" in text and "model clock" in text


class TestMetricsAndFiles:
    def test_bind_strict_registry(self):
        reg = MetricsRegistry(strict=True)
        prof = PhaseProfile.from_spans(make_log())
        prof.bind(reg)
        snap = reg.snapshot()
        assert snap["prof.spans_total"] == 4.0
        assert snap["prof.phases"] == 4.0
        assert snap["prof.aggregate_seconds"] >= 0.0

    def test_profile_trace_file_both_formats(self, tmp_path):
        obs = Observability()
        with obs.tracer.span("run"):
            with obs.tracer.span("force"):
                pass
        jsonl = write_spans_jsonl(obs.tracer, tmp_path / "s.jsonl")
        chrome = write_chrome_trace(obs.tracer, tmp_path / "t.json")
        ref = profile_spans(obs.tracer)
        for path in (jsonl, chrome):
            prof = profile_trace_file(path)
            assert prof.phase("run").total_ns == ref.phase("run").total_ns
            assert prof.phase("force").self_ns == ref.phase("force").self_ns

    def test_profile_trace_file_missing(self, tmp_path):
        with pytest.raises(SnapshotError):
            profile_trace_file(tmp_path / "nope.json")


class TestOverhead:
    def test_dispatch_tracing_overhead_small(self):
        """Span recording must stay far below kernel cost.

        The acceptance bar is <5% at the (1024, 8192) acc_jerk shape;
        asserting that tightly in CI would be flaky, so this test uses
        min-of-k timing and a loose 1.5x bound — span recording is one
        dict+append per dispatch, so a profiler regression to per-call
        overhead would blow well past it even on a loaded machine.
        """
        from time import perf_counter

        import numpy as np

        from repro.accel import EngineConfig, KernelEngine

        rng = np.random.default_rng(1)
        n_i, n_j = 256, 4096
        pos_i = rng.standard_normal((n_i, 3))
        vel_i = rng.standard_normal((n_i, 3))
        pos_j = rng.standard_normal((n_j, 3))
        vel_j = rng.standard_normal((n_j, 3))
        mass = rng.random(n_j)

        def best_of(engine, k=5):
            engine.acc_jerk(pos_i, vel_i, pos_j, vel_j, mass, 0.01)  # warm
            best = float("inf")
            for _ in range(k):
                t0 = perf_counter()
                engine.acc_jerk(pos_i, vel_i, pos_j, vel_j, mass, 0.01)
                best = min(best, perf_counter() - t0)
            return best

        cfg = EngineConfig(threads=1)
        plain = best_of(KernelEngine(cfg))
        obs = Observability()
        traced = best_of(KernelEngine(cfg, obs=obs))
        assert traced < plain * 1.5
        assert len(obs.tracer.spans) >= 6  # dispatch spans were recorded
        prof = profile_spans(obs.tracer)
        # the profiler meters its own aggregation cost
        assert prof.aggregate_seconds < 0.1
