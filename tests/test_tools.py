"""Tests for the API-doc generation tool."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "tools"))

from check_backend_protocol import backend_subclasses, collect_classes
from check_backend_protocol import check as protocol_check
from check_backend_protocol import main as protocol_main
from check_backend_protocol import required_methods
from check_fault_matrix import check as fault_check
from check_fault_matrix import main as fault_main
from check_fault_matrix import missing_injectors, untested_kinds
from check_job_states import check as job_state_check
from check_job_states import main as job_state_main
from check_job_states import (
    source_problems,
    table_problems,
    transition_calls,
    untested_states,
)
from check_kernel_registry import check as kernel_check
from check_kernel_registry import main as kernel_main
from check_kernel_registry import unbenchmarked_kernels, untested_kernels
from check_metric_names import check_catalogue, check_paths
from check_metric_names import main as lint_main
from gen_api_docs import collect_modules, describe_module, main, render_api_docs


class TestCollect:
    def test_finds_all_packages(self):
        mods = collect_modules()
        assert "repro" in mods
        for pkg in ("repro.core", "repro.grape", "repro.parallel",
                    "repro.planetesimal", "repro.baselines", "repro.perf",
                    "repro.runio"):
            assert pkg in mods

    def test_skips_entry_point(self):
        assert "repro.__main__" not in collect_modules()

    def test_sorted(self):
        mods = collect_modules()
        assert mods == sorted(mods)


class TestDescribe:
    def test_module_with_all(self):
        info = describe_module("repro.core.forces")
        names = {s["name"] for s in info["symbols"]}
        assert "acc_jerk" in names
        assert info["doc"].startswith("Direct-summation")

    def test_symbols_have_docs(self):
        info = describe_module("repro.core.integrator")
        sim = next(s for s in info["symbols"] if s["name"] == "Simulation")
        assert sim["kind"] == "class"
        assert "Hermite" in sim["doc"]


class TestRender:
    def test_renders_every_public_module(self):
        text = render_api_docs()
        assert "## `repro.core.forces`" in text
        assert "## `repro.grape.system`" in text
        assert "acc_jerk" in text
        assert len(text.splitlines()) > 200

    def test_main_writes_file(self, tmp_path):
        out = tmp_path / "API.md"
        assert main([str(out)]) == 0
        assert out.exists()
        assert "# API reference" in out.read_text()


class TestMetricNameLint:
    def test_repo_source_is_clean(self, capsys):
        assert lint_main([]) == 0
        assert "metric names ok" in capsys.readouterr().out

    def test_undeclared_name_flagged(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text('reg.counter("nope.not_declared")\n')
        problems = check_paths([bad])
        assert len(problems) == 1
        assert "not declared" in problems[0]
        assert lint_main([str(bad)]) == 1

    def test_wrong_kind_flagged(self, tmp_path):
        bad = tmp_path / "bad.py"
        # run.wall_seconds is declared as a gauge
        bad.write_text('reg.counter("run.wall_seconds")\n')
        problems = check_paths([bad])
        assert len(problems) == 1
        assert "declared as gauge" in problems[0]

    def test_ill_formed_name_flagged(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text('reg.gauge("NotDotted")\n')
        problems = check_paths([bad])
        assert "naming" in problems[0]

    def test_dynamic_family_admitted(self, tmp_path):
        ok = tmp_path / "ok.py"
        ok.write_text('reg.counter("events.supernova_total")\n')
        assert check_paths([ok]) == []

    def test_fstring_names_skipped(self, tmp_path):
        ok = tmp_path / "ok.py"
        ok.write_text('reg.counter(f"events.{kind}_total")\n')
        assert check_paths([ok]) == []

    def test_catalogue_self_validates(self):
        assert check_catalogue() == []

    def test_catalogue_hybrid_family_declared(self):
        """The hybrid backend's whole metric family is in the catalogue."""
        from repro.obs.catalogue import METRIC_CATALOGUE

        hybrid = {k: v[0] for k, v in METRIC_CATALOGUE.items()
                  if k.startswith("hybrid.")}
        assert hybrid == {
            "hybrid.tree_builds_total": "counter",
            "hybrid.near_interactions_total": "counter",
            "hybrid.far_interactions_total": "counter",
            "hybrid.tree_seconds": "counter",
            "hybrid.direct_seconds": "counter",
            "hybrid.neighbour_count": "histogram",
            "hybrid.theta": "gauge",
            "hybrid.tree_build_seconds": "counter",
            "hybrid.tree_walk_seconds": "counter",
            "hybrid.walk.groups_total": "counter",
            "hybrid.walk.node_terms_total": "counter",
            "hybrid.walk.pp_terms_total": "counter",
            "hybrid.walk.group_size": "histogram",
        }

    def test_bad_catalogue_entries_flagged(self):
        bad = {
            "NotDotted": ("counter", "x"),
            "ok.name": ("thermometer", "x"),
            "ok.other": ("gauge", ""),
        }
        problems = check_catalogue(bad)
        assert len(problems) == 3
        assert any("naming" in p for p in problems)
        assert any("kind" in p for p in problems)
        assert any("help" in p for p in problems)


class TestBackendProtocolLint:
    def test_repo_is_clean(self, capsys):
        assert protocol_main([]) == 0
        assert "backend protocol ok" in capsys.readouterr().out

    def test_required_surface_discovered(self):
        assert required_methods() == [
            "load", "forces_on", "push_updates", "potential",
        ]

    def test_all_registered_backends_found(self):
        src = Path(__file__).parent.parent / "src" / "repro"
        names = {c.name for c in backend_subclasses(collect_classes(src))}
        assert {
            "HostDirectBackend", "Grape6Backend", "TreeBackend",
            "HostOnlyBackend", "HybridBackend",
        } <= names

    def test_missing_method_flagged(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "class HalfBackend(ForceBackend):\n"
            "    def __init__(self):\n"
            "        self.counter = object()\n"
            "    def load(self, system):\n"
            "        return None\n"
        )
        problems = protocol_check(tmp_path)
        missing = {m for m in ("forces_on", "push_updates", "potential")
                   if any(f"{m}()" in p for p in problems)}
        assert missing == {"forces_on", "push_updates", "potential"}
        assert not any("load()" in p for p in problems)
        assert protocol_main([str(tmp_path)]) == 1

    def test_missing_counter_flagged(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "class NoCounterBackend(ForceBackend):\n"
            "    def load(self, system): pass\n"
            "    def forces_on(self, system, active, t_now): pass\n"
            "    def push_updates(self, system, active): pass\n"
            "    def potential(self, system): pass\n"
        )
        problems = protocol_check(tmp_path)
        assert len(problems) == 1
        assert "self.counter" in problems[0]

    def test_inherited_surface_accepted(self, tmp_path):
        """A subclass of a complete backend needs nothing of its own."""
        (tmp_path / "ok.py").write_text(
            "class FullBackend(ForceBackend):\n"
            "    def __init__(self):\n"
            "        self.counter = object()\n"
            "    def load(self, system): pass\n"
            "    def forces_on(self, system, active, t_now): pass\n"
            "    def push_updates(self, system, active): pass\n"
            "    def potential(self, system): pass\n"
            "class ChildBackend(FullBackend):\n"
            "    pass\n"
        )
        assert protocol_check(tmp_path) == []

    def test_missing_src_dir_reported(self, tmp_path):
        problems = protocol_check(tmp_path / "nope")
        assert any("not found" in p for p in problems)
        assert protocol_main([str(tmp_path / 'nope')]) == 1


class TestFaultMatrixLint:
    def test_repo_is_clean(self, capsys):
        assert fault_main([]) == 0
        assert "fault matrix ok" in capsys.readouterr().out

    def test_every_kind_has_injector(self):
        assert missing_injectors() == []

    def test_untested_kind_flagged(self, tmp_path):
        (tmp_path / "test_one.py").write_text(
            "def test_x():\n    use(FaultKind.CHIP_KILL)\n"
        )
        missing = untested_kinds(tmp_path)
        assert "chip_kill" not in missing
        assert "host_kill" in missing
        problems = fault_check(tmp_path)
        assert any("host_kill" in p for p in problems)
        assert fault_main([str(tmp_path)]) == 1

    def test_missing_tests_dir_reported(self, tmp_path):
        problems = fault_check(tmp_path / "nope")
        assert any("not found" in p for p in problems)
        assert fault_main([str(tmp_path / "nope")]) == 1


class TestJobStateLint:
    def test_repo_is_clean(self, capsys):
        assert job_state_main([]) == 0
        assert "job state machine ok" in capsys.readouterr().out

    def test_declared_table_is_sound(self):
        assert table_problems() == []

    def test_service_source_matches_table(self):
        assert source_problems() == []

    def test_transition_calls_discovered(self):
        calls = transition_calls()
        names = {name for _, _, name in calls}
        # the service must exercise the whole lifecycle
        assert {"LEASED", "RUNNING", "CHECKPOINTED", "DONE", "FAILED",
                "DEAD_LETTERED", "QUEUED"} <= names
        assert all(path.startswith("src/repro/serve") for path, _, _ in calls)

    def test_nonliteral_transition_flagged(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "def f(job, target):\n    job.transition(target)\n"
        )
        problems = source_problems(tmp_path)
        assert any("cannot verify" in p for p in problems)

    def test_illegal_target_flagged(self, tmp_path):
        # REJECTED is an entry state: no legal transition targets it
        (tmp_path / "bad.py").write_text(
            "def f(job):\n    job.transition(JobState.REJECTED)\n"
        )
        problems = source_problems(tmp_path)
        assert any("no LEGAL_TRANSITIONS row allows" in p for p in problems)

    def test_undeclared_state_flagged(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "def f(job):\n    job.transition(JobState.EXPLODED)\n"
        )
        problems = source_problems(tmp_path)
        assert any("undeclared state" in p for p in problems)

    def test_untested_state_flagged(self, tmp_path):
        (tmp_path / "test_one.py").write_text(
            "def test_x():\n    use(JobState.QUEUED)\n"
        )
        missing = untested_states(tmp_path)
        assert "queued" not in missing
        assert "dead_lettered" in missing
        problems = job_state_check(tmp_path)
        assert any("dead_lettered" in p for p in problems)
        assert job_state_main([str(tmp_path)]) == 1

    def test_missing_tests_dir_reported(self, tmp_path):
        problems = job_state_check(tmp_path / "nope")
        assert any("not found" in p for p in problems)


class TestKernelRegistryLint:
    def test_repo_is_clean(self, capsys):
        assert kernel_main([]) == 0
        assert "kernel registry ok" in capsys.readouterr().out

    def test_untested_kernel_flagged(self, tmp_path):
        (tmp_path / "test_one.py").write_text(
            'EQUIVALENCE_KERNELS = ["acc_jerk/reference"]\n'
        )
        missing = untested_kernels(tmp_path)
        assert "acc_jerk/reference" not in missing
        assert "acc_jerk/accel" in missing
        problems = kernel_check(tmp_path, Path("nope.json"))
        assert any("acc_jerk/accel" in p for p in problems)

    def test_unbenchmarked_kernel_flagged(self, tmp_path):
        bench = tmp_path / "BENCH_kernels.json"
        bench.write_text(
            '{"entries": [{"op": "acc_jerk", "kernel": "reference"}]}\n'
        )
        missing = unbenchmarked_kernels(bench)
        assert "acc_jerk/reference" not in missing
        assert "spline/accel" in missing

    def test_missing_inputs_reported(self, tmp_path):
        problems = kernel_check(tmp_path / "nope", tmp_path / "nope.json")
        assert any("tests directory not found" in p for p in problems)
        assert any("baseline not found" in p for p in problems)
        assert kernel_main([str(tmp_path / "nope")]) == 1


class TestBenchRegressionGate:
    """tools/check_bench_regression.py — advisory in the suite.

    The gate compares the committed BENCH_*.json baselines against the
    bench-history store; machines that never ran the benchmarks have no
    history, so the no-history path must pass (skip with a note) for
    the suite to stay green everywhere.
    """

    def _doc(self, factor=1.0):
        return {
            "benchmark": "kernels",
            "entries": [
                {
                    "op": "acc_jerk", "kernel": "tiled",
                    "n_active": 64, "n_source": 4096,
                    "best_seconds": 0.5 * factor,
                    "samples_seconds": [0.5 * factor, 0.51 * factor],
                    "repeats": 2,
                }
            ],
        }

    def test_advisory_no_history(self, tmp_path, capsys):
        import json

        from check_bench_regression import gate
        from check_bench_regression import main as gate_main

        baseline = tmp_path / "BENCH_kernels.json"
        baseline.write_text(json.dumps(self._doc()))
        checked, failed = gate(
            baselines=[baseline], history_root=tmp_path / "none"
        )
        assert (checked, failed) == (0, 0)
        assert gate_main([
            "--baseline", str(baseline),
            "--history", str(tmp_path / "none"),
        ]) == 0
        assert "gate ok" in capsys.readouterr().out

    def test_repo_gate_is_advisory_clean(self, capsys):
        """Run the real gate over the repo baselines + real history.

        Advisory: with no history it must pass; with history it must
        complete with a verdict (0/1), never crash — a slower machine
        re-running the benchmarks is not a test-suite failure.
        """
        from check_bench_regression import main as gate_main

        assert gate_main([]) in (0, 1)

    def test_regression_fails_gate(self, tmp_path, capsys):
        import json
        import sys as _sys
        from pathlib import Path

        _sys.path.insert(0, str(Path(__file__).parents[1] / "src"))
        from check_bench_regression import main as gate_main

        from repro.obs import BenchHistory

        baseline = tmp_path / "BENCH_kernels.json"
        baseline.write_text(json.dumps(self._doc()))
        BenchHistory(tmp_path / "h").append(self._doc(factor=1.3))
        assert gate_main([
            "--baseline", str(baseline), "--history", str(tmp_path / "h"),
        ]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_corrupt_baseline_exits_2(self, tmp_path, capsys):
        from check_bench_regression import main as gate_main

        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{ torn")
        assert gate_main(["--baseline", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err
