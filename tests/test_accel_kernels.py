"""Equivalence and determinism tests for the accel kernel engine.

Every registered kernel (``repro.accel.registry.REGISTRY``) is checked
against its op's reference implementation; ``EQUIVALENCE_KERNELS``
below is the literal roll-call ``tools/check_kernel_registry.py`` greps
for, and a test asserts it matches the registry exactly.

Tolerance contract: the workspace kernels change only the *summation
order* of the pairwise sums (j-chunked, fixed ascending reduction), so
results agree with the reference to norm-relative ~1e-13; components
that nearly cancel can show larger elementwise relative error, which is
why the checks below are norm-relative.  Bit-exact promises
(serial vs. threaded, thread-count independence) are asserted with
``np.array_equal``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accel import EngineConfig, KernelEngine, get_engine
from repro.accel import registry as reg
from repro.core.collisions import (
    _dedup_pairs,
    _find_collision_pairs_reference,
    find_collision_pairs,
)
from repro.core.forces import acc_jerk as forces_acc_jerk
from repro.core.particles import ParticleSystem
from repro.core.predictor import predict_system

# Literal op/name keys — tools/check_kernel_registry.py requires every
# registered kernel to appear here (and in BENCH_kernels.json).
EQUIVALENCE_KERNELS = [
    "acc_jerk/reference",
    "acc_jerk/accel",
    "acc_only/reference",
    "acc_only/accel",
    "potential/reference",
    "potential/accel",
    "spline/reference",
    "spline/accel",
    "acc_jerk_active/reference",
    "acc_jerk_active/fused",
    "acc_jerk_masked/reference",
    "acc_jerk_masked/accel",
    "node_force/reference",
    "node_force/accel",
]

EPS = 0.008
SPLINE_H = 0.01
NORM_RTOL = 1e-12


def norm_close(a, b, rtol=NORM_RTOL):
    """Norm-relative agreement (robust to cancellation in components)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    scale = max(np.linalg.norm(a), np.linalg.norm(b), 1e-300)
    return np.linalg.norm(a - b) <= rtol * scale


def make_system(n=257, seed=7):
    rng = np.random.default_rng(seed)
    system = ParticleSystem(
        rng.uniform(1e-10, 1e-8, n),
        rng.normal(size=(n, 3)) * 5.0,
        rng.normal(size=(n, 3)) * 0.1,
        time=0.0,
    )
    system.acc[...] = rng.normal(size=(n, 3)) * 1e-4
    system.jerk[...] = rng.normal(size=(n, 3)) * 1e-6
    # stagger particle times so acc_jerk_active prediction is non-trivial
    system.t[...] = rng.uniform(0.0, 1e-3, n)
    return system


@pytest.fixture(scope="module")
def workload():
    system = make_system()
    active = np.arange(0, system.n, 2)
    return system, active


def small_engine(**overrides):
    """Engine with small tiles/chunks so every code path is exercised."""
    defaults = dict(threads=1, tile_budget=1 << 12, j_chunk=64,
                    parallel_pairs=1)
    defaults.update(overrides)
    return KernelEngine(EngineConfig(**defaults))


def make_mask(system, active, seed=5):
    """Neighbour-sphere-like sparse pair mask with self-pairs excluded."""
    rng = np.random.default_rng(seed)
    include = rng.random((active.size, system.n)) < 0.05
    include[np.arange(active.size), active] = False
    return include


def make_quad(system, seed=5):
    """Symmetric traceless per-source quadrupole moments (node-like)."""
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(system.n, 3, 3))
    sym = a + np.swapaxes(a, 1, 2)
    tr = np.trace(sym, axis1=1, axis2=2)
    sym -= tr[:, None, None] * np.eye(3) / 3.0
    return sym * system.mass[:, None, None] * 1e-4


def run_spec(spec, engine, system, active, t_now=5e-4):
    """Invoke one registered kernel with its op's argument convention."""
    pos_i = system.pos[active]
    vel_i = system.vel[active]
    if spec.op == "acc_jerk":
        return spec.runner(engine, pos_i, vel_i, system.pos, system.vel,
                           system.mass, EPS, self_indices=active)
    if spec.op == "acc_only":
        return spec.runner(engine, pos_i, system.pos, system.mass, EPS,
                           self_indices=active)
    if spec.op == "potential":
        return spec.runner(engine, pos_i, system.pos, system.mass, EPS,
                           self_indices=active)
    if spec.op == "spline":
        return spec.runner(engine, pos_i, system.pos, system.mass, SPLINE_H,
                           self_indices=active)
    if spec.op == "acc_jerk_active":
        return spec.runner(engine, system, active, t_now, EPS)
    if spec.op == "acc_jerk_masked":
        return spec.runner(engine, pos_i, vel_i, system.pos, system.vel,
                           system.mass, EPS, make_mask(system, active))
    if spec.op == "node_force":
        return spec.runner(engine, pos_i, vel_i, system.pos, system.vel,
                           system.mass, EPS, quad_j=make_quad(system))
    raise ValueError(spec.op)


class TestRegistryRollCall:
    def test_equivalence_list_matches_registry(self):
        assert sorted(EQUIVALENCE_KERNELS) == sorted(
            s.key for s in reg.all_kernels()
        )

    def test_every_op_has_reference_and_preferred(self):
        for op, preferred in reg.PREFERRED.items():
            names = {s.name for s in reg.kernels_for(op)}
            assert "reference" in names
            assert preferred in names

    def test_register_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            reg.register_kernel("warp_drive", "accel", lambda e: None)


@pytest.mark.parametrize("key", EQUIVALENCE_KERNELS)
class TestKernelEquivalence:
    def test_matches_reference(self, key, workload):
        op, name = key.split("/")
        system, active = workload
        engine = small_engine()
        try:
            ref = run_spec(reg.REGISTRY[(op, "reference")], engine,
                           system, active)
            got = run_spec(reg.REGISTRY[(op, name)], engine, system, active)
        finally:
            engine.close()
        ref = ref if isinstance(ref, tuple) else (ref,)
        got = got if isinstance(got, tuple) else (got,)
        assert len(ref) == len(got)
        for r, g in zip(ref, got):
            if name == "reference":
                assert np.array_equal(r, g)
            else:
                assert norm_close(r, g)


class TestDeterminism:
    """The engine's bit-reproducibility promises."""

    def test_serial_vs_threaded_bit_identical(self, workload):
        system, active = workload
        serial = small_engine(threads=1)
        threaded = small_engine(threads=4)
        try:
            for op, preferred in reg.PREFERRED.items():
                spec = reg.REGISTRY[(op, preferred)]
                a = run_spec(spec, serial, system, active)
                b = run_spec(spec, threaded, system, active)
                a = a if isinstance(a, tuple) else (a,)
                b = b if isinstance(b, tuple) else (b,)
                for x, y in zip(a, b):
                    assert np.array_equal(x, y), f"{spec.key}: thread drift"
        finally:
            serial.close()
            threaded.close()

    def test_thread_count_does_not_change_jplan(self):
        e2 = small_engine(threads=2)
        e8 = small_engine(threads=8)
        try:
            for n_j in (1, 63, 64, 65, 257, 4096, 100_000):
                assert e2._jplan(n_j) == e8._jplan(n_j)
        finally:
            e2.close()
            e8.close()

    def test_tile_budget_does_not_change_bits(self, workload):
        system, active = workload
        small = small_engine(tile_budget=1 << 10)
        large = small_engine(tile_budget=1 << 20)
        try:
            spec = reg.REGISTRY[("acc_jerk", "accel")]
            a_s, j_s = run_spec(spec, small, system, active)
            a_l, j_l = run_spec(spec, large, system, active)
        finally:
            small.close()
            large.close()
        assert np.array_equal(a_s, a_l)
        assert np.array_equal(j_s, j_l)

    def test_fused_leaves_pred_arrays_untouched(self, workload):
        system, active = workload
        system = system.copy() if hasattr(system, "copy") else make_system()
        sentinel = 123.456
        system.pred_pos[...] = sentinel
        system.pred_vel[...] = sentinel
        engine = small_engine()
        try:
            spec = reg.REGISTRY[("acc_jerk_active", "fused")]
            run_spec(spec, engine, system, active)
        finally:
            engine.close()
        assert np.all(system.pred_pos == sentinel)
        assert np.all(system.pred_vel == sentinel)

    def test_fused_matches_reference_prediction(self):
        """Fused per-chunk prediction reproduces predict_system + acc_jerk."""
        system = make_system(n=130, seed=11)
        active = np.array([0, 5, 64, 129])
        t_now = 7e-4
        engine = small_engine()
        try:
            fused = reg.REGISTRY[("acc_jerk_active", "fused")]
            acc_f, jerk_f = fused.runner(engine, system, active, t_now, EPS)
        finally:
            engine.close()
        predict_system(system, t_now)
        acc_r, jerk_r = forces_acc_jerk(
            system.pred_pos[active], system.pred_vel[active],
            system.pred_pos, system.pred_vel, system.mass, EPS,
            self_indices=active,
        )
        assert norm_close(acc_f, acc_r)
        assert norm_close(jerk_f, jerk_r)


class TestEdgeCases:
    def test_empty_active_block(self):
        system = make_system(n=16)
        engine = small_engine()
        empty = np.empty(0, dtype=np.intp)
        try:
            acc, jerk = engine.acc_jerk_active(system, empty, 0.0, EPS)
            assert acc.shape == (0, 3) and jerk.shape == (0, 3)
            acc = engine.acc_jerk(
                np.empty((0, 3)), np.empty((0, 3)),
                system.pos, system.vel, system.mass, EPS,
            )[0]
            assert acc.shape == (0, 3)
            phi = engine.pairwise_potential(np.empty((0, 3)), system.pos,
                                            system.mass, EPS)
            assert phi.shape == (0,)
        finally:
            engine.close()

    def test_self_interaction_excluded(self):
        """A particle feels no force from itself (no softened self-term)."""
        system = make_system(n=3)
        active = np.arange(3)
        engine = small_engine()
        try:
            for key in ("accel", "reference"):
                spec = reg.REGISTRY[("acc_jerk", key)]
                acc, jerk = run_spec(spec, engine, system, active, t_now=0.0)
                # with self-terms removed, momentum balances: sum(m*a) ~ 0
                net = (system.mass[active, None] * acc).sum(axis=0)
                assert np.linalg.norm(net) < 1e-20
            spline = reg.REGISTRY[("spline", "accel")]
            acc_s = run_spec(spline, engine, system, active)
            net = (system.mass[active, None] * acc_s).sum(axis=0)
            assert np.linalg.norm(net) < 1e-20
        finally:
            engine.close()

    def test_single_particle_promotion(self):
        system = make_system(n=32)
        engine = small_engine()
        try:
            acc, jerk = engine.acc_jerk(
                system.pos[0], system.vel[0], system.pos, system.vel,
                system.mass, EPS, self_indices=np.array([0]),
            )
        finally:
            engine.close()
        assert acc.shape == (1, 3) and jerk.shape == (1, 3)

    def test_masked_full_mask_matches_acc_jerk(self):
        """Everything included (minus self) reproduces the plain op."""
        system = make_system(n=65, seed=13)
        active = np.arange(0, 65, 2)
        include = np.ones((active.size, system.n), dtype=bool)
        include[np.arange(active.size), active] = False
        engine = small_engine()
        try:
            acc_m, jerk_m = engine.acc_jerk_masked(
                system.pos[active], system.vel[active], system.pos,
                system.vel, system.mass, EPS, include,
            )
            acc_r, jerk_r = engine.acc_jerk(
                system.pos[active], system.vel[active], system.pos,
                system.vel, system.mass, EPS, self_indices=active,
            )
        finally:
            engine.close()
        assert norm_close(acc_m, acc_r)
        assert norm_close(jerk_m, jerk_r)

    def test_masked_excluded_pairs_are_exact_zero(self):
        """An all-False mask must produce bitwise zero, not tiny residue."""
        system = make_system(n=16)
        active = np.arange(4)
        include = np.zeros((4, system.n), dtype=bool)
        engine = small_engine()
        try:
            acc, jerk = engine.acc_jerk_masked(
                system.pos[active], system.vel[active], system.pos,
                system.vel, system.mass, EPS, include,
            )
        finally:
            engine.close()
        assert not acc.any() and not jerk.any()

    def test_masked_shape_mismatch_rejected(self):
        system = make_system(n=8)
        engine = small_engine()
        try:
            with pytest.raises(ValueError):
                engine.acc_jerk_masked(
                    system.pos[:2], system.vel[:2], system.pos, system.vel,
                    system.mass, EPS, np.ones((3, 8), dtype=bool),
                )
        finally:
            engine.close()

    def test_collision_candidates_match_reference(self):
        rng = np.random.default_rng(42)
        n = 200
        pos = rng.normal(size=(n, 3))
        radii = rng.uniform(0.05, 0.2, n)  # dense enough to overlap
        active = np.arange(0, n, 3)
        ref = _find_collision_pairs_reference(pos, radii, active)
        got = find_collision_pairs(pos, radii, active)
        assert got == ref
        assert len(ref) > 0  # the workload must actually produce pairs
        engine = small_engine()
        try:
            rows, cols = engine.collision_candidates(pos, radii, active)
        finally:
            engine.close()
        assert _dedup_pairs(active, rows, cols) == ref

    def test_collision_candidates_empty(self):
        engine = small_engine()
        try:
            rows, cols = engine.collision_candidates(
                np.zeros((4, 3)) + np.arange(4)[:, None] * 10.0,
                np.full(4, 1e-3), np.arange(4),
            )
        finally:
            engine.close()
        assert rows.size == 0 and cols.size == 0


class TestDispatchAndConfig:
    def test_heuristic_small_block_uses_reference(self):
        engine = KernelEngine(EngineConfig(accel_min_pairs=4096))
        try:
            spec = reg.select_kernel("acc_jerk", 2, 8, engine)
            assert spec.name == "reference"
            spec = reg.select_kernel("acc_jerk", 64, 8192, engine)
            assert spec.name == "accel"
        finally:
            engine.close()

    def test_dispatch_caches_pick_per_bucket(self, workload):
        system, active = workload
        engine = small_engine(accel_min_pairs=1)
        try:
            engine.acc_jerk_active(system, active, 0.0, EPS)
            pick = engine.cached_pick("acc_jerk_active", active.size, system.n)
            assert pick is not None and pick.name == "fused"
        finally:
            engine.close()

    def test_autotune_caches_winner(self, workload):
        system, active = workload
        engine = small_engine(autotune=True)
        try:
            acc, jerk = engine.acc_jerk_active(system, active, 5e-4, EPS)
            pick = engine.cached_pick("acc_jerk_active", active.size, system.n)
            assert pick is not None
            ref = reg.REGISTRY[("acc_jerk_active", "reference")]
            acc_r, jerk_r = run_spec(ref, engine, system, active)
            assert norm_close(acc, acc_r)
        finally:
            engine.close()

    def test_from_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_TILE_BUDGET", "65536")
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "3")
        monkeypatch.setenv("REPRO_KERNEL_JCHUNK", "512")
        monkeypatch.setenv("REPRO_KERNEL_AUTOTUNE", "1")
        cfg = EngineConfig.from_env()
        assert cfg.tile_budget == 65536
        assert cfg.threads == 3
        assert cfg.j_chunk == 512
        assert cfg.autotune is True

    def test_from_env_ignores_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_TILE_BUDGET", "banana")
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "")
        cfg = EngineConfig.from_env(threads=2)
        assert cfg.tile_budget == EngineConfig.tile_budget
        assert cfg.threads == 2

    def test_get_engine_singleton(self):
        assert get_engine() is get_engine()


class TestMetricsBinding:
    def test_kernel_metrics_flow(self, workload):
        from repro.obs import Observability

        system, active = workload
        obs = Observability()
        engine = small_engine()
        try:
            engine.observe(obs)
            engine.acc_jerk_active(system, active, 5e-4, EPS)
        finally:
            engine.close()
        snap = obs.metrics.snapshot()
        assert snap["kernel.calls_total"] >= 1
        assert snap["kernel.tile_bytes_total"] > 0
        assert snap["kernel.threads"] == engine.config.threads
        assert snap["kernel.workspace_bytes"] == engine.workspace_bytes
        assert engine.workspace_bytes > 0
