"""Tests for the tree/direct hybrid neighbour-scheme backend.

The contract under test (see ``docs/HYBRID.md``):

* the near/far partition is *exact* — at ``theta = 0`` the hybrid
  reproduces direct summation to summation-order rounding, for any
  ``r_neighbour``;
* for finite theta the per-particle acceleration error is bounded by
  the documented ``0.1 * theta**2`` envelope on Plummer-like clusters;
* the near field inherits the accel engine's fixed-order reduction, so
  serial and threaded runs are bit-identical;
* per-particle ``h_nb`` radii override the backend default and survive
  snapshot round trips.
"""

import numpy as np
import pytest

from conftest import make_random_cluster

from repro.accel import EngineConfig, KernelEngine
from repro.core import (
    HostDirectBackend,
    KeplerField,
    Simulation,
    TimestepParams,
    energy,
)
from repro.errors import ConfigurationError
from repro.hybrid import HybridBackend
from repro.planetesimal import PlanetesimalDiskConfig, build_disk_system

EPS = 0.01


def fresh_disk(n=28, seed=77):
    return build_disk_system(PlanetesimalDiskConfig(n_planetesimals=n, seed=seed))


@pytest.fixture(scope="module")
def cluster():
    return make_random_cluster(200, seed=9)


@pytest.fixture(scope="module")
def direct_forces(cluster):
    backend = HostDirectBackend(eps=EPS)
    active = np.arange(cluster.n)
    return backend.forces_on(cluster, active, 0.0)


def per_particle_err(a, a_ref):
    return np.linalg.norm(a - a_ref, axis=1) / np.linalg.norm(a_ref, axis=1)


class TestConfig:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            HybridBackend(eps=-1.0)
        with pytest.raises(ConfigurationError):
            HybridBackend(eps=0.01, theta=-0.5)
        with pytest.raises(ConfigurationError):
            HybridBackend(eps=0.01, r_neighbour=-0.1)


class TestForceSplit:
    def test_theta_zero_matches_direct(self, cluster, direct_forces):
        """theta = 0 degrades to exact direct summation."""
        a_d, j_d = direct_forces
        backend = HybridBackend(eps=EPS, theta=0.0, r_neighbour=0.3)
        a_h, j_h = backend.forces_on(cluster, np.arange(cluster.n), 0.0)
        assert per_particle_err(a_h, a_d).max() < 1e-13
        assert per_particle_err(j_h, j_d).max() < 1e-12

    def test_partition_is_exact_for_any_radius(self, cluster):
        """Moving pairs between near and far field changes only the
        summation order — never which pairs are summed."""
        active = np.arange(cluster.n)
        results = []
        for rnb in (0.0, 0.3, 1.0):
            backend = HybridBackend(eps=EPS, theta=0.0, r_neighbour=rnb)
            results.append(backend.forces_on(cluster, active, 0.0))
        (a0, j0), (a1, j1), (a2, j2) = results
        assert np.allclose(a0, a1, rtol=1e-12, atol=1e-18)
        assert np.allclose(a0, a2, rtol=1e-12, atol=1e-18)
        assert np.allclose(j0, j1, rtol=1e-11, atol=1e-18)
        assert np.allclose(j0, j2, rtol=1e-11, atol=1e-18)

    @pytest.mark.parametrize("theta", [0.3, 0.5, 0.8])
    def test_acc_error_within_documented_bound(self, cluster, direct_forces,
                                               theta):
        """Per-particle acceleration error <= 0.1 * theta**2 (HYBRID.md)."""
        a_d, _ = direct_forces
        backend = HybridBackend(eps=EPS, theta=theta, r_neighbour=0.3)
        a_h, _ = backend.forces_on(cluster, np.arange(cluster.n), 0.0)
        assert per_particle_err(a_h, a_d).max() <= 0.1 * theta**2

    def test_near_field_engaged_and_counted(self, cluster):
        backend = HybridBackend(eps=EPS, theta=0.5, r_neighbour=0.3)
        active = np.arange(cluster.n)
        backend.forces_on(cluster, active, 0.0)
        assert backend.builds == 1
        assert backend.near_interactions > 0
        assert backend.far_interactions > 0
        # cross-backend comparability: counter books the direct-sum load
        assert backend.counter.force_interactions == cluster.n * cluster.n

    def test_potential_is_exact(self, cluster):
        hybrid = HybridBackend(eps=EPS, theta=0.8)
        direct = HostDirectBackend(eps=EPS)
        assert np.array_equal(hybrid.potential(cluster),
                              direct.potential(cluster))


class TestDeterminism:
    def _engine(self, threads):
        return KernelEngine(EngineConfig(threads=threads, j_chunk=64,
                                         parallel_pairs=1))

    def test_serial_vs_threaded_bit_identical_forces(self, cluster):
        serial = self._engine(1)
        threaded = self._engine(4)
        active = np.arange(cluster.n)
        try:
            b1 = HybridBackend(eps=EPS, theta=0.5, r_neighbour=0.3,
                               engine=serial)
            b4 = HybridBackend(eps=EPS, theta=0.5, r_neighbour=0.3,
                               engine=threaded)
            a1, j1 = b1.forces_on(cluster, active, 0.0)
            a4, j4 = b4.forces_on(cluster, active, 0.0)
        finally:
            serial.close()
            threaded.close()
        assert np.array_equal(a1, a4)
        assert np.array_equal(j1, j4)

    def test_serial_vs_threaded_bit_identical_run(self):
        def run(threads):
            engine = self._engine(threads)
            try:
                sys_ = fresh_disk()
                sys_.h_nb[:] = 0.5
                backend = HybridBackend(eps=0.008, theta=0.4,
                                        r_neighbour=0.05, engine=engine)
                sim = Simulation(sys_, backend,
                                 external_field=KeplerField(),
                                 timestep_params=TimestepParams())
                sim.initialize()
                sim.evolve(2.0)
            finally:
                engine.close()
            return sys_

        s1 = run(1)
        s4 = run(4)
        assert np.array_equal(s1.pos, s4.pos)
        assert np.array_equal(s1.vel, s4.vel)


class TestEnergyDrift:
    def _drift(self, backend, t_end=4.0):
        sim = Simulation(fresh_disk(), backend,
                         external_field=KeplerField(),
                         timestep_params=TimestepParams())
        sim.initialize()
        e0 = energy(sim.system, 0.008, sim.external_field).total
        sim.evolve(t_end)
        sim.synchronize(t_end)
        e1 = energy(sim.system, 0.008, sim.external_field).total
        return abs(e1 - e0) / abs(e0)

    def test_drift_within_twice_direct(self):
        d_direct = self._drift(HostDirectBackend(eps=0.008))
        d_hybrid = self._drift(
            HybridBackend(eps=0.008, theta=0.5, r_neighbour=0.05)
        )
        assert d_hybrid <= max(2.0 * d_direct, 1e-10)


class TestNeighbourRadii:
    def test_h_nb_overrides_backend_default(self, cluster):
        active = np.arange(cluster.n)
        tiny = HybridBackend(eps=EPS, theta=0.0, r_neighbour=1e-3)
        tiny.forces_on(cluster, active, 0.0)
        sys_ = cluster.copy()
        sys_.h_nb[:] = 0.6
        wide = HybridBackend(eps=EPS, theta=0.0, r_neighbour=1e-3)
        wide.forces_on(sys_, active, 0.0)
        assert wide.near_interactions > tiny.near_interactions

    def test_h_nb_snapshot_round_trip(self, tmp_path):
        from repro.core.snapshots import load_snapshot, save_snapshot

        sys_ = fresh_disk(n=12, seed=3)
        sys_.h_nb[:] = np.linspace(0.0, 0.4, sys_.n)
        path = save_snapshot(tmp_path / "snap.npz", sys_)
        loaded, _ = load_snapshot(path)
        assert np.array_equal(loaded.h_nb, sys_.h_nb)

    def test_legacy_snapshot_defaults_to_zero(self, tmp_path):
        """Snapshots written before h_nb existed load with h_nb = 0."""
        from repro.core.snapshots import load_snapshot, save_snapshot

        sys_ = fresh_disk(n=12, seed=3)
        path = save_snapshot(tmp_path / "snap.npz", sys_)
        # simulate an old file by stripping the optional array
        data = dict(np.load(path, allow_pickle=False))
        meta = data.pop("__metadata__", None)
        data.pop("h_nb")
        if meta is not None:
            data["__metadata__"] = meta
        np.savez(path, **data)
        loaded, _ = load_snapshot(path)
        assert np.all(loaded.h_nb == 0.0)

    def test_negative_h_nb_rejected(self):
        from repro.errors import ParticleError

        sys_ = fresh_disk(n=12, seed=3)
        sys_.h_nb[0] = -0.1
        with pytest.raises(ParticleError):
            sys_.validate()


class TestNeighboursOf:
    def test_matches_bruteforce(self):
        sys_ = fresh_disk(n=30, seed=6)
        backend = HybridBackend(eps=0.008, theta=0.5)
        active = np.arange(sys_.n)
        res = backend.neighbours_of(sys_, active, 0.0, h=2.0)
        for i in range(sys_.n):
            d = np.linalg.norm(sys_.pos - sys_.pos[i], axis=1)
            d[i] = np.inf
            expect = set(sys_.key[d < 2.0].tolist())
            assert set(res.lists[i].tolist()) == expect
            assert res.nearest_key[i] == sys_.key[np.argmin(d)]


class TestObservability:
    def test_hybrid_metrics_emitted(self):
        from repro.obs import Observability

        obs = Observability()
        backend = HybridBackend(eps=0.008, theta=0.4, r_neighbour=0.05)
        sim = Simulation(fresh_disk(), backend,
                         external_field=KeplerField(),
                         timestep_params=TimestepParams(), obs=obs)
        sim.initialize()
        sim.evolve(2.0)
        snap = obs.metrics.snapshot()
        assert snap["hybrid.tree_builds_total"] == backend.builds
        assert snap["hybrid.far_interactions_total"] == backend.far_interactions
        assert snap["hybrid.near_interactions_total"] == backend.near_interactions
        assert snap["hybrid.theta"] == pytest.approx(0.4)
        assert snap["hybrid.tree_seconds"] > 0.0

    def test_report_renders_hybrid_split(self):
        from repro.obs.report import hybrid_breakdown, render_time_breakdown

        metrics = {
            "hybrid.tree_seconds": 0.75,
            "hybrid.direct_seconds": 0.25,
            "hybrid.near_interactions_total": 123,
            "hybrid.far_interactions_total": 456,
            "hybrid.tree_builds_total": 7,
        }
        bd = hybrid_breakdown(metrics)
        assert bd is not None and bd.total_seconds == pytest.approx(1.0)
        text = render_time_breakdown(metrics)
        assert "t_tree" in text and "t_direct" in text
        assert "tree rebuilds" in text

    def test_no_hybrid_metrics_renders_nothing(self):
        from repro.obs.report import hybrid_breakdown

        assert hybrid_breakdown({}) is None
