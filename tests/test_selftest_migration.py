"""Tests for the GRAPE self-test and migration tracking."""

import numpy as np
import pytest

from repro.core import HostDirectBackend, KeplerField, Simulation, TimestepParams
from repro.errors import ConfigurationError, GrapeError
from repro.grape import Grape6Config, Grape6Machine, self_test
from repro.planetesimal import (
    MigrationTracker,
    PlanetesimalDiskConfig,
    Protoplanet,
    build_disk_system,
)


class TestSelfTest:
    def test_healthy_machine_passes(self):
        m = Grape6Machine(Grape6Config.scaled_down(), eps=0.01, mode="hierarchy")
        report = self_test(m)
        assert report.all_ok
        assert report.n_tested == Grape6Config.scaled_down().total_chips
        assert "PASS" in report.summary()

    def test_flat_machine_rejected(self):
        m = Grape6Machine(Grape6Config.single_board(), eps=0.01, mode="flat")
        with pytest.raises(GrapeError):
            self_test(m)

    def test_dead_chip_reported_but_not_failed(self):
        m = Grape6Machine(Grape6Config.scaled_down(), eps=0.01, mode="hierarchy")
        m.clusters[0].nodes[0].boards[0].chips[0].pipelines.mask_pipelines(6)
        report = self_test(m)
        assert report.all_ok  # a masked chip is a known state, not a fault
        dead = [c for c in report.chips if c.active_pipelines == 0]
        assert len(dead) == 1

    def test_precision_machine_needs_loose_tolerance(self):
        m = Grape6Machine(
            Grape6Config.scaled_down(), eps=0.01, mode="hierarchy",
            emulate_precision=True,
        )
        strict = self_test(m, rel_tol=1e-10)
        assert not strict.all_ok  # rounding looks like a fault to a strict test
        loose = self_test(m, rel_tol=1e-2)
        assert loose.all_ok

    def test_reload_after_selftest_restores_operation(self):
        """Self-test trashes j-memory; a reload must fully recover."""
        sys_ = build_disk_system(PlanetesimalDiskConfig(n_planetesimals=20, seed=5))
        m = Grape6Machine(Grape6Config.scaled_down(), eps=0.008, mode="hierarchy")
        m.load(sys_)
        ref, _ = m.compute_block(sys_, np.arange(5), 0.0)
        self_test(m)
        m.load(sys_)
        again, _ = m.compute_block(sys_, np.arange(5), 0.0)
        assert np.allclose(ref, again, rtol=1e-13)


class TestMigration:
    def make_sim(self, disk_mass=None, n=200, seed=61):
        proto = Protoplanet(mass=3e-4, radius_au=25.0, phase=0.0)
        kwargs = {}
        if disk_mass is not None:
            kwargs["total_mass"] = disk_mass
        config = PlanetesimalDiskConfig(
            n_planetesimals=n, r_inner=22.0, r_outer=28.0, e_rms=0.01,
            protoplanets=[proto], seed=seed, **kwargs,
        )
        system = build_disk_system(config)
        sim = Simulation(
            system, HostDirectBackend(eps=0.05),
            external_field=KeplerField(),
            timestep_params=TimestepParams(eta=0.03, dt_max=2.0),
        )
        sim.initialize()
        return sim, int(system.key[n])  # the protoplanet's key

    def test_tracker_requires_keys(self):
        with pytest.raises(ConfigurationError):
            MigrationTracker([])

    def test_tracker_requires_samples(self):
        sim, key = self.make_sim(n=20)
        tr = MigrationTracker([key])
        tr.sample(sim)
        with pytest.raises(ConfigurationError):
            tr.record(key)

    def test_missing_key_detected(self):
        sim, key = self.make_sim(n=20)
        tr = MigrationTracker([key + 999])
        with pytest.raises(ConfigurationError):
            tr.sample(sim)

    def test_no_disk_no_migration(self):
        """A protoplanet alone on a circular orbit stays put."""
        sim, key = self.make_sim(n=1, disk_mass=1e-30)
        tr = MigrationTracker([key])
        tr.sample(sim)
        sim.evolve(500.0)
        tr.sample(sim)
        rec = tr.record(key)
        assert abs(rec.da) < 1e-6

    def test_massive_disk_moves_the_protoplanet(self):
        """Scattering a massive ring produces measurable a-drift
        (planetesimal-driven migration)."""
        sim, key = self.make_sim(disk_mass=5e-4, n=200)
        tr = MigrationTracker([key])
        tr.sample(sim)
        for t in (300.0, 600.0, 1000.0):
            sim.evolve(t)
            tr.sample(sim)
        rec = tr.record(key)
        assert abs(rec.da) > 1e-4
        assert rec.a_initial == pytest.approx(25.0, abs=0.01)
        # the fitted rate points the same way as the net drift
        assert np.sign(rec.rate) == np.sign(rec.da)
