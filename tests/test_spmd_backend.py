"""Tests for the SPMD force backend: equality, chaos, kill-and-resume.

The contract under test is the acceptance bar of the multiprocess
engine: a simulation driven by :class:`repro.parallel.SpmdBackend` is
**bit-identical** across serial, threaded, in-process-VM and
multiprocess execution, stays bit-identical under seeded rank kills,
and a run killed mid-flight resumes from its checkpoint to the exact
same final state.
"""

import numpy as np
import pytest

from repro.accel import EngineConfig, KernelEngine
from repro.core import KeplerField, Simulation, TimestepParams
from repro.errors import ConfigurationError, SimulationKilled
from repro.parallel import ProcConfig, SpmdBackend
from repro.planetesimal import PlanetesimalDiskConfig, build_disk_system
from repro.resilience import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.runio import ProductionRun
from repro.serve.worker import state_digest


def forced_engine(threads: int = 1) -> KernelEngine:
    """An engine that always takes the fused chunk path (the reference
    kernels are a different summation order at small shapes)."""
    return KernelEngine(
        EngineConfig(
            threads=threads,
            accel_min_pairs=1,
            parallel_pairs=1,
            j_chunk=64,
        )
    )


def make_spmd_sim(backend, n=24, seed=5, dt_max=0.5) -> Simulation:
    system = build_disk_system(
        PlanetesimalDiskConfig(n_planetesimals=n, seed=seed)
    )
    sim = Simulation(
        system,
        backend,
        external_field=KeplerField(),
        timestep_params=TimestepParams(eta=0.02, dt_max=dt_max),
    )
    sim.initialize()
    return sim


def run_and_digest(backend, t_end=2.0):
    sim = make_spmd_sim(backend)
    sim.evolve(t_end)
    digest = state_digest(sim.system, sim.time, sim.block_steps)
    if hasattr(backend, "close"):
        backend.close()
    return digest


class TestBackendConstruction:
    def test_rejects_bad_mode(self):
        with pytest.raises(ConfigurationError, match="mode"):
            SpmdBackend(0.01, mode="threads")

    def test_rejects_bad_route(self):
        with pytest.raises(ConfigurationError, match="route"):
            SpmdBackend(0.01, route="mesh")

    def test_rejects_negative_eps(self):
        with pytest.raises(ValueError):
            SpmdBackend(-1.0)


class TestBitIdentity:
    """serial == threaded == vm == multiprocess, to the last bit."""

    def test_force_evaluation_identical_across_modes(self, rng):
        n = 150
        system = build_disk_system(
            PlanetesimalDiskConfig(n_planetesimals=n, seed=9)
        )
        sim = make_spmd_sim(SpmdBackend(0.008, mode="serial",
                                        engine=forced_engine()), n=n, seed=9)
        system = sim.system
        active = np.arange(0, system.n, 2)
        t_now = float(system.t.max()) + 1e-3

        results = {}
        for label, backend in (
            ("serial", SpmdBackend(0.008, mode="serial",
                                   engine=forced_engine())),
            ("threaded", SpmdBackend(0.008, mode="serial",
                                     engine=forced_engine(threads=4))),
            ("vm", SpmdBackend(0.008, n_ranks=3, mode="vm",
                               engine=forced_engine())),
            ("proc", SpmdBackend(0.008, n_ranks=3, mode="proc",
                                 engine=forced_engine())),
            ("proc-ring", SpmdBackend(0.008, n_ranks=3, mode="proc",
                                      route="ring",
                                      engine=forced_engine())),
        ):
            backend.load(system)
            results[label] = backend.forces_on(system, active, t_now)
            if hasattr(backend, "close"):
                backend.close()

        acc0, jerk0 = results["serial"]
        for label, (acc, jerk) in results.items():
            assert np.array_equal(acc, acc0), label
            assert np.array_equal(jerk, jerk0), label

    def test_simulation_digest_identical_across_modes(self):
        digests = {
            mode: run_and_digest(
                SpmdBackend(0.008, n_ranks=2, mode=mode,
                            engine=forced_engine())
            )
            for mode in ("serial", "vm", "proc")
        }
        assert len(set(digests.values())) == 1, digests

    def test_proc_exposes_run_stats(self):
        backend = SpmdBackend(0.008, n_ranks=2, engine=forced_engine())
        sim = make_spmd_sim(backend)
        sim.evolve(1.0)
        assert backend.last_result is not None
        assert backend.last_result.supersteps >= 1
        assert backend.counter.force_calls == sim.block_steps + 1  # +init
        backend.close()


class TestChaosBitIdentity:
    """Seeded rank kills mid-simulation recover to the same bits."""

    def test_rank_kill_chaos_is_bit_identical(self):
        clean = run_and_digest(
            SpmdBackend(0.008, n_ranks=2, engine=forced_engine())
        )
        # one rank killed at superstep 3 (mid-run), one stalled later;
        # supervision must restart/replay without changing any bit
        plan = FaultPlan(
            [
                FaultSpec(FaultKind.RANK_KILL, at_block=2, target=1),
                FaultSpec(FaultKind.MSG_DELAY, at_block=4,
                          target=0, params={"seconds": 0.05}),
            ],
            seed=13,
        )
        chaotic_backend = SpmdBackend(
            0.008,
            n_ranks=2,
            engine=forced_engine(),
            injector=FaultInjector(plan),
            config=ProcConfig(op_timeout=30.0, lease_seconds=3.0),
        )
        chaotic = run_and_digest(chaotic_backend)
        assert chaotic == clean
        assert plan.n_pending == 0  # both faults actually fired

    def test_rank_kill_stats_reported(self):
        plan = FaultPlan(
            [FaultSpec(FaultKind.RANK_KILL, at_block=2, target=0)], seed=1
        )
        backend = SpmdBackend(
            0.008, n_ranks=2, engine=forced_engine(),
            injector=FaultInjector(plan),
            config=ProcConfig(op_timeout=30.0, lease_seconds=3.0),
        )
        sim = make_spmd_sim(backend)
        sim.evolve(2.0)
        deaths = backend._proc and backend._proc.supersteps
        assert deaths is not None  # engine lived through the run
        assert plan.n_pending == 0
        backend.close()


class TestSpmdKillAndResume:
    """Satellite: SIGKILL a rank mid-superstep AND kill the host run,
    then resume from the checkpoint — final snapshot bit-identical."""

    def _managed(self, tmp_path, name, backend, on_block=None):
        system = build_disk_system(
            PlanetesimalDiskConfig(n_planetesimals=24, seed=5)
        )
        sim = Simulation(
            system,
            backend,
            external_field=KeplerField(),
            timestep_params=TimestepParams(eta=0.02, dt_max=0.5),
        )
        sim.initialize()
        return ProductionRun(
            sim,
            tmp_path / name,
            snapshot_interval=2.0,
            diagnostics_interval=2.0,
            checkpoint_interval=3,
            run_id="spmd-ck",
            on_block=on_block,
        )

    def test_resume_is_bit_identical(self, tmp_path):
        ref = self._managed(
            tmp_path, "ref",
            SpmdBackend(0.008, n_ranks=2, engine=forced_engine()),
        )
        ref_report = ref.execute(t_end=4.0)
        ref_digest = state_digest(
            ref.sim.system, ref_report.t_final, ref_report.block_steps
        )

        # chaos on the way down: a rank SIGKILL mid-superstep (recovered
        # by the supervisor) and then a host kill (recovered from the
        # checkpoint)
        plan = FaultPlan(
            [FaultSpec(FaultKind.RANK_KILL, at_block=4, target=1)], seed=2
        )
        blocks = [0]

        def killer(s):
            blocks[0] += 1
            if blocks[0] == 6:
                raise SimulationKilled("power cut")

        run = self._managed(
            tmp_path, "killed",
            SpmdBackend(
                0.008, n_ranks=2, engine=forced_engine(),
                injector=FaultInjector(plan),
                config=ProcConfig(op_timeout=30.0, lease_seconds=3.0),
            ),
            on_block=killer,
        )
        with pytest.raises(SimulationKilled):
            run.execute(t_end=4.0)
        assert run.checkpoints_written >= 1
        assert plan.n_pending == 0  # the rank kill fired before the host kill

        resumed = ProductionRun.resume(
            tmp_path / "killed",
            SpmdBackend(0.008, n_ranks=2, engine=forced_engine()),
            external_field=KeplerField(),
            timestep_params=TimestepParams(eta=0.02, dt_max=0.5),
        )
        assert resumed.sim.time < 4.0
        report = resumed.execute()
        digest = state_digest(
            resumed.sim.system, report.t_final, report.block_steps
        )
        assert digest == ref_digest
        assert np.array_equal(resumed.sim.system.pos, ref.sim.system.pos)
        assert np.array_equal(resumed.sim.system.vel, ref.sim.system.vel)


class TestCLISpmdBackend:
    def test_run_with_spmd_backend(self, capsys):
        from repro.cli import main

        assert main([
            "run", "--backend", "spmd", "--ranks", "2",
            "--n", "24", "--t-end", "0.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "particles" in out

    def test_spmd_metadata_checkpointed(self, tmp_path, capsys):
        from repro.cli import main
        from repro.resilience import CheckpointManager

        d = tmp_path / "rundir"
        assert main([
            "run", "--backend", "spmd", "--ranks", "2",
            "--spmd-mode", "vm", "--n", "16", "--t-end", "2",
            "--dt-max", "0.25", "--checkpoint-interval", "4",
            "--run-dir", str(d),
        ]) == 0
        capsys.readouterr()
        _, state = CheckpointManager(d / "checkpoints").load_latest()
        cfg = state.get("config", {})
        assert cfg.get("backend") == "spmd"
        assert cfg.get("ranks") == 2
        assert cfg.get("spmd_mode") == "vm"
        # and the resume path rebuilds the spmd backend from that config
        assert main(["run", "--resume", str(d)]) == 0
        assert "production run complete" in capsys.readouterr().out
