"""Tests for link models, network boards, and node/cluster structure."""

import numpy as np
import pytest

from repro.core.forces import acc_jerk
from repro.errors import ConfigurationError, GrapeLinkError
from repro.grape.board import ProcessorBoard
from repro.grape.cluster import Cluster, Node
from repro.grape.host import HostInterface
from repro.grape.links import Link, gbe_link, lvds_link, pci_link
from repro.grape.network import NetworkBoard, NetworkMode


class TestLink:
    def test_transfer_time(self):
        link = Link("x", bandwidth_bytes_per_s=1e6, latency_s=1e-3)
        assert link.transfer_time(1000) == pytest.approx(1e-3 + 1e-3)

    def test_transfer_accumulates(self):
        link = Link("x", 1e6, 0.0)
        link.transfer(500)
        link.transfer(500)
        assert link.bytes_total == 1000
        assert link.messages == 2

    def test_reset(self):
        link = Link("x", 1e6, 0.0)
        link.transfer(100)
        link.reset()
        assert link.bytes_total == 0

    def test_negative_bytes_rejected(self):
        link = Link("x", 1e6, 0.0)
        with pytest.raises(GrapeLinkError):
            link.transfer(-1)

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(GrapeLinkError):
            Link("x", 0.0, 0.0)

    def test_paper_link_speeds(self):
        assert lvds_link().bandwidth == 90e6  # paper: 90 MB/s LVDS
        assert pci_link().bandwidth == 133e6
        assert gbe_link().bandwidth == 100e6


def make_boards(rng, n_boards=2, n_chips=2, n_particles=12, eps=0.01):
    boards = [ProcessorBoard(board_id=b, eps=eps, n_chips=n_chips) for b in range(n_boards)]
    p = {
        "key": np.arange(n_particles, dtype=np.int64),
        "mass": rng.uniform(0.1, 1, n_particles),
        "pos": rng.normal(size=(n_particles, 3)),
        "vel": rng.normal(size=(n_particles, 3)),
        "acc": np.zeros((n_particles, 3)),
        "jerk": np.zeros((n_particles, 3)),
        "t": np.zeros(n_particles),
    }
    return boards, p


class TestNetworkBoard:
    def test_max_downlinks(self, rng):
        boards, _ = make_boards(rng, n_boards=5)
        with pytest.raises(ConfigurationError):
            NetworkBoard(nb_id=0, targets=boards)

    def test_needs_targets(self):
        with pytest.raises(ConfigurationError):
            NetworkBoard(nb_id=0, targets=[])

    def test_load_splits_and_compute_sums(self, rng):
        boards, p = make_boards(rng, n_boards=2, n_particles=12)
        nb = NetworkBoard(nb_id=0, targets=boards)
        nb.load(**p)
        assert nb.n_resident == 12
        assert all(b.n_resident > 0 for b in boards)
        res = nb.compute(p["pos"][:4], p["vel"][:4], p["key"][:4], 0.0, 90e6)
        a_ref, _ = acc_jerk(
            p["pos"][:4], p["vel"][:4], p["pos"], p["vel"], p["mass"], 0.01,
            self_indices=np.arange(4),
        )
        assert np.allclose(res.acc, a_ref, rtol=1e-12, atol=1e-16)

    def test_broadcast_forbidden_in_p2p(self, rng):
        boards, _ = make_boards(rng)
        nb = NetworkBoard(nb_id=0, targets=boards, mode=NetworkMode.POINT_TO_POINT)
        with pytest.raises(GrapeLinkError):
            nb.broadcast_time(100)

    def test_broadcast_time_parallel_links(self, rng):
        boards, _ = make_boards(rng)
        nb = NetworkBoard(nb_id=0, targets=boards)
        t = nb.broadcast_time(90_000)
        # 90 kB at 90 MB/s = 1 ms (+ latency), regardless of target count
        assert t == pytest.approx(1e-3, rel=0.01)

    def test_cascade(self, rng):
        """NBs cascade: an NB of NBs reaches all boards (paper 4.3)."""
        boards, p = make_boards(rng, n_boards=4, n_particles=16)
        nb_lo1 = NetworkBoard(nb_id=1, targets=boards[:2])
        nb_lo2 = NetworkBoard(nb_id=2, targets=boards[2:])
        nb_top = NetworkBoard(nb_id=0, targets=[nb_lo1, nb_lo2])
        nb_top.load(**p)
        assert len(nb_top.descendants_boards()) == 4
        res = nb_top.compute(p["pos"][:3], p["vel"][:3], p["key"][:3], 0.0, 90e6)
        a_ref, _ = acc_jerk(
            p["pos"][:3], p["vel"][:3], p["pos"], p["vel"], p["mass"], 0.01,
            self_indices=np.arange(3),
        )
        assert np.allclose(res.acc, a_ref, rtol=1e-12, atol=1e-16)


class TestHostInterface:
    def test_pci_accounting(self):
        h = HostInterface()
        h.send_i_particles(100)
        h.receive_results(100)
        h.write_j_particles(10)
        assert h.pci.messages == 3
        assert h.pci.bytes_total == 100 * 56 + 100 * 56 + 10 * 88
        assert h.pci_seconds > 0

    def test_host_block_charge(self):
        h = HostInterface()
        t = h.charge_host_block(100)
        assert t > 0
        assert h.host_seconds == t

    def test_reset(self):
        h = HostInterface()
        h.send_i_particles(10)
        h.charge_host_block(10)
        h.reset_counters()
        assert h.host_seconds == 0.0
        assert h.pci.bytes_total == 0


class TestNodeCluster:
    def test_node_structure(self):
        node = Node(node_id=0, eps=0.01, boards_per_node=4, chips_per_board=2)
        assert node.n_chips == 8
        assert len(node.boards) == 4

    def test_cluster_force_correct(self, rng):
        nodes = [
            Node(node_id=k, eps=0.01, boards_per_node=2, chips_per_board=2)
            for k in range(2)
        ]
        cluster = Cluster(cluster_id=0, nodes=nodes)
        n = 20
        p = {
            "key": np.arange(n, dtype=np.int64),
            "mass": rng.uniform(0.1, 1, n),
            "pos": rng.normal(size=(n, 3)),
            "vel": rng.normal(size=(n, 3)),
            "acc": np.zeros((n, 3)),
            "jerk": np.zeros((n, 3)),
            "t": np.zeros(n),
        }
        cluster.load(**p)
        assert cluster.n_resident == n
        res = cluster.compute(p["pos"][:6], p["vel"][:6], p["key"][:6], 0.0, 90e6)
        a_ref, j_ref = acc_jerk(
            p["pos"][:6], p["vel"][:6], p["pos"], p["vel"], p["mass"], 0.01,
            self_indices=np.arange(6),
        )
        assert np.allclose(res.acc, a_ref, rtol=1e-12, atol=1e-16)
        assert np.allclose(res.jerk, j_ref, rtol=1e-12, atol=1e-16)

    def test_empty_cluster_rejected(self):
        with pytest.raises(ConfigurationError):
            Cluster(cluster_id=0, nodes=[])
