"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.n == 256
        assert args.backend == "host"

    def test_bad_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--backend", "warp"])


class TestInfo:
    def test_info_prints_paper_numbers(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "1,799,998" in out
        assert "29.5" in out
        assert "63.4" in out
        assert "2048 chips" in out


class TestPerf:
    def test_perf_full_system(self, capsys):
        assert main(["perf", "--block", "3000"]) == 0
        out = capsys.readouterr().out
        assert "2048 chips" in out
        assert "sustained:" in out
        assert "pipe" in out

    def test_perf_single_board(self, capsys):
        assert main(["perf", "--config", "board", "--n", "10000", "--block", "100"]) == 0
        out = capsys.readouterr().out
        assert "32 chips" in out


class TestSelfTest:
    def test_selftest_board(self, capsys):
        assert main(["selftest", "--config", "board"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "32/32" in out

    def test_selftest_precision(self, capsys):
        assert main(["selftest", "--config", "board", "--precision"]) == 0
        assert "PASS" in capsys.readouterr().out


class TestReport:
    def test_report_missing_dir(self, capsys, tmp_path):
        assert main(["report", "--results-dir", str(tmp_path / "none")]) == 1

    def test_report_prints_tables(self, capsys, tmp_path):
        d = tmp_path / "results"
        d.mkdir()
        (d / "a.txt").write_text("== T ==\nrow\n")
        assert main(["report", "--results-dir", str(d)]) == 0
        assert "== T ==" in capsys.readouterr().out


class TestRun:
    def test_run_host(self, capsys):
        assert main(["run", "--n", "32", "--t-end", "2"]) == 0
        out = capsys.readouterr().out
        assert "particles:        34" in out
        assert "energy error:" in out

    def test_run_grape(self, capsys):
        assert main(["run", "--n", "32", "--t-end", "2", "--backend", "grape"]) == 0
        out = capsys.readouterr().out
        assert "GRAPE model:" in out
        assert "Tflops" in out

    def test_run_tree(self, capsys):
        assert main(["run", "--n", "32", "--t-end", "1", "--backend", "tree"]) == 0
        out = capsys.readouterr().out
        assert "block steps:" in out

    def test_run_hybrid(self, capsys):
        assert main([
            "run", "--n", "32", "--t-end", "1",
            "--backend", "hybrid", "--theta", "0.4",
        ]) == 0
        out = capsys.readouterr().out
        assert "block steps:" in out

    def test_bad_theta_one_line_error(self, capsys):
        assert main([
            "run", "--n", "8", "--t-end", "1",
            "--backend", "hybrid", "--theta", "-2",
        ]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "theta" in err
        assert "Traceback" not in err


class TestRunObservability:
    def test_run_writes_trace_and_metrics(self, capsys, tmp_path):
        import json

        from repro.obs import parse_prometheus

        trace = tmp_path / "trace.json"
        prom = tmp_path / "metrics.prom"
        assert main([
            "run", "--n", "32", "--t-end", "2", "--backend", "grape",
            "--trace-out", str(trace), "--metrics-out", str(prom),
        ]) == 0
        out = capsys.readouterr().out
        assert "trace written:" in out
        assert "metrics written:" in out
        assert "t_pipe" in out  # breakdown rendered inline

        doc = json.loads(trace.read_text())
        assert any(e["ph"] == "X" and e["name"] == "block_step"
                   for e in doc["traceEvents"])
        series = parse_prometheus(prom)
        assert series["grape_pipeline_seconds"] > 0
        assert series["blockstep_total"] > 0

    def test_report_renders_metrics_breakdown(self, capsys, tmp_path):
        prom = tmp_path / "metrics.prom"
        main([
            "run", "--n", "32", "--t-end", "2", "--backend", "grape",
            "--metrics-out", str(prom),
        ])
        capsys.readouterr()
        assert main([
            "report", "--metrics", str(prom),
            "--results-dir", str(tmp_path / "none"),
        ]) == 0
        out = capsys.readouterr().out
        assert "GRAPE-6 time breakdown" in out
        assert "t_comm" in out


class TestReportErrorContract:
    def test_missing_metrics_exits_2(self, capsys, tmp_path):
        code = main(["report", "--metrics", str(tmp_path / "missing.prom")])
        assert code == 2
        assert "metrics file not found" in capsys.readouterr().err

    def test_truncated_metrics_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "torn.prom"
        bad.write_text("grape_pipeline_seconds 1.5\nthis is } not a sample\n")
        code = main(["report", "--metrics", str(bad)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_trace_exits_2(self, capsys, tmp_path):
        code = main(["report", "--trace", str(tmp_path / "missing.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_run_log_exits_2(self, capsys, tmp_path):
        code = main(["report", "--run-log", str(tmp_path)])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestProfileAndTrace:
    def test_run_profile_prints_top_table(self, capsys):
        assert main(["run", "--n", "32", "--t-end", "2", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "Phase profile (wall clock)" in out
        assert "block_step" in out
        assert "self_share" in out

    def test_report_trace_renders_profile(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        main(["run", "--n", "32", "--t-end", "2", "--trace-out", str(trace)])
        capsys.readouterr()
        assert main([
            "report", "--trace", str(trace),
            "--results-dir", str(tmp_path / "none"),
        ]) == 0
        out = capsys.readouterr().out
        assert "Phase profile (wall clock)" in out

    def test_report_run_log_health(self, capsys, tmp_path):
        run_dir = tmp_path / "mrun"
        main([
            "run", "--n", "32", "--t-end", "2", "--run-dir", str(run_dir),
            "--diagnostics-interval", "0.5",
        ])
        capsys.readouterr()
        assert main([
            "report", "--run-log", str(run_dir),
            "--results-dir", str(tmp_path / "none"),
        ]) == 0
        out = capsys.readouterr().out
        assert "health" in out  # clean-run note or events table


class TestTop:
    def test_top_once_on_finished_run(self, capsys, tmp_path):
        run_dir = tmp_path / "mrun"
        main([
            "run", "--n", "32", "--t-end", "2", "--run-dir", str(run_dir),
            "--diagnostics-interval", "0.5", "--checkpoint-interval", "2",
        ])
        capsys.readouterr()
        assert main(["top", str(run_dir), "--once"]) == 0
        out = capsys.readouterr().out
        assert "run disk-n32" in out
        assert "[run complete]" in out
        assert "checkpoint=" in out

    def test_top_missing_log_exits_2(self, capsys, tmp_path):
        assert main(["top", str(tmp_path), "--once"]) == 2
        assert "error:" in capsys.readouterr().err


class TestPerfHistoryCommands:
    def _seed_history(self, root, slow_factor=1.0):
        import copy

        from repro.obs import BenchHistory

        base = {
            "benchmark": "kernels",
            "entries": [
                {
                    "op": "acc_jerk", "kernel": "tiled",
                    "n_active": 64, "n_source": 4096,
                    "best_seconds": 0.5,
                    "samples_seconds": [0.5, 0.505, 0.51],
                    "repeats": 3,
                }
            ],
        }
        current = copy.deepcopy(base)
        for e in current["entries"]:
            e["best_seconds"] *= slow_factor
            e["samples_seconds"] = [s * slow_factor
                                    for s in e["samples_seconds"]]
        hist = BenchHistory(root)
        hist.append(base)
        hist.append(current)
        return base

    def test_diff_detects_injected_slowdown(self, capsys, tmp_path):
        self._seed_history(tmp_path / "h", slow_factor=1.20)
        code = main(["perf", "diff", "--history", str(tmp_path / "h")])
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSION" in out

    def test_diff_identical_passes(self, capsys, tmp_path):
        self._seed_history(tmp_path / "h", slow_factor=1.0)
        assert main(["perf", "diff", "--history", str(tmp_path / "h")]) == 0
        assert "REGRESSION" not in capsys.readouterr().out

    def test_diff_empty_history_is_friendly(self, capsys, tmp_path):
        assert main(["perf", "diff", "--history", str(tmp_path / "h")]) == 0
        assert "no benchmark history" in capsys.readouterr().out

    def test_diff_explicit_documents(self, capsys, tmp_path):
        import json as _json

        base = self._seed_history(tmp_path / "h")
        slow = {**base, "entries": [
            {**base["entries"][0],
             "best_seconds": 0.7, "samples_seconds": [0.7, 0.71, 0.72]}]}
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(_json.dumps(base))
        b.write_text(_json.dumps(slow))
        code = main(["perf", "diff", "--baseline", str(a),
                     "--current", str(b)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_diff_baseline_without_current_rejected(self, capsys, tmp_path):
        code = main(["perf", "diff", "--baseline", "x.json"])
        assert code == 2
        assert "together" in capsys.readouterr().err

    def test_trend_renders_trajectory(self, capsys, tmp_path):
        self._seed_history(tmp_path / "h", slow_factor=1.5)
        assert main(["perf", "trend", "--history", str(tmp_path / "h")]) == 0
        out = capsys.readouterr().out
        assert "Benchmark trend: kernels" in out
        assert "1.500" in out

    def test_gate_fails_on_regression(self, capsys, tmp_path):
        import json as _json

        base = self._seed_history(tmp_path / "h", slow_factor=1.25)
        baseline = tmp_path / "BENCH_kernels.json"
        baseline.write_text(_json.dumps(base))
        code = main([
            "perf", "gate", "--history", str(tmp_path / "h"),
            "--baseline", str(baseline),
        ])
        assert code == 1
        assert "gate FAILED" in capsys.readouterr().out

    def test_gate_passes_identical(self, capsys, tmp_path):
        import json as _json

        base = self._seed_history(tmp_path / "h", slow_factor=1.0)
        baseline = tmp_path / "BENCH_kernels.json"
        baseline.write_text(_json.dumps(base))
        code = main([
            "perf", "gate", "--history", str(tmp_path / "h"),
            "--baseline", str(baseline),
        ])
        assert code == 0
        assert "gate passed" in capsys.readouterr().out

    def test_gate_skips_without_history(self, capsys, tmp_path):
        import json as _json

        baseline = tmp_path / "BENCH_kernels.json"
        baseline.write_text(_json.dumps({"benchmark": "kernels",
                                         "entries": []}))
        code = main([
            "perf", "gate", "--history", str(tmp_path / "empty"),
            "--baseline", str(baseline),
        ])
        assert code == 0
        assert "advisory" in capsys.readouterr().out

    def test_plain_perf_still_works(self, capsys):
        assert main(["perf", "--block", "3000"]) == 0
        assert "sustained:" in capsys.readouterr().out
