"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.n == 256
        assert args.backend == "host"

    def test_bad_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--backend", "warp"])


class TestInfo:
    def test_info_prints_paper_numbers(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "1,799,998" in out
        assert "29.5" in out
        assert "63.4" in out
        assert "2048 chips" in out


class TestPerf:
    def test_perf_full_system(self, capsys):
        assert main(["perf", "--block", "3000"]) == 0
        out = capsys.readouterr().out
        assert "2048 chips" in out
        assert "sustained:" in out
        assert "pipe" in out

    def test_perf_single_board(self, capsys):
        assert main(["perf", "--config", "board", "--n", "10000", "--block", "100"]) == 0
        out = capsys.readouterr().out
        assert "32 chips" in out


class TestSelfTest:
    def test_selftest_board(self, capsys):
        assert main(["selftest", "--config", "board"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "32/32" in out

    def test_selftest_precision(self, capsys):
        assert main(["selftest", "--config", "board", "--precision"]) == 0
        assert "PASS" in capsys.readouterr().out


class TestReport:
    def test_report_missing_dir(self, capsys, tmp_path):
        assert main(["report", "--results-dir", str(tmp_path / "none")]) == 1

    def test_report_prints_tables(self, capsys, tmp_path):
        d = tmp_path / "results"
        d.mkdir()
        (d / "a.txt").write_text("== T ==\nrow\n")
        assert main(["report", "--results-dir", str(d)]) == 0
        assert "== T ==" in capsys.readouterr().out


class TestRun:
    def test_run_host(self, capsys):
        assert main(["run", "--n", "32", "--t-end", "2"]) == 0
        out = capsys.readouterr().out
        assert "particles:        34" in out
        assert "energy error:" in out

    def test_run_grape(self, capsys):
        assert main(["run", "--n", "32", "--t-end", "2", "--backend", "grape"]) == 0
        out = capsys.readouterr().out
        assert "GRAPE model:" in out
        assert "Tflops" in out

    def test_run_tree(self, capsys):
        assert main(["run", "--n", "32", "--t-end", "1", "--backend", "tree"]) == 0
        out = capsys.readouterr().out
        assert "block steps:" in out

    def test_run_hybrid(self, capsys):
        assert main([
            "run", "--n", "32", "--t-end", "1",
            "--backend", "hybrid", "--theta", "0.4",
        ]) == 0
        out = capsys.readouterr().out
        assert "block steps:" in out

    def test_bad_theta_one_line_error(self, capsys):
        assert main([
            "run", "--n", "8", "--t-end", "1",
            "--backend", "hybrid", "--theta", "-2",
        ]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "theta" in err
        assert "Traceback" not in err


class TestRunObservability:
    def test_run_writes_trace_and_metrics(self, capsys, tmp_path):
        import json

        from repro.obs import parse_prometheus

        trace = tmp_path / "trace.json"
        prom = tmp_path / "metrics.prom"
        assert main([
            "run", "--n", "32", "--t-end", "2", "--backend", "grape",
            "--trace-out", str(trace), "--metrics-out", str(prom),
        ]) == 0
        out = capsys.readouterr().out
        assert "trace written:" in out
        assert "metrics written:" in out
        assert "t_pipe" in out  # breakdown rendered inline

        doc = json.loads(trace.read_text())
        assert any(e["ph"] == "X" and e["name"] == "block_step"
                   for e in doc["traceEvents"])
        series = parse_prometheus(prom)
        assert series["grape_pipeline_seconds"] > 0
        assert series["blockstep_total"] > 0

    def test_report_renders_metrics_breakdown(self, capsys, tmp_path):
        prom = tmp_path / "metrics.prom"
        main([
            "run", "--n", "32", "--t-end", "2", "--backend", "grape",
            "--metrics-out", str(prom),
        ])
        capsys.readouterr()
        assert main([
            "report", "--metrics", str(prom),
            "--results-dir", str(tmp_path / "none"),
        ]) == 0
        out = capsys.readouterr().out
        assert "GRAPE-6 time breakdown" in out
        assert "t_comm" in out
