"""Tests for the predictor polynomials."""

import numpy as np
import pytest

from repro.core.predictor import predict_positions, predict_system, predict_velocities

from conftest import make_random_cluster


class TestPolynomials:
    def test_zero_dt_is_identity(self, rng):
        pos = rng.normal(size=(5, 3))
        vel = rng.normal(size=(5, 3))
        acc = rng.normal(size=(5, 3))
        jerk = rng.normal(size=(5, 3))
        assert np.array_equal(predict_positions(pos, vel, acc, jerk, np.zeros(5)), pos)
        assert np.array_equal(predict_velocities(vel, acc, jerk, np.zeros(5)), vel)

    def test_exact_for_cubic_trajectory(self):
        """A trajectory with constant jerk is predicted exactly."""
        pos = np.array([[1.0, 2.0, 3.0]])
        vel = np.array([[0.5, -0.25, 1.0]])
        acc = np.array([[0.1, 0.2, -0.3]])
        jerk = np.array([[0.01, -0.02, 0.03]])
        dt = np.array([0.7])
        p = predict_positions(pos, vel, acc, jerk, dt)
        t = dt[0]
        expected = pos + vel * t + acc * t**2 / 2 + jerk * t**3 / 6
        assert np.allclose(p, expected, rtol=1e-15)
        v = predict_velocities(vel, acc, jerk, dt)
        expected_v = vel + acc * t + jerk * t**2 / 2
        assert np.allclose(v, expected_v, rtol=1e-15)

    def test_per_particle_dt_broadcast(self, rng):
        pos = rng.normal(size=(4, 3))
        vel = rng.normal(size=(4, 3))
        acc = rng.normal(size=(4, 3))
        jerk = rng.normal(size=(4, 3))
        dt = np.array([0.0, 0.1, 0.2, 0.4])
        p = predict_positions(pos, vel, acc, jerk, dt)
        for i in range(4):
            pi = predict_positions(pos[i : i + 1], vel[i : i + 1], acc[i : i + 1], jerk[i : i + 1], dt[i : i + 1])
            assert np.allclose(p[i], pi[0])

    def test_scalar_dt_accepted(self, rng):
        pos = rng.normal(size=(3, 3))
        vel = rng.normal(size=(3, 3))
        z = np.zeros((3, 3))
        p = predict_positions(pos, vel, z, z, 0.5)
        assert np.allclose(p, pos + 0.5 * vel)


class TestPredictSystem:
    def test_writes_pred_buffers(self):
        s = make_random_cluster(6)
        s.vel[:] = 1.0
        pp, pv = predict_system(s, 0.25)
        assert pp is s.pred_pos
        assert pv is s.pred_vel
        assert np.allclose(s.pred_pos, s.pos + 0.25)

    def test_mixed_particle_times(self):
        s = make_random_cluster(3)
        s.vel[:] = [[1.0, 0, 0], [1.0, 0, 0], [1.0, 0, 0]]
        s.t[:] = [0.0, 0.5, 1.0]
        predict_system(s, 1.0)
        # dt = 1.0, 0.5, 0.0 respectively
        assert np.allclose(s.pred_pos[:, 0] - s.pos[:, 0], [1.0, 0.5, 0.0])

    def test_prediction_error_fourth_order(self):
        """For a Kepler orbit the position prediction error scales as dt^4."""
        from repro.core import KeplerField

        field = KeplerField()

        def state_at(t):
            # circular orbit radius 1: analytic
            pos = np.array([[np.cos(t), np.sin(t), 0.0]])
            vel = np.array([[-np.sin(t), np.cos(t), 0.0]])
            return pos, vel

        pos, vel = state_at(0.0)
        acc, jerk = field.acc_jerk(pos, vel)
        errs = []
        dts = [0.1, 0.05, 0.025]
        for dt in dts:
            pred = predict_positions(pos, vel, acc, jerk, np.array([dt]))
            exact, _ = state_at(dt)
            errs.append(np.linalg.norm(pred - exact))
        # halving dt should cut the error by ~16
        assert errs[0] / errs[1] == pytest.approx(16.0, rel=0.2)
        assert errs[1] / errs[2] == pytest.approx(16.0, rel=0.2)
