"""Integration tests for the block-timestep Hermite driver."""

import numpy as np
import pytest

from repro.core import (
    HostDirectBackend,
    KeplerField,
    ParticleSystem,
    Simulation,
    TimestepParams,
    energy,
)
from repro.errors import ConfigurationError, IntegrationError

from conftest import make_disk_sim, make_two_body


class TestSetup:
    def test_requires_common_start_time(self):
        s = make_two_body()
        s.t[:] = [0.0, 1.0]
        with pytest.raises(ConfigurationError):
            Simulation(s, HostDirectBackend(eps=0.01))

    def test_step_before_initialize_raises(self):
        sim = Simulation(make_two_body(), HostDirectBackend(eps=0.01))
        with pytest.raises(IntegrationError):
            sim.step()

    def test_initialize_sets_forces_and_steps(self):
        sim = Simulation(make_two_body(), HostDirectBackend(eps=0.0))
        sim.initialize()
        assert np.any(sim.system.acc != 0)
        assert np.all(sim.system.dt > 0)

    def test_backend_type_checked(self):
        with pytest.raises(ConfigurationError):
            Simulation(make_two_body(), backend=object())


class TestTwoBody:
    def run_orbit(self, e=0.3, eta=0.01, t_end=None):
        s = make_two_body(m1=1.0, m2=1e-3, a=1.0, e=e)
        params = TimestepParams(eta=eta, eta_start=eta / 2, dt_max=2.0**-4)
        sim = Simulation(s, HostDirectBackend(eps=0.0), timestep_params=params)
        sim.initialize()
        t_end = 2 * np.pi if t_end is None else t_end
        sim.evolve(t_end)
        sim.synchronize(t_end)
        return sim

    def test_energy_conservation_circular(self):
        sim = self.run_orbit(e=0.0)
        e_now = energy(sim.system, eps=0.0)
        e_start = energy(make_two_body(e=0.0), eps=0.0)
        assert abs(e_now.total - e_start.total) / abs(e_start.total) < 1e-6

    def test_energy_conservation_eccentric(self):
        sim = self.run_orbit(e=0.6)
        s0 = make_two_body(e=0.6)
        e0 = energy(s0, eps=0.0).total
        e1 = energy(sim.system, eps=0.0).total
        assert abs(e1 - e0) / abs(e0) < 1e-5

    def test_energy_error_shrinks_with_eta(self):
        """4th-order scheme: smaller eta must give much smaller error."""
        e_ref = energy(make_two_body(e=0.6), eps=0.0).total

        def err(eta):
            sim = self.run_orbit(e=0.6, eta=eta)
            return abs(energy(sim.system, eps=0.0).total - e_ref) / abs(e_ref)

        assert err(0.005) < err(0.02) / 4.0

    def test_period_return(self):
        """After one full period the eccentric orbit returns to apocentre."""
        s0 = make_two_body(e=0.5)
        sim = self.run_orbit(e=0.5, t_end=2 * np.pi)  # P = 2*pi for a=1, M=1.001
        # P = 2*pi / sqrt(mtot) with a=1
        mtot = 1.0 + 1e-3
        p = 2 * np.pi / np.sqrt(mtot)
        sim2 = self.run_orbit(e=0.5, t_end=p)
        sep0 = np.linalg.norm(s0.pos[1] - s0.pos[0])
        sep1 = np.linalg.norm(sim2.system.pos[1] - sim2.system.pos[0])
        assert sep1 == pytest.approx(sep0, rel=1e-5)

    def test_eccentric_orbit_uses_multiple_levels(self):
        """An e=0.9 orbit must trigger timestep adaptation (small at peri)."""
        s = make_two_body(m1=1.0, m2=1e-3, a=1.0, e=0.9)
        params = TimestepParams(eta=0.01, dt_max=2.0**-3)
        sim = Simulation(s, HostDirectBackend(eps=0.0), timestep_params=params)
        sim.initialize()
        seen_dts = set()
        def cb(sim_):
            seen_dts.update(np.unique(sim_.system.dt).tolist())
        sim.evolve(2 * np.pi, callback=cb)
        assert len(seen_dts) >= 3


class TestBlockStepping:
    def test_particle_times_stay_on_grid(self):
        sim = make_disk_sim(n=32, seed=3)
        sim.evolve(4.0)
        # every particle time must be a multiple of its own dt
        ratio = sim.system.t / sim.system.dt
        assert np.allclose(ratio, np.round(ratio), atol=1e-9)

    def test_times_never_exceed_evolve_horizon(self):
        sim = make_disk_sim(n=32, seed=3)
        sim.evolve(4.0)
        assert np.all(sim.system.t <= 4.0 + 1e-12)

    def test_particle_steps_accumulate(self):
        sim = make_disk_sim(n=16, seed=5)
        sim.evolve(2.0)
        assert sim.particle_steps >= sim.block_steps
        assert sim.particle_steps == sim.scheduler.stats.n_particle_steps

    def test_max_block_steps_bound(self):
        sim = make_disk_sim(n=16, seed=5)
        sim.evolve(1000.0, max_block_steps=3)
        assert sim.block_steps == 3

    def test_callback_called_every_block(self):
        sim = make_disk_sim(n=16, seed=5)
        calls = []
        sim.evolve(2.0, callback=lambda s: calls.append(s.time))
        assert len(calls) == sim.block_steps
        assert calls == sorted(calls)


class TestDiskEnergy:
    def test_disk_energy_conservation(self):
        sim = make_disk_sim(n=48, seed=7)
        e0 = energy(sim.system, 0.008, sim.external_field).total
        sim.evolve(20.0)
        sim.synchronize(20.0)
        e1 = energy(sim.system, 0.008, sim.external_field).total
        assert abs(e1 - e0) / abs(e0) < 1e-8

    def test_angular_momentum_conservation(self):
        from repro.core import angular_momentum

        sim = make_disk_sim(n=48, seed=7)
        l0 = angular_momentum(sim.system)
        sim.evolve(20.0)
        sim.synchronize(20.0)
        l1 = angular_momentum(sim.system)
        assert np.allclose(l1, l0, rtol=1e-9)


class TestPredictedState:
    def test_predicted_state_at_current_time(self):
        sim = make_disk_sim(n=16, seed=9)
        sim.evolve(3.0)
        snap = sim.predicted_state()
        assert np.allclose(snap.t, sim.time)
        assert snap.n == sim.system.n

    def test_predicted_state_does_not_mutate(self):
        sim = make_disk_sim(n=16, seed=9)
        sim.evolve(3.0)
        pos_before = sim.system.pos.copy()
        t_before = sim.system.t.copy()
        sim.predicted_state(sim.time)
        assert np.array_equal(sim.system.pos, pos_before)
        assert np.array_equal(sim.system.t, t_before)

    def test_predict_backwards_raises(self):
        sim = make_disk_sim(n=16, seed=9)
        sim.evolve(3.0)
        with pytest.raises(IntegrationError):
            sim.predicted_state(sim.system.t.min() - 1.0)


class TestSynchronize:
    def test_synchronize_brings_all_to_t(self):
        sim = make_disk_sim(n=32, seed=11)
        sim.evolve(5.0)
        sim.synchronize(5.0)
        assert np.all(sim.system.t == 5.0)

    def test_synchronize_to_past_raises(self):
        sim = make_disk_sim(n=16, seed=11)
        sim.evolve(5.0)
        with pytest.raises(IntegrationError):
            sim.synchronize(1.0)

    def test_resume_after_synchronize(self):
        """Integration must continue cleanly after a sync."""
        sim = make_disk_sim(n=24, seed=13)
        e0 = energy(sim.system, 0.008, sim.external_field).total
        sim.evolve(3.0)
        sim.synchronize(3.0)
        sim.evolve(6.0)
        sim.synchronize(6.0)
        e1 = energy(sim.system, 0.008, sim.external_field).total
        assert abs(e1 - e0) / abs(e0) < 1e-8

    def test_steps_commensurate_after_sync(self):
        sim = make_disk_sim(n=24, seed=13)
        sim.evolve(3.0)
        sim.synchronize(3.0)
        ratio = 3.0 / sim.system.dt
        assert np.allclose(ratio, np.round(ratio), atol=1e-9)
