"""Kill-and-recover stress campaign for the serve orchestrator.

~200 jobs across 4 tenants, driven step-by-step with seeded random
SIGKILLs of worker processes and one orchestrator crash-and-restart in
the middle.  The acceptance bar of the service:

* every submitted job reaches a terminal state **exactly once** in the
  journal (no lost jobs, no double completion);
* every completed job's final-state digest is bit-identical to an
  uninterrupted run of the same scenario (kills + resumes change
  nothing);
* the fair queue keeps the four tenants interleaved;
* ``serve.jobs_lost_total`` stays 0 and the journal replays cleanly.

The scenarios are tiny (n=8, two blocks, checkpoint every block) so
the campaign is dominated by orchestration, which is what is under
test.
"""

import os
import random
import signal
import time

from repro.obs import Observability
from repro.serve import (
    TERMINAL_STATES,
    CampaignService,
    JobState,
    RetryPolicy,
    ScenarioConfig,
    scan_journal,
)

N_JOBS = 200
TENANTS = ("alice", "bob", "carol", "dave")
SEEDS = (0, 1, 2, 3)  # 4 distinct scenarios, cycled over the jobs

SCENARIO = {"n": 8, "t_end": 0.5, "dt_max": 0.25, "checkpoint_interval": 1}

RETRY = RetryPolicy(max_attempts=6, base_delay=0.01, multiplier=1.5,
                    max_delay=0.2, jitter=0.25)


def scenario(seed):
    return ScenarioConfig.from_dict({**SCENARIO, "seed": seed})


def make_service(directory, obs=None):
    return CampaignService(
        directory,
        workers=4,
        retry=RETRY,
        lease_seconds=30.0,
        poll_interval=0.01,
        obs=obs,
        fsync=False,
    )


def reference_digests(tmp_path):
    """state digest per seed from uninterrupted runs of each scenario."""
    with make_service(tmp_path / "ref") as svc:
        jobs = {seed: svc.submit("ref", scenario(seed)) for seed in SEEDS}
        report = svc.run(max_seconds=300)
    assert report.done == len(SEEDS)
    return {seed: job.result["state_sha256"] for seed, job in jobs.items()}


def test_kill_and_recover_stress_campaign(tmp_path):
    refs = reference_digests(tmp_path)
    rng = random.Random(20020816)  # seeded: the storm is reproducible
    camp = tmp_path / "camp"

    svc = make_service(camp)
    submitted = {}
    for i in range(N_JOBS):
        job = svc.submit(TENANTS[i % 4], scenario(SEEDS[i % len(SEEDS)]))
        submitted[job.job_id] = SEEDS[i % len(SEEDS)]
    assert len(submitted) == N_JOBS

    # phase 1: drive the campaign with random worker SIGKILLs until
    # about a third of the jobs are terminal, then crash the orchestrator
    kills = 0
    deadline = time.time() + 600
    while time.time() < deadline:
        outstanding = svc.step()
        terminal = N_JOBS - outstanding
        if terminal >= N_JOBS // 3:
            break
        if kills < 40 and rng.random() < 0.25:
            pids = list(svc.worker_pids().values())
            if pids:
                os.kill(rng.choice(pids), signal.SIGKILL)
                kills += 1
        time.sleep(0.01)
    assert kills >= 5, "the storm never hit a worker — test lost its teeth"
    svc.shutdown(kill_workers=True)  # orchestrator dies mid-campaign

    # phase 2: a fresh orchestrator on the same directory recovers the
    # journal and drains the rest, still under fire
    obs = Observability()
    svc2 = make_service(camp, obs=obs)
    assert len(svc2.jobs) == N_JOBS  # nothing lost across the restart
    deadline = time.time() + 600
    while time.time() < deadline:
        outstanding = svc2.step()
        if outstanding == 0:
            break
        if kills < 60 and rng.random() < 0.1:
            pids = list(svc2.worker_pids().values())
            if pids:
                os.kill(rng.choice(pids), signal.SIGKILL)
                kills += 1
        time.sleep(0.01)
    report = svc2.report()
    svc2.shutdown()

    # -- no job lost, none double-terminal --------------------------------
    assert report.lost == 0
    assert obs.metrics.counter("serve.jobs_lost_total").value == 0
    assert report.done + report.dead_lettered == N_JOBS

    scan = scan_journal(camp / "journal.jsonl")  # replays cleanly
    assert not scan.torn_tail
    terminal_values = {s.value for s in TERMINAL_STATES}
    terminal_count = {}
    for rec in scan.records:
        if rec.get("state") in terminal_values:
            terminal_count[rec["id"]] = terminal_count.get(rec["id"], 0) + 1
    assert sorted(terminal_count) == sorted(submitted)
    assert all(n == 1 for n in terminal_count.values()), (
        "a job reached a terminal state more than once"
    )

    # -- kills really landed and were survived ----------------------------
    deaths = [r for r in scan.records
              if "killed by signal" in r.get("error", "")]
    assert kills >= 10
    # (some SIGKILLs race normal exit; most must be observed as deaths)
    assert len(deaths) >= kills // 4

    # -- completed outputs are bit-identical to uninterrupted runs --------
    done = [j for j in svc2.jobs.values() if j.state is JobState.DONE]
    assert len(done) == report.done
    for job in done:
        assert job.result["state_sha256"] == refs[submitted[job.job_id]], (
            f"{job.job_id} (attempt {job.attempt}) diverged from the "
            "uninterrupted reference run"
        )

    # -- fairness: early leases interleave all four tenants ---------------
    lease_tenants = [r["tenant"] for r in scan.records
                     if r.get("state") == "leased"][:60]
    counts = {t: lease_tenants.count(t) for t in TENANTS}
    assert all(counts[t] >= 60 // 4 - 5 for t in TENANTS), (
        f"fair queue starved a tenant in the first 60 leases: {counts}"
    )

    # -- dead-letters (if the storm exhausted someone) are accounted ------
    for job in svc2.jobs.values():
        if job.state is JobState.DEAD_LETTERED:
            assert job.attempt == RETRY.max_attempts
