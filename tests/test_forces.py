"""Tests for the direct-summation force/jerk kernels."""

import numpy as np
import pytest

from repro.core.forces import (
    InteractionCounter,
    acc_jerk,
    acc_only,
    min_pairwise_distance,
    pairwise_potential,
    potential_energy,
)


def brute_force(pos_i, vel_i, pos_j, vel_j, mass_j, eps, self_idx=None):
    """Slow per-pair reference implementation."""
    n_i = len(pos_i)
    acc = np.zeros((n_i, 3))
    jerk = np.zeros((n_i, 3))
    for i in range(n_i):
        for j in range(len(pos_j)):
            if self_idx is not None and self_idx[i] == j:
                continue
            dr = pos_j[j] - pos_i[i]
            dv = vel_j[j] - vel_i[i]
            r2 = dr @ dr + eps**2
            inv_r3 = r2**-1.5
            acc[i] += mass_j[j] * dr * inv_r3
            jerk[i] += mass_j[j] * (dv * inv_r3 - 3.0 * (dr @ dv) / r2 * dr * inv_r3)
    return acc, jerk


@pytest.fixture
def random_set(rng):
    n = 17
    pos = rng.normal(size=(n, 3))
    vel = rng.normal(size=(n, 3))
    mass = rng.uniform(0.1, 1.0, n)
    return pos, vel, mass


class TestAccJerk:
    def test_matches_brute_force_disjoint(self, random_set, rng):
        pos_j, vel_j, mass_j = random_set
        pos_i = rng.normal(size=(5, 3)) + 5.0  # well separated
        vel_i = rng.normal(size=(5, 3))
        a, j = acc_jerk(pos_i, vel_i, pos_j, vel_j, mass_j, eps=0.01)
        a_ref, j_ref = brute_force(pos_i, vel_i, pos_j, vel_j, mass_j, 0.01)
        assert np.allclose(a, a_ref, rtol=1e-12)
        assert np.allclose(j, j_ref, rtol=1e-12)

    def test_matches_brute_force_self_exclusion(self, random_set):
        pos, vel, mass = random_set
        idx = np.arange(len(pos))
        a, j = acc_jerk(pos, vel, pos, vel, mass, eps=0.01, self_indices=idx)
        a_ref, j_ref = brute_force(pos, vel, pos, vel, mass, 0.01, self_idx=idx)
        assert np.allclose(a, a_ref, rtol=1e-12)
        assert np.allclose(j, j_ref, rtol=1e-12)

    def test_subset_self_exclusion(self, random_set):
        pos, vel, mass = random_set
        active = np.array([3, 7, 11])
        a, j = acc_jerk(
            pos[active], vel[active], pos, vel, mass, eps=0.01, self_indices=active
        )
        a_ref, j_ref = brute_force(
            pos[active], vel[active], pos, vel, mass, 0.01, self_idx=active
        )
        assert np.allclose(a, a_ref, rtol=1e-12)
        assert np.allclose(j, j_ref, rtol=1e-12)

    def test_two_body_analytic(self):
        # Unit masses 2 apart on x, eps=0: |a| = 1/4 toward each other.
        pos = np.array([[-1.0, 0, 0], [1.0, 0, 0]])
        vel = np.zeros((2, 3))
        a, j = acc_jerk(pos, vel, pos, vel, np.ones(2), eps=0.0, self_indices=np.arange(2))
        assert np.allclose(a[0], [0.25, 0, 0])
        assert np.allclose(a[1], [-0.25, 0, 0])
        assert np.allclose(j, 0.0)

    def test_jerk_against_finite_difference(self):
        """Jerk should equal d(acc)/dt along the trajectory."""
        rng = np.random.default_rng(3)
        pos = rng.normal(size=(6, 3)) * 2.0
        vel = rng.normal(size=(6, 3)) * 0.3
        mass = rng.uniform(0.5, 1.0, 6)
        eps = 0.05
        idx = np.arange(6)
        h = 1e-6
        a0, j0 = acc_jerk(pos, vel, pos, vel, mass, eps, self_indices=idx)
        pos_h = pos + vel * h  # freeze acceleration's effect: O(h^2)
        a1, _ = acc_jerk(pos_h, vel, pos_h, vel, mass, eps, self_indices=idx)
        j_fd = (a1 - a0) / h
        assert np.allclose(j0, j_fd, rtol=1e-4, atol=1e-6)

    def test_newton_third_law(self, random_set):
        """Total momentum change rate must vanish for mutual forces."""
        pos, vel, mass = random_set
        idx = np.arange(len(pos))
        a, j = acc_jerk(pos, vel, pos, vel, mass, eps=0.02, self_indices=idx)
        assert np.allclose((mass[:, None] * a).sum(axis=0), 0.0, atol=1e-12)
        assert np.allclose((mass[:, None] * j).sum(axis=0), 0.0, atol=1e-12)

    def test_softening_caps_close_forces(self):
        pos = np.array([[0.0, 0, 0], [1e-8, 0, 0]])
        vel = np.zeros((2, 3))
        a, _ = acc_jerk(pos, vel, pos, vel, np.ones(2), eps=0.1, self_indices=np.arange(2))
        # With eps=0.1, |a| <= m * r / eps^3 which is tiny for r=1e-8.
        assert np.all(np.abs(a) < 1e-4)

    def test_chunking_consistency(self, rng):
        """Results must not depend on the internal i-chunk size."""
        import repro.core.forces as forces

        n = 50
        pos = rng.normal(size=(n, 3))
        vel = rng.normal(size=(n, 3))
        mass = rng.uniform(0.1, 1.0, n)
        idx = np.arange(n)
        a_big, j_big = acc_jerk(pos, vel, pos, vel, mass, 0.01, self_indices=idx)
        old = forces._TILE_BUDGET
        try:
            forces._TILE_BUDGET = 64  # force many small chunks
            a_small, j_small = acc_jerk(pos, vel, pos, vel, mass, 0.01, self_indices=idx)
        finally:
            forces._TILE_BUDGET = old
        assert np.array_equal(a_big, a_small)
        assert np.array_equal(j_big, j_small)


class TestAccOnly:
    def test_matches_acc_jerk(self, random_set):
        pos, vel, mass = random_set
        idx = np.arange(len(pos))
        a_ref, _ = acc_jerk(pos, vel, pos, vel, mass, 0.01, self_indices=idx)
        a = acc_only(pos, pos, mass, 0.01, self_indices=idx)
        assert np.allclose(a, a_ref, rtol=1e-13)


class TestPotential:
    def test_point_pair_potential(self):
        pos = np.array([[0.0, 0, 0], [2.0, 0, 0]])
        phi = pairwise_potential(pos, pos, np.array([3.0, 5.0]), eps=0.0, self_indices=np.arange(2))
        assert phi[0] == pytest.approx(-5.0 / 2.0)
        assert phi[1] == pytest.approx(-3.0 / 2.0)

    def test_total_energy_pair(self):
        pos = np.array([[0.0, 0, 0], [2.0, 0, 0]])
        w = potential_energy(pos, np.array([3.0, 5.0]), eps=0.0)
        assert w == pytest.approx(-15.0 / 2.0)

    def test_potential_softening(self):
        pos = np.array([[0.0, 0, 0], [0.0, 0, 0.003]])
        w = potential_energy(pos, np.ones(2), eps=0.004)
        assert w == pytest.approx(-1.0 / 0.005)

    def test_energy_symmetric_under_permutation(self, random_set):
        pos, _, mass = random_set
        w1 = potential_energy(pos, mass, eps=0.01)
        perm = np.random.default_rng(0).permutation(len(pos))
        w2 = potential_energy(pos[perm], mass[perm], eps=0.01)
        assert w1 == pytest.approx(w2, rel=1e-12)


class TestCounter:
    def test_counts_interactions(self):
        c = InteractionCounter()
        pos = np.zeros((4, 3)) + np.arange(4)[:, None]
        vel = np.zeros((4, 3))
        acc_jerk(pos[:2], vel[:2], pos, vel, np.ones(4), 0.01,
                 self_indices=np.array([0, 1]), counter=c)
        assert c.force_interactions == 8
        assert c.jerk_interactions == 8
        assert c.force_calls == 1

    def test_acc_only_counts_no_jerk(self):
        c = InteractionCounter()
        pos = np.zeros((3, 3)) + np.arange(3)[:, None]
        acc_only(pos, pos, np.ones(3), 0.01, self_indices=np.arange(3), counter=c)
        assert c.force_interactions == 9
        assert c.jerk_interactions == 0

    def test_reset(self):
        c = InteractionCounter()
        c.add(10, 10, True)
        c.reset()
        assert c.force_interactions == 0
        assert c.force_calls == 0

    def test_trace(self):
        c = InteractionCounter(trace=True)
        c.add(3, 7, True)
        c.add(2, 7, False)
        assert c.history == [(3, 7, True), (2, 7, False)]


class TestMinPairwiseDistance:
    def test_known_minimum(self):
        pos = np.array([[0.0, 0, 0], [1.0, 0, 0], [0.0, 0.25, 0]])
        assert min_pairwise_distance(pos) == pytest.approx(0.25)

    def test_single_particle_is_inf(self):
        assert min_pairwise_distance(np.zeros((1, 3))) == np.inf
