"""Tests for GRAPE-6 chip, j-memory and processor-board models."""

import numpy as np
import pytest

from repro.core.forces import acc_jerk
from repro.errors import GrapeMemoryError
from repro.grape.board import ProcessorBoard, round_robin_slices
from repro.grape.chip import Grape6Chip, JMemory


def particle_set(rng, n):
    return {
        "key": np.arange(n, dtype=np.int64),
        "mass": rng.uniform(0.1, 1, n),
        "pos": rng.normal(size=(n, 3)),
        "vel": rng.normal(size=(n, 3)),
        "acc": rng.normal(size=(n, 3)) * 0.1,
        "jerk": rng.normal(size=(n, 3)) * 0.01,
        "t": np.zeros(n),
    }


class TestJMemory:
    def test_load_and_lookup(self, rng):
        m = JMemory(capacity=100)
        p = particle_set(rng, 10)
        m.load(**p)
        assert m.n == 10
        assert m.holds(3)
        assert not m.holds(99)

    def test_capacity_enforced(self, rng):
        m = JMemory(capacity=5)
        p = particle_set(rng, 6)
        with pytest.raises(GrapeMemoryError):
            m.load(**p)

    def test_update_rewrites_slots(self, rng):
        m = JMemory(capacity=100)
        p = particle_set(rng, 10)
        m.load(**p)
        new_pos = np.ones((2, 3)) * 7.0
        m.update(
            key=np.array([3, 7]), mass=p["mass"][[3, 7]], pos=new_pos,
            vel=p["vel"][[3, 7]], acc=p["acc"][[3, 7]],
            jerk=p["jerk"][[3, 7]], t=np.array([1.0, 1.0]),
        )
        slot3 = m._slot_of_key[3]
        assert np.allclose(m.pos[slot3], 7.0)
        assert m.t[slot3] == 1.0

    def test_update_unknown_key_raises(self, rng):
        m = JMemory(capacity=100)
        p = particle_set(rng, 4)
        m.load(**p)
        with pytest.raises(GrapeMemoryError):
            m.update(
                key=np.array([50]), mass=np.ones(1), pos=np.zeros((1, 3)),
                vel=np.zeros((1, 3)), acc=np.zeros((1, 3)),
                jerk=np.zeros((1, 3)), t=np.zeros(1),
            )

    def test_write_traffic_counted(self, rng):
        m = JMemory(capacity=100)
        p = particle_set(rng, 10)
        m.load(**p)
        assert m.bytes_written == 10 * JMemory.JPARTICLE_BYTES


class TestChip:
    def test_prediction_matches_host(self, rng):
        chip = Grape6Chip(chip_id=0, eps=0.01)
        p = particle_set(rng, 12)
        chip.jmem.load(**p)
        pp, pv = chip.predict_local(0.5)
        from repro.core.predictor import predict_positions, predict_velocities

        dt = 0.5 - p["t"]
        assert np.allclose(pp, predict_positions(p["pos"], p["vel"], p["acc"], p["jerk"], dt))
        assert np.allclose(pv, predict_velocities(p["vel"], p["acc"], p["jerk"], dt))
        assert chip.predictor_cycles == 12

    def test_compute_predicts_then_evaluates(self, rng):
        chip = Grape6Chip(chip_id=0, eps=0.01)
        p = particle_set(rng, 20)
        chip.jmem.load(**p)
        pos_i = rng.normal(size=(3, 3)) + 10
        vel_i = rng.normal(size=(3, 3))
        res = chip.compute(pos_i, vel_i, np.array([100, 101, 102]), t_now=0.25)
        from repro.core.predictor import predict_positions, predict_velocities

        dt = 0.25 - p["t"]
        jp = predict_positions(p["pos"], p["vel"], p["acc"], p["jerk"], dt)
        jv = predict_velocities(p["vel"], p["acc"], p["jerk"], dt)
        a_ref, j_ref = acc_jerk(pos_i, vel_i, jp, jv, p["mass"], 0.01)
        assert np.allclose(res.acc, a_ref, rtol=1e-13)
        assert np.allclose(res.jerk, j_ref, rtol=1e-13)
        assert chip.force_cycles > 0
        assert chip.interactions == 3 * 20

    def test_empty_chip_returns_zero(self):
        chip = Grape6Chip(chip_id=0, eps=0.01)
        res = chip.compute(np.zeros((2, 3)), np.zeros((2, 3)), np.array([0, 1]), 0.0)
        assert np.all(res.acc == 0)
        assert res.cycles == 0


class TestRoundRobin:
    def test_covers_all_items_once(self):
        slices = round_robin_slices(10, 3)
        all_items = np.sort(np.concatenate(slices))
        assert np.array_equal(all_items, np.arange(10))

    def test_balanced_to_one(self):
        slices = round_robin_slices(10, 3)
        sizes = [len(s) for s in slices]
        assert max(sizes) - min(sizes) <= 1

    def test_empty(self):
        slices = round_robin_slices(0, 4)
        assert all(len(s) == 0 for s in slices)


class TestBoard:
    def test_distribution_balances_chips(self, rng):
        b = ProcessorBoard(board_id=0, eps=0.01, n_chips=4)
        p = particle_set(rng, 18)
        b.load(**p)
        loads = [c.n_resident for c in b.chips]
        assert sum(loads) == 18
        assert max(loads) - min(loads) <= 1

    def test_board_force_equals_whole_set(self, rng):
        b = ProcessorBoard(board_id=0, eps=0.01, n_chips=4)
        p = particle_set(rng, 30)
        b.load(**p)
        pos_i = p["pos"][:5]
        vel_i = p["vel"][:5]
        res = b.compute(pos_i, vel_i, p["key"][:5], t_now=0.0, clock_hz=90e6)
        a_ref, j_ref = acc_jerk(
            pos_i, vel_i, p["pos"], p["vel"], p["mass"], 0.01,
            self_indices=np.arange(5),
        )
        assert np.allclose(res.acc, a_ref, rtol=1e-12, atol=1e-15)
        assert np.allclose(res.jerk, j_ref, rtol=1e-12, atol=1e-15)
        assert res.interactions == 5 * 30

    def test_board_time_is_max_chip(self, rng):
        b = ProcessorBoard(board_id=0, eps=0.01, n_chips=4)
        p = particle_set(rng, 16)
        b.load(**p)
        b.compute(p["pos"][:2], p["vel"][:2], p["key"][:2], 0.0, clock_hz=90e6)
        per_chip = [c.force_cycles for c in b.chips if c.n_resident]
        assert b.force_seconds == pytest.approx(max(per_chip) / 90e6)

    def test_update_routes_to_holding_chip(self, rng):
        b = ProcessorBoard(board_id=0, eps=0.01, n_chips=4)
        p = particle_set(rng, 16)
        b.load(**p)
        key = np.array([5])
        b.update(
            key=key, mass=np.array([9.0]), pos=np.zeros((1, 3)) + 42,
            vel=np.zeros((1, 3)), acc=np.zeros((1, 3)),
            jerk=np.zeros((1, 3)), t=np.array([2.0]),
        )
        # find the chip holding key 5 and verify
        for chip in b.chips:
            if chip.jmem.holds(5):
                slot = chip.jmem._slot_of_key[5]
                assert np.allclose(chip.jmem.pos[slot], 42.0)
                break
        else:  # pragma: no cover
            pytest.fail("no chip holds key 5")

    def test_capacity_overflow(self, rng):
        b = ProcessorBoard(board_id=0, eps=0.01, n_chips=2, jmem_capacity_per_chip=4)
        p = particle_set(rng, 9)
        with pytest.raises(GrapeMemoryError):
            b.load(**p)
