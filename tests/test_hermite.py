"""Tests for the 4th-order Hermite corrector."""

import numpy as np
import pytest

from repro.core import KeplerField
from repro.core.hermite import correct, hermite_step_arrays, reconstruct_derivatives


class TestReconstruction:
    def test_exact_for_polynomial_force(self):
        """If acc(t) is a cubic, the reconstructed derivatives are exact."""
        rng = np.random.default_rng(7)
        a0 = rng.normal(size=(3, 3))
        a2 = rng.normal(size=(3, 3))  # true snap at t0
        a3 = rng.normal(size=(3, 3))  # true crackle
        j0 = rng.normal(size=(3, 3))
        dt = np.array([0.3, 0.5, 0.7])
        d = dt[:, None]
        a1 = a0 + j0 * d + a2 * d**2 / 2 + a3 * d**3 / 6
        j1 = j0 + a2 * d + a3 * d**2 / 2
        snap, crackle = reconstruct_derivatives(a0, j0, a1, j1, dt)
        assert np.allclose(snap, a2, rtol=1e-10)
        assert np.allclose(crackle, a3, rtol=1e-10)

    def test_corrector_snap_is_end_of_step(self):
        rng = np.random.default_rng(8)
        a0 = rng.normal(size=(2, 3))
        j0 = rng.normal(size=(2, 3))
        a2 = rng.normal(size=(2, 3))
        a3 = rng.normal(size=(2, 3))
        dt = np.array([0.2, 0.4])
        d = dt[:, None]
        a1 = a0 + j0 * d + a2 * d**2 / 2 + a3 * d**3 / 6
        j1 = j0 + a2 * d + a3 * d**2 / 2
        pred = np.zeros((2, 3))
        _, _, derivs = correct(pred, pred, a0, j0, a1, j1, dt)
        assert np.allclose(derivs.snap, a2 + d * a3, rtol=1e-9)
        assert np.allclose(derivs.crackle, a3, rtol=1e-9)


class TestConvergence:
    @staticmethod
    def kepler_circular_error(dt, n_steps):
        """Integrate a circular Kepler orbit with shared Hermite steps."""
        field = KeplerField()
        pos = np.array([[1.0, 0.0, 0.0]])
        vel = np.array([[0.0, 1.0, 0.0]])
        acc, jerk = field.acc_jerk(pos, vel)
        dts = np.array([dt])
        for _ in range(n_steps):
            pos, vel, acc, jerk, _ = hermite_step_arrays(
                pos, vel, acc, jerk, dts, field.acc_jerk
            )
        t = dt * n_steps
        exact = np.array([[np.cos(t), np.sin(t), 0.0]])
        return np.linalg.norm(pos - exact)

    def test_fourth_order_convergence(self):
        """Halving dt over a fixed interval must reduce error ~16x."""
        e1 = self.kepler_circular_error(0.02, 100)
        e2 = self.kepler_circular_error(0.01, 200)
        e3 = self.kepler_circular_error(0.005, 400)
        assert e1 / e2 == pytest.approx(16.0, rel=0.35)
        assert e2 / e3 == pytest.approx(16.0, rel=0.35)

    def test_eccentric_orbit_energy_conservation(self):
        """e=0.9 orbit: energy error stays small with fixed small steps."""
        field = KeplerField()
        a, e = 1.0, 0.5
        r_apo = a * (1 + e)
        v_apo = np.sqrt((2.0 / r_apo - 1.0 / a))
        pos = np.array([[r_apo, 0.0, 0.0]])
        vel = np.array([[0.0, v_apo, 0.0]])
        acc, jerk = field.acc_jerk(pos, vel)

        def energy():
            return 0.5 * float(vel[0] @ vel[0]) - 1.0 / np.linalg.norm(pos[0])

        e0 = energy()
        dts = np.array([0.002])
        for _ in range(3000):
            pos, vel, acc, jerk, _ = hermite_step_arrays(
                pos, vel, acc, jerk, dts, field.acc_jerk
            )
        assert abs(energy() - e0) / abs(e0) < 1e-10


class TestCorrectShapes:
    def test_correct_returns_shapes(self):
        n = 5
        z = np.zeros((n, 3))
        pos1, vel1, derivs = correct(z, z, z, z, z, z, np.full(n, 0.1))
        assert pos1.shape == (n, 3)
        assert vel1.shape == (n, 3)
        assert derivs.snap.shape == (n, 3)
        assert derivs.crackle.shape == (n, 3)

    def test_zero_force_free_motion(self):
        """With zero forces the corrector must not perturb prediction."""
        pos = np.array([[1.0, 2.0, 3.0]])
        vel = np.array([[0.1, 0.2, 0.3]])
        z = np.zeros((1, 3))
        pred_pos = pos + vel * 0.5
        pos1, vel1, _ = correct(pred_pos, vel, z, z, z, z, np.array([0.5]))
        assert np.allclose(pos1, pred_pos)
        assert np.allclose(vel1, vel)
