"""Tests for the host-interface wire protocol."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GrapeLinkError
from repro.grape.protocol import (
    Command,
    FrameCodec,
    decode_frame,
    encode_frame,
)


class TestFraming:
    def test_roundtrip(self):
        raw = encode_frame(Command.SET_TI, b"\x01" * 8)
        frame, consumed = decode_frame(raw)
        assert frame.command is Command.SET_TI
        assert frame.payload == b"\x01" * 8
        assert consumed == len(raw)

    def test_stream_of_frames(self):
        raw = encode_frame(Command.SET_TI, b"A" * 8) + encode_frame(
            Command.SET_TI, b"B" * 8
        )
        f1, used = decode_frame(raw)
        f2, _ = decode_frame(raw[used:])
        assert f1.payload != f2.payload

    def test_bad_magic(self):
        raw = bytearray(encode_frame(Command.SET_TI, b"x" * 8))
        raw[0] ^= 0xFF
        with pytest.raises(GrapeLinkError, match="magic"):
            decode_frame(bytes(raw))

    def test_unknown_command(self):
        raw = bytearray(encode_frame(Command.SET_TI, b"x" * 8))
        raw[2] = 0x7F
        with pytest.raises(GrapeLinkError, match="unknown"):
            decode_frame(bytes(raw))

    def test_truncated_header(self):
        with pytest.raises(GrapeLinkError, match="truncated"):
            decode_frame(b"\x12")

    def test_truncated_payload(self):
        raw = encode_frame(Command.SET_TI, b"x" * 8)
        with pytest.raises(GrapeLinkError, match="truncated"):
            decode_frame(raw[:-6])

    def test_corruption_detected_by_crc(self):
        raw = bytearray(encode_frame(Command.SET_TI, b"x" * 8))
        raw[10] ^= 0x01  # flip one payload bit
        with pytest.raises(GrapeLinkError, match="CRC"):
            decode_frame(bytes(raw))

    @given(payload=st.binary(min_size=0, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, payload):
        raw = encode_frame(Command.CALC, payload)
        frame, consumed = decode_frame(raw)
        assert frame.payload == payload
        assert consumed == len(raw)


class TestCodec:
    def setup_method(self):
        self.codec = FrameCodec()

    def test_set_j_roundtrip(self, rng):
        pos, vel, acc, jerk = (rng.normal(size=3) for _ in range(4))
        raw = self.codec.encode_set_j(42, 1e-8, pos, vel, acc, jerk, 3.5)
        frame, _ = decode_frame(raw)
        rec = self.codec.decode_set_j(frame)
        assert rec["key"] == 42
        assert rec["mass"] == 1e-8
        assert np.array_equal(rec["pos"], pos)
        assert np.array_equal(rec["jerk"], jerk)
        assert rec["t"] == 3.5

    def test_set_ti_roundtrip(self):
        raw = self.codec.encode_set_ti(1878.8)
        frame, _ = decode_frame(raw)
        assert self.codec.decode_set_ti(frame) == 1878.8

    def test_calc_roundtrip(self, rng):
        keys = np.array([3, 9, 27], dtype=np.int64)
        pos = rng.normal(size=(3, 3))
        vel = rng.normal(size=(3, 3))
        raw = self.codec.encode_calc(keys, pos, vel)
        frame, _ = decode_frame(raw)
        rec = self.codec.decode_calc(frame)
        assert np.array_equal(rec["keys"], keys)
        assert np.array_equal(rec["pos"], pos)
        assert np.array_equal(rec["vel"], vel)

    def test_result_roundtrip(self, rng):
        acc = rng.normal(size=(5, 3))
        jerk = rng.normal(size=(5, 3))
        raw = self.codec.encode_result(acc, jerk)
        frame, _ = decode_frame(raw)
        a2, j2 = self.codec.decode_result(frame)
        assert np.array_equal(a2, acc)
        assert np.array_equal(j2, jerk)

    def test_type_confusion_rejected(self):
        raw = self.codec.encode_set_ti(1.0)
        frame, _ = decode_frame(raw)
        with pytest.raises(GrapeLinkError, match="expected"):
            self.codec.decode_set_j(frame)
        with pytest.raises(GrapeLinkError, match="expected"):
            self.codec.decode_calc(frame)
        with pytest.raises(GrapeLinkError, match="expected"):
            self.codec.decode_result(frame)

    def test_empty_calc(self):
        raw = self.codec.encode_calc(
            np.array([], dtype=np.int64), np.zeros((0, 3)), np.zeros((0, 3))
        )
        frame, _ = decode_frame(raw)
        rec = self.codec.decode_calc(frame)
        assert rec["keys"].size == 0

    def test_wire_sizes_match_model(self):
        """The framed sizes agree with the byte constants the timing
        model charges (sanity link between protocol and cost model)."""
        raw = self.codec.encode_set_j(
            1, 1.0, np.zeros(3), np.zeros(3), np.zeros(3), np.zeros(3), 0.0
        )
        # 120-byte record + 12 bytes framing: the ~88-128 B/j-particle
        # regime the cost model's JWRITE_BYTES sits in
        assert 100 <= len(raw) <= 160
