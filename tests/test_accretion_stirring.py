"""Tests for accretion history and stirring theory."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.planetesimal import AccretionHistory, MassSpectrum, StirringModel


class TestMassSpectrum:
    def test_measure(self):
        s = MassSpectrum.measure(1.0, np.array([1.0, 2.0, 3.0]))
        assert s.n_bodies == 3
        assert s.total_mass == pytest.approx(6.0)
        assert s.max_mass == 3.0
        assert s.mean_mass == pytest.approx(2.0)
        assert s.growth_ratio == pytest.approx(1.5)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            MassSpectrum.measure(0.0, np.array([]))


class TestAccretionHistory:
    def test_series(self):
        h = AccretionHistory()
        h.sample(0.0, np.array([1.0, 1.0, 1.0, 1.0]))
        h.sample(5.0, np.array([2.0, 1.0, 1.0]))  # one merger
        assert len(h) == 2
        assert h.mergers_so_far() == 1
        assert h.mass_conserved()
        t, m = h.max_mass_series()
        assert np.array_equal(t, [0.0, 5.0])
        assert np.array_equal(m, [1.0, 2.0])

    def test_mass_loss_detected(self):
        h = AccretionHistory()
        h.sample(0.0, np.array([1.0, 1.0]))
        h.sample(1.0, np.array([1.5]))
        assert not h.mass_conserved()

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            AccretionHistory().latest

    def test_accretion_run_end_to_end(self):
        """A tidally bound cold clump collapses and merges; the history
        records conserved mass and growth of the largest body."""
        from repro.core import (
            CollisionPolicy,
            HostDirectBackend,
            KeplerField,
            ParticleSystem,
            Simulation,
            TimestepParams,
        )

        # 6 bodies in a 0.01-AU clump at 20 AU, co-moving on the local
        # circular orbit.  Clump Hill radius ~0.05 AU > clump size, so
        # self-gravity wins over the solar tide and the clump collapses.
        rng = np.random.default_rng(4)
        n = 6
        pos = np.array([20.0, 0.0, 0.0]) + 0.01 * rng.normal(size=(n, 3))
        v = 1.0 / np.sqrt(20.0)
        vel = np.tile([0.0, v, 0.0], (n, 1))
        system = ParticleSystem(np.full(n, 1e-8), pos, vel)
        sim = Simulation(
            system,
            HostDirectBackend(eps=1e-6),
            external_field=KeplerField(),
            timestep_params=TimestepParams(dt_max=0.25),
            collision_policy=CollisionPolicy(f_enhance=100.0),
        )
        sim.initialize()
        hist = AccretionHistory()
        hist.sample(0.0, sim.system.mass)
        sim.evolve(30.0)
        hist.sample(sim.time, sim.system.mass)
        assert sim.mergers >= 1
        assert hist.mergers_so_far() == sim.mergers
        assert hist.mass_conserved()
        assert hist.latest.max_mass > hist.initial.max_mass


class TestStirringModel:
    def make(self, **kw):
        defaults = dict(
            surface_density=3e-6, particle_mass=1e-7, a=25.0,
        )
        defaults.update(kw)
        return StirringModel(**defaults)

    def test_rate_positive(self):
        assert self.make().e2_rate(0.01) > 0

    def test_rate_scales_linearly_with_mass_and_sigma(self):
        base = self.make().e2_rate(0.01)
        assert self.make(particle_mass=2e-7).e2_rate(0.01) == pytest.approx(2 * base)
        assert self.make(surface_density=6e-6).e2_rate(0.01) == pytest.approx(2 * base)

    def test_rate_falls_with_e(self):
        m = self.make()
        assert m.e2_rate(0.02) < m.e2_rate(0.01)

    def test_relaxation_time_grows_with_e(self):
        m = self.make()
        assert m.relaxation_time(0.02) > m.relaxation_time(0.01)

    def test_quarter_power_growth(self):
        """Late-time self-similar solution: e ~ t^(1/4)."""
        m = self.make()
        t = np.array([1e4, 1.6e5])  # factor 16 in t
        e = m.evolve_e_rms(1e-4, t)  # e0 small: late-time regime
        assert e[1] / e[0] == pytest.approx(2.0, rel=0.05)

    def test_evolution_starts_at_e0(self):
        m = self.make()
        e = m.evolve_e_rms(0.01, np.array([0.0]))
        assert e[0] == pytest.approx(0.01)

    def test_monotone_growth(self):
        m = self.make()
        e = m.evolve_e_rms(0.005, np.linspace(0, 1e4, 20))
        assert np.all(np.diff(e) > 0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            StirringModel(surface_density=-1, particle_mass=1e-7, a=25.0)
        with pytest.raises(ConfigurationError):
            self.make().e2_rate(0.0)
        with pytest.raises(ConfigurationError):
            self.make().evolve_e_rms(-0.1, np.array([1.0]))

    def test_measured_stirring_same_order_as_theory(self):
        """A self-stirring disk's e growth matches the relaxation
        estimate to order of magnitude (the STIR ablation, miniature)."""
        from repro.core import HostDirectBackend
        from repro.perf import run_scaled_disk
        from repro.planetesimal import rms_eccentricity_inclination

        n = 300
        res = run_scaled_disk(
            HostDirectBackend(eps=0.008), n=n, t_end=400.0, seed=55,
            e_rms=0.002, protoplanets=[], dt_max=8.0, measure_energy=False,
        )
        sys_ = res.sim.system
        e_meas, _ = rms_eccentricity_inclination(sys_.pos, sys_.vel)

        # theory with the run's own disk parameters
        area = np.pi * (35.0**2 - 15.0**2)
        sigma = sys_.mass.sum() / area
        m_eff = float((sys_.mass**2).sum() / sys_.mass.sum())  # mass-weighted
        model = StirringModel(surface_density=sigma, particle_mass=m_eff, a=25.0)
        e_pred = float(model.evolve_e_rms(0.002, np.array([400.0]))[0])

        assert e_meas > 0.002  # stirring definitely happened
        assert 0.1 < e_meas / e_pred < 10.0
