"""Tests for Kepler orbital mechanics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.planetesimal.orbital import (
    OrbitalElements,
    cartesian_to_elements,
    elements_to_cartesian,
    solve_kepler,
)


class TestKeplerEquation:
    def test_circular(self):
        M = np.linspace(0, 2 * np.pi, 7)
        E = solve_kepler(M, np.zeros_like(M))
        assert np.allclose(E, M)

    def test_residual_is_zero(self):
        rng = np.random.default_rng(0)
        M = rng.uniform(-10, 10, 50)
        e = rng.uniform(0, 0.99, 50)
        E = solve_kepler(M, e)
        assert np.allclose(E - e * np.sin(E), M, atol=1e-12)

    def test_high_eccentricity(self):
        E = solve_kepler(np.array([0.1]), np.array([0.999]))
        assert np.allclose(E - 0.999 * np.sin(E), 0.1, atol=1e-12)

    def test_rejects_hyperbolic(self):
        with pytest.raises(ConfigurationError):
            solve_kepler(np.array([1.0]), np.array([1.5]))


class TestElementsToCartesian:
    def test_circular_orbit_radius_and_speed(self):
        el = OrbitalElements(
            a=np.array([4.0]),
            e=np.zeros(1),
            inc=np.zeros(1),
            Omega=np.zeros(1),
            omega=np.zeros(1),
            M=np.array([1.234]),
        )
        pos, vel = elements_to_cartesian(el, mu=1.0)
        assert np.linalg.norm(pos[0]) == pytest.approx(4.0)
        assert np.linalg.norm(vel[0]) == pytest.approx(0.5)
        assert pos[0, 2] == 0.0

    def test_pericenter_apocenter(self):
        a, e = 2.0, 0.5
        el_peri = OrbitalElements(*[np.array([x]) for x in (a, e, 0, 0, 0, 0.0)])
        pos, _ = elements_to_cartesian(el_peri)
        assert np.linalg.norm(pos[0]) == pytest.approx(a * (1 - e))
        el_apo = OrbitalElements(*[np.array([x]) for x in (a, e, 0, 0, 0, np.pi)])
        pos, _ = elements_to_cartesian(el_apo)
        assert np.linalg.norm(pos[0]) == pytest.approx(a * (1 + e))

    def test_vis_viva(self):
        rng = np.random.default_rng(5)
        n = 40
        el = OrbitalElements(
            a=rng.uniform(1, 30, n),
            e=rng.uniform(0, 0.9, n),
            inc=rng.uniform(0, np.pi / 3, n),
            Omega=rng.uniform(0, 2 * np.pi, n),
            omega=rng.uniform(0, 2 * np.pi, n),
            M=rng.uniform(0, 2 * np.pi, n),
        )
        pos, vel = elements_to_cartesian(el)
        r = np.linalg.norm(pos, axis=1)
        v2 = np.einsum("ij,ij->i", vel, vel)
        assert np.allclose(v2, 2.0 / r - 1.0 / el.a, rtol=1e-10)

    def test_inclination_sets_z_extent(self):
        el = OrbitalElements(*[np.array([x]) for x in (1.0, 0.0, 0.3, 0.0, 0.0, np.pi / 2)])
        pos, _ = elements_to_cartesian(el)
        # at M=pi/2 from the node, z = r*sin(i)*sin(u)
        assert abs(pos[0, 2]) > 0.1

    def test_rejects_nonpositive_a(self):
        el = OrbitalElements(*[np.array([x]) for x in (-1.0, 0.0, 0, 0, 0, 0)])
        with pytest.raises(ConfigurationError):
            elements_to_cartesian(el)


class TestRoundTrip:
    def test_elements_roundtrip(self):
        rng = np.random.default_rng(9)
        n = 60
        el = OrbitalElements(
            a=rng.uniform(1, 30, n),
            e=rng.uniform(0.01, 0.9, n),
            inc=rng.uniform(0.01, np.pi / 2.5, n),
            Omega=rng.uniform(0.1, 2 * np.pi - 0.1, n),
            omega=rng.uniform(0.1, 2 * np.pi - 0.1, n),
            M=rng.uniform(0.1, 2 * np.pi - 0.1, n),
        )
        pos, vel = elements_to_cartesian(el)
        back = cartesian_to_elements(pos, vel)
        assert np.allclose(back.a, el.a, rtol=1e-9)
        assert np.allclose(back.e, el.e, rtol=1e-8, atol=1e-10)
        assert np.allclose(back.inc, el.inc, rtol=1e-9, atol=1e-12)
        assert np.allclose(
            np.mod(back.Omega, 2 * np.pi), np.mod(el.Omega, 2 * np.pi), atol=1e-8
        )
        assert np.allclose(
            np.mod(back.omega, 2 * np.pi), np.mod(el.omega, 2 * np.pi), atol=1e-7
        )
        assert np.allclose(
            np.mod(back.M, 2 * np.pi), np.mod(el.M, 2 * np.pi), atol=1e-7
        )

    def test_hyperbolic_classified(self):
        # radial escape: r = 10, v > v_esc
        pos = np.array([[10.0, 0, 0]])
        vel = np.array([[1.0, 0.2, 0]])  # v^2 = 1.04 >> 2/10
        el = cartesian_to_elements(pos, vel)
        assert el.a[0] < 0
        assert el.e[0] > 1
        assert np.isnan(el.M[0])

    def test_planar_circular_orbit_safe(self):
        """Degenerate orbit (e=0, i=0) must not produce NaNs."""
        pos = np.array([[1.0, 0, 0]])
        vel = np.array([[0.0, 1.0, 0]])
        el = cartesian_to_elements(pos, vel)
        assert el.a[0] == pytest.approx(1.0)
        assert el.e[0] == pytest.approx(0.0, abs=1e-14)
        assert el.inc[0] == pytest.approx(0.0)
        assert np.isfinite(el.Omega[0]) and np.isfinite(el.omega[0])
