"""Tests for system comparison utilities."""

import numpy as np
import pytest

from repro.compare import compare_systems
from repro.errors import ConfigurationError

from conftest import make_disk_sim


class TestCompareSystems:
    def test_identical(self):
        sim = make_disk_sim(n=16, seed=4)
        c = compare_systems(sim.system, sim.system.copy())
        assert c.identical_sets
        assert c.max_pos_diff == 0.0
        assert c.rms_da == 0.0
        assert c.close()
        assert "16" in c.summary() or "18" in c.summary()

    def test_reordered_match_by_key(self):
        sim = make_disk_sim(n=16, seed=4)
        a = sim.system
        perm = np.random.default_rng(0).permutation(a.n)
        b = a.select(perm)
        c = compare_systems(a, b)
        assert c.identical_sets
        assert c.max_pos_diff == 0.0

    def test_detects_displacement(self):
        sim = make_disk_sim(n=16, seed=4)
        b = sim.system.copy()
        b.pos[3] += 0.5  # +0.5 on every component
        c = compare_systems(sim.system, b)
        assert c.max_pos_diff == pytest.approx(0.5 * np.sqrt(3.0), rel=1e-12)
        assert not c.close(pos_tol=1e-3)

    def test_subset_counts(self):
        sim = make_disk_sim(n=16, seed=4)
        a = sim.system
        b = a.remove(np.array([0, 1]))
        c = compare_systems(a, b)
        assert c.n_only_a == 2
        assert c.n_only_b == 0
        assert not c.identical_sets
        assert c.close(require_same_sets=False)

    def test_disjoint_rejected(self):
        sim1 = make_disk_sim(n=8, seed=1)
        sim2 = make_disk_sim(n=8, seed=1)
        sim2.system.key += 1000
        with pytest.raises(ConfigurationError):
            compare_systems(sim1.system, sim2.system)

    def test_backend_comparison_use_case(self):
        """The intended workflow: two backends, same disk, same time."""
        from repro.grape import Grape6Backend, Grape6Config, Grape6Machine
        from repro.core import KeplerField, Simulation, TimestepParams
        from repro.planetesimal import PlanetesimalDiskConfig, build_disk_system

        sim_h = make_disk_sim(n=20, seed=13)
        sim_h.evolve(3.0)

        sys_g = build_disk_system(PlanetesimalDiskConfig(n_planetesimals=20, seed=13))
        machine = Grape6Machine(Grape6Config.single_node(), eps=0.008, mode="flat")
        sim_g = Simulation(
            sys_g, Grape6Backend(machine),
            external_field=KeplerField(), timestep_params=TimestepParams(),
        )
        sim_g.initialize()
        sim_g.evolve(3.0)

        c = compare_systems(
            sim_h.predicted_state(3.0), sim_g.predicted_state(3.0)
        )
        assert c.close(pos_tol=1e-12)
