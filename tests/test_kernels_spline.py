"""Tests for the cubic-spline softening kernel."""

import numpy as np
import pytest

from repro.core.forces import acc_only
from repro.core.kernels import acc_spline, spline_force_factor
from repro.errors import ConfigurationError


class TestForceFactor:
    def test_newtonian_outside(self):
        u = np.array([1.0, 2.0, 10.0])
        assert np.allclose(spline_force_factor(u), 1.0 / u**3)

    def test_continuity_at_half(self):
        lo = spline_force_factor(np.array([0.5 - 1e-12]))[0]
        hi = spline_force_factor(np.array([0.5 + 1e-12]))[0]
        assert lo == pytest.approx(hi, rel=1e-8)

    def test_continuity_at_one(self):
        lo = spline_force_factor(np.array([1.0 - 1e-12]))[0]
        hi = spline_force_factor(np.array([1.0 + 1e-12]))[0]
        assert lo == pytest.approx(hi, rel=1e-8)

    def test_finite_at_center(self):
        assert spline_force_factor(np.array([0.0]))[0] == pytest.approx(32.0 / 3.0)

    def test_monotone_force_magnitude(self):
        """g(u)*u (force magnitude, scaled) rises to a max then falls
        as 1/u^2 — no negative forces anywhere."""
        u = np.linspace(1e-4, 3.0, 400)
        g = spline_force_factor(u)
        assert np.all(g > 0)

    def test_negative_u_rejected(self):
        with pytest.raises(ConfigurationError):
            spline_force_factor(np.array([-0.1]))


class TestAccSpline:
    def test_newtonian_for_distant_pairs(self, rng):
        pos_j = rng.normal(size=(20, 3))
        mass = rng.uniform(0.1, 1, 20)
        pos_i = rng.normal(size=(5, 3)) + 20.0  # far outside h
        a_spline = acc_spline(pos_i, pos_j, mass, h=0.5)
        a_newton = acc_only(pos_i, pos_j, mass, eps=0.0)
        assert np.allclose(a_spline, a_newton, rtol=1e-13)

    def test_plummer_differs_inside_but_agrees_outside(self, rng):
        """Plummer is never exactly Newtonian; the spline is, beyond h."""
        pos_j = np.zeros((1, 3))
        mass = np.ones(1)
        r = np.array([[3.0, 0, 0]])
        a_spline = acc_spline(r, pos_j, mass, h=1.0)
        a_plummer = acc_only(r, pos_j, mass, eps=1.0)
        a_newton = acc_only(r, pos_j, mass, eps=0.0)
        assert np.allclose(a_spline, a_newton, rtol=1e-14)
        assert not np.allclose(a_plummer, a_newton, rtol=1e-3)

    def test_bounded_at_small_separation(self):
        pos_j = np.zeros((1, 3))
        a = acc_spline(np.array([[1e-9, 0, 0]]), pos_j, np.ones(1), h=0.1)
        # acc ~ m * (32/3)/h^3 * r -> tiny for tiny r
        assert np.linalg.norm(a) < 1e-4

    def test_momentum_conservation(self, rng):
        pos = rng.normal(size=(15, 3))
        mass = rng.uniform(0.1, 1, 15)
        a = acc_spline(pos, pos, mass, h=0.5, self_indices=np.arange(15))
        total = (mass[:, None] * a).sum(axis=0)
        assert np.allclose(total, 0.0, atol=1e-12 * np.abs(mass[:, None] * a).max())

    def test_self_exclusion(self):
        pos = np.array([[0.0, 0, 0], [1.0, 0, 0]])
        a = acc_spline(pos, pos, np.ones(2), h=0.1, self_indices=np.arange(2))
        assert np.allclose(a[0], [1.0, 0, 0])

    def test_invalid_h(self):
        with pytest.raises(ConfigurationError):
            acc_spline(np.zeros((1, 3)), np.zeros((1, 3)), np.ones(1), h=0.0)

    def test_leapfrog_with_spline_conserves_energy(self):
        """End-to-end: a leapfrog binary using the spline kernel outside
        h behaves exactly Newtonian."""
        from conftest import make_two_body

        s = make_two_body(m1=1.0, m2=1.0, a=1.0, e=0.2)
        h = 0.05  # orbit never enters the softened zone
        dt = 0.002

        def total_acc(pos):
            return acc_spline(pos, pos, s.mass, h=h, self_indices=np.arange(2))

        def energy():
            v2 = np.einsum("ij,ij->i", s.vel, s.vel)
            ke = 0.5 * float(np.dot(s.mass, v2))
            r = np.linalg.norm(s.pos[1] - s.pos[0])
            return ke - s.mass[0] * s.mass[1] / r

        e0 = energy()
        for _ in range(2000):
            s.vel += 0.5 * dt * total_acc(s.pos)
            s.pos += dt * s.vel
            s.vel += 0.5 * dt * total_acc(s.pos)
        assert abs(energy() - e0) / abs(e0) < 1e-5
