"""Tests for the fault-tolerant campaign service (repro.serve).

Unit coverage of the state machine, retry policy, journal, admission
limiter and fair queue, plus small end-to-end campaigns with injected
chaos: transient worker failures, poison jobs, hung workers (lease
expiry), SIGKILLed workers, and orchestrator restarts.  The large
kill-and-recover stress campaign lives in ``test_serve_stress.py``.
"""

import json
import os
import signal
import time

import pytest

from repro.errors import ConfigurationError, JobStateError, ServeError
from repro.obs import Observability
from repro.serve import (
    LEGAL_TRANSITIONS,
    TERMINAL_STATES,
    AdmissionLimiter,
    CampaignService,
    FairQueue,
    Job,
    JobState,
    RetryPolicy,
    ScenarioConfig,
    execute_job,
    load_campaign_spec,
    read_result,
    render_status,
    scan_journal,
)
from repro.serve.journal import JobJournal

# small, fast scenario: 2 planetesimal blocks, checkpoint every block
FAST = {"n": 8, "t_end": 1.0, "dt_max": 0.25, "checkpoint_interval": 2}


def fast_scenario(seed=0, **over):
    merged = {**FAST, "seed": seed, **over}
    return ScenarioConfig.from_dict(merged)


def service(tmp_path, **over):
    kwargs = {
        "workers": 2,
        "retry": RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0),
        "poll_interval": 0.01,
        "fsync": False,
    }
    kwargs.update(over)
    return CampaignService(tmp_path / "camp", **kwargs)


def terminal_records(directory):
    """job id -> list of terminal journal records (want length 1)."""
    scan = scan_journal(directory / "journal.jsonl")
    terminal = {s.value for s in TERMINAL_STATES}
    out = {}
    for rec in scan.records:
        if rec.get("state") in terminal:
            out.setdefault(rec["id"], []).append(rec)
    return out


class TestJobStateMachine:
    def test_happy_path(self):
        job = Job("j1", "t", {})
        for state in (JobState.LEASED, JobState.RUNNING,
                      JobState.CHECKPOINTED, JobState.DONE):
            job.transition(state)
        assert job.terminal
        assert job.history[0] is JobState.QUEUED

    def test_illegal_transition_raises(self):
        job = Job("j1", "t", {})
        with pytest.raises(JobStateError, match="queued -> done"):
            job.transition(JobState.DONE)

    def test_terminal_states_are_final(self):
        for state in TERMINAL_STATES:
            assert LEGAL_TRANSITIONS[state] == frozenset()

    def test_every_state_has_a_row(self):
        assert set(LEGAL_TRANSITIONS) == set(JobState)

    def test_failed_retry_and_dead_letter_paths(self):
        job = Job("j1", "t", {}, state=JobState.FAILED)
        job.transition(JobState.QUEUED)  # retry
        job.state = JobState.FAILED
        job.transition(JobState.DEAD_LETTERED)
        assert job.terminal

    def test_bad_job_id_rejected(self):
        with pytest.raises(ConfigurationError, match="filesystem-safe"):
            Job("../escape", "t", {})

    def test_bad_tenant_rejected(self):
        with pytest.raises(ConfigurationError, match="tenant"):
            Job("j1", "a/b", {})

    def test_record_roundtrip(self):
        job = Job("j1", "alice", {"n": 8}, seq=7)
        submit = {**job.to_record(), "config": {"n": 8}}
        job.transition(JobState.LEASED)
        job.attempt = 2
        job.error = "boom"
        latest = job.to_record()
        back = Job.from_records(submit, latest)
        assert back.state is JobState.LEASED
        assert back.attempt == 2
        assert back.error == "boom"
        assert back.config == {"n": 8}
        assert back.seq == 7


class TestRetryPolicy:
    def test_deterministic_across_instances(self):
        a = RetryPolicy(seed=3).delay("job-1", 2)
        b = RetryPolicy(seed=3).delay("job-1", 2)
        assert a == b

    def test_jitter_decorrelates_jobs(self):
        p = RetryPolicy()
        assert p.delay("job-1", 1) != p.delay("job-2", 1)

    def test_exponential_growth_and_cap(self):
        p = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=3.0,
                        jitter=0.0, max_attempts=5)
        assert p.schedule("j") == [1.0, 2.0, 3.0, 3.0]

    def test_jitter_bounds(self):
        p = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.5)
        for attempt in range(1, 20):
            d = p.delay("j", attempt)
            assert 1.0 <= d < 1.5

    def test_exhausted(self):
        p = RetryPolicy(max_attempts=3)
        assert not p.exhausted(2)
        assert p.exhausted(3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(job_timeout=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy().delay("j", 0)


class TestJournal:
    def test_append_scan_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JobJournal(path) as j:
            j.append({"kind": "campaign", "name": "c"})
            j.append({"kind": "job", "id": "a", "state": "queued"})
            j.append({"kind": "job", "id": "a", "state": "leased"})
        scan = scan_journal(path)
        assert scan.header["name"] == "c"
        assert scan.states() == {"a": "leased"}
        assert scan.submits["a"]["state"] == "queued"
        assert not scan.torn_tail

    def test_torn_tail_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JobJournal(path) as j:
            j.append({"kind": "job", "id": "a", "state": "queued"})
        with open(path, "ab") as fh:
            fh.write(b'{"kind": "job", "id": "a", "sta')  # crash mid-append
        scan = scan_journal(path)
        assert scan.torn_tail
        assert scan.states() == {"a": "queued"}

    def test_midfile_corruption_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_bytes(b'garbage not json\n{"kind": "job", "id": "a"}\n')
        with pytest.raises(ServeError, match="corrupt at line 1"):
            scan_journal(path)

    def test_missing_file_is_empty(self, tmp_path):
        scan = scan_journal(tmp_path / "none.jsonl")
        assert scan.latest == {}

    def test_closed_journal_refuses_appends(self, tmp_path):
        j = JobJournal(tmp_path / "j.jsonl")
        j.close()
        with pytest.raises(ServeError, match="closed"):
            j.append({"kind": "job", "id": "a"})

    def test_non_serialisable_record_refused(self, tmp_path):
        with JobJournal(tmp_path / "j.jsonl") as j:
            with pytest.raises(ServeError, match="non-serialisable"):
                j.append({"bad": object()})


class TestAdmissionLimiter:
    def test_global_capacity_shed(self):
        lim = AdmissionLimiter(2)
        assert lim.try_acquire("a")
        assert lim.try_acquire("b")
        assert not lim.try_acquire("c")
        lim.release("a")
        assert lim.try_acquire("c")

    def test_per_tenant_quota(self):
        lim = AdmissionLimiter(10, per_tenant=1)
        assert lim.try_acquire("a")
        assert not lim.try_acquire("a")
        assert lim.try_acquire("b")
        assert lim.held_by("a") == 1

    def test_release_underflow_raises(self):
        with pytest.raises(ConfigurationError, match="without acquire"):
            AdmissionLimiter(2).release("a")

    def test_force_acquire_exceeds_capacity(self):
        lim = AdmissionLimiter(1)
        lim.force_acquire("a")
        lim.force_acquire("a")  # recovery must never shed admitted jobs
        assert lim.available == -1


class TestFairQueue:
    def _job(self, jid, tenant, not_before=0.0):
        job = Job(jid, tenant, {})
        job.not_before = not_before
        return job

    def test_round_robin_between_tenants(self):
        q = FairQueue()
        for i in range(3):
            q.push(self._job(f"a{i}", "alice"))
        q.push(self._job("b0", "bob"))
        order = [q.pop(now=0.0).job_id for _ in range(4)]
        # bob's single job is served before alice's queue drains
        assert order.index("b0") <= 1
        assert len(q) == 0

    def test_backoff_head_skipped_not_blocking(self):
        q = FairQueue()
        q.push(self._job("a0", "alice", not_before=100.0))
        q.push(self._job("b0", "bob"))
        assert q.pop(now=0.0).job_id == "b0"
        assert q.pop(now=0.0) is None  # alice still backing off
        assert q.pop(now=101.0).job_id == "a0"

    def test_soonest_not_before(self):
        q = FairQueue()
        q.push(self._job("a0", "alice", not_before=50.0))
        q.push(self._job("b0", "bob", not_before=20.0))
        assert q.soonest_not_before(0.0) == 20.0
        assert q.depth_by_tenant() == {"alice": 1, "bob": 1}


class TestScenarioConfig:
    def test_roundtrip(self):
        cfg = fast_scenario(seed=4)
        assert ScenarioConfig.from_dict(cfg.to_dict()) == cfg

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            ScenarioConfig.from_dict({"nn": 8})

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(n=0)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(backend="fpga")

    def test_load_campaign_spec_merges_defaults(self, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "defaults": {"n": 16, "t_end": 2.0},
            "jobs": [{"tenant": "alice", "seed": 1},
                     {"tenant": "bob", "seed": 2, "n": 32}],
        }))
        jobs = load_campaign_spec(spec)
        assert [t for t, _ in jobs] == ["alice", "bob"]
        assert jobs[0][1].n == 16
        assert jobs[1][1].n == 32

    def test_bad_specs_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            load_campaign_spec(tmp_path / "none.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{ torn")
        with pytest.raises(ConfigurationError, match="corrupt"):
            load_campaign_spec(bad)
        nolist = tmp_path / "nolist.json"
        nolist.write_text('{"jobs": 3}')
        with pytest.raises(ConfigurationError, match="'jobs' list"):
            load_campaign_spec(nolist)
        notenant = tmp_path / "notenant.json"
        notenant.write_text('{"jobs": [{"seed": 1}]}')
        with pytest.raises(ConfigurationError, match="tenant"):
            load_campaign_spec(notenant)


class TestWorker:
    def test_existing_result_short_circuits(self, tmp_path):
        run_dir = tmp_path / "job"
        run_dir.mkdir()
        sentinel = {"job_id": "j1", "state_sha256": "cafe"}
        (run_dir / "result.json").write_text(json.dumps(sentinel))
        # n=10**9 would take forever — idempotence must win first
        out = execute_job({
            "job_id": "j1", "tenant": "t", "attempt": 2,
            "run_dir": str(run_dir),
            "config": {"n": 10**9, "t_end": 1.0},
        })
        assert out == sentinel

    def test_read_result_absent(self, tmp_path):
        assert read_result(tmp_path) is None


class TestCampaignService:
    def test_small_campaign_completes(self, tmp_path):
        obs = Observability()
        with service(tmp_path, obs=obs) as svc:
            for seed in range(3):
                svc.submit("alice" if seed % 2 else "bob",
                           fast_scenario(seed=seed))
            report = svc.run(max_seconds=60)
        assert report.done == 3
        assert report.lost == 0
        assert report.dead_lettered == 0
        assert report.done_by_tenant == {"alice": 1, "bob": 2}
        assert obs.metrics.counter("serve.jobs_done_total").value == 3
        assert obs.metrics.counter("serve.jobs_lost_total").value == 0
        # every job has exactly one terminal journal record
        terms = terminal_records(tmp_path / "camp")
        assert sorted(terms) == sorted(svc.jobs)
        assert all(len(v) == 1 for v in terms.values())
        # results are published and fingerprinted
        for job in svc.jobs.values():
            assert job.result["state_sha256"]
            assert read_result(svc.run_dir(job.job_id)) == job.result

    def test_transient_failure_retried_to_done(self, tmp_path):
        with service(tmp_path) as svc:
            job = svc.submit("alice", fast_scenario(
                chaos={"fail_at_block": 1, "fail_attempts": 1}))
            report = svc.run(max_seconds=60)
        assert report.done == 1
        assert report.retries >= 1
        assert job.state is JobState.DONE
        assert job.attempt == 2
        # the attempt-1 failure is journaled with the chaos reason
        scan = scan_journal(tmp_path / "camp" / "journal.jsonl")
        failed = [r for r in scan.records
                  if r["id"] == job.job_id and r["state"] == "failed"]
        assert failed and "chaos" in failed[0]["error"]

    def test_poison_job_dead_letters(self, tmp_path):
        with service(tmp_path) as svc:
            good = svc.submit("bob", fast_scenario(seed=1))
            poison = svc.submit("alice", fast_scenario(
                chaos={"fail_at_block": 1, "fail_attempts": 99}))
            report = svc.run(max_seconds=60)
        assert report.done == 1
        assert report.dead_lettered == 1
        assert good.state is JobState.DONE
        assert poison.state is JobState.DEAD_LETTERED
        assert poison.attempt == svc.retry.max_attempts
        terms = terminal_records(tmp_path / "camp")
        assert all(len(v) == 1 for v in terms.values())

    def test_hung_worker_lease_expires_and_job_recovers(self, tmp_path):
        with service(tmp_path, lease_seconds=0.6) as svc:
            job = svc.submit("alice", fast_scenario(
                chaos={"hang_at_block": 1, "hang_attempts": 1}))
            report = svc.run(max_seconds=60)
        assert report.done == 1
        assert report.lease_expiries >= 1
        assert job.state is JobState.DONE
        scan = scan_journal(tmp_path / "camp" / "journal.jsonl")
        reasons = [r.get("error", "") for r in scan.records
                   if r.get("state") == "failed"]
        assert any("lease expired" in r for r in reasons)

    def test_sigkilled_worker_resumes_bit_identical(self, tmp_path):
        # reference: the same scenario run uninterrupted
        with service(tmp_path / "ref") as svc:
            ref = svc.submit("alice", fast_scenario(seed=9))
            svc.run(max_seconds=60)
        assert ref.state is JobState.DONE

        with service(tmp_path, workers=1) as svc:
            job = svc.submit("alice", fast_scenario(seed=9))
            killed = False
            deadline = time.time() + 60
            while svc.step() and time.time() < deadline:
                if not killed:
                    for jid, pid in svc.worker_pids().items():
                        # let it checkpoint once, then kill it
                        if (svc.run_dir(jid) / "checkpoints").is_dir():
                            os.kill(pid, signal.SIGKILL)
                            killed = True
                time.sleep(0.01)
            report = svc.report()
        assert killed
        assert report.done == 1
        assert job.result["state_sha256"] == ref.result["state_sha256"]
        assert job.result["t_final"] == ref.result["t_final"]
        assert job.result["block_steps"] == ref.result["block_steps"]

    def test_orchestrator_restart_recovers_campaign(self, tmp_path):
        svc = service(tmp_path, workers=2)
        for seed in range(4):
            svc.submit("alice" if seed % 2 else "bob", fast_scenario(seed=seed))
        # run a few rounds, then die with workers in flight
        deadline = time.time() + 30
        while not svc.worker_pids() and time.time() < deadline:
            svc.step()
            time.sleep(0.01)
        svc.shutdown(kill_workers=True)

        svc2 = service(tmp_path, workers=2)
        assert len(svc2.jobs) == 4  # recovered from the journal
        with svc2:
            report = svc2.run(max_seconds=60)
        assert report.done == 4
        assert report.lost == 0
        terms = terminal_records(tmp_path / "camp")
        assert sorted(terms) == sorted(svc2.jobs)
        assert all(len(v) == 1 for v in terms.values())
        # the restart is journaled as a re-lease, not a burnt attempt
        scan = scan_journal(tmp_path / "camp" / "journal.jsonl")
        assert any(r.get("reason") == "orchestrator restart"
                   for r in scan.records)

    def test_admission_rejection_is_explicit(self, tmp_path):
        obs = Observability()
        with service(tmp_path, capacity=2, obs=obs) as svc:
            svc.submit("alice", fast_scenario(seed=0))
            svc.submit("alice", fast_scenario(seed=1))
            shed = svc.submit("bob", fast_scenario(seed=2))
            assert shed.state is JobState.REJECTED
            report = svc.run(max_seconds=60)
        assert report.done == 2
        assert report.rejected == 1
        assert obs.metrics.counter("serve.jobs_rejected_total").value == 1
        scan = scan_journal(tmp_path / "camp" / "journal.jsonl")
        assert scan.states()[shed.job_id] == "rejected"

    def test_per_tenant_quota_rejects(self, tmp_path):
        with service(tmp_path, per_tenant_capacity=1) as svc:
            svc.submit("alice", fast_scenario(seed=0))
            shed = svc.submit("alice", fast_scenario(seed=1))
            ok = svc.submit("bob", fast_scenario(seed=2))
            assert shed.state is JobState.REJECTED
            assert ok.state is JobState.QUEUED
            svc.run(max_seconds=60)

    def test_job_timeout_kills_and_fails(self, tmp_path):
        retry = RetryPolicy(max_attempts=1, job_timeout=0.5)
        with service(tmp_path, retry=retry, lease_seconds=30.0) as svc:
            job = svc.submit("alice", fast_scenario(
                chaos={"hang_at_block": 1, "hang_attempts": 1}))
            report = svc.run(max_seconds=60)
        assert report.dead_lettered == 1
        assert job.state is JobState.DEAD_LETTERED
        assert "timeout" in job.error

    def test_duplicate_job_id_refused(self, tmp_path):
        with service(tmp_path) as svc:
            svc.submit("alice", fast_scenario(), job_id="same")
            with pytest.raises(ServeError, match="duplicate"):
                svc.submit("alice", fast_scenario(), job_id="same")
            svc.run(max_seconds=60)

    def test_drain_deadline_raises(self, tmp_path):
        retry = RetryPolicy(max_attempts=1, base_delay=0.01)
        svc = service(tmp_path, retry=retry, lease_seconds=30.0)
        try:
            svc.submit("alice", fast_scenario(
                chaos={"hang_at_block": 1, "hang_attempts": 1}))
            with pytest.raises(ServeError, match="did not drain"):
                svc.run(max_seconds=0.3)
        finally:
            svc.shutdown(kill_workers=True)

    def test_bad_construction_rejected(self, tmp_path):
        with pytest.raises(ServeError, match="worker"):
            CampaignService(tmp_path / "x", workers=0)
        with pytest.raises(ServeError, match="lease"):
            CampaignService(tmp_path / "y", lease_seconds=0.0)


class TestRenderStatus:
    def test_status_table(self, tmp_path):
        with service(tmp_path, capacity=1) as svc:
            svc.submit("alice", fast_scenario(seed=0))
            shed = svc.submit("bob", fast_scenario(seed=1))
            svc.run(max_seconds=60)
        scan = scan_journal(tmp_path / "camp" / "journal.jsonl")
        text = render_status(scan, directory="camp")
        assert "2 job(s)" in text
        assert "done=1" in text
        assert "rejected=1" in text
        assert "alice" in text and "bob" in text
        assert shed.job_id in text or "rejected" in text

    def test_empty_journal(self, tmp_path):
        scan = scan_journal(tmp_path / "none.jsonl")
        assert "no jobs" in render_status(scan, directory="x")


class TestServeCLI:
    def _spec(self, tmp_path, jobs=None):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "defaults": FAST,
            "jobs": jobs or [{"tenant": "alice", "seed": 1},
                             {"tenant": "bob", "seed": 2}],
        }))
        return spec

    def test_run_campaign_then_status(self, capsys, tmp_path):
        from repro.cli import main

        spec = self._spec(tmp_path)
        d = tmp_path / "camp"
        code = main([
            "serve", "run-campaign", "--spec", str(spec), "--dir", str(d),
            "--workers", "2", "--metrics-out", str(tmp_path / "m.prom"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "campaign complete" in out
        assert "2 submitted, 2 done" in out
        assert "serve_jobs_done_total 2" in (tmp_path / "m.prom").read_text()

        assert main(["serve", "status", str(d)]) == 0
        out = capsys.readouterr().out
        assert "done=2" in out

    def test_missing_spec_exits_2(self, capsys, tmp_path):
        from repro.cli import main

        code = main([
            "serve", "run-campaign", "--spec", str(tmp_path / "none.json"),
            "--dir", str(tmp_path / "camp"),
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_dead_letter_campaign_exits_1(self, capsys, tmp_path):
        from repro.cli import main

        spec = self._spec(tmp_path, jobs=[{
            "tenant": "alice", "seed": 1,
            "chaos": {"fail_at_block": 1, "fail_attempts": 99},
        }])
        code = main([
            "serve", "run-campaign", "--spec", str(spec),
            "--dir", str(tmp_path / "camp"),
            "--workers", "1", "--max-attempts", "2",
            "--retry-base-delay", "0.01",
        ])
        assert code == 1
        assert "1 dead-lettered" in capsys.readouterr().out

    def test_corrupt_journal_status_exits_2(self, capsys, tmp_path):
        from repro.cli import main

        d = tmp_path / "camp"
        d.mkdir()
        (d / "journal.jsonl").write_text("garbage\n{}\n")
        assert main(["serve", "status", str(d)]) == 2
        assert "corrupt" in capsys.readouterr().err
