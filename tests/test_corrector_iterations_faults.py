"""Tests for P(EC)^n corrector iteration and pipeline-fault handling."""

import numpy as np
import pytest

from repro.core import (
    HostDirectBackend,
    KeplerField,
    Simulation,
    TimestepParams,
    energy,
)
from repro.core.forces import acc_jerk
from repro.errors import ConfigurationError, GrapeError, GrapeMemoryError
from repro.grape.board import ProcessorBoard
from repro.grape.pipeline import VMP_FACTOR, ForcePipelineArray

from conftest import make_two_body


class TestCorrectorIterations:
    def make(self, iters, e=0.8, eta=0.05):
        s = make_two_body(m1=1.0, m2=1e-3, a=1.0, e=e)
        params = TimestepParams(eta=eta, eta_start=eta / 2, dt_max=2.0**-3)
        sim = Simulation(
            s, HostDirectBackend(eps=0.0), timestep_params=params,
            corrector_iterations=iters,
        )
        sim.initialize()
        return sim

    def test_rejects_zero_iterations(self):
        with pytest.raises(ConfigurationError):
            self.make(0)

    def test_iteration_improves_energy_error(self):
        """At coarse eta on an eccentric binary the (EC)^2 corrector
        conserves energy better than plain PEC."""
        errs = {}
        for iters in (1, 2):
            sim = self.make(iters)
            e0 = energy(sim.system, eps=0.0).total
            sim.evolve(4 * np.pi)
            sim.synchronize(4 * np.pi)
            e1 = energy(sim.system, eps=0.0).total
            errs[iters] = abs(e1 - e0) / abs(e0)
        assert errs[2] < errs[1]

    def test_iteration_costs_force_evaluations(self):
        sim1 = self.make(1, e=0.3)
        sim1.evolve(1.0)
        sim2 = self.make(2, e=0.3)
        sim2.evolve(1.0)
        # roughly double the force calls for the same span
        assert sim2.backend.counter.force_calls > 1.5 * sim1.backend.counter.force_calls

    def test_results_remain_consistent(self):
        """Iterated runs stay close to the PEC trajectory (they solve
        the same ODE; differences are at truncation-error level)."""
        sims = [self.make(i, e=0.3, eta=0.01) for i in (1, 3)]
        for sim in sims:
            sim.evolve(2.0)
            sim.synchronize(2.0)
        assert np.allclose(sims[0].system.pos, sims[1].system.pos, atol=1e-6)


class TestPipelineMasking:
    def test_mask_reduces_capacity(self):
        p = ForcePipelineArray(n_pipelines=6)
        p.mask_pipelines(2)
        assert p.active_pipelines == 4
        assert p.i_capacity == 4 * VMP_FACTOR

    def test_masking_increases_cycles(self):
        healthy = ForcePipelineArray(n_pipelines=6)
        degraded = ForcePipelineArray(n_pipelines=6)
        degraded.mask_pipelines(3)
        assert degraded.cycles_for(48, 1000) > healthy.cycles_for(48, 1000)

    def test_masking_does_not_change_results(self, rng):
        pos = rng.normal(size=(20, 3))
        vel = rng.normal(size=(20, 3))
        mass = rng.uniform(0.1, 1, 20)
        healthy = ForcePipelineArray(eps=0.01)
        degraded = ForcePipelineArray(eps=0.01)
        degraded.mask_pipelines(5)
        r1 = healthy.evaluate(pos[:4], vel[:4], pos, vel, mass)
        r2 = degraded.evaluate(pos[:4], vel[:4], pos, vel, mass)
        assert np.array_equal(r1.acc, r2.acc)
        assert np.array_equal(r1.jerk, r2.jerk)

    def test_dead_chip_raises_on_cycles(self):
        p = ForcePipelineArray(n_pipelines=6)
        p.mask_pipelines(6)
        assert p.is_dead
        with pytest.raises(GrapeError):
            p.cycles_for(1, 10)

    def test_invalid_mask_count(self):
        p = ForcePipelineArray(n_pipelines=6)
        with pytest.raises(GrapeError):
            p.mask_pipelines(7)


class TestBoardFaultHandling:
    def make_particles(self, rng, n=16):
        return {
            "key": np.arange(n, dtype=np.int64),
            "mass": rng.uniform(0.1, 1, n),
            "pos": rng.normal(size=(n, 3)),
            "vel": rng.normal(size=(n, 3)),
            "acc": np.zeros((n, 3)),
            "jerk": np.zeros((n, 3)),
            "t": np.zeros(n),
        }

    def test_dead_chip_gets_no_particles(self, rng):
        b = ProcessorBoard(board_id=0, eps=0.01, n_chips=4)
        b.chips[1].pipelines.mask_pipelines(6)
        p = self.make_particles(rng)
        b.load(**p)
        assert b.chips[1].n_resident == 0
        assert sum(c.n_resident for c in b.chips) == 16

    def test_forces_correct_with_dead_chip(self, rng):
        b = ProcessorBoard(board_id=0, eps=0.01, n_chips=4)
        b.chips[2].pipelines.mask_pipelines(6)
        p = self.make_particles(rng)
        b.load(**p)
        res = b.compute(p["pos"][:5], p["vel"][:5], p["key"][:5], 0.0, 90e6)
        a_ref, _ = acc_jerk(
            p["pos"][:5], p["vel"][:5], p["pos"], p["vel"], p["mass"], 0.01,
            self_indices=np.arange(5),
        )
        assert np.allclose(res.acc, a_ref, rtol=1e-12, atol=1e-16)

    def test_reload_after_failure_redistributes(self, rng):
        """A chip dying between runs: reloading moves its particles."""
        b = ProcessorBoard(board_id=0, eps=0.01, n_chips=4)
        p = self.make_particles(rng)
        b.load(**p)
        assert b.chips[0].n_resident > 0
        b.chips[0].pipelines.mask_pipelines(6)
        b.load(**p)
        assert b.chips[0].n_resident == 0
        assert sum(c.n_resident for c in b.chips) == 16

    def test_all_chips_dead_raises(self, rng):
        b = ProcessorBoard(board_id=0, eps=0.01, n_chips=2)
        for c in b.chips:
            c.pipelines.mask_pipelines(6)
        with pytest.raises(GrapeMemoryError):
            b.load(**self.make_particles(rng))

    def test_degraded_board_is_slower(self, rng):
        """Masked pipelines show up in the cycle accounting."""
        p = self.make_particles(rng, n=64)
        times = {}
        for defective in (0, 4):
            b = ProcessorBoard(board_id=0, eps=0.01, n_chips=2)
            for c in b.chips:
                c.pipelines.mask_pipelines(defective)
            b.load(**p)
            b.compute(p["pos"], p["vel"], p["key"], 0.0, 90e6)
            times[defective] = b.force_seconds
        assert times[4] > times[0]
