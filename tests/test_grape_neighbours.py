"""Tests for the GRAPE-6 neighbour-list hardware emulation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.grape import Grape6Backend, Grape6Config, Grape6Machine
from repro.grape.neighbours import (
    NeighbourResult,
    merge_neighbour_results,
    neighbour_search,
)
from repro.planetesimal import PlanetesimalDiskConfig, build_disk_system


class TestNeighbourSearch:
    def test_basic_range_query(self):
        pos_j = np.array([[0.0, 0, 0], [1.0, 0, 0], [5.0, 0, 0]])
        keys = np.array([10, 11, 12])
        res = neighbour_search(np.array([[0.1, 0, 0]]), pos_j, keys, h=2.0)
        assert set(res.lists[0].tolist()) == {10, 11}
        assert res.nearest_key[0] == 10
        assert res.nearest_dist[0] == pytest.approx(0.1)

    def test_per_particle_radius(self):
        pos_j = np.array([[0.0, 0, 0], [3.0, 0, 0]])
        keys = np.array([1, 2])
        pos_i = np.array([[0.5, 0, 0], [0.5, 0, 0]])
        res = neighbour_search(pos_i, pos_j, keys, h=np.array([1.0, 10.0]))
        assert res.lists[0].tolist() == [1]
        assert set(res.lists[1].tolist()) == {1, 2}

    def test_self_exclusion(self):
        pos = np.array([[0.0, 0, 0], [0.5, 0, 0]])
        keys = np.array([7, 8])
        res = neighbour_search(pos, pos, keys, h=1.0, exclude_keys=keys)
        assert res.lists[0].tolist() == [8]
        assert res.nearest_key[0] == 8

    def test_no_candidates(self):
        pos_j = np.array([[100.0, 0, 0]])
        res = neighbour_search(np.zeros((1, 3)), pos_j, np.array([5]), h=1.0)
        assert res.lists[0].size == 0
        assert res.nearest_key[0] == 5  # nearest is reported even outside h

    def test_all_excluded_gives_minus_one(self):
        pos = np.zeros((1, 3))
        res = neighbour_search(pos, pos, np.array([3]), h=1.0,
                               exclude_keys=np.array([3]))
        assert res.nearest_key[0] == -1
        assert np.isinf(res.nearest_dist[0])

    def test_negative_radius_rejected(self):
        with pytest.raises(ConfigurationError):
            neighbour_search(np.zeros((1, 3)), np.zeros((1, 3)), np.array([0]), h=-1.0)

    def test_zero_i_particles(self):
        """An empty active block is a legal query, not a crash."""
        res = neighbour_search(
            np.empty((0, 3)), np.zeros((4, 3)), np.arange(4), h=1.0
        )
        assert res.lists == []
        assert res.nearest_key.shape == (0,)
        assert res.nearest_dist.shape == (0,)

    def test_distance_tie_prefers_lowest_key(self):
        """Equidistant nearest candidates resolve to the lowest j-key,
        independent of the source ordering."""
        pos_j = np.array([[1.0, 0, 0], [-1.0, 0, 0], [0.0, 5.0, 0]])
        for order in ([0, 1, 2], [1, 0, 2], [2, 1, 0]):
            keys = np.array([40, 30, 99])[order]
            res = neighbour_search(
                np.zeros((1, 3)), pos_j[order], keys, h=2.0
            )
            assert res.nearest_key[0] == 30
            assert res.nearest_dist[0] == pytest.approx(1.0)


class TestMerge:
    def test_merge_combines_lists_and_nearest(self):
        r1 = NeighbourResult(
            lists=[np.array([1, 2])], nearest_key=np.array([1]),
            nearest_dist=np.array([0.5]),
        )
        r2 = NeighbourResult(
            lists=[np.array([9])], nearest_key=np.array([9]),
            nearest_dist=np.array([0.1]),
        )
        merged = merge_neighbour_results([r1, r2])
        assert set(merged.lists[0].tolist()) == {1, 2, 9}
        assert merged.nearest_key[0] == 9
        assert merged.nearest_dist[0] == pytest.approx(0.1)

    def test_merge_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_neighbour_results([])

    def test_merge_exported(self):
        """Regression: the merge is part of the public API surface."""
        from repro.grape import neighbours

        assert "merge_neighbour_results" in neighbours.__all__

    def test_merge_zero_i_particles(self):
        """Merging chip results for an empty block returns an empty
        result instead of crashing on the empty stack."""
        empty = NeighbourResult(
            lists=[], nearest_key=np.empty(0, dtype=np.int64),
            nearest_dist=np.empty(0),
        )
        merged = merge_neighbour_results([empty, empty])
        assert merged.lists == []
        assert merged.nearest_key.shape == (0,)
        assert merged.nearest_dist.shape == (0,)

    def test_merge_tie_break_is_chip_order_independent(self):
        """Two chips reporting the same nearest distance must merge to
        the lowest key whichever chip comes first."""
        r_a = NeighbourResult(
            lists=[np.array([50])], nearest_key=np.array([50]),
            nearest_dist=np.array([1.0]),
        )
        r_b = NeighbourResult(
            lists=[np.array([20])], nearest_key=np.array([20]),
            nearest_dist=np.array([1.0]),
        )
        for chips in ([r_a, r_b], [r_b, r_a]):
            merged = merge_neighbour_results(chips)
            assert merged.nearest_key[0] == 20
            assert merged.nearest_dist[0] == pytest.approx(1.0)

    def test_merge_lists_sorted(self):
        r_a = NeighbourResult(
            lists=[np.array([9, 3])], nearest_key=np.array([3]),
            nearest_dist=np.array([0.2]),
        )
        r_b = NeighbourResult(
            lists=[np.array([5])], nearest_key=np.array([5]),
            nearest_dist=np.array([0.4]),
        )
        merged = merge_neighbour_results([r_a, r_b])
        assert merged.lists[0].tolist() == [3, 5, 9]

    def test_merge_disagreeing_sizes_rejected(self):
        r_a = NeighbourResult(
            lists=[np.array([1])], nearest_key=np.array([1]),
            nearest_dist=np.array([0.5]),
        )
        r_b = NeighbourResult(
            lists=[], nearest_key=np.empty(0, dtype=np.int64),
            nearest_dist=np.empty(0),
        )
        with pytest.raises(ConfigurationError):
            merge_neighbour_results([r_a, r_b])

    def test_merge_all_missing_stays_minus_one(self):
        """A particle with no candidate on any chip keeps key -1."""
        miss = NeighbourResult(
            lists=[np.empty(0, dtype=np.int64)], nearest_key=np.array([-1]),
            nearest_dist=np.array([np.inf]),
        )
        merged = merge_neighbour_results([miss, miss])
        assert merged.nearest_key[0] == -1
        assert np.isinf(merged.nearest_dist[0])


class TestMachineNeighbours:
    def make(self, mode):
        sys_ = build_disk_system(PlanetesimalDiskConfig(n_planetesimals=30, seed=6))
        m = Grape6Machine(Grape6Config.scaled_down(), eps=0.008, mode=mode)
        b = Grape6Backend(m)
        b.load(sys_)
        return sys_, m

    def test_flat_matches_bruteforce(self):
        sys_, m = self.make("flat")
        active = np.arange(sys_.n)
        res = m.neighbours_of(sys_, active, 0.0, h=2.0)
        # brute force
        for i in range(sys_.n):
            d = np.linalg.norm(sys_.pos - sys_.pos[i], axis=1)
            d[i] = np.inf
            expect = set(sys_.key[d < 2.0].tolist())
            assert set(res.lists[i].tolist()) == expect
            assert res.nearest_key[i] == sys_.key[np.argmin(d)]

    def test_hierarchy_matches_flat(self):
        sys_f, mf = self.make("flat")
        sys_h, mh = self.make("hierarchy")
        active = np.arange(sys_f.n)
        rf = mf.neighbours_of(sys_f, active, 0.0, h=3.0)
        rh = mh.neighbours_of(sys_h, active, 0.0, h=3.0)
        for lf, lh in zip(rf.lists, rh.lists):
            assert set(lf.tolist()) == set(lh.tolist())
        assert np.array_equal(rf.nearest_key, rh.nearest_key)
        assert np.allclose(rf.nearest_dist, rh.nearest_dist)

    def test_subset_active(self):
        sys_, m = self.make("flat")
        active = np.array([3, 17])
        res = m.neighbours_of(sys_, active, 0.0, h=5.0)
        assert len(res.lists) == 2

    def test_neighbours_at_predicted_time(self):
        """Sources are predicted to t_now before the query."""
        sys_, m = self.make("flat")
        # give everything a common velocity: neighbour sets at t=0 and
        # t=1 must be identical (rigid translation)
        sys_.vel[:] = [0.01, 0.0, 0.0]
        active = np.arange(sys_.n)
        r0 = m.neighbours_of(sys_, active, 0.0, h=2.0)
        r1 = m.neighbours_of(sys_, active, 1.0, h=2.0)
        for l0, l1 in zip(r0.lists, r1.lists):
            assert set(l0.tolist()) == set(l1.tolist())
