"""Tests for the run-health watchdogs (repro.obs.health)."""

import pytest

from repro.obs import (
    HealthEvent,
    HealthMonitor,
    HealthSample,
    MetricsRegistry,
    Observability,
    default_detectors,
    render_health_events,
)
from repro.obs.health import (
    SEVERITY_LEVEL,
    BlockCollapseDetector,
    CheckpointLatencyDetector,
    EnergyDriftDetector,
    NeighbourOverflowDetector,
    ThreadImbalanceDetector,
)


def sample(t=0.0, metrics=None, **kw):
    return HealthSample(t=t, metrics=metrics or {}, **kw)


class TestEnergyDrift:
    def test_steep_drift_detected(self):
        det = EnergyDriftDetector(warn_slope=1e-6, critical_slope=1e-3)
        event = None
        for i in range(6):
            event = det.check(sample(t=float(i), energy_error=1e-5 * i))
        assert event is not None
        assert event.severity == "warning"
        assert event.value == pytest.approx(1e-5, rel=0.2)

    def test_critical_on_fast_drift(self):
        det = EnergyDriftDetector(critical_slope=1e-4)
        event = None
        for i in range(6):
            event = det.check(sample(t=float(i), energy_error=1e-3 * i))
        assert event is not None and event.severity == "critical"

    def test_flat_error_is_quiet(self):
        det = EnergyDriftDetector()
        for i in range(8):
            assert det.check(sample(t=float(i), energy_error=1e-9)) is None

    def test_reads_metrics_fallback(self):
        det = EnergyDriftDetector(warn_slope=1e-8)
        event = None
        for i in range(6):
            event = det.check(
                sample(t=float(i), metrics={"run.energy_error": 1e-4 * i})
            )
        assert event is not None

    def test_no_signal_no_event(self):
        assert EnergyDriftDetector().check(sample(t=1.0)) is None


class TestBlockCollapse:
    def test_collapse_from_metric_deltas(self):
        det = BlockCollapseDetector(min_blocks=10)
        first = sample(
            metrics={"blockstep.total": 0.0, "blockstep.active_particles": 0.0}
        )
        assert det.check(first) is None
        second = sample(
            metrics={
                "blockstep.total": 100.0,
                "blockstep.active_particles": 105.0,  # mean 1.05
            }
        )
        event = det.check(second)
        assert event is not None and event.severity == "critical"

    def test_healthy_blocks_quiet(self):
        det = BlockCollapseDetector(min_blocks=10)
        det.check(sample(metrics={"blockstep.total": 0.0,
                                  "blockstep.active_particles": 0.0}))
        ok = sample(metrics={"blockstep.total": 100.0,
                             "blockstep.active_particles": 5000.0})
        assert det.check(ok) is None

    def test_too_few_blocks_ignored(self):
        det = BlockCollapseDetector(min_blocks=16)
        det.check(sample(metrics={"blockstep.total": 0.0,
                                  "blockstep.active_particles": 0.0}))
        few = sample(metrics={"blockstep.total": 4.0,
                              "blockstep.active_particles": 4.0})
        assert det.check(few) is None

    def test_driver_mean_fallback(self):
        det = BlockCollapseDetector()
        event = det.check(sample(mean_block=1.0))
        assert event is not None and event.severity == "critical"


class TestNeighbourOverflow:
    def test_overflow_critical(self):
        det = NeighbourOverflowDetector(capacity=256)
        event = det.check(sample(metrics={"hybrid.neighbour_count.max": 300.0}))
        assert event is not None and event.severity == "critical"

    def test_near_capacity_warns(self):
        det = NeighbourOverflowDetector(capacity=256, warn_fraction=0.8)
        event = det.check(sample(metrics={"hybrid.neighbour_count.max": 210.0}))
        assert event is not None and event.severity == "warning"

    def test_small_sphere_quiet(self):
        det = NeighbourOverflowDetector()
        assert det.check(sample(metrics={"hybrid.neighbour_count.max": 20.0})) is None


class TestThreadImbalance:
    def test_starved_pool_warns(self):
        det = ThreadImbalanceDetector(min_efficiency=0.5)
        event = det.check(
            sample(metrics={"kernel.threads": 4.0,
                            "kernel.thread_efficiency": 0.2})
        )
        assert event is not None and event.severity == "warning"

    def test_single_thread_quiet(self):
        det = ThreadImbalanceDetector()
        assert det.check(
            sample(metrics={"kernel.threads": 1.0,
                            "kernel.thread_efficiency": 0.1})
        ) is None

    def test_unmeasured_efficiency_quiet(self):
        det = ThreadImbalanceDetector()
        assert det.check(sample(metrics={"kernel.threads": 4.0})) is None


class TestCheckpointLatency:
    def test_slow_write_warns(self):
        det = CheckpointLatencyDetector(warn_seconds=1.0, critical_seconds=5.0)
        event = det.check(
            sample(metrics={"checkpoint.write_seconds.max": 2.0})
        )
        assert event is not None and event.severity == "warning"

    def test_very_slow_write_critical(self):
        det = CheckpointLatencyDetector(critical_seconds=5.0)
        event = det.check(
            sample(metrics={"checkpoint.write_seconds.max": 9.0})
        )
        assert event is not None and event.severity == "critical"

    def test_fast_write_quiet(self):
        det = CheckpointLatencyDetector()
        assert det.check(
            sample(metrics={"checkpoint.write_seconds.max": 0.05})
        ) is None


class TestMonitor:
    def overflow_sample(self):
        return sample(metrics={"hybrid.neighbour_count.max": 400.0})

    def test_default_detector_set(self):
        names = {d.name for d in default_detectors()}
        assert names == {
            "energy_drift",
            "block_collapse",
            "neighbour_overflow",
            "thread_imbalance",
            "checkpoint_latency",
        }

    def test_emits_and_counts(self):
        obs = Observability(metrics=MetricsRegistry(strict=True))
        mon = HealthMonitor(obs=obs)
        events = mon.check(self.overflow_sample())
        assert len(events) == 1
        assert events[0].detector == "neighbour_overflow"
        snap = obs.metrics.snapshot()
        assert snap["health.events_total"] == 1.0
        assert snap["health.checks_total"] == 5.0
        assert snap["health.last_severity"] == float(SEVERITY_LEVEL["critical"])
        assert snap["health.detector.neighbour_overflow_events_total"] == 1.0

    def test_repeat_suppression(self):
        mon = HealthMonitor(repeat_every=4)
        emitted = [len(mon.check(self.overflow_sample())) for _ in range(8)]
        # first firing emits, the next three are suppressed, then re-emit
        assert emitted == [1, 0, 0, 0, 1, 0, 0, 0]
        assert mon.events_total == 2

    def test_recovery_resets_suppression(self):
        mon = HealthMonitor(repeat_every=100)
        assert len(mon.check(self.overflow_sample())) == 1
        assert len(mon.check(sample())) == 0  # anomaly cleared
        assert len(mon.check(self.overflow_sample())) == 1  # fresh event

    def test_last_severity_drops_when_clean(self):
        obs = Observability()
        mon = HealthMonitor(obs=obs)
        mon.check(self.overflow_sample())
        mon.check(sample())
        assert obs.metrics.snapshot()["health.last_severity"] == 0.0

    def test_event_record_roundtrip(self):
        mon = HealthMonitor()
        (event,) = mon.check(self.overflow_sample())
        rec = event.to_record()
        assert rec["detector"] == "neighbour_overflow"
        assert rec["severity"] == "critical"
        assert "threshold" in rec and "value" in rec


class TestRendering:
    def test_renders_events_and_dicts(self):
        event = HealthEvent("energy_drift", "warning", "slope high",
                            t=3.0, value=1e-5, threshold=1e-6)
        as_dict = {"detector": "block_collapse", "severity": "critical",
                   "message": "collapse", "t": 4.0}
        text = render_health_events([event, as_dict])
        assert "WARNING" in text and "CRITICAL" in text
        assert "energy_drift" in text and "block_collapse" in text

    def test_empty_is_empty(self):
        assert render_health_events([]) == ""


class TestDriverIntegration:
    def test_production_run_reports_health(self, tmp_path):
        """A managed run wires the monitor and reports a clean bill."""
        from repro.core import KeplerField, Simulation, TimestepParams
        from repro.planetesimal import PlanetesimalDiskConfig, build_disk_system
        from repro.runio import ProductionRun
        from repro.runio.runlog import read_run_log
        from repro.core import HostDirectBackend

        system = build_disk_system(
            PlanetesimalDiskConfig(n_planetesimals=24, seed=3)
        )
        sim = Simulation(
            system,
            HostDirectBackend(eps=0.008),
            external_field=KeplerField(),
            timestep_params=TimestepParams(eta=0.02, eta_start=0.01, dt_max=1.0),
        )
        run = ProductionRun(
            sim, tmp_path, diagnostics_interval=0.5, run_id="health-test"
        )
        report = run.execute(2.0)
        assert report.health_events == 0  # clean short run
        records = read_run_log(tmp_path / "run.jsonl")
        assert all(r.get("kind") != "health" for r in records)
        assert "health" not in report.summary()

    def test_health_events_surface_in_summary(self):
        from repro.runio import RunReport

        report = RunReport(
            t_final=1.0, block_steps=1, particle_steps=1, n_final=2,
            mergers=0, escapers_removed=0, snapshots_written=0,
            max_energy_error=0.0, health_events=3,
        )
        assert "health events 3" in report.summary()
