"""Tests for external fields (solar potential)."""

import numpy as np
import pytest

from repro.core import CompositeField, KeplerField, NullField
from repro.errors import ConfigurationError


class TestKepler:
    def test_acceleration_magnitude(self):
        f = KeplerField(mass=1.0)
        pos = np.array([[2.0, 0.0, 0.0]])
        vel = np.zeros((1, 3))
        acc, _ = f.acc_jerk(pos, vel)
        assert np.allclose(acc, [[-0.25, 0, 0]])

    def test_jerk_finite_difference(self):
        f = KeplerField(mass=1.0)
        rng = np.random.default_rng(0)
        pos = rng.normal(size=(5, 3)) * 3.0
        vel = rng.normal(size=(5, 3))
        acc0, jerk0 = f.acc_jerk(pos, vel)
        h = 1e-7
        acc1, _ = f.acc_jerk(pos + h * vel, vel)
        assert np.allclose((acc1 - acc0) / h, jerk0, rtol=1e-4, atol=1e-7)

    def test_potential(self):
        f = KeplerField(mass=2.0)
        pos = np.array([[0.0, 4.0, 0.0]])
        assert f.potential(pos)[0] == pytest.approx(-0.5)

    def test_circular_orbit_balance(self):
        """Centripetal acceleration equals field acceleration on a circle."""
        f = KeplerField()
        r = 20.0
        v = 1.0 / np.sqrt(r)
        pos = np.array([[r, 0.0, 0.0]])
        vel = np.array([[0.0, v, 0.0]])
        acc, _ = f.acc_jerk(pos, vel)
        assert np.allclose(acc[0], [-(v**2) / r, 0, 0])

    def test_rejects_nonpositive_mass(self):
        with pytest.raises(ConfigurationError):
            KeplerField(mass=0.0)

    def test_rejects_particle_at_origin(self):
        f = KeplerField()
        with pytest.raises(ConfigurationError):
            f.acc_jerk(np.zeros((1, 3)), np.zeros((1, 3)))


class TestNull:
    def test_zero_everything(self):
        f = NullField()
        pos = np.ones((3, 3))
        acc, jerk = f.acc_jerk(pos, pos)
        assert np.all(acc == 0) and np.all(jerk == 0)
        assert np.all(f.potential(pos) == 0)


class TestComposite:
    def test_sum_of_two_keplers(self):
        f1 = KeplerField(mass=1.0)
        f2 = KeplerField(mass=2.0)
        comp = CompositeField([f1, f2])
        f3 = KeplerField(mass=3.0)
        pos = np.array([[1.0, 2.0, 3.0]])
        vel = np.array([[0.1, 0.2, 0.3]])
        a_c, j_c = comp.acc_jerk(pos, vel)
        a_3, j_3 = f3.acc_jerk(pos, vel)
        assert np.allclose(a_c, a_3)
        assert np.allclose(j_c, j_3)
        assert np.allclose(comp.potential(pos), f3.potential(pos))

    def test_empty_composite_raises(self):
        with pytest.raises(ConfigurationError):
            CompositeField([])
