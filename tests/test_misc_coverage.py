"""Gap-filling tests for smaller public-surface paths."""

import numpy as np
import pytest

from repro import quick_simulation
from repro.core import energy
from repro.errors import CommError, ConfigurationError
from repro.parallel import CommSimulator, Transfer, switch_topology


class TestQuickSimulation:
    def test_facade_builds_and_runs(self):
        sim = quick_simulation(n=48, seed=3)
        assert sim.system.n == 50  # + 2 protoplanets
        e0 = energy(sim.system, sim.backend.eps, sim.external_field).total
        sim.evolve(5.0)
        sim.synchronize(5.0)
        e1 = energy(sim.system, sim.backend.eps, sim.external_field).total
        assert abs(e1 - e0) / abs(e0) < 1e-8

    def test_custom_eps(self):
        sim = quick_simulation(n=16, seed=1, eps=0.05)
        assert sim.backend.eps == 0.05


class TestCommSimulatorEdges:
    def test_reset(self):
        sim = CommSimulator(switch_topology(3))
        sim.phase([Transfer("h0", "h1", 100)])
        sim.reset()
        assert sim.phases == 0
        assert sim.total_bytes == 0
        assert sim.edge_bytes == {}

    def test_empty_phase(self):
        sim = CommSimulator(switch_topology(2))
        report = sim.phase([])
        assert report.seconds == 0.0
        assert report.bottleneck_edge is None

    def test_edge_bytes_accumulate(self):
        sim = CommSimulator(switch_topology(2))
        sim.phase([Transfer("h0", "h1", 100)])
        sim.phase([Transfer("h0", "h1", 150)])
        edge = ("h0", "switch")
        assert sim.edge_bytes[edge] == 250

    def test_broadcast_excludes_root(self):
        sim = CommSimulator(switch_topology(3))
        report = sim.broadcast("h0", 100)
        assert report.n_transfers == 2


class TestEventOrderingAndEdgeCases:
    def test_simulation_events_time_ordered(self):
        """Events accumulated over a run carry non-decreasing times."""
        from repro.core import (
            CollisionPolicy,
            HostDirectBackend,
            KeplerField,
            ParticleSystem,
            Simulation,
            TimestepParams,
        )

        rng = np.random.default_rng(4)
        n = 8
        pos = np.array([20.0, 0.0, 0.0]) + 0.01 * rng.normal(size=(n, 3))
        vel = np.tile([0.0, 1 / np.sqrt(20.0), 0.0], (n, 1))
        s = ParticleSystem(np.full(n, 1e-8), pos, vel)
        sim = Simulation(
            s, HostDirectBackend(eps=1e-6),
            external_field=KeplerField(),
            timestep_params=TimestepParams(dt_max=0.25),
            collision_policy=CollisionPolicy(f_enhance=100.0),
        )
        sim.initialize()
        sim.evolve(30.0)
        times = [e.time for e in sim.events]
        assert times == sorted(times)

    def test_scheduler_peek_matches_next(self):
        from repro.core.scheduler import BlockScheduler

        rng = np.random.default_rng(5)
        t = np.zeros(10)
        dt = 2.0 ** rng.integers(-6, 0, 10).astype(float)
        s = BlockScheduler()
        assert s.peek_time(t, dt) == s.next_block(t, dt)[0]


class TestStrategyLargeP:
    def test_strategies_at_p64(self):
        from repro.parallel import all_strategies

        names = {s.name for s in all_strategies(64)}
        assert names == {"naive-copy", "grape-exchange", "host-2d-grid", "hybrid"}
        for s in all_strategies(64):
            assert s.step(2000) > 0
            assert s.host_nic_bytes_per_step(2000) >= 0


class TestNetworkModes:
    def test_reduce_time_positive(self, rng):
        from repro.grape.board import ProcessorBoard
        from repro.grape.network import NetworkBoard

        boards = [ProcessorBoard(board_id=b, eps=0.01, n_chips=1) for b in range(2)]
        nb = NetworkBoard(nb_id=0, targets=boards)
        t = nb.reduce_time(9000)
        assert t > 0
        assert nb.uplink.bytes_total == 9000

    def test_reset_counters_recursive(self, rng):
        from repro.grape.board import ProcessorBoard
        from repro.grape.network import NetworkBoard

        boards = [ProcessorBoard(board_id=0, eps=0.01, n_chips=1)]
        nb = NetworkBoard(nb_id=0, targets=boards)
        nb.broadcast_time(100)
        nb.reset_counters()
        assert nb.comm_seconds == 0.0
        assert all(l.bytes_total == 0 for l in nb.downlinks)
