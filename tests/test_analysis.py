"""Tests for disk analysis: profiles, gaps, velocity state."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.planetesimal import (
    PlanetesimalDiskConfig,
    build_disk_system,
    measure_gap,
    rms_eccentricity_inclination,
    surface_density_profile,
    velocity_dispersion,
)


def ring_positions(n, r0, rng, width=0.0):
    theta = rng.uniform(0, 2 * np.pi, n)
    r = r0 + width * rng.standard_normal(n)
    return np.stack([r * np.cos(theta), r * np.sin(theta), np.zeros(n)], axis=-1)


class TestSurfaceDensity:
    def test_uniform_ring_density(self, rng):
        """All mass in one annulus: density = mass / annulus area."""
        n = 2000
        pos = ring_positions(n, 25.3, rng)  # off bin edges (roundoff-safe)
        mass = np.full(n, 1e-9)
        prof = surface_density_profile(pos, mass, 20.0, 30.0, nbins=10)
        area = np.pi * (26.0**2 - 25.0**2)
        assert prof.sigma_at(25.3) == pytest.approx(n * 1e-9 / area)
        assert prof.counts.sum() == n

    def test_profile_recovers_powerlaw_slope(self):
        """A sampled r^-1.5 disk must profile as r^-1.5."""
        c = PlanetesimalDiskConfig(n_planetesimals=30_000, seed=8, protoplanets=[])
        s = build_disk_system(c)
        prof = surface_density_profile(s.pos, s.mass, 17.0, 33.0, nbins=8)
        # least-squares slope in log space
        slope = np.polyfit(np.log(prof.r_centers), np.log(prof.sigma), 1)[0]
        assert slope == pytest.approx(-1.5, abs=0.25)

    def test_sigma_at(self, rng):
        pos = ring_positions(100, 25.0, rng)
        prof = surface_density_profile(pos, np.ones(100), 20.0, 30.0, nbins=5)
        assert prof.sigma_at(25.0) > 0
        with pytest.raises(ConfigurationError):
            prof.sigma_at(50.0)

    def test_rejects_bad_bins(self, rng):
        pos = ring_positions(10, 25.0, rng)
        with pytest.raises(ConfigurationError):
            surface_density_profile(pos, np.ones(10), 20.0, 30.0, nbins=0)


class TestGap:
    def make_disk_with_gap(self, rng, depth):
        """Uniform-density disk from 15-35 AU with a carved gap at 25 AU."""
        n = 40_000
        # p(r) ∝ r gives uniform surface density
        r = np.sqrt(rng.uniform(15.0**2, 35.0**2, n))
        keep = ~((np.abs(r - 25.0) < 1.0) & (rng.random(n) < depth))
        r = r[keep]
        theta = rng.uniform(0, 2 * np.pi, r.size)
        pos = np.stack([r * np.cos(theta), r * np.sin(theta), np.zeros(r.size)], axis=-1)
        return pos, np.full(r.size, 1e-9)

    def test_no_gap_measures_zero(self, rng):
        pos, mass = self.make_disk_with_gap(rng, depth=0.0)
        prof = surface_density_profile(pos, mass, 16.0, 34.0, nbins=36)
        g = measure_gap(prof, 25.0, gap_half_width=1.0)
        assert abs(g.depth) < 0.1

    def test_full_gap_measures_deep(self, rng):
        pos, mass = self.make_disk_with_gap(rng, depth=0.9)
        prof = surface_density_profile(pos, mass, 16.0, 34.0, nbins=36)
        g = measure_gap(prof, 25.0, gap_half_width=1.0)
        assert g.depth > 0.6

    def test_depth_monotone_in_carving(self, rng):
        depths = []
        for carve in (0.0, 0.5, 0.95):
            pos, mass = self.make_disk_with_gap(rng, depth=carve)
            prof = surface_density_profile(pos, mass, 16.0, 34.0, nbins=36)
            depths.append(measure_gap(prof, 25.0, gap_half_width=1.0).depth)
        assert depths[0] < depths[1] < depths[2]

    def test_too_coarse_profile_raises(self, rng):
        pos, mass = self.make_disk_with_gap(rng, depth=0.0)
        prof = surface_density_profile(pos, mass, 16.0, 34.0, nbins=2)
        with pytest.raises(ConfigurationError):
            measure_gap(prof, 25.0, gap_half_width=0.5)

    def test_zero_reference_density_gives_zero_depth(self):
        from repro.planetesimal.analysis import GapMeasurement

        g = GapMeasurement(radius_au=25.0, sigma_gap=0.0, sigma_ref=0.0)
        assert g.depth == 0.0


class TestVelocityState:
    def test_rms_ei_of_generated_disk(self):
        c = PlanetesimalDiskConfig(
            n_planetesimals=10_000, seed=9, e_rms=0.02, protoplanets=[]
        )
        s = build_disk_system(c)
        e_rms, i_rms = rms_eccentricity_inclination(s.pos, s.vel)
        assert e_rms == pytest.approx(0.02, rel=0.1)
        assert i_rms == pytest.approx(0.01, rel=0.1)

    def test_all_unbound_returns_nan(self):
        pos = np.array([[10.0, 0, 0]])
        vel = np.array([[2.0, 0, 0]])  # radially escaping
        e_rms, i_rms = rms_eccentricity_inclination(pos, vel)
        assert np.isnan(e_rms) and np.isnan(i_rms)

    def test_velocity_dispersion_cold_disk_is_zero(self, rng):
        """Perfectly circular planar orbits have zero dispersion."""
        n = 500
        r = rng.uniform(15, 35, n)
        theta = rng.uniform(0, 2 * np.pi, n)
        pos = np.stack([r * np.cos(theta), r * np.sin(theta), np.zeros(n)], axis=-1)
        v = 1.0 / np.sqrt(r)
        vel = np.stack([-v * np.sin(theta), v * np.cos(theta), np.zeros(n)], axis=-1)
        assert velocity_dispersion(pos, vel) == pytest.approx(0.0, abs=1e-12)

    def test_velocity_dispersion_grows_with_e(self):
        disp = []
        for e_rms in (0.005, 0.02, 0.08):
            c = PlanetesimalDiskConfig(
                n_planetesimals=3000, seed=10, e_rms=e_rms, protoplanets=[]
            )
            s = build_disk_system(c)
            disp.append(velocity_dispersion(s.pos, s.vel))
        assert disp[0] < disp[1] < disp[2]
