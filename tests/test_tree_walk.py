"""Cross-walk equivalence matrix for the octree force engines.

The tree exposes two walk strategies — the legacy per-sink python walk
(``walk="persink"``) and the vectorised grouped walk
(``walk="grouped"``, the default).  These tests pin down the contracts
that make them interchangeable:

* at ``theta = 0`` the grouped walk is *bitwise* identical to direct
  summation through the tiled kernels (the per-sink walk is exact up
  to summation order — it associates the same pairs differently);
* at finite ``theta`` both walks stay inside the documented
  ``0.1 * theta**2`` median relative-error envelope, and the grouped
  walk (whose group-radius acceptance is strictly more conservative
  than the per-sink MAC) is never less accurate;
* per-sink neighbour spheres carve the same near/far partition out of
  either walk — near + far reassembles direct summation exactly;
* the grouped walk is bit-identical between serial and threaded
  kernel engines;
* a sink coinciding with a node's centre of mass stays finite
  (regression for the guarded ``1/(r2*sqrt(r2))`` sites).
"""

import os

import numpy as np
import pytest
from conftest import make_random_cluster

from repro.accel import EngineConfig, KernelEngine
from repro.baselines.tree import WALK_MODES, Octree, resolve_walk_mode
from repro.errors import ConfigurationError
from repro.hybrid.walk import build_groups, walk_groups

EPS = 0.01


@pytest.fixture(scope="module")
def cluster():
    return make_random_cluster(300, seed=9)


@pytest.fixture(scope="module")
def tree(cluster):
    return Octree(cluster.pos, cluster.mass, vel=cluster.vel)


@pytest.fixture(scope="module")
def direct(cluster):
    """Direct summation through the same tiled ``accel`` kernel the
    grouped walk evaluates its lists with — the bit-identity baseline."""
    from repro.accel import get_engine

    c = cluster
    return get_engine().acc_jerk(c.pos, c.vel, c.pos, c.vel, c.mass, EPS,
                                 self_indices=np.arange(c.n), kernel="accel")


def _walk(tree, cluster, theta, walk, **kw):
    return tree.accelerations(
        cluster.pos, theta=theta, eps=EPS, vel_i=cluster.vel,
        exclude_self=np.arange(cluster.n), walk=walk, **kw,
    )


def med_rel_err(a, a_ref):
    return np.median(
        np.linalg.norm(a - a_ref, axis=1) / np.linalg.norm(a_ref, axis=1)
    )


class TestWalkModeResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_TREE_WALK", "persink")
        assert resolve_walk_mode("grouped") == "grouped"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TREE_WALK", "persink")
        assert resolve_walk_mode(None) == "persink"

    def test_default_is_grouped(self, monkeypatch):
        monkeypatch.delenv("REPRO_TREE_WALK", raising=False)
        assert resolve_walk_mode(None) == "grouped"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_walk_mode("warp")

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TREE_WALK", "warp")
        with pytest.raises(ConfigurationError):
            resolve_walk_mode(None)

    def test_modes_enumerated(self):
        assert set(WALK_MODES) == {"grouped", "persink"}


class TestThetaZeroBitIdentity:
    """theta = 0 opens everything: both walks ARE direct summation.

    The grouped walk evaluates its per-group source lists (each the
    full ascending particle range at theta = 0) through the same tiled
    ``accel`` kernel as the direct baseline, so it is *bitwise*
    identical.  The legacy per-sink walk sums leaf-by-leaf in python —
    the same pairs in a different association order — so it is exact
    only up to floating-point summation order (a few ulp).
    """

    def test_grouped_matches_direct_bitwise(self, cluster, tree, direct):
        acc, jerk = _walk(tree, cluster, 0.0, "grouped")
        a_d, j_d = direct
        assert np.array_equal(acc, a_d)
        assert np.array_equal(jerk, j_d)

    def test_persink_matches_direct_to_summation_order(self, cluster, tree,
                                                       direct):
        acc, jerk = _walk(tree, cluster, 0.0, "persink")
        assert med_rel_err(acc, direct[0]) < 1e-13
        assert np.max(np.linalg.norm(acc - direct[0], axis=1)
                      / np.linalg.norm(direct[0], axis=1)) < 1e-12
        assert np.max(np.linalg.norm(jerk - direct[1], axis=1)
                      / np.linalg.norm(direct[1], axis=1)) < 1e-12

    def test_quadrupole_tree_also_exact(self, cluster, direct):
        qtree = Octree(cluster.pos, cluster.mass, vel=cluster.vel,
                       quadrupole=True)
        acc, _ = _walk(qtree, cluster, 0.0, "grouped")
        assert np.array_equal(acc, direct[0])
        acc_p, _ = _walk(qtree, cluster, 0.0, "persink")
        assert np.max(np.linalg.norm(acc_p - direct[0], axis=1)
                      / np.linalg.norm(direct[0], axis=1)) < 1e-12


class TestErrorEnvelope:
    @pytest.mark.parametrize("theta", [0.3, 0.6, 1.0])
    def test_both_walks_within_envelope(self, cluster, tree, direct, theta):
        envelope = 0.1 * theta**2
        errs = {}
        for walk in WALK_MODES:
            acc, _ = _walk(tree, cluster, theta, walk)
            errs[walk] = med_rel_err(acc, direct[0])
            assert errs[walk] < envelope, (walk, theta, errs[walk])
        # the group-radius MAC is strictly more conservative than the
        # per-sink MAC, so grouped accuracy never degrades
        assert errs["grouped"] <= errs["persink"]

    def test_grouped_actually_approximates_at_scale(self, cluster, tree):
        """Guard against the grouped walk silently degenerating to
        direct summation (zero accepted nodes) on a generic cluster."""
        _walk(tree, cluster, 1.0, "grouped")
        assert tree.walk_stats.node_terms > 0


class TestNeighbourSphereExactness:
    @pytest.mark.parametrize("walk", WALK_MODES)
    def test_near_plus_far_reassembles_direct(self, cluster, tree, direct,
                                              walk):
        c = cluster
        n = c.n
        h = np.full(n, 0.5)
        far, _ = _walk(tree, c, 0.0, walk, h_i=h)

        dr = c.pos[None, :, :] - c.pos[:, None, :]
        dist2 = np.einsum("ijk,ijk->ij", dr, dr)
        within = dist2 < h[:, None] ** 2
        within[np.arange(n), np.arange(n)] = False
        assert within.any(), "h too small: near field empty, test vacuous"

        r2 = dist2 + EPS**2
        inv_r3 = 1.0 / (r2 * np.sqrt(r2))
        near = np.einsum("ij,ijk->ik", np.where(within, c.mass * inv_r3, 0.0),
                         dr)
        np.testing.assert_allclose(far + near, direct[0], rtol=1e-12,
                                   atol=1e-13)


class TestGroupedDeterminism:
    def _engine(self, threads):
        return KernelEngine(EngineConfig(threads=threads, j_chunk=64,
                                         parallel_pairs=1))

    @pytest.mark.parametrize("theta", [0.0, 0.6])
    def test_serial_vs_threaded_bit_identical(self, cluster, tree, theta):
        serial, threaded = self._engine(1), self._engine(4)
        try:
            a1, j1 = _walk(tree, cluster, theta, "grouped", engine=serial)
            a4, j4 = _walk(tree, cluster, theta, "grouped", engine=threaded)
        finally:
            serial.close()
            threaded.close()
        assert np.array_equal(a1, a4)
        assert np.array_equal(j1, j4)


class TestGroupStructure:
    def test_groups_partition_the_sinks(self, cluster, tree):
        groups = build_groups(tree, cluster.pos, n_crit=16)
        seen = np.concatenate(
            [groups.rows(g) for g in range(groups.n_groups)]
        )
        assert np.array_equal(np.sort(seen), np.arange(cluster.n))
        assert (groups.sizes >= 1).all()

    def test_lists_cover_every_source_exactly_once(self, cluster, tree):
        """Accepted nodes + opened leaves tile the particle set: each
        source contributes to each group through exactly one term."""
        groups = build_groups(tree, cluster.pos, n_crit=16)
        lists = walk_groups(tree, groups, 0.8)
        for g in range(groups.n_groups):
            counts = np.zeros(tree.n, dtype=np.int64)
            src = lists.sources(g)
            np.add.at(counts, src, 1)
            for node in lists.nodes(g):
                counts[_subtree_particles(tree, node)] += 1
            assert (counts == 1).all()

    def test_pp_lists_sorted_ascending(self, cluster, tree):
        groups = build_groups(tree, cluster.pos, n_crit=16)
        lists = walk_groups(tree, groups, 0.8)
        for g in range(groups.n_groups):
            src = lists.sources(g)
            assert (np.diff(src) > 0).all()


def _subtree_particles(tree, node):
    out = []
    stack = [node]
    while stack:
        v = stack.pop()
        if tree.node_leaf_start[v] >= 0:
            s = tree.node_leaf_start[v]
            out.append(tree.leaf_perm[s:s + tree.node_leaf_count[v]])
        else:
            stack.extend(tree.children(v))
    return np.concatenate(out)


class TestCoincidentSinkRegression:
    """A sink sitting exactly on a node's centre of mass must not
    produce NaN/inf — the ``1/(r2*sqrt(r2))`` sites are guarded and
    only ever evaluated with softening or with the self pair excluded.
    """

    @pytest.fixture()
    def symmetric(self):
        # two mirrored pairs whose COM (and the root's COM) is the
        # origin, plus a probe particle exactly at the origin
        pos = np.array([
            [1.0, 0.0, 0.0], [-1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0], [0.0, -1.0, 0.0],
            [0.0, 0.0, 0.0],
        ])
        mass = np.ones(5)
        return pos, mass

    @pytest.mark.parametrize("walk", WALK_MODES)
    @pytest.mark.parametrize("theta", [0.0, 0.5])
    def test_stays_finite(self, symmetric, walk, theta):
        pos, mass = symmetric
        tree = Octree(pos, mass, leaf_size=1)
        com = tree.node_com[tree.root]
        assert np.allclose(com, 0.0)  # probe coincides with root COM
        acc, _ = tree.accelerations(
            pos, theta=theta, eps=0.05, exclude_self=np.arange(5), walk=walk,
        )
        assert np.isfinite(acc).all()
        # symmetry: the probe at the origin feels zero net force
        np.testing.assert_allclose(acc[4], 0.0, atol=1e-12)

    @pytest.mark.parametrize("walk", WALK_MODES)
    def test_unsoftened_theta_zero_finite(self, symmetric, walk):
        pos, mass = symmetric
        tree = Octree(pos, mass, leaf_size=1)
        acc, _ = tree.accelerations(
            pos, theta=0.0, eps=0.0, exclude_self=np.arange(5), walk=walk,
        )
        assert np.isfinite(acc).all()


class TestEnvSelection:
    def test_tree_walk_env_reaches_accelerations(self, cluster, tree,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_TREE_WALK", "persink")
        _walk(tree, cluster, 0.6, None)
        assert tree.walk_stats is None  # persink path records no WalkStats
        monkeypatch.setenv("REPRO_TREE_WALK", "grouped")
        _walk(tree, cluster, 0.6, None)
        assert tree.walk_stats is not None
        assert os.environ["REPRO_TREE_WALK"] == "grouped"
