"""Tests for the ASCII visualisation helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.viz import bar_series, scatter_map


class TestScatterMap:
    def test_dimensions(self):
        out = scatter_map(np.array([0.0]), np.array([0.0]), extent=10, size=21)
        lines = out.split("\n")
        assert len(lines) == 23  # 21 rows + 2 borders
        assert all(len(l) == 23 for l in lines)

    def test_sun_marker_at_center(self):
        out = scatter_map(np.array([5.0]), np.array([5.0]), extent=10, size=21)
        lines = out.split("\n")[1:-1]
        center = lines[10][11]  # row 10 (from top = y inverted), col 1+10
        assert center == "O"

    def test_density_marks_populated_cells(self):
        rng = np.random.default_rng(0)
        theta = rng.uniform(0, 2 * np.pi, 500)
        x, y = 20 * np.cos(theta), 20 * np.sin(theta)
        out = scatter_map(x, y, extent=40, size=41)
        # the ring must render as non-space characters
        assert sum(c in ".:+*#@" for c in out) > 40

    def test_markers_drawn(self):
        out = scatter_map(np.array([]), np.array([]), extent=10, size=21,
                          markers=[(5.0, 0.0, "U")])
        assert "U" in out

    def test_out_of_window_points_ignored(self):
        out = scatter_map(np.array([100.0]), np.array([0.0]), extent=10, size=11)
        body = "".join(out.split("\n")[1:-1])
        assert set(body) <= set("| O")

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            scatter_map(np.array([0.0]), np.array([0.0]), extent=-1)
        with pytest.raises(ConfigurationError):
            scatter_map(np.array([0.0]), np.array([0.0]), extent=1, size=2)


class TestBarSeries:
    def test_rows_and_peak(self):
        out = bar_series(["a", "b"], [1.0, 2.0], width=10)
        lines = out.split("\n")
        assert len(lines) == 2
        assert "##########" in lines[1]
        assert "#####" in lines[0]

    def test_empty(self):
        assert bar_series([], []) == ""

    def test_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            bar_series(["a"], [1.0, 2.0])
