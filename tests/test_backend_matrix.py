"""Backend consistency matrix: one disk, every force engine.

The library's central contract: the physics must not depend on which
force engine runs it.  The same short disk integration is run on every
backend and compared:

* host direct vs GRAPE flat — bitwise identical (same kernel, same
  order);
* GRAPE hierarchy — equal to float-reordering tolerance;
* tree at theta -> 0 — equal to the multipole-truncation floor;
* hybrid at theta -> 0 — exact near/far partition, so equal to the
  summation-order floor for any neighbour radius;
* distributed ring forces — equal at a single force evaluation.
"""

import numpy as np
import pytest

from repro.baselines import TreeBackend
from repro.core import (
    HostDirectBackend,
    KeplerField,
    Simulation,
    TimestepParams,
)
from repro.grape import Grape6Backend, Grape6Config, Grape6Machine
from repro.hybrid import HybridBackend
from repro.planetesimal import PlanetesimalDiskConfig, build_disk_system

N = 28
SEED = 77
T_END = 4.0


def fresh_system():
    return build_disk_system(PlanetesimalDiskConfig(n_planetesimals=N, seed=SEED))


def run_with(backend):
    sim = Simulation(
        fresh_system(), backend,
        external_field=KeplerField(),
        timestep_params=TimestepParams(),
    )
    sim.initialize()
    sim.evolve(T_END)
    return sim


@pytest.fixture(scope="module")
def reference():
    return run_with(HostDirectBackend(eps=0.008))


class TestBackendMatrix:
    def test_grape_flat_bitwise(self, reference):
        machine = Grape6Machine(Grape6Config.single_node(), eps=0.008, mode="flat")
        sim = run_with(Grape6Backend(machine))
        assert np.array_equal(sim.system.pos, reference.system.pos)
        assert np.array_equal(sim.system.vel, reference.system.vel)
        assert np.array_equal(sim.system.dt, reference.system.dt)

    def test_grape_hierarchy_close(self, reference):
        machine = Grape6Machine(
            Grape6Config.scaled_down(), eps=0.008, mode="hierarchy"
        )
        sim = run_with(Grape6Backend(machine))
        # summation-order differences compound through the integration;
        # trajectories agree to far better than any physical scale
        assert np.allclose(sim.system.pos, reference.system.pos, atol=1e-6)
        assert sim.block_steps == reference.block_steps

    def test_tree_theta_zero_close(self, reference):
        sim = run_with(TreeBackend(eps=0.008, theta=0.0))
        assert np.allclose(sim.system.pos, reference.system.pos, atol=1e-6)

    def test_tree_finite_theta_physical(self, reference):
        """theta = 0.4: same macro state (energy) despite force error."""
        from repro.core import energy

        sim = run_with(TreeBackend(eps=0.008, theta=0.4))
        e_ref = energy(reference.predicted_state(T_END), 0.008,
                       reference.external_field).total
        e_tree = energy(sim.predicted_state(T_END), 0.008,
                        sim.external_field).total
        assert e_tree == pytest.approx(e_ref, rel=1e-4)

    def test_hybrid_theta_zero_close(self, reference):
        sim = run_with(HybridBackend(eps=0.008, theta=0.0, r_neighbour=0.05))
        assert np.allclose(sim.system.pos, reference.system.pos, atol=1e-6)
        assert sim.block_steps == reference.block_steps

    def test_hybrid_finite_theta_physical(self, reference):
        """theta = 0.5: same macro state (energy) despite force error."""
        from repro.core import energy

        sim = run_with(HybridBackend(eps=0.008, theta=0.5, r_neighbour=0.05))
        e_ref = energy(reference.predicted_state(T_END), 0.008,
                       reference.external_field).total
        e_hyb = energy(sim.predicted_state(T_END), 0.008,
                       sim.external_field).total
        assert e_hyb == pytest.approx(e_ref, rel=1e-4)

    def test_hybrid_thread_count_invariant(self):
        """REPRO_KERNEL_THREADS must not change hybrid trajectories."""
        from repro.accel import EngineConfig, KernelEngine

        results = []
        for threads in (1, 4):
            engine = KernelEngine(EngineConfig(threads=threads))
            try:
                sim = run_with(
                    HybridBackend(eps=0.008, theta=0.4, r_neighbour=0.1,
                                  engine=engine)
                )
                results.append((sim.system.pos.copy(), sim.system.vel.copy()))
            finally:
                engine.close()
        assert np.array_equal(results[0][0], results[1][0])
        assert np.array_equal(results[0][1], results[1][1])

    def test_ring_single_evaluation(self, reference):
        from repro.core.forces import acc_jerk
        from repro.parallel import ring_forces

        s = fresh_system()
        a_ref, j_ref = acc_jerk(
            s.pos, s.vel, s.pos, s.vel, s.mass, 0.008,
            self_indices=np.arange(s.n),
        )
        res = ring_forces(s.pos, s.vel, s.mass, 0.008, n_ranks=4)
        assert np.allclose(res.acc, a_ref, rtol=1e-12, atol=1e-18)
        assert np.allclose(res.jerk, j_ref, rtol=1e-12, atol=1e-18)

    def test_all_backends_conserve_energy(self):
        from repro.core import energy

        backends = [
            HostDirectBackend(eps=0.008),
            Grape6Backend(
                Grape6Machine(Grape6Config.single_board(), eps=0.008, mode="flat")
            ),
            TreeBackend(eps=0.008, theta=0.2),
            HybridBackend(eps=0.008, theta=0.2, r_neighbour=0.05),
        ]
        for backend in backends:
            sim = Simulation(
                fresh_system(), backend,
                external_field=KeplerField(),
                timestep_params=TimestepParams(),
            )
            sim.initialize()
            e0 = energy(sim.system, 0.008, sim.external_field).total
            sim.evolve(T_END)
            sim.synchronize(T_END)
            e1 = energy(sim.system, 0.008, sim.external_field).total
            assert abs(e1 - e0) / abs(e0) < 1e-5, type(backend).__name__
