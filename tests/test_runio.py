"""Tests for run logging and output management."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError, SnapshotError
from repro.runio import OutputManager, RunLogger, SnapshotSchedule, read_run_log

from conftest import make_disk_sim


class TestRunLogger:
    def test_header_and_samples(self, tmp_path):
        sim = make_disk_sim(n=16, seed=2)
        path = tmp_path / "run.jsonl"
        with RunLogger(path, run_id="test-1", metadata={"n": 16}) as log:
            sim.evolve(2.0)
            log.record(sim, energy_error=1e-10)
            log.event("snapshot", file="snap_000000.npz")
        records = read_run_log(path)
        assert records[0]["kind"] == "header"
        assert records[0]["run_id"] == "test-1"
        assert records[1]["kind"] == "sample"
        assert records[1]["t"] == sim.time
        assert records[1]["energy_error"] == 1e-10
        assert records[2]["kind"] == "snapshot"

    def test_append_mode_single_header(self, tmp_path):
        # reopening an existing log must NOT write a second header
        path = tmp_path / "run.jsonl"
        with RunLogger(path, run_id="a") as log:
            log.event("x")
        with RunLogger(path, run_id="b") as log:
            log.event("y")
        records = read_run_log(path)
        assert [r["kind"] for r in records] == ["header", "x", "y"]
        assert records[0]["run_id"] == "a"

    def test_empty_file_gets_header(self, tmp_path):
        # a zero-byte file (e.g. touch'd by a scheduler) counts as fresh
        path = tmp_path / "run.jsonl"
        path.touch()
        with RunLogger(path, run_id="a") as log:
            log.event("x")
        records = read_run_log(path)
        assert [r["kind"] for r in records] == ["header", "x"]

    def test_periodic_flush(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = RunLogger(path, run_id="a", flush_every=4)
        try:
            for _ in range(3):
                log.event("buffered")
            # header was flushed eagerly; the 3 events are still buffered
            assert len(read_run_log(path)) == 1
            log.event("fourth")  # hits flush_every
            assert len(read_run_log(path)) == 5
            log.event("tail")
            log.flush()  # explicit checkpoint
            assert len(read_run_log(path)) == 6
        finally:
            log.close()

    def test_close_flushes(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLogger(path, run_id="a", flush_every=1000) as log:
            log.event("x")
        assert [r["kind"] for r in read_run_log(path)] == ["header", "x"]

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLogger(path, run_id="a") as log:
            log.event("good")
        with open(path, "a") as f:
            f.write('{"kind": "tor')  # crash mid-write
        records = read_run_log(path)
        assert [r["kind"] for r in records] == ["header", "good"]

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"kind": "header"}\nnot json\n{"kind": "sample"}\n')
        with pytest.raises(SnapshotError):
            read_run_log(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError):
            read_run_log(tmp_path / "nope.jsonl")

    def test_non_serialisable_rejected(self, tmp_path):
        with RunLogger(tmp_path / "r.jsonl") as log:
            with pytest.raises(SnapshotError):
                log.event("bad", data=np.zeros(3))


class TestSchedule:
    def test_due_progression(self):
        s = SnapshotSchedule(interval=10.0)
        assert not s.due(5.0)
        assert s.due(10.0)
        s.mark_done()
        assert not s.due(15.0)
        assert s.due(20.0)

    def test_nonpositive_interval(self):
        with pytest.raises(ConfigurationError):
            SnapshotSchedule(interval=0.0)

    def test_t_start_offset(self):
        s = SnapshotSchedule(interval=5.0, t_start=100.0)
        assert not s.due(100.0)
        assert s.due(105.0)


class TestOutputManager:
    def test_numbered_snapshots(self, tmp_path):
        sim = make_disk_sim(n=8, seed=3)
        om = OutputManager(tmp_path / "run")
        p0 = om.write(sim.system, 0.0)
        p1 = om.write(sim.system, 1.0)
        assert p0.name == "snap_000000.npz"
        assert p1.name == "snap_000001.npz"
        assert om.n_snapshots == 2

    def test_latest_roundtrip(self, tmp_path):
        sim = make_disk_sim(n=8, seed=3)
        om = OutputManager(tmp_path / "run")
        om.write(sim.system, 0.0, {"tag": "first"})
        sim.evolve(2.0)
        om.write(sim.predicted_state(), sim.time, {"tag": "second"})
        system, meta = om.latest()
        assert meta["tag"] == "second"
        assert meta["snapshot_index"] == 1
        assert system.n == sim.system.n

    def test_restart_numbering(self, tmp_path):
        sim = make_disk_sim(n=8, seed=3)
        om1 = OutputManager(tmp_path / "run")
        om1.write(sim.system, 0.0)
        om2 = OutputManager(tmp_path / "run")  # a restart
        p = om2.write(sim.system, 1.0)
        assert p.name == "snap_000001.npz"

    def test_maybe_write_follows_schedule(self, tmp_path):
        sim = make_disk_sim(n=8, seed=3)
        om = OutputManager(tmp_path / "run", SnapshotSchedule(interval=2.0))
        wrote = []
        sim.evolve(7.0, callback=lambda s: wrote.append(om.maybe_write(s)))
        paths = [p for p in wrote if p is not None]
        assert 2 <= len(paths) <= 4
        assert om.n_snapshots == len(paths)

    def test_maybe_write_without_schedule(self, tmp_path):
        om = OutputManager(tmp_path / "run")
        sim = make_disk_sim(n=8, seed=3)
        with pytest.raises(ConfigurationError):
            om.maybe_write(sim)

    def test_latest_empty_raises(self, tmp_path):
        om = OutputManager(tmp_path / "empty")
        with pytest.raises(SnapshotError):
            om.latest()
