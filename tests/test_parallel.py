"""Tests for topologies, the comm simulator, and host strategies."""

import numpy as np
import pytest

from repro.errors import CommError, ConfigurationError, TopologyError
from repro.parallel import (
    CommSimulator,
    GrapeExchangeStrategy,
    Host2DGridStrategy,
    HybridStrategy,
    NaiveCopyStrategy,
    Transfer,
    all_strategies,
    mesh2d_topology,
    nb_tree_topology,
    ring_topology,
    switch_topology,
)


class TestTopologies:
    def test_switch_hosts(self):
        t = switch_topology(4)
        assert len(t.hosts) == 4
        assert t.path("h0", "h1") == ["h0", "switch", "h1"]

    def test_ring_routing(self):
        t = ring_topology(6)
        # shortest path h0 -> h3 is 3 hops either way
        assert len(t.path("h0", "h3")) == 4

    def test_mesh_dimensions(self):
        t = mesh2d_topology(3, 4)
        assert len(t.hosts) == 12
        # manhattan routing: h0.0 -> h2.3 needs 5 hops
        assert len(t.path_edges("h0.0", "h2.3")) == 5

    def test_nb_tree_kinds(self):
        t = nb_tree_topology(2, boards_per_host=3)
        kinds = {d.get("kind") for _, d in t.graph.nodes(data=True)}
        assert kinds == {"host", "nb", "board"}
        assert len(t.hosts) == 2

    def test_bad_parameters(self):
        with pytest.raises(TopologyError):
            switch_topology(0)
        with pytest.raises(TopologyError):
            ring_topology(1)
        with pytest.raises(TopologyError):
            mesh2d_topology(0, 3)

    def test_no_route_raises(self):
        import networkx as nx

        from repro.parallel.topology import Topology

        g = nx.Graph()
        g.add_node("a", kind="host")
        g.add_node("b", kind="host")
        t = Topology(g, "disconnected")
        with pytest.raises(TopologyError):
            t.path("a", "b")

    def test_edges_must_have_attrs(self):
        import networkx as nx

        from repro.parallel.topology import Topology

        g = nx.Graph()
        g.add_edge("a", "b")
        with pytest.raises(TopologyError):
            Topology(g, "bad")


class TestCommSimulator:
    def test_single_transfer_time(self):
        sim = CommSimulator(switch_topology(2, bandwidth=1e6, latency=0.0))
        report = sim.phase([Transfer("h0", "h1", 1_000_000)])
        assert report.seconds == pytest.approx(1.0)
        assert report.total_bytes == 1_000_000

    def test_congestion_on_shared_edge(self):
        """Two transfers into the same host serialise on its link."""
        sim = CommSimulator(switch_topology(3, bandwidth=1e6, latency=0.0))
        report = sim.phase(
            [Transfer("h0", "h2", 500_000), Transfer("h1", "h2", 500_000)]
        )
        assert report.seconds == pytest.approx(1.0)
        assert report.bottleneck_edge == ("h2", "switch")

    def test_parallel_disjoint_transfers(self):
        sim = CommSimulator(switch_topology(4, bandwidth=1e6, latency=0.0))
        report = sim.phase(
            [Transfer("h0", "h1", 500_000), Transfer("h2", "h3", 500_000)]
        )
        assert report.seconds == pytest.approx(0.5)

    def test_self_transfers_ignored(self):
        sim = CommSimulator(switch_topology(2))
        report = sim.phase([Transfer("h0", "h0", 100)])
        assert report.seconds == 0.0
        assert report.n_transfers == 0

    def test_broadcast(self):
        sim = CommSimulator(switch_topology(4, bandwidth=1e6, latency=0.0))
        report = sim.broadcast("h0", 250_000)
        # root's uplink carries 3 x 250 kB
        assert report.seconds == pytest.approx(0.75)

    def test_allgather_volume(self):
        sim = CommSimulator(switch_topology(3))
        report = sim.allgather(100)
        assert report.total_bytes == 3 * 2 * 100

    def test_gather(self):
        sim = CommSimulator(switch_topology(3, bandwidth=1e6, latency=0.0))
        report = sim.gather("h0", 100_000)
        assert report.seconds == pytest.approx(0.2)

    def test_totals_accumulate(self):
        sim = CommSimulator(switch_topology(2))
        sim.phase([Transfer("h0", "h1", 100)])
        sim.phase([Transfer("h1", "h0", 100)])
        assert sim.phases == 2
        assert sim.total_bytes == 200

    def test_negative_transfer_rejected(self):
        with pytest.raises(CommError):
            Transfer("a", "b", -5)


class TestStrategies:
    def test_naive_nic_bytes_independent_of_p(self):
        """The paper's Figure-3 argument: volume does not shrink with p."""
        n_act = 10_000
        b4 = NaiveCopyStrategy(4).host_nic_bytes_per_step(n_act)
        b16 = NaiveCopyStrategy(16).host_nic_bytes_per_step(n_act)
        # within 30%: (p-1)/p saturates
        assert b16 == pytest.approx(b4, rel=0.3)
        assert b16 > 1e5  # and it is large

    def test_grape_exchange_nic_is_constant(self):
        s = GrapeExchangeStrategy(16)
        assert s.host_nic_bytes_per_step(10) == s.host_nic_bytes_per_step(1_000_000)
        assert s.host_nic_bytes_per_step(10_000) < 1000

    def test_2d_scales_as_inverse_sqrt_p(self):
        n_act = 40_000
        b4 = Host2DGridStrategy(4).host_nic_bytes_per_step(n_act)
        b16 = Host2DGridStrategy(16).host_nic_bytes_per_step(n_act)
        b64 = Host2DGridStrategy(64).host_nic_bytes_per_step(n_act)
        assert b4 > b16 > b64

    def test_2d_requires_square(self):
        with pytest.raises(ConfigurationError):
            Host2DGridStrategy(12)

    def test_hybrid_scales_with_p(self):
        n_act = 40_000
        b4 = HybridStrategy(4).host_nic_bytes_per_step(n_act)
        b16 = HybridStrategy(16).host_nic_bytes_per_step(n_act)
        assert b16 < b4

    def test_hybrid_needs_divisible_hosts(self):
        with pytest.raises(ConfigurationError):
            HybridStrategy(6)

    def test_paper_ranking_at_16_hosts(self):
        """At the paper's p=16, every alternative beats naive copy on
        host NIC traffic — the reason GRAPE-6 was built this way."""
        n_act = 20_000
        naive = NaiveCopyStrategy(16)
        for s in (GrapeExchangeStrategy(16), Host2DGridStrategy(16), HybridStrategy(16)):
            assert (
                s.host_nic_bytes_per_step(n_act)
                < naive.host_nic_bytes_per_step(n_act) / 2
            )

    def test_step_times_positive(self):
        for s in all_strategies(16):
            assert s.step(5000) > 0

    def test_all_strategies_composition(self):
        names = {s.name for s in all_strategies(16)}
        assert names == {"naive-copy", "grape-exchange", "host-2d-grid", "hybrid"}
        names8 = {s.name for s in all_strategies(8)}
        assert "host-2d-grid" not in names8  # 8 is not a square

    def test_share(self):
        assert NaiveCopyStrategy(4).share(10) == 3
