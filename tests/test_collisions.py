"""Tests for collision detection and perfect merging (accretion)."""

import numpy as np
import pytest

from repro.core import (
    CollisionPolicy,
    HostDirectBackend,
    KeplerField,
    ParticleSystem,
    Simulation,
    TimestepParams,
    find_collision_pairs,
    merge_state,
)
from repro.errors import ConfigurationError
from repro.planetesimal.sizes import (
    ICE_DENSITY_CODE,
    mass_from_radius,
    radius_from_mass,
)


class TestSizes:
    def test_paper_planetesimal_is_km_sized(self):
        """Paper: 'km-sized bodies'. 2e-12 Msun icy body ~ 100 km."""
        from repro.units import au_to_m

        r_au = radius_from_mass(2e-12)
        r_km = float(au_to_m(r_au)) / 1e3
        assert 50 < r_km < 200

    def test_roundtrip(self):
        m = np.array([1e-12, 1e-10, 1e-5])
        assert np.allclose(mass_from_radius(radius_from_mass(m)), m, rtol=1e-12)

    def test_enhancement_linear(self):
        assert radius_from_mass(1e-10, f_enhance=5.0) == pytest.approx(
            5.0 * radius_from_mass(1e-10)
        )

    def test_mass_scaling_cube_root(self):
        assert radius_from_mass(8e-10) == pytest.approx(2.0 * radius_from_mass(1e-10))

    def test_rejects_bad_density(self):
        with pytest.raises(ConfigurationError):
            radius_from_mass(1e-10, density=-1.0)

    def test_ice_density_magnitude(self):
        # 1 g/cm^3 in Msun/AU^3
        assert ICE_DENSITY_CODE == pytest.approx(1.68e6, rel=0.02)


class TestFindPairs:
    def test_disjoint_particles_no_pairs(self):
        pos = np.array([[0.0, 0, 0], [10.0, 0, 0], [20.0, 0, 0]])
        radii = np.full(3, 0.1)
        assert find_collision_pairs(pos, radii, np.arange(3)) == []

    def test_overlapping_pair_found_once(self):
        pos = np.array([[0.0, 0, 0], [0.05, 0, 0], [20.0, 0, 0]])
        radii = np.full(3, 0.1)
        pairs = find_collision_pairs(pos, radii, np.arange(3))
        assert pairs == [(0, 1)]

    def test_active_only_detection(self):
        pos = np.array([[0.0, 0, 0], [0.05, 0, 0], [20.0, 0, 0], [20.05, 0, 0]])
        radii = np.full(4, 0.1)
        # only particle 3 active: finds only (3, 2)
        pairs = find_collision_pairs(pos, radii, np.array([3]))
        assert pairs == [(2, 3)]

    def test_asymmetric_radii(self):
        pos = np.array([[0.0, 0, 0], [1.0, 0, 0]])
        radii = np.array([0.9, 0.2])  # sum 1.1 > separation 1.0
        assert find_collision_pairs(pos, radii, np.arange(2)) == [(0, 1)]

    def test_empty_active(self):
        pos = np.zeros((3, 3))
        assert find_collision_pairs(pos, np.ones(3), np.array([], dtype=int)) == []


class TestMergeState:
    def test_mass_and_momentum_conserved(self, rng):
        m1, m2 = 3.0, 1.0
        p1, p2 = rng.normal(size=3), rng.normal(size=3)
        v1, v2 = rng.normal(size=3), rng.normal(size=3)
        out = merge_state(m1, p1, v1, 10, m2, p2, v2, 20)
        assert out.mass == pytest.approx(4.0)
        assert np.allclose(out.mass * out.vel, m1 * v1 + m2 * v2)
        assert np.allclose(out.mass * out.pos, m1 * p1 + m2 * p2)

    def test_survivor_is_more_massive(self):
        z = np.zeros(3)
        out = merge_state(1.0, z, z, 10, 2.0, z, z, 20)
        assert out.survivor_key == 20
        assert out.absorbed_key == 10

    def test_equal_mass_ties_to_first(self):
        z = np.zeros(3)
        out = merge_state(1.0, z, z, 10, 1.0, z, z, 20)
        assert out.survivor_key == 10

    def test_massless_rejected(self):
        z = np.zeros(3)
        with pytest.raises(ConfigurationError):
            merge_state(0.0, z, z, 1, 0.0, z, z, 2)


class TestPolicy:
    def test_radii_shape(self):
        p = CollisionPolicy()
        r = p.radii(np.array([1e-12, 1e-10]))
        assert r.shape == (2,)
        assert np.all(r > 0)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            CollisionPolicy(density=-1.0)
        with pytest.raises(ConfigurationError):
            CollisionPolicy(f_enhance=0.0)


def colliding_pair_sim(f_enhance=500.0, extra=True):
    """Two nearly co-orbital bodies bound to overlap, plus a spectator."""
    pos = [[20.0, 0.0, 0.0], [20.001, 0.0, 0.0]]
    v = 1 / np.sqrt(20.0)
    vel = [[0.0, v, 0.0], [0.0, v * 0.999, 0.0]]
    mass = [1e-8, 1e-8]
    if extra:
        pos.append([25.0, 0.0, 0.0])
        vel.append([0.0, 1 / np.sqrt(25.0), 0.0])
        mass.append(1e-8)
    s = ParticleSystem(np.array(mass), np.array(pos), np.array(vel))
    return Simulation(
        s,
        HostDirectBackend(eps=1e-5),
        external_field=KeplerField(),
        timestep_params=TimestepParams(dt_max=0.25),
        collision_policy=CollisionPolicy(f_enhance=f_enhance),
    )


class TestIntegratedMerging:
    def test_merger_happens_and_conserves_mass(self):
        sim = colliding_pair_sim()
        sim.initialize()
        m0 = sim.system.total_mass()
        sim.evolve(20.0)
        assert sim.mergers == 1
        assert sim.system.n == 2
        assert sim.system.total_mass() == pytest.approx(m0)

    def test_merger_event_logged(self):
        sim = colliding_pair_sim()
        sim.initialize()
        sim.evolve(20.0)
        events = sim.events.of_kind("merger")
        assert len(events) == 1
        assert "absorbed_key" in events[0].data

    def test_survivor_key_preserved(self):
        sim = colliding_pair_sim()
        sim.initialize()
        keys_before = set(sim.system.key.tolist())
        sim.evolve(20.0)
        keys_after = set(sim.system.key.tolist())
        assert keys_after < keys_before

    def test_integration_continues_after_merge(self):
        """The run proceeds cleanly past the merger with valid state."""
        sim = colliding_pair_sim()
        sim.initialize()
        sim.evolve(40.0)
        sim.system.validate()
        assert np.all(sim.system.t <= 40.0 + 1e-9)
        ratio = sim.system.t / sim.system.dt
        assert np.allclose(ratio, np.round(ratio), atol=1e-9)

    def test_no_collision_without_policy(self):
        sim = colliding_pair_sim()
        sim.collision_policy = None
        sim.initialize()
        sim.evolve(20.0)
        assert sim.system.n == 3
        assert sim.mergers == 0

    def test_no_collision_with_tiny_radii(self):
        """Radii far below the softening-limited closest approach: the
        pair interacts but never touches."""
        sim = colliding_pair_sim(f_enhance=1e-3)
        sim.initialize()
        sim.evolve(20.0)
        assert sim.mergers == 0

    def test_merged_body_on_reasonable_orbit(self):
        from repro.planetesimal import cartesian_to_elements

        sim = colliding_pair_sim()
        sim.initialize()
        sim.evolve(20.0)
        merged_row = int(np.argmax(sim.system.mass))
        el = cartesian_to_elements(
            sim.system.pos[merged_row : merged_row + 1],
            sim.system.vel[merged_row : merged_row + 1],
        )
        assert el.a[0] == pytest.approx(20.0, rel=0.05)
        assert el.e[0] < 0.1
