"""Tests for the assembled GRAPE-6 machine, timing model and backend."""

import numpy as np
import pytest

from repro.constants import FLOPS_PER_INTERACTION
from repro.core import (
    HostDirectBackend,
    KeplerField,
    Simulation,
    TimestepParams,
    energy,
)
from repro.errors import ConfigurationError, GrapeMemoryError
from repro.grape import (
    Grape6Backend,
    Grape6Config,
    Grape6Machine,
    Grape6TimingModel,
    HostCostModel,
)
from repro.planetesimal import PlanetesimalDiskConfig, build_disk_system

from conftest import make_disk_sim


def small_system(n=24, seed=3):
    return build_disk_system(PlanetesimalDiskConfig(n_planetesimals=n, seed=seed))


class TestConfig:
    def test_paper_shape(self):
        cfg = Grape6Config.paper_full_system()
        assert cfg.total_chips == 2048
        assert cfg.n_hosts == 16
        assert cfg.total_boards == 64
        assert cfg.total_pipelines == 12288

    def test_paper_peak_is_63_tflops(self):
        """Paper: 'Its theoretical peak performance is 63.4 Tflops.'"""
        cfg = Grape6Config.paper_full_system()
        assert cfg.peak_flops / 1e12 == pytest.approx(63.4, rel=0.01)

    def test_chip_peak_is_30_7_gflops(self):
        """Paper: 'the peak speed of a chip is 30.7 Gflops.'"""
        cfg = Grape6Config.single_board()
        per_chip = cfg.peak_flops / cfg.total_chips / 1e9
        assert per_chip == pytest.approx(30.78, rel=0.01)

    def test_presets(self):
        assert Grape6Config.single_node().total_chips == 128
        assert Grape6Config.single_cluster().total_chips == 512
        assert Grape6Config.single_board().total_chips == 32

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            Grape6Config(n_clusters=0)


class TestTimingModel:
    def setup_method(self):
        self.cfg = Grape6Config.paper_full_system()
        self.model = Grape6TimingModel(self.cfg)

    def test_shares(self):
        assert self.model.i_share_per_cluster(4000) == 1000
        assert self.model.i_share_per_host(4000) == 250
        assert self.model.j_per_chip(1_800_000) == pytest.approx(3516, abs=1)

    def test_step_components_positive(self):
        step = self.model.block_step(2000, 1_800_000)
        for part in (step.host, step.pci, step.lvds, step.pipe, step.gbe):
            assert part > 0
        assert step.total == pytest.approx(
            step.host + step.pci + step.lvds + step.pipe + step.gbe
        )

    def test_pipe_dominates_at_paper_scale(self):
        """At N=1.8e6 the force pipelines are the largest term."""
        step = self.model.block_step(5000, 1_800_000)
        assert step.pipe > max(step.host, step.pci, step.lvds, step.gbe)

    def test_efficiency_increases_with_block_size(self):
        effs = [self.model.efficiency(n, 1_800_000) for n in (50, 500, 5000)]
        assert effs[0] < effs[1] < effs[2]

    def test_efficiency_increases_with_n(self):
        effs = [self.model.efficiency(1000, n) for n in (1e4, 1e5, 1e6)]
        assert effs[0] < effs[1] < effs[2]

    def test_efficiency_below_one(self):
        assert self.model.efficiency(50000, 1_800_000) < 1.0

    def test_paper_scale_efficiency_in_plausible_band(self):
        """At paper-like block sizes the model lands near the reported
        46.5% of peak (we accept a generous band: the model omits OS and
        I/O overheads)."""
        eff = self.model.efficiency(3000, 1_800_002)
        assert 0.3 < eff < 0.85

    def test_single_cluster_has_no_gbe(self):
        model = Grape6TimingModel(Grape6Config.single_cluster())
        step = model.block_step(1000, 10_000)
        assert step.gbe == 0.0

    def test_overlap_never_slower(self):
        for block in (50, 500, 5000):
            serial = self.model.block_step(block, 1_800_000).total
            piped = self.model.block_step_overlapped(block, 1_800_000)
            assert piped <= serial
            assert piped > 0

    def test_overlap_bounded_below_by_pipe(self):
        """Pipelining cannot beat the pure force-pass time."""
        step = self.model.block_step(3000, 1_800_000)
        piped = self.model.block_step_overlapped(3000, 1_800_000)
        assert piped >= step.pipe

    def test_overlap_efficiency_flag(self):
        e_serial = self.model.efficiency(3000, 1_800_000)
        e_piped = self.model.efficiency(3000, 1_800_000, overlap=True)
        assert e_piped > e_serial

    def test_totals_to_dict_json_roundtrip(self):
        import json

        from repro.grape.timing import StepTiming, TimingTotals

        t = TimingTotals()
        t.add(StepTiming(host=1e-3, pci=2e-4, lvds=3e-4, pipe=5e-3, gbe=4e-4),
              n_active=100, n_total=1000)
        d = json.loads(json.dumps(t.to_dict()))
        assert d["blocks"] == 1
        assert d["interactions"] == 100_000
        assert d["total_s"] == pytest.approx(t.total_seconds)

    def test_host_cost_model_scales(self):
        hc = HostCostModel(seconds_per_particle_step=1e-6, seconds_fixed_per_block=1e-5)
        assert hc.block_time(0) == 1e-5
        assert hc.block_time(1000) == pytest.approx(1e-5 + 1e-3)


class TestMachineFunctional:
    def test_flat_matches_host_backend(self):
        sys_ = small_system()
        m = Grape6Machine(Grape6Config.single_node(), eps=0.008, mode="flat")
        gb = Grape6Backend(m)
        gb.load(sys_)
        hb = HostDirectBackend(eps=0.008)
        active = np.arange(sys_.n)
        a1, j1 = gb.forces_on(sys_, active, 0.0)
        a2, j2 = hb.forces_on(sys_, active, 0.0)
        assert np.array_equal(a1, a2)
        assert np.array_equal(j1, j2)

    def test_hierarchy_matches_flat(self):
        sys_ = small_system(n=30, seed=5)
        cfg = Grape6Config.scaled_down()
        active = np.arange(sys_.n)

        mh = Grape6Machine(cfg, eps=0.008, mode="hierarchy")
        bh = Grape6Backend(mh)
        bh.load(sys_)
        a1, j1 = bh.forces_on(sys_, active, 0.0)

        mf = Grape6Machine(cfg, eps=0.008, mode="flat")
        bf = Grape6Backend(mf)
        bf.load(sys_)
        a2, j2 = bf.forces_on(sys_, active, 0.0)

        assert np.allclose(a1, a2, rtol=1e-10, atol=1e-18)
        assert np.allclose(j1, j2, rtol=1e-10, atol=1e-18)

    def test_hierarchy_subset_block(self):
        """A partial active block must map results back to the right rows."""
        sys_ = small_system(n=25, seed=7)
        cfg = Grape6Config.scaled_down()
        m = Grape6Machine(cfg, eps=0.008, mode="hierarchy")
        b = Grape6Backend(m)
        b.load(sys_)
        active = np.array([2, 9, 11, 20])
        a1, j1 = b.forces_on(sys_, active, 0.0)
        hb = HostDirectBackend(eps=0.008)
        a2, j2 = hb.forces_on(sys_, active, 0.0)
        assert np.allclose(a1, a2, rtol=1e-10, atol=1e-18)

    def test_hierarchy_update_propagates(self):
        """After push_updates, forces reflect the corrected positions."""
        sys_ = small_system(n=20, seed=9)
        cfg = Grape6Config.scaled_down()
        m = Grape6Machine(cfg, eps=0.008, mode="hierarchy")
        b = Grape6Backend(m)
        b.load(sys_)
        active = np.arange(sys_.n)
        # move particle 0 and push
        sys_.pos[0] += 1.0
        b.push_updates(sys_, np.array([0]))
        a1, _ = b.forces_on(sys_, active, 0.0)
        hb = HostDirectBackend(eps=0.008)
        a2, _ = hb.forces_on(sys_, active, 0.0)
        assert np.allclose(a1, a2, rtol=1e-10, atol=1e-18)

    def test_capacity_overflow_raises(self):
        sys_ = small_system(n=40)
        m = Grape6Machine(
            Grape6Config.scaled_down(), eps=0.008, mode="hierarchy",
            jmem_capacity_per_chip=2,
        )
        with pytest.raises(GrapeMemoryError):
            m.load(sys_)

    def test_stale_load_detected(self):
        sys_ = small_system(n=10)
        m = Grape6Machine(Grape6Config.single_board(), eps=0.008, mode="flat")
        with pytest.raises(GrapeMemoryError):
            m.compute_block(sys_, np.arange(10), 0.0)

    def test_invalid_mode(self):
        with pytest.raises(ConfigurationError):
            Grape6Machine(mode="warp")


class TestMachineAccounting:
    def test_totals_accumulate(self):
        sys_ = small_system(n=16)
        m = Grape6Machine(Grape6Config.single_node(), eps=0.008, mode="flat")
        b = Grape6Backend(m)
        b.load(sys_)
        b.forces_on(sys_, np.arange(16), 0.0)
        b.forces_on(sys_, np.arange(8), 0.0)
        assert m.totals.blocks == 2
        assert m.totals.particle_steps == 24
        assert m.totals.interactions == 16 * 18 + 8 * 18
        assert m.totals.total_flops == m.totals.interactions * FLOPS_PER_INTERACTION
        assert m.achieved_flops() > 0
        assert 0 < m.efficiency() < 1

    def test_reset_counters(self):
        sys_ = small_system(n=16)
        m = Grape6Machine(Grape6Config.single_node(), eps=0.008, mode="flat")
        b = Grape6Backend(m)
        b.load(sys_)
        b.forces_on(sys_, np.arange(16), 0.0)
        m.reset_counters()
        assert m.totals.blocks == 0
        assert m.achieved_flops() == 0.0


class TestGrapeSimulation:
    def test_full_simulation_on_grape(self):
        """End-to-end: disk integration using the GRAPE backend."""
        sys_ = small_system(n=32, seed=11)
        m = Grape6Machine(Grape6Config.single_cluster(), eps=0.008, mode="flat")
        sim = Simulation(
            sys_, Grape6Backend(m),
            external_field=KeplerField(),
            timestep_params=TimestepParams(),
        )
        sim.initialize()
        e0 = energy(sim.system, 0.008, sim.external_field).total
        sim.evolve(10.0)
        sim.synchronize(10.0)
        e1 = energy(sim.system, 0.008, sim.external_field).total
        assert abs(e1 - e0) / abs(e0) < 1e-8
        # init adds one machine block; synchronize adds one more unless
        # every particle already sat at t_end
        assert m.totals.blocks in (sim.block_steps + 1, sim.block_steps + 2)

    def test_grape_trajectory_identical_to_host(self):
        """Flat-mode GRAPE runs are bit-compatible with the host backend."""
        sim_h = make_disk_sim(n=20, seed=13)
        sim_h.evolve(4.0)

        sys_g = build_disk_system(PlanetesimalDiskConfig(n_planetesimals=20, seed=13))
        m = Grape6Machine(Grape6Config.single_node(), eps=0.008, mode="flat")
        sim_g = Simulation(
            sys_g, Grape6Backend(m),
            external_field=KeplerField(),
            timestep_params=TimestepParams(),
        )
        sim_g.initialize()
        sim_g.evolve(4.0)
        assert np.array_equal(sim_g.system.pos, sim_h.system.pos)
        assert np.array_equal(sim_g.system.t, sim_h.system.t)


class TestTopologyGraph:
    def test_node_counts(self):
        m = Grape6Machine(Grape6Config.paper_full_system(), eps=0.0, mode="flat")
        g = m.topology_graph()
        kinds = {}
        for _, d in g.nodes(data=True):
            kinds[d["kind"]] = kinds.get(d["kind"], 0) + 1
        assert kinds["host"] == 16
        assert kinds["nb"] == 16
        assert kinds["board"] == 64
        assert kinds["chip"] == 2048

    def test_connected(self):
        import networkx as nx

        m = Grape6Machine(Grape6Config.scaled_down(), eps=0.0, mode="flat")
        assert nx.is_connected(m.topology_graph())

    def test_link_kinds(self):
        m = Grape6Machine(Grape6Config.single_cluster(), eps=0.0, mode="flat")
        g = m.topology_graph()
        links = {d["link"] for _, _, d in g.edges(data=True)}
        assert {"gbe", "pci", "lvds", "on-board"} <= links
