"""Tests for the bench-history store and regression analysis."""

import copy
import json

import pytest

from repro.errors import ConfigurationError, SnapshotError
from repro.obs import (
    SCHEMA_VERSION,
    BenchHistory,
    MetricsRegistry,
    Observability,
    compare_documents,
    host_fingerprint,
    render_comparison,
    render_trend,
)
from repro.obs.history import entry_key, entry_label


def doc(best=1.0, samples=None, name="kern", op="acc_jerk", n=64):
    entry = {"op": op, "kernel": "tiled", "n_active": n, "n_source": 4096,
             "best_seconds": best, "repeats": 3}
    if samples is not None:
        entry["samples_seconds"] = samples
    return {"benchmark": name, "entries": [entry]}


class TestFingerprint:
    def test_fields_present(self):
        fp = host_fingerprint()
        for key in ("python", "platform", "cpu_count", "kernel_threads",
                    "numpy"):
            assert key in fp
        assert fp["cpu_count"] >= 1

    def test_kernel_threads_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "7")
        assert host_fingerprint()["kernel_threads"] == "7"


class TestEntryKey:
    def test_identity_excludes_measurements(self):
        a = {"op": "acc", "n": 64, "best_seconds": 1.0, "repeats": 3,
             "samples_seconds": [1.0], "speedup_vs_reference": 2.0}
        b = {"op": "acc", "n": 64, "best_seconds": 9.9, "repeats": 5}
        assert entry_key(a) == entry_key(b)

    def test_different_shape_differs(self):
        assert entry_key({"op": "acc", "n": 64}) != entry_key(
            {"op": "acc", "n": 128}
        )

    def test_label_spelling(self):
        assert entry_label(entry_key({"op": "acc", "n": 64})) == "n=64 op=acc"


class TestStore:
    def test_append_stamps_and_sequences(self, tmp_path):
        hist = BenchHistory(tmp_path / "h")
        p1 = hist.append(doc())
        p2 = hist.append(doc(best=1.1))
        assert p1 != p2
        records = hist.records("kern")
        assert [r["seq"] for r in records] == [1, 2]
        assert all(r["schema_version"] == SCHEMA_VERSION for r in records)
        assert all("host" in r for r in records)
        assert hist.latest("kern")["seq"] == 2

    def test_existing_host_preserved(self, tmp_path):
        hist = BenchHistory(tmp_path / "h")
        d = doc()
        d["host"] = {"python": "marker"}
        hist.append(d)
        assert hist.latest("kern")["host"] == {"python": "marker"}

    def test_benchmarks_listing(self, tmp_path):
        hist = BenchHistory(tmp_path / "h")
        assert hist.benchmarks() == []
        hist.append(doc(name="b_one"))
        hist.append(doc(name="a_two"))
        assert hist.benchmarks() == ["a_two", "b_one"]

    def test_nameless_document_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            BenchHistory(tmp_path / "h").append({"entries": []})

    def test_corrupt_record_raises(self, tmp_path):
        hist = BenchHistory(tmp_path / "h")
        hist.append(doc())
        (tmp_path / "h" / "kern" / "kern-99999.json").write_text("{ torn")
        with pytest.raises(SnapshotError):
            hist.records("kern")

    def test_metrics_recorded(self, tmp_path):
        obs = Observability(metrics=MetricsRegistry(strict=True))
        hist = BenchHistory(tmp_path / "h", obs=obs)
        hist.append(doc())
        assert obs.metrics.snapshot()["perf.history.records_total"] == 1.0


class TestCompare:
    def test_identical_documents_pass(self):
        result = compare_documents(doc(samples=[1.0, 1.01, 1.02]),
                                   doc(samples=[1.0, 1.01, 1.02]))
        assert result.ok
        assert result.entries[0].ratio == pytest.approx(1.0)

    def test_twenty_percent_slowdown_detected(self):
        base = doc(samples=[1.0, 1.01, 1.02])
        slow = doc(best=1.2, samples=[1.2, 1.21, 1.22])
        result = compare_documents(base, slow, threshold=0.10)
        assert not result.ok
        entry = result.entries[0]
        assert entry.regression
        assert entry.ci_low is not None and entry.ci_low > 1.0
        assert entry.verdict == "REGRESSION"

    def test_noise_within_threshold_passes(self):
        base = doc(samples=[1.0, 1.02, 0.99])
        close = doc(best=1.04, samples=[1.04, 1.05, 1.01])
        assert compare_documents(base, close, threshold=0.10).ok

    def test_point_ratio_fallback_without_samples(self):
        result = compare_documents(doc(best=1.0), doc(best=1.3))
        entry = result.entries[0]
        assert entry.regression and entry.ci_low is None

    def test_improvement_flagged(self):
        base = doc(samples=[1.0, 1.01, 1.02])
        fast = doc(best=0.7, samples=[0.7, 0.71, 0.72])
        result = compare_documents(base, fast)
        assert result.ok
        assert result.entries[0].improvement
        assert result.entries[0].verdict == "improved"

    def test_unmatched_entries_noted(self):
        base = doc()
        cur = doc(op="acc_only")
        result = compare_documents(base, cur)
        assert result.entries == []
        assert len(result.only_baseline) == 1
        assert len(result.only_current) == 1

    def test_host_mismatch_flagged(self):
        base, cur = doc(), doc()
        base["host"] = {"cpu_count": 1}
        cur["host"] = {"cpu_count": 64}
        assert compare_documents(base, cur).host_mismatch

    def test_deterministic_ci(self):
        base = doc(samples=[1.0, 1.05, 0.98])
        cur = doc(samples=[1.2, 1.25, 1.19])
        a = compare_documents(base, cur).entries[0]
        b = compare_documents(base, cur).entries[0]
        assert (a.ci_low, a.ci_high) == (b.ci_low, b.ci_high)

    def test_metrics_recorded(self):
        obs = Observability(metrics=MetricsRegistry(strict=True))
        compare_documents(doc(), doc(best=2.0), obs=obs)
        snap = obs.metrics.snapshot()
        assert snap["perf.history.comparisons_total"] == 1.0
        assert snap["perf.history.regressions"] == 1.0

    def test_wall_seconds_entries_compare(self):
        base = {"benchmark": "hyb", "entries": [
            {"n": 64, "backend": "hybrid", "wall_seconds": 2.0}]}
        cur = {"benchmark": "hyb", "entries": [
            {"n": 64, "backend": "hybrid", "wall_seconds": 3.0}]}
        result = compare_documents(base, cur)
        assert not result.ok


class TestRendering:
    def test_comparison_table(self):
        text = render_comparison(compare_documents(doc(), doc(best=1.5)))
        assert "Benchmark diff: kern" in text
        assert "REGRESSION" in text

    def test_comparison_notes(self):
        base, cur = doc(), doc(op="other")
        base["host"], cur["host"] = {"a": 1}, {"a": 2}
        text = render_comparison(compare_documents(base, cur))
        assert text == ""  # no matched entries -> no table

    def test_trend_table(self, tmp_path):
        hist = BenchHistory(tmp_path / "h")
        hist.append(doc(best=1.0))
        hist.append(doc(best=1.5))
        text = render_trend(hist.records("kern"), "kern")
        assert "Benchmark trend: kern" in text
        assert "1.500" in text

    def test_trend_empty(self):
        assert render_trend([], "kern") == ""


class TestBaselineMigration:
    def test_committed_baselines_are_v2(self):
        """Both repo-root BENCH files carry the v2 schema + host block."""
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        for name in ("BENCH_kernels.json", "BENCH_hybrid.json"):
            document = json.loads((root / name).read_text())
            assert document["schema_version"] == SCHEMA_VERSION
            assert "host" in document
            assert "cpu_count" in document["host"]

    def test_baselines_compare_with_themselves(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        for name in ("BENCH_kernels.json", "BENCH_hybrid.json"):
            document = json.loads((root / name).read_text())
            result = compare_documents(document, copy.deepcopy(document))
            assert result.entries, name
            assert result.ok, name
