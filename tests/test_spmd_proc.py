"""Tests for the supervised multiprocess SPMD engine.

Covers the robustness contract of :mod:`repro.parallel.proc`: VM/process
parity on the shared rank programs, superstep-tagged protocol checking
across real processes, bounded op timeouts, seeded rank kills with
journal-replay restart, heartbeat-stall lease expiry, message delays,
and graceful degrade to the in-process scheduler.
"""

import os
import signal

import numpy as np
import pytest

from repro.errors import SpmdError, SpmdProtocolError, SpmdTimeoutError
from repro.parallel import (
    ProcConfig,
    ProcEngine,
    ProgramContext,
    VirtualMachine,
    partition_bounds,
    ring_force_program,
)
from repro.parallel.programs import grid_force_program
from repro.resilience import FaultInjector, FaultKind, FaultPlan, FaultSpec


def _cluster(n=60, seed=7):
    rng = np.random.default_rng(seed)
    return (
        rng.normal(size=(n, 3)),
        rng.normal(size=(n, 3)),
        rng.uniform(0.5, 1.5, n),
    )


def _engine(n_ranks, cfg=None, injector=None, arrays=()):
    eng = ProcEngine(n_ranks, cfg, injector=injector)
    for name, arr in arrays:
        eng.share(name, arr)
    return eng


def _allreduce_gather(comm, ctx):
    total = yield comm.allreduce(float(comm.rank + 1))
    gathered = yield comm.allgather(comm.rank * 10)
    yield comm.barrier()
    return (total, gathered)


def _mismatched(comm, ctx):
    if comm.rank == 0:
        yield comm.barrier()
    else:
        yield comm.allreduce(1.0)
    return None


def _stuck_recv(comm, ctx):
    if comm.rank == 0:
        yield comm.recv(1)
    yield comm.barrier()
    return None


def _die_once(comm, ctx):
    # rank 1 SIGKILLs itself the first time through; the shared flag
    # makes the restarted incarnation take the live path, so the ops
    # before the kill must be served from the replay journal
    flag = ctx.arrays["flag"]
    total = yield comm.allreduce(float(comm.rank + 1))
    if comm.rank == 1 and flag[0] == 0:
        flag[0] = 1
        os.kill(os.getpid(), signal.SIGKILL)
    if comm.rank == 0:
        yield comm.send(1, total * 2)
    elif comm.rank == 1:
        got = yield comm.recv(0)
        total = total + got
    gathered = yield comm.allgather(total)
    return gathered


def _die_repeatedly(comm, ctx):
    total = yield comm.allreduce(float(comm.rank + 1))
    if comm.rank == 1 and ctx.arrays["flag"][0] < 2:
        ctx.arrays["flag"][0] += 1
        os.kill(os.getpid(), signal.SIGKILL)
    out = yield comm.allgather(total)
    return out


class TestProcBasics:
    def test_collectives_match_vm_semantics(self):
        with _engine(3, ProcConfig(op_timeout=20.0)) as eng:
            res = eng.run(_allreduce_gather)
        assert res.returns == [(6.0, [0, 10, 20])] * 3
        assert res.supersteps == 3
        assert res.wall_seconds > 0
        assert not res.degraded

    def test_single_rank(self):
        with _engine(1) as eng:
            res = eng.run(_allreduce_gather)
        assert res.returns == [(1.0, [0])]

    def test_engine_reusable_and_superstep_cumulative(self):
        with _engine(2) as eng:
            eng.run(_allreduce_gather)
            eng.run(_allreduce_gather)
            assert eng.supersteps == 6

    def test_closed_engine_rejects_runs(self):
        eng = _engine(2)
        eng.close()
        with pytest.raises(SpmdError, match="closed"):
            eng.run(_allreduce_gather)

    def test_shared_array_refresh(self):
        a = np.arange(6, dtype=float)
        eng = _engine(2, arrays=[("x", a)])

        def reader(comm, ctx):
            yield comm.barrier()
            return float(ctx.arrays["x"].sum())

        try:
            assert eng.run(reader).returns == [15.0, 15.0]
            eng.share("x", a * 10)  # refresh in place
            assert eng.run(reader).returns == [150.0, 150.0]
        finally:
            eng.close()


class TestProcParity:
    """The same program yields the same bits on VM and processes."""

    def test_ring_program_bit_identical(self):
        pos, vel, mass = _cluster()
        params = {"eps": 0.01, "bounds": partition_bounds(len(pos), 3)}
        ctx = ProgramContext(
            arrays={"pos": pos, "vel": vel, "mass": mass}, params=params
        )
        vm_res = VirtualMachine(n_ranks=3).run(ring_force_program, ctx)
        with _engine(
            3, arrays=[("pos", pos), ("vel", vel), ("mass", mass)]
        ) as eng:
            proc_res = eng.run(ring_force_program, params)
        for (lo, hi, a, j), (plo, phi, pa, pj) in zip(
            vm_res.returns[0], proc_res.returns[0]
        ):
            assert (lo, hi) == (plo, phi)
            assert np.array_equal(a, pa)
            assert np.array_equal(j, pj)

    def test_grid_program_bit_identical(self):
        pos, vel, mass = _cluster(n=40)
        q = 2
        params = {
            "eps": 0.01,
            "q": q,
            "bounds": partition_bounds(len(pos), q),
        }
        ctx = ProgramContext(
            arrays={"pos": pos, "vel": vel, "mass": mass}, params=params
        )
        vm_res = VirtualMachine(n_ranks=q * q).run(grid_force_program, ctx)
        with _engine(
            q * q, arrays=[("pos", pos), ("vel", vel), ("mass", mass)]
        ) as eng:
            proc_res = eng.run(grid_force_program, params)
        for vm_item, proc_item in zip(vm_res.returns[0], proc_res.returns[0]):
            if vm_item is None:
                assert proc_item is None
                continue
            assert (vm_item[0], vm_item[1]) == (proc_item[0], proc_item[1])
            assert np.array_equal(vm_item[2], proc_item[2])
            assert np.array_equal(vm_item[3], proc_item[3])


class TestProcProtocol:
    def test_collective_mismatch_is_structured(self):
        with _engine(2, ProcConfig(op_timeout=20.0)) as eng:
            with pytest.raises(SpmdProtocolError, match="mismatch") as exc:
                eng.run(_mismatched)
        assert set(exc.value.blocked) == {0, 1}
        assert "barrier@s0" in exc.value.blocked.values()

    def test_recv_from_returned_peer_times_out_with_context(self):
        with _engine(2, ProcConfig(op_timeout=0.5)) as eng:
            with pytest.raises(SpmdTimeoutError, match="recv"):
                eng.run(_stuck_recv)

    def test_worker_exception_propagates(self):
        def boom(comm, ctx):
            yield comm.barrier()
            raise ValueError("worker-side failure")

        with _engine(2) as eng:
            with pytest.raises(SpmdError, match="worker-side failure"):
                eng.run(boom)


class TestRankDeathRecovery:
    def test_sigkill_restart_replays_journal(self):
        with _engine(
            3,
            ProcConfig(op_timeout=20.0, lease_seconds=3.0, max_restarts=2),
            arrays=[("flag", np.zeros(1))],
        ) as eng:
            res = eng.run(_die_once)
        assert res.returns == [[6.0, 18.0, 6.0]] * 3
        assert res.deaths == 1
        assert res.restarts == 1
        assert res.replayed_ops >= 1
        assert not res.degraded
        assert res.recovery_seconds > 0

    def test_restart_budget_exhaustion_degrades_bit_identically(self):
        with _engine(
            3,
            ProcConfig(op_timeout=20.0, lease_seconds=3.0, max_restarts=1),
            arrays=[("flag", np.zeros(1))],
        ) as eng:
            res = eng.run(_die_repeatedly)
        assert res.degraded
        assert res.deaths == 2
        # the degraded rerun still produces the correct (identical) data
        assert res.returns == [[6.0, 6.0, 6.0]] * 3

    def test_on_failure_raise(self):
        with _engine(
            2,
            ProcConfig(
                op_timeout=20.0, max_restarts=0, on_failure="raise"
            ),
            arrays=[("flag", np.zeros(1))],
        ) as eng:
            with pytest.raises(SpmdError, match="restart budget"):
                eng.run(_die_repeatedly)


class TestSeededRankFaults:
    def _forces_with_plan(self, plan, cfg):
        pos, vel, mass = _cluster(n=80, seed=11)
        params = {"eps": 0.01, "bounds": partition_bounds(len(pos), 4)}
        ctx = ProgramContext(
            arrays={"pos": pos, "vel": vel, "mass": mass}, params=params
        )
        ref = VirtualMachine(n_ranks=4).run(ring_force_program, ctx).returns
        with _engine(
            4,
            cfg,
            injector=FaultInjector(plan),
            arrays=[("pos", pos), ("vel", vel), ("mass", mass)],
        ) as eng:
            res = eng.run(ring_force_program, params)
        for (lo, hi, a, j), (plo, phi, pa, pj) in zip(
            ref[0], res.returns[0]
        ):
            assert (lo, hi) == (plo, phi)
            assert np.array_equal(a, pa)
            assert np.array_equal(j, pj)
        return res

    def test_rank_kill_recovers_bit_identically(self):
        plan = FaultPlan(
            [FaultSpec(FaultKind.RANK_KILL, at_block=0, target=1)], seed=3
        )
        res = self._forces_with_plan(
            plan, ProcConfig(op_timeout=20.0, lease_seconds=3.0)
        )
        assert res.deaths >= 1
        assert res.restarts >= 1

    def test_rank_stall_expires_lease_and_recovers(self):
        plan = FaultPlan(
            [FaultSpec(FaultKind.RANK_STALL, at_block=0, target=2)], seed=3
        )
        res = self._forces_with_plan(
            plan,
            ProcConfig(
                op_timeout=30.0, lease_seconds=0.5, heartbeat_interval=0.02
            ),
        )
        assert res.heartbeat_expiries >= 1
        assert res.restarts >= 1

    def test_msg_delay_is_transparent(self):
        plan = FaultPlan(
            [
                FaultSpec(
                    FaultKind.MSG_DELAY,
                    at_block=0,
                    target=0,
                    params={"seconds": 0.1},
                )
            ],
            seed=3,
        )
        res = self._forces_with_plan(plan, ProcConfig(op_timeout=20.0))
        assert res.deaths == 0

    def test_rank_kinds_not_fired_in_machine_domain(self):
        # a rank fault in the plan must not leak into apply_due()
        plan = FaultPlan(
            [FaultSpec(FaultKind.RANK_KILL, at_block=0, target=0)], seed=0
        )
        inj = FaultInjector(plan)
        inj.apply_due(100)  # machine domain: nothing should fire
        assert plan.n_pending == 1
        fired = inj.rank_actions(0)
        assert [s.kind for s in fired] == [FaultKind.RANK_KILL]
        assert plan.n_pending == 0
