"""Tests for energy/angular-momentum diagnostics."""

import numpy as np
import pytest

from repro.core import (
    EnergyTracker,
    KeplerField,
    ParticleSystem,
    angular_momentum,
    energy,
)

from conftest import make_two_body


class TestEnergy:
    def test_kinetic_term(self):
        s = ParticleSystem(
            np.array([2.0]), np.zeros((1, 3)) + 5.0, np.array([[3.0, 0.0, 4.0]])
        )
        e = energy(s, eps=0.0)
        assert e.kinetic == pytest.approx(0.5 * 2.0 * 25.0)
        assert e.mutual == 0.0

    def test_mutual_term_pair(self):
        s = make_two_body(m1=1.0, m2=1.0, a=1.0, e=0.0)
        e = energy(s, eps=0.0)
        sep = np.linalg.norm(s.pos[1] - s.pos[0])
        assert e.mutual == pytest.approx(-1.0 / sep)

    def test_external_term(self):
        field = KeplerField(mass=1.0)
        s = ParticleSystem(
            np.array([3.0]), np.array([[2.0, 0.0, 0.0]]), np.zeros((1, 3))
        )
        e = energy(s, eps=0.0, external_field=field)
        assert e.external == pytest.approx(-3.0 / 2.0)
        assert e.total == pytest.approx(-1.5)

    def test_virial_circular_two_body(self):
        """Circular binary: 2K + W = 0."""
        s = make_two_body(m1=1.0, m2=1.0, a=1.0, e=0.0)
        e = energy(s, eps=0.0)
        assert 2 * e.kinetic + e.mutual == pytest.approx(0.0, abs=1e-12)


class TestAngularMomentum:
    def test_circular_orbit_l(self):
        s = ParticleSystem(
            np.array([2.0]),
            np.array([[3.0, 0.0, 0.0]]),
            np.array([[0.0, 0.5, 0.0]]),
        )
        l = angular_momentum(s)
        assert np.allclose(l, [0.0, 0.0, 2.0 * 3.0 * 0.5])

    def test_antiparallel_pair_cancels(self):
        s = ParticleSystem(
            np.ones(2),
            np.array([[1.0, 0, 0], [-1.0, 0, 0]]),
            np.array([[0.0, 1.0, 0], [0.0, -1.0, 0]]),
        )
        # both contribute +z angular momentum r x v: (1,0,0)x(0,1,0)=(0,0,1); (-1,0,0)x(0,-1,0)=(0,0,1)
        assert np.allclose(angular_momentum(s), [0, 0, 2.0])


class TestEnergyTracker:
    def test_tracker_flow(self):
        s = make_two_body()
        tr = EnergyTracker(eps=0.0)
        e0 = tr.start(s)
        assert tr.reference_energy == e0
        err = tr.sample(s)
        assert err == 0.0
        assert tr.max_error == 0.0
        assert len(tr.samples) == 2

    def test_tracker_detects_change(self):
        s = make_two_body()
        tr = EnergyTracker(eps=0.0)
        tr.start(s)
        s.vel *= 1.1
        assert tr.sample(s) > 0.0
        assert tr.max_error > 0.0

    def test_tracker_requires_start(self):
        tr = EnergyTracker(eps=0.0)
        with pytest.raises(RuntimeError):
            _ = tr.reference_energy
