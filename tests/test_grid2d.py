"""Tests for the 2-D host-matrix force scheme (paper Figure 6)."""

import numpy as np
import pytest

from repro.core.forces import acc_jerk
from repro.errors import CommError
from repro.parallel import VirtualMachine, grid_forces, ring_forces


@pytest.fixture
def particles(rng):
    n = 41
    pos = rng.normal(size=(n, 3)) * 5 + 20
    vel = rng.normal(size=(n, 3)) * 0.1
    mass = rng.uniform(1e-9, 1e-7, n)
    return pos, vel, mass


class TestGridForces:
    def test_matches_direct(self, particles):
        pos, vel, mass = particles
        n = len(pos)
        a_ref, j_ref = acc_jerk(pos, vel, pos, vel, mass, 0.01,
                                self_indices=np.arange(n))
        for q in (1, 2, 3, 5):
            res = grid_forces(pos, vel, mass, eps=0.01, q=q)
            assert np.allclose(res.acc, a_ref, rtol=1e-12, atol=1e-18), q
            assert np.allclose(res.jerk, j_ref, rtol=1e-12, atol=1e-18), q

    def test_matches_ring(self, particles):
        pos, vel, mass = particles
        rg = ring_forces(pos, vel, mass, 0.01, n_ranks=4)
        gd = grid_forces(pos, vel, mass, 0.01, q=2)
        assert np.allclose(rg.acc, gd.acc, rtol=1e-12, atol=1e-18)

    def test_per_rank_traffic_scales_down(self, particles):
        """The Figure-6 point: per-host traffic falls with q."""
        pos, vel, mass = particles
        b2 = grid_forces(pos, vel, mass, 0.01, q=2)
        b4 = grid_forces(pos, vel, mass, 0.01, q=4)
        per_rank_2 = b2.total_bytes / 4
        per_rank_4 = b4.total_bytes / 16
        assert per_rank_4 < per_rank_2

    def test_vm_size_checked(self, particles):
        pos, vel, mass = particles
        with pytest.raises(CommError):
            grid_forces(pos, vel, mass, 0.01, q=2, vm=VirtualMachine(3))

    def test_invalid_q(self, particles):
        pos, vel, mass = particles
        with pytest.raises(CommError):
            grid_forces(pos, vel, mass, 0.01, q=0)
        with pytest.raises(CommError):
            grid_forces(pos[:2], vel[:2], mass[:2], 0.01, q=5)

    def test_clock_and_messages_reported(self, particles):
        pos, vel, mass = particles
        res = grid_forces(pos, vel, mass, 0.01, q=3)
        assert len(res.clock) == 9
        assert res.messages > 0
