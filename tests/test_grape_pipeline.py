"""Tests for the GRAPE-6 pipeline and number-format emulation."""

import numpy as np
import pytest

from repro.core.forces import acc_jerk
from repro.errors import ConfigurationError, GrapeError
from repro.grape.fixedpoint import FixedPointGrid, round_mantissa
from repro.grape.pipeline import (
    PIPELINE_DEPTH,
    VMP_FACTOR,
    ForcePipelineArray,
)


class TestRoundMantissa:
    def test_identity_at_52_bits(self):
        x = np.array([1.2345678901234567, -9.87e-12])
        assert np.array_equal(round_mantissa(x, 52), x)

    def test_powers_of_two_exact(self):
        x = np.array([1.0, 2.0, 0.5, -8.0])
        assert np.array_equal(round_mantissa(x, 4), x)

    def test_relative_error_bound(self, rng):
        x = rng.normal(size=1000) * 10.0 ** rng.uniform(-8, 8, 1000)
        for bits in (8, 16, 24):
            y = round_mantissa(x, bits)
            rel = np.abs(y - x) / np.abs(x)
            assert rel.max() <= 2.0 ** (-bits)

    def test_special_values_pass_through(self):
        x = np.array([0.0, np.inf, -np.inf, np.nan])
        y = round_mantissa(x, 8)
        assert y[0] == 0.0 and np.isinf(y[1]) and np.isinf(y[2]) and np.isnan(y[3])

    def test_rejects_zero_bits(self):
        with pytest.raises(ConfigurationError):
            round_mantissa(np.array([1.0]), 0)


class TestFixedPointGrid:
    def test_quantisation_error_bound(self, rng):
        grid = FixedPointGrid(extent=100.0, bits=20)
        x = rng.uniform(-100, 100, 1000)
        q = grid.quantize(x)
        assert np.abs(q - x).max() <= grid.roundtrip_error_bound() + 1e-15

    def test_64_bit_grid_is_subdouble(self):
        grid = FixedPointGrid(extent=100.0, bits=64)
        # the grid step is far below double ULP at 35 AU
        assert grid.step < np.spacing(35.0)

    def test_out_of_range_raises(self):
        grid = FixedPointGrid(extent=10.0, bits=16)
        with pytest.raises(ConfigurationError):
            grid.quantize(np.array([11.0]))

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            FixedPointGrid(extent=-1.0)
        with pytest.raises(ConfigurationError):
            FixedPointGrid(extent=1.0, bits=65)


class TestPipelineCycles:
    def setup_method(self):
        self.p = ForcePipelineArray(n_pipelines=6, eps=0.01)

    def test_capacity(self):
        assert self.p.i_capacity == 48

    def test_passes(self):
        assert self.p.passes_required(1) == 1
        assert self.p.passes_required(48) == 1
        assert self.p.passes_required(49) == 2
        assert self.p.passes_required(0) == 0

    def test_cycles_formula(self):
        # one pass, 100 j: VMP_FACTOR*100 + depth
        assert self.p.cycles_for(10, 100) == VMP_FACTOR * 100 + PIPELINE_DEPTH
        assert self.p.cycles_for(96, 100) == 2 * (VMP_FACTOR * 100 + PIPELINE_DEPTH)

    def test_full_occupancy_hits_six_per_cycle(self):
        """48 i-particles: 6 interactions per cycle (the 30.7 Gflops peak)."""
        n_j = 10_000
        cycles = self.p.cycles_for(48, n_j)
        rate = 48 * n_j / cycles
        assert rate == pytest.approx(6.0, rel=0.01)

    def test_small_blocks_waste_pipelines(self):
        """A 6-particle block runs at 1/8 of peak (paper Section 4.2)."""
        n_j = 10_000
        rate = 6 * n_j / self.p.cycles_for(6, n_j)
        assert rate < 1.0

    def test_rejects_zero_pipelines(self):
        with pytest.raises(GrapeError):
            ForcePipelineArray(n_pipelines=0)


class TestPipelineEvaluate:
    def test_matches_reference_kernel(self, rng):
        p = ForcePipelineArray(eps=0.01)
        pos_j = rng.normal(size=(40, 3))
        vel_j = rng.normal(size=(40, 3))
        mass_j = rng.uniform(0.1, 1, 40)
        pos_i = rng.normal(size=(7, 3)) + 3
        vel_i = rng.normal(size=(7, 3))
        res = p.evaluate(pos_i, vel_i, pos_j, vel_j, mass_j)
        a_ref, j_ref = acc_jerk(pos_i, vel_i, pos_j, vel_j, mass_j, 0.01)
        assert np.allclose(res.acc, a_ref, rtol=1e-14)
        assert np.allclose(res.jerk, j_ref, rtol=1e-14)
        assert res.interactions == 7 * 40

    def test_self_exclusion_by_key(self, rng):
        p = ForcePipelineArray(eps=0.01)
        pos = rng.normal(size=(10, 3))
        vel = rng.normal(size=(10, 3))
        mass = rng.uniform(0.1, 1, 10)
        keys = np.arange(100, 110)
        res = p.evaluate(pos[2:5], vel[2:5], pos, vel, mass,
                         exclude_keys=(keys[2:5], keys))
        a_ref, j_ref = acc_jerk(pos[2:5], vel[2:5], pos, vel, mass, 0.01,
                                self_indices=np.arange(2, 5))
        assert np.allclose(res.acc, a_ref, rtol=1e-14)
        assert np.allclose(res.jerk, j_ref, rtol=1e-14)

    def test_mixed_resident_nonresident_keys(self, rng):
        """i-particles not resident in the j-set must not be masked."""
        p = ForcePipelineArray(eps=0.01)
        pos_j = rng.normal(size=(8, 3))
        vel_j = rng.normal(size=(8, 3))
        mass_j = rng.uniform(0.1, 1, 8)
        j_keys = np.arange(8)
        pos_i = np.vstack([pos_j[3], rng.normal(size=3) + 5])
        vel_i = np.vstack([vel_j[3], rng.normal(size=3)])
        i_keys = np.array([3, 999])  # second sink is foreign
        res = p.evaluate(pos_i, vel_i, pos_j, vel_j, mass_j,
                         exclude_keys=(i_keys, j_keys))
        a0, _ = acc_jerk(pos_i[:1], vel_i[:1], pos_j, vel_j, mass_j, 0.01,
                         self_indices=np.array([3]))
        a1, _ = acc_jerk(pos_i[1:], vel_i[1:], pos_j, vel_j, mass_j, 0.01)
        assert np.allclose(res.acc[0], a0[0], rtol=1e-14)
        assert np.allclose(res.acc[1], a1[0], rtol=1e-14)

    def test_empty_inputs(self):
        p = ForcePipelineArray(eps=0.01)
        res = p.evaluate(
            np.zeros((0, 3)), np.zeros((0, 3)),
            np.zeros((3, 3)), np.zeros((3, 3)), np.ones(3),
        )
        assert res.acc.shape == (0, 3)
        assert res.cycles == 0

    def test_precision_emulation_error_small(self, rng):
        """16-bit-mantissa pipelines: per-force error ~1e-4 relative."""
        exact = ForcePipelineArray(eps=0.01)
        emul = ForcePipelineArray(eps=0.01, emulate_precision=True)
        pos_j = rng.normal(size=(100, 3)) * 5
        vel_j = rng.normal(size=(100, 3))
        mass_j = rng.uniform(0.1, 1, 100)
        pos_i = rng.normal(size=(5, 3)) * 5 + 20
        vel_i = rng.normal(size=(5, 3))
        r_ex = exact.evaluate(pos_i, vel_i, pos_j, vel_j, mass_j)
        r_em = emul.evaluate(pos_i, vel_i, pos_j, vel_j, mass_j)
        rel = np.linalg.norm(r_em.acc - r_ex.acc, axis=1) / np.linalg.norm(
            r_ex.acc, axis=1
        )
        assert rel.max() < 1e-3
        assert rel.max() > 0  # the emulation must actually do something
