"""Tests for protoplanet setup."""

import numpy as np
import pytest

from repro.constants import (
    PAPER_PROTOPLANET_MASS,
    PAPER_PROTOPLANET_RADII_AU,
    PAPER_SOFTENING_AU,
)
from repro.errors import ConfigurationError
from repro.planetesimal import Protoplanet, default_protoplanets, protoplanet_states


class TestProtoplanet:
    def test_state_is_circular(self):
        p = Protoplanet(mass=1e-5, radius_au=20.0, phase=0.7)
        pos, vel = p.state()
        assert np.linalg.norm(pos) == pytest.approx(20.0)
        assert np.linalg.norm(vel) == pytest.approx(1.0 / np.sqrt(20.0))
        # velocity perpendicular to radius for a circular orbit
        assert pos @ vel == pytest.approx(0.0, abs=1e-14)
        assert pos[2] == 0.0 and vel[2] == 0.0

    def test_prograde(self):
        p = Protoplanet(mass=1e-5, radius_au=20.0, phase=0.0)
        pos, vel = p.state()
        lz = pos[0] * vel[1] - pos[1] * vel[0]
        assert lz > 0

    def test_hill_radius(self):
        p = Protoplanet(mass=3e-6, radius_au=1.0)
        assert p.hill_radius() == pytest.approx(0.01)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            Protoplanet(mass=-1.0, radius_au=20.0)
        with pytest.raises(ConfigurationError):
            Protoplanet(mass=1e-5, radius_au=0.0)


class TestDefaults:
    def test_paper_pair(self):
        pair = default_protoplanets()
        assert len(pair) == 2
        assert {p.radius_au for p in pair} == set(PAPER_PROTOPLANET_RADII_AU)
        assert all(p.mass == PAPER_PROTOPLANET_MASS for p in pair)

    def test_phases_opposed(self):
        pair = default_protoplanets()
        assert abs(pair[0].phase - pair[1].phase) == pytest.approx(np.pi)

    def test_softening_well_inside_hill_sphere(self):
        """Paper: softening is ~2 dex below the protoplanet Hill radius."""
        for p in default_protoplanets():
            assert p.hill_radius() / PAPER_SOFTENING_AU > 30.0


class TestStates:
    def test_stacking(self):
        mass, pos, vel = protoplanet_states(default_protoplanets())
        assert mass.shape == (2,)
        assert pos.shape == (2, 3)
        assert vel.shape == (2, 3)

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            protoplanet_states([])
