"""Tests for the historical GRAPE-6 host-library driver shim."""

import numpy as np
import pytest

from repro.core.forces import acc_jerk
from repro.errors import ConfigurationError, GrapeError
from repro.grape import Grape6Config, Grape6Driver, Grape6Machine


@pytest.fixture
def driver():
    machine = Grape6Machine(Grape6Config.single_board(), eps=0.01, mode="flat")
    d = Grape6Driver(machine)
    d.open()
    return d


def write_particles(driver, rng, n=12):
    pos = rng.normal(size=(n, 3))
    vel = rng.normal(size=(n, 3))
    mass = rng.uniform(0.1, 1, n)
    for k in range(n):
        driver.set_j_particle(k, mass[k], pos[k], vel[k])
    return pos, vel, mass


class TestLifecycle:
    def test_double_open(self, driver):
        with pytest.raises(GrapeError):
            driver.open()

    def test_use_after_close(self, driver):
        driver.close()
        with pytest.raises(GrapeError):
            driver.set_j_particle(0, 1.0, np.zeros(3), np.zeros(3))

    def test_closed_by_default(self):
        machine = Grape6Machine(Grape6Config.single_board(), eps=0.01)
        d = Grape6Driver(machine)
        with pytest.raises(GrapeError):
            d.calc_lasthalf()


class TestForceSequence:
    def test_matches_reference(self, driver, rng):
        pos, vel, mass = write_particles(driver, rng)
        n = len(pos)
        driver.calc_firsthalf(0.0, np.arange(n))
        acc, jerk = driver.calc_lasthalf()
        a_ref, j_ref = acc_jerk(pos, vel, pos, vel, mass, 0.01,
                                self_indices=np.arange(n))
        assert np.allclose(acc, a_ref, rtol=1e-13)
        assert np.allclose(jerk, j_ref, rtol=1e-13)

    def test_subset_block(self, driver, rng):
        pos, vel, mass = write_particles(driver, rng)
        driver.calc_firsthalf(0.0, np.array([2, 5, 7]))
        acc, _ = driver.calc_lasthalf()
        a_ref, _ = acc_jerk(pos[[2, 5, 7]], vel[[2, 5, 7]], pos, vel, mass,
                            0.01, self_indices=np.array([2, 5, 7]))
        assert np.allclose(acc, a_ref, rtol=1e-13)

    def test_overwrite_j_particle(self, driver, rng):
        pos, vel, mass = write_particles(driver, rng)
        # move particle 0 far away and verify the force changes
        driver.calc_firsthalf(0.0, np.array([1]))
        a1, _ = driver.calc_lasthalf()
        driver.set_j_particle(0, mass[0], pos[0] + 100.0, vel[0])
        driver.calc_firsthalf(0.0, np.array([1]))
        a2, _ = driver.calc_lasthalf()
        assert not np.allclose(a1, a2)

    def test_firsthalf_twice_rejected(self, driver, rng):
        write_particles(driver, rng)
        driver.calc_firsthalf(0.0, np.array([0]))
        with pytest.raises(GrapeError):
            driver.calc_firsthalf(0.0, np.array([1]))

    def test_lasthalf_without_firsthalf(self, driver, rng):
        write_particles(driver, rng)
        with pytest.raises(GrapeError):
            driver.calc_lasthalf()

    def test_unknown_i_key(self, driver, rng):
        write_particles(driver, rng)
        with pytest.raises(GrapeError):
            driver.calc_firsthalf(0.0, np.array([999]))

    def test_empty_block_rejected(self, driver, rng):
        write_particles(driver, rng)
        with pytest.raises(ConfigurationError):
            driver.calc_firsthalf(0.0, np.array([], dtype=int))

    def test_no_j_particles(self, driver):
        with pytest.raises(GrapeError):
            driver.calc_firsthalf(0.0, np.array([0]))


class TestWireTrace:
    def test_trace_captures_decodable_frames(self, rng):
        from repro.grape.protocol import Command, FrameCodec, decode_frame

        machine = Grape6Machine(Grape6Config.single_board(), eps=0.01, mode="flat")
        d = Grape6Driver(machine, trace_wire=True)
        d.open()
        pos, vel, mass = write_particles(d, rng, n=6)
        d.calc_firsthalf(0.0, np.arange(6))
        acc, jerk = d.calc_lasthalf()

        # 6 SET_J + SET_TI + CALC + RESULT frames
        assert len(d.wire_log) == 9
        assert d.wire_bytes_total == sum(len(b) for b in d.wire_log)
        codec = FrameCodec()
        kinds = []
        for raw in d.wire_log:
            frame, consumed = decode_frame(raw)
            assert consumed == len(raw)
            kinds.append(frame.command)
        assert kinds.count(Command.SET_J) == 6
        assert kinds[-1] is Command.RESULT
        a2, j2 = codec.decode_result(decode_frame(d.wire_log[-1])[0])
        assert np.array_equal(a2, acc)
        assert np.array_equal(j2, jerk)

    def test_no_trace_by_default(self, driver, rng):
        write_particles(driver, rng, n=3)
        driver.calc_firsthalf(0.0, np.arange(3))
        driver.calc_lasthalf()
        assert driver.wire_log == []


class TestCounters:
    def test_counters_accumulate(self, driver, rng):
        write_particles(driver, rng, n=10)
        driver.calc_firsthalf(0.0, np.arange(10))
        driver.calc_lasthalf()
        c = driver.read_counters()
        assert c["blocks"] == 1
        assert c["interactions"] == 100
        assert c["achieved_flops"] > 0
