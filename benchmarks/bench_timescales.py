"""TIMESCALE — the §3 premise: timescales span many orders of magnitude.

Paper: orbital periods ~100 years vs close-encounter timescales of "a
few hours" — six orders of magnitude, the fact that rules out shared
timesteps and tree codes and motivates the whole GRAPE approach.

Two reproductions:

* analytic, from the paper's own numbers — the orbital period at the
  ring against the two-body timescale of a *contact-scale* encounter
  between the smallest planetesimals (~100-km bodies): that is where
  "a few hours" comes from, and the ratio recovers ~1e6;
* measured, on the scaled disk — the live timestep range and the
  closest-approach statistics over a run, which shrink toward the
  paper's regime as the disk gets more packed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HostDirectBackend
from repro.core.encounters import encounter_timescale, measure_timescales
from repro.perf import Table, run_scaled_disk
from repro.units import code_to_years, orbital_period

from bench_utils import emit, fresh


@pytest.mark.benchmark(group="timescale")
def test_paper_scale_analytic(benchmark):
    """The six-orders claim from the paper's own parameters."""
    fresh("timescales_paper")

    from repro.constants import (
        PAPER_MASS_LO,
        PAPER_PROTOPLANET_MASS,
        PAPER_RING_INNER_AU,
        PAPER_SOFTENING_AU,
    )
    from repro.planetesimal import radius_from_mass

    def run():
        p_orbit = float(orbital_period(PAPER_RING_INNER_AU))
        # contact encounter between two smallest (~100 km) planetesimals:
        # the unsoftened timescale the integrator would otherwise face
        d_contact = 2.0 * float(radius_from_mass(PAPER_MASS_LO))
        t_contact = float(encounter_timescale(d_contact, 2 * PAPER_MASS_LO))
        # softened protoplanet encounter: the actual shortest timescale
        # of the paper's (softened) production run
        t_soft = float(
            encounter_timescale(PAPER_SOFTENING_AU, PAPER_PROTOPLANET_MASS)
        )
        return p_orbit, t_contact, t_soft

    p_orbit, t_contact, t_soft = benchmark.pedantic(run, rounds=1, iterations=1)

    hours = lambda t: float(code_to_years(t)) * 365.25 * 24.0
    table = Table(
        ["quantity", "paper", "computed"],
        title="TIMESCALE: the six-orders claim from the paper's numbers",
    )
    table.add_row("orbital period @15 AU", "~100 yr", f"{float(code_to_years(p_orbit)):.0f} yr")
    table.add_row("contact-encounter timescale", "a few hours", f"{hours(t_contact):.1f} h")
    table.add_row("dynamic range (unsoftened)", "~1e6", f"{p_orbit / t_contact:.2g}")
    table.add_row("softened protoplanet encounter", "n/a", f"{hours(t_soft) / 24:.1f} d")
    table.add_row("dynamic range (softened run)", "n/a", f"{p_orbit / t_soft:.2g}")
    emit(table, "timescales_paper")

    # "a few hours" and "six orders of magnitude", recovered
    assert 0.2 < hours(t_contact) < 10.0
    assert 1e5 < p_orbit / t_contact < 1e7
    # the softening bounds the production run's range to a manageable ~1e3
    assert 1e2 < p_orbit / t_soft < 1e4


@pytest.mark.benchmark(group="timescale")
def test_timescale_range_measured(benchmark):
    fresh("timescales")

    def run():
        rows = []
        for n in (100, 900):
            res = run_scaled_disk(
                HostDirectBackend(eps=0.008), n=n, t_end=40.0, seed=19,
                dt_max=16.0, measure_energy=False,
            )
            census = measure_timescales(res.sim.system)
            rows.append((res.n, census))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["N", "orbit P(15 AU)", "min t_enc", "physical range",
         "dt range (live)", "closest approach [AU]"],
        title="TIMESCALE: dynamic range of the scaled disk",
    )
    for n, c in rows:
        table.add_row(
            n, round(c.orbital_period, 1), f"{c.t_encounter_min:.3g}",
            f"{c.physical_dynamic_range:.3g}", f"{c.dt_dynamic_range:.3g}",
            f"{c.closest_approach:.4f}",
        )
    emit(table, "timescales")

    # a real timescale spread exists even at laptop scale...
    assert all(c.physical_dynamic_range > 3.0 for _, c in rows)
    assert all(c.dt_dynamic_range >= 2.0 for _, c in rows)
    # ...and the denser disk has closer encounters
    assert rows[-1][1].closest_approach < rows[0][1].closest_approach
