"""PERF-TFLOPS / PERF-WALL — the paper's headline numbers (Section 6).

Paper: 29.5 Tflops sustained on a 63.4 Tflops machine (46.5% of peak),
~1.1e18 operations, ~10 hours of wall-clock for 1.8 M particles.

Method (three mutually checking views):

1. **Plausible-block sweep** — price the paper's N on the GRAPE-6
   timing model for mean block sizes bracketing what production
   planetesimal runs schedule (1e3..1e4 of 1.8e6 particles).  The
   paper's 29.5 Tflops must fall inside the swept band.
2. **Implied block size** — invert the model: which mean block size
   reproduces exactly 29.5 Tflops?  It must be dynamically plausible.
3. **Scaled-run histogram (upper bracket)** — measure the actual
   block-size distribution of the scaled disk and price its scaled-up
   version.  The scaled disk is dynamically quieter than the production
   system (its timestep hierarchy is shallower), so this estimate is an
   *upper* bound on the sustained speed — asserted as such.
"""

from __future__ import annotations

import pytest

from repro.constants import (
    FLOPS_PER_INTERACTION,
    PAPER_ACHIEVED_TFLOPS,
    PAPER_N_PLANETESIMALS,
    PAPER_PEAK_TFLOPS,
    PAPER_TOTAL_BLOCK_STEPS,
    PAPER_WALL_CLOCK_HOURS,
)
from repro.grape import Grape6Backend, Grape6Config, Grape6Machine
from repro.perf import (
    Table,
    extrapolate_from_histogram,
    extrapolate_sustained,
    run_scaled_disk,
)

from bench_utils import emit, fresh

N_PAPER = PAPER_N_PLANETESIMALS + 2
SWEEP_BLOCKS = (300, 1000, 3000, 10_000, 30_000)


def implied_block_size(target_tflops: float) -> int:
    """Mean block at which the model sustains ``target_tflops``."""
    cfg = Grape6Config.paper_full_system()
    lo, hi = 1, N_PAPER
    for _ in range(60):
        mid = (lo + hi) // 2
        if extrapolate_sustained(cfg, N_PAPER, mid).sustained_tflops < target_tflops:
            lo = mid + 1
        else:
            hi = mid
        if lo >= hi:
            break
    return lo


@pytest.mark.benchmark(group="perf")
def test_perf_tflops_reproduction(benchmark):
    fresh("perf_tflops")
    cfg = Grape6Config.paper_full_system()

    def run():
        sweep = [
            (b, extrapolate_sustained(cfg, N_PAPER, b)) for b in SWEEP_BLOCKS
        ]
        implied = implied_block_size(PAPER_ACHIEVED_TFLOPS)

        machine = Grape6Machine(cfg, eps=0.008, mode="flat")
        backend = Grape6Backend(machine)
        res = run_scaled_disk(backend, n=1000, t_end=40.0, seed=3, dt_max=16.0)
        hist = res.sim.scheduler.stats.size_counts
        upper = extrapolate_from_histogram(cfg, N_PAPER, hist, n_measured=res.n)
        return sweep, implied, res, upper

    sweep, implied, res, upper = benchmark.pedantic(run, rounds=1, iterations=1)

    est_mid = dict(sweep)[3000]
    wall_hours_mid = (
        PAPER_TOTAL_BLOCK_STEPS / est_mid.mean_block
    ) * est_mid.step_seconds / 3600.0

    table = Table(
        ["quantity", "paper", "model (this repro)"],
        title="PERF-TFLOPS: sustained speed of the 2048-chip GRAPE-6",
    )
    table.add_row("peak Tflops", PAPER_PEAK_TFLOPS, round(cfg.peak_flops / 1e12, 1))
    table.add_row("sustained Tflops (block=3000)", PAPER_ACHIEVED_TFLOPS,
                  round(est_mid.sustained_tflops, 1))
    table.add_row("efficiency (block=3000)",
                  f"{PAPER_ACHIEVED_TFLOPS / PAPER_PEAK_TFLOPS:.1%}",
                  f"{est_mid.efficiency:.1%}")
    table.add_row("wall-clock hours (block=3000)", PAPER_WALL_CLOCK_HOURS,
                  round(wall_hours_mid, 1))
    table.add_row("total operations", "1.1e18",
                  f"{PAPER_TOTAL_BLOCK_STEPS * N_PAPER * FLOPS_PER_INTERACTION:.2g}")
    table.add_row("block implied by 29.5 Tflops", "n/a", implied)
    table.add_row("scaled-histogram upper bound [Tflops]", "n/a",
                  round(upper.sustained_tflops, 1))
    table.add_row("scaled-run energy error", "n/a", res.energy_error)
    emit(table, "perf_tflops")

    table2 = Table(
        ["mean block", "sustained Tflops", "efficiency", "step [ms]"],
        title="PERF-TFLOPS: plausible-block sweep (N = 1.8e6)",
    )
    for b, est in sweep:
        table2.add_row(b, round(est.sustained_tflops, 1), f"{est.efficiency:.1%}",
                       round(est.step_seconds * 1e3, 2))
    emit(table2, "perf_tflops")

    b = est_mid.breakdown
    table3 = Table(
        ["component", "ms per block (block=3000)"],
        title="PERF-TFLOPS: modelled per-block critical path",
    )
    for key in ("host", "pci", "lvds", "pipe", "gbe"):
        table3.add_row(key, round(b[key] * 1e3, 3))
    emit(table3, "perf_tflops")

    # --- shape assertions -------------------------------------------------
    # peak matches the paper's 63.4 Tflops
    assert cfg.peak_flops / 1e12 == pytest.approx(63.4, rel=0.02)
    # the paper's sustained speed lies inside the swept band
    speeds = [est.sustained_tflops for _, est in sweep]
    assert speeds[0] < PAPER_ACHIEVED_TFLOPS < speeds[-1]
    # the block size the model needs for exactly 29.5 Tflops is a
    # dynamically plausible production value (hundreds..tens of thousands)
    assert 100 < implied < 100_000
    # the quiet scaled disk prices out *above* the paper (upper bracket)
    assert upper.sustained_tflops > PAPER_ACHIEVED_TFLOPS
    assert upper.sustained_tflops < PAPER_PEAK_TFLOPS
    # wall-clock of the mid sweep point is the paper's order of magnitude
    assert 1.0 < wall_hours_mid < 100.0
    # the scaled run itself must be a valid integration
    assert res.energy_error < 1e-6


@pytest.mark.benchmark(group="perf")
def test_perf_efficiency_vs_block_size(benchmark):
    """Efficiency as a function of block size: why sustained/peak is
    ~46% and not ~100% (Section 4.2's design constraint)."""
    fresh("perf_efficiency_curve")

    from repro.grape import Grape6TimingModel

    def run():
        model = Grape6TimingModel(Grape6Config.paper_full_system())
        return [(b, model.efficiency(b, N_PAPER)) for b in (10, 100, 1000, 10_000, 100_000)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["block size", "modelled efficiency"],
        title="PERF: efficiency vs active-block size (N = 1.8e6)",
    )
    for b, eff in rows:
        table.add_row(b, f"{eff:.1%}")
    emit(table, "perf_efficiency_curve")

    effs = [e for _, e in rows]
    assert all(e2 > e1 for e1, e2 in zip(effs, effs[1:]))
    assert effs[0] < 0.1  # tiny blocks waste the machine
    assert effs[-1] > 0.5  # huge blocks approach peak
