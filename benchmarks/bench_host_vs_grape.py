"""HOST-VS-GRAPE — the division-of-labour premise (Section 4.1/4.3).

"The important advantage of GRAPE architecture is that the speed of
communication between the host and GRAPE and the speed of calculation
of the host computer need not to be very high compared to the speed of
GRAPE hardware.  The reason is simply that GRAPE performs O(N)
operation per particle per timestep, while the host performs O(1)."

Measured:
* modelled run time of the same scaled workload on (a) an era host CPU
  doing everything and (b) host + GRAPE-6, across N — the GRAPE
  advantage grows linearly with N;
* the host-work and communication share of the GRAPE step stays a
  small, N-insensitive fraction (the architectural point).
"""

from __future__ import annotations

import pytest

from repro.baselines import HostOnlyBackend
from repro.constants import PAPER_N_PLANETESIMALS
from repro.grape import Grape6Config, Grape6TimingModel
from repro.perf import Table, run_scaled_disk

from bench_utils import emit, fresh


@pytest.mark.benchmark(group="hostgrape")
def test_host_vs_grape_speedup(benchmark):
    fresh("host_vs_grape")

    def run():
        rows = []
        cfg = Grape6Config.single_node()  # 1 host + 4 boards: fair vs 1 host
        model = Grape6TimingModel(cfg)
        for n in (256, 512, 1024):
            backend = HostOnlyBackend(eps=0.008, host_flops=4e8)
            res = run_scaled_disk(backend, n=n, t_end=5.0, seed=31,
                                  measure_energy=False)
            host_seconds = backend.modelled_seconds
            # price the identical block sequence on the GRAPE node
            grape_seconds = sum(
                count * model.block_step(size, res.n).total
                for size, count in res.sim.scheduler.stats.size_counts.items()
            )
            rows.append((res.n, host_seconds, grape_seconds,
                         host_seconds / grape_seconds))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["N", "era-host seconds", "host+GRAPE seconds", "speed-up"],
        title="HOST-VS-GRAPE: same workload, modelled era hardware",
    )
    for n, th, tg, sp in rows:
        table.add_row(n, round(th, 3), round(tg, 4), round(sp, 1))
    emit(table, "host_vs_grape")

    speedups = [r[3] for r in rows]
    # GRAPE wins at every N here and the advantage grows with N
    assert all(s > 1 for s in speedups)
    assert speedups[-1] > speedups[0]


@pytest.mark.benchmark(group="hostgrape")
def test_host_share_shrinks_with_n(benchmark):
    """O(1) host work vs O(N) pipeline work per particle step: the host
    share of the critical path falls as N grows, which is what lets a
    PC host drive a 63-Tflops machine."""
    fresh("host_share")

    def run():
        model = Grape6TimingModel(Grape6Config.paper_full_system())
        rows = []
        for n in (10_000, 100_000, PAPER_N_PLANETESIMALS + 2):
            block = max(10, n // 600)  # measured-scale block fraction
            step = model.block_step(block, n)
            rows.append(
                (n, block, step.host / step.total,
                 (step.pci + step.lvds + step.gbe) / step.total,
                 step.pipe / step.total)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["N", "block", "host share", "comm share", "pipeline share"],
        title="HOST-VS-GRAPE: critical-path composition vs N",
    )
    for n, b, hs, cs, ps in rows:
        table.add_row(n, b, f"{hs:.1%}", f"{cs:.1%}", f"{ps:.1%}")
    emit(table, "host_share")

    host_shares = [r[2] for r in rows]
    pipe_shares = [r[4] for r in rows]
    assert host_shares[-1] < host_shares[0]
    assert pipe_shares[-1] > pipe_shares[0]
    # at paper scale the pipelines dominate (GRAPE is the engine)
    assert pipe_shares[-1] > 0.5
