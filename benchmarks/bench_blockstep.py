"""BLOCK-PAR — block-size statistics vs N (paper Section 4.2).

Paper: "Even with the blockstep method, the average number of particles
which can be integrated in parallel might be as few as one hundred or
less, even for N = 1e5 or larger."  This is the fact that forced the
entire parallel-pipeline design (48 i-particles per chip, i-parallelism
across clusters).

We measure the block-size distribution of the scaled disk across N and
confirm (a) mean blocks are a small fraction of N, and (b) the fraction
is roughly N-independent, which justifies the extrapolation used in
PERF-TFLOPS.
"""

from __future__ import annotations

import pytest

from repro.core import HostDirectBackend
from repro.perf import Table, run_scaled_disk

from bench_utils import emit, fresh

SIZES = (125, 250, 500, 1000)


@pytest.mark.benchmark(group="blockstep")
def test_block_size_distribution_vs_n(benchmark):
    fresh("blockstep")

    def run():
        rows = []
        for n in SIZES:
            # dt_max = 16 leaves the Aarseth criterion unclipped so the
            # block structure reflects the physical timescale hierarchy
            res = run_scaled_disk(
                HostDirectBackend(eps=0.008), n=n, t_end=20.0, seed=5,
                dt_max=16.0, measure_energy=False,
            )
            stats = res.sim.scheduler.stats
            rows.append(
                (res.n, stats.mean_block, stats.median_block(),
                 stats.min_block, stats.max_block, res.block_fraction)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["N", "mean block", "median", "min", "max", "mean/N"],
        title="BLOCK-PAR: active-block statistics of the scaled disk",
    )
    for n, mean, med, mn, mx, frac in rows:
        table.add_row(n, round(mean, 1), med, mn, mx, round(frac, 4))
    emit(table, "blockstep")

    fracs = [r[5] for r in rows]
    # blocks never contain the whole system...
    assert all(f < 0.9 for f in fracs)
    # ...and the fraction is roughly scale-free (within 3x across 8x in N),
    # which is what lets PERF-TFLOPS transfer it to the paper's N
    assert max(fracs) / min(fracs) < 3.0
    # mean block grows with N (more parallelism at larger N)
    means = [r[1] for r in rows]
    assert means[-1] > means[0]
    # the fragmentation tail exists: some blocks are tiny (the paper's
    # "as few as one hundred or less" concern)
    assert min(r[3] for r in rows) <= 10


@pytest.mark.benchmark(group="blockstep")
def test_cold_disk_fragments_block_structure(benchmark):
    """A dynamically *cold* disk suffers the most close encounters
    (shear-dominated encounters with strong gravitational focusing), so
    its timestep range is the widest and its block structure the most
    fragmented — the regime the paper says demands individual
    timesteps."""
    fresh("blockstep_stirring")

    def run():
        out = []
        for e_rms in (0.0, 0.02, 0.08):
            res = run_scaled_disk(
                HostDirectBackend(eps=0.008), n=400, t_end=10.0, seed=9,
                e_rms=e_rms, dt_max=16.0, measure_energy=False,
            )
            levels = len(res.sim.scheduler.stats.size_counts)
            out.append((e_rms, res.sim.scheduler.stats.mean_block, levels,
                        res.block_steps))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["initial e_rms", "mean block", "distinct block sizes", "block steps"],
        title="BLOCK-PAR: velocity state vs block structure (cold = focused encounters)",
    )
    for e_rms, mean, levels, blocks in out:
        table.add_row(e_rms, round(mean, 1), levels, blocks)
    emit(table, "blockstep_stirring")

    # every configuration populates multiple block levels
    assert all(levels >= 2 for _, _, levels, _ in out)
    # the cold disk needs at least as many block steps as the hottest
    assert out[0][3] >= out[-1][3]
