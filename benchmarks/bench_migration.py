"""MIGRATE (extension) — planetesimal-driven migration of a protoplanet.

Not a table in the paper, but the headline *consequence* of its setup:
scattering planetesimals exchanges momentum with the protoplanet, so
its own orbit drifts (Fernández & Ip 1984) — the mechanism behind
Neptune's outward migration, which the paper's production runs were
built to study.  Measured here: the protoplanet's semi-major-axis
drift scales with the mass of the disk it scatters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HostDirectBackend, KeplerField, Simulation, TimestepParams
from repro.perf import Table
from repro.planetesimal import (
    MigrationTracker,
    PlanetesimalDiskConfig,
    Protoplanet,
    build_disk_system,
)

from bench_utils import emit, fresh


def run_migration(disk_mass: float, n: int = 200, t_end: float = 1000.0, seed: int = 61):
    proto = Protoplanet(mass=3e-4, radius_au=25.0, phase=0.0)
    config = PlanetesimalDiskConfig(
        n_planetesimals=n, r_inner=22.0, r_outer=28.0, e_rms=0.01,
        protoplanets=[proto], seed=seed, total_mass=disk_mass,
    )
    system = build_disk_system(config)
    key = int(system.key[n])
    sim = Simulation(
        system, HostDirectBackend(eps=0.05),
        external_field=KeplerField(),
        timestep_params=TimestepParams(eta=0.03, dt_max=2.0),
    )
    sim.initialize()
    tracker = MigrationTracker([key])
    tracker.sample(sim)
    for t in np.linspace(t_end / 4, t_end, 4):
        sim.evolve(float(t))
        tracker.sample(sim)
    return tracker.record(key)


@pytest.mark.benchmark(group="migration")
def test_migration_scales_with_disk_mass(benchmark):
    fresh("migration")

    def run():
        rows = []
        for disk_mass in (1e-6, 1e-4, 5e-4):
            rec = run_migration(disk_mass)
            rows.append((disk_mass, rec))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["disk mass [Msun]", "a_initial", "a_final", "|da| [AU]",
         "rate [AU/1000 units]"],
        title="MIGRATE: protoplanet drift vs disk mass (m_p = 3e-4, T = 1000)",
    )
    for disk_mass, rec in rows:
        table.add_row(
            disk_mass, round(rec.a_initial, 4), round(rec.a_final, 4),
            f"{abs(rec.da):.2e}", f"{rec.rate * 1000:.2e}",
        )
    emit(table, "migration")

    drifts = [abs(rec.da) for _, rec in rows]
    # a featherweight disk produces essentially no migration...
    assert drifts[0] < 1e-3
    # ...a massive disk produces a measurable drift...
    assert drifts[-1] > 1e-4
    # ...and the drift grows with the scattered mass
    assert drifts[-1] > 10 * drifts[0]
