"""Ablations of the design choices DESIGN.md calls out.

* ABL-SOFT — the paper's softening claim (Section 2): eps = 0.008 AU is
  "two orders of magnitude smaller than the Hill radius of the
  protoplanets and therefore the effect on the scattering cross section
  is negligible."  Measured: protoplanet-driven stirring of nearby
  planetesimals vs eps.
* ABL-PRECISION — the GRAPE-6 pipelines are not IEEE double (short
  internal mantissas, wide accumulators).  Measured: per-force relative
  error of the emulated format and the energy drift of a full run on
  the reduced-precision machine.
* ABL-PIPES — why 6 pipelines x 8 virtual: chip efficiency vs i-block
  size for alternative VMP choices.
* ABL-STIR — measured disk self-stirring vs the analytic relaxation
  model of :mod:`repro.planetesimal.stirring`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HostDirectBackend, KeplerField, Simulation, TimestepParams
from repro.grape import Grape6Backend, Grape6Config, Grape6Machine
from repro.perf import Table, run_scaled_disk
from repro.planetesimal import (
    PlanetesimalDiskConfig,
    StirringModel,
    build_disk_system,
    rms_eccentricity_inclination,
)

from bench_utils import emit, fresh


@pytest.mark.benchmark(group="ablation")
def test_softening_does_not_change_scattering(benchmark):
    """ABL-SOFT: stirring by the protoplanets is eps-insensitive while
    eps stays well below the Hill radius, and collapses once eps
    approaches it."""
    fresh("ablation_softening")

    from repro.planetesimal import cartesian_to_elements

    def run():
        rows = []
        for eps in (0.004, 0.008, 0.016, 0.3):
            res = run_scaled_disk(
                HostDirectBackend(eps=eps), n=300, t_end=300.0, seed=41,
                e_rms=0.001, dt_max=4.0, measure_energy=False,
            )
            sys_ = res.sim.system
            el = cartesian_to_elements(sys_.pos[:300], sys_.vel[:300])
            near = (np.abs(el.a - 20.0) < 1.5) | (np.abs(el.a - 30.0) < 2.0)
            ok = el.e < 1.0
            e_near = float(np.sqrt(np.mean(el.e[near & ok] ** 2)))
            rows.append((eps, e_near))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["eps [AU]", "e_rms near protoplanets (T=300)"],
        title="ABL-SOFT: softening vs protoplanet stirring (r_H ~ 0.3-0.45 AU)",
    )
    for eps, e in rows:
        table.add_row(eps, round(e, 5))
    emit(table, "ablation_softening")

    by_eps = dict(rows)
    # halving/doubling around the paper's 0.008 barely matters (the
    # paper's "effect on the scattering cross section is negligible")
    assert by_eps[0.004] == pytest.approx(by_eps[0.016], rel=0.25)
    assert by_eps[0.008] == pytest.approx(by_eps[0.004], rel=0.25)
    # softening at the Hill-radius scale *does* suppress stirring
    assert by_eps[0.3] < 0.7 * by_eps[0.008]


@pytest.mark.benchmark(group="ablation")
def test_pipeline_precision_emulation(benchmark):
    """ABL-PRECISION: the short-mantissa pipeline datapath costs ~1e-4
    per-force relative error and the integration stays usable."""
    fresh("ablation_precision")

    def run():
        from repro.core.forces import acc_jerk
        from repro.grape.pipeline import ForcePipelineArray

        rng = np.random.default_rng(5)
        pos = rng.normal(size=(200, 3)) * 10 + 25
        vel = rng.normal(size=(200, 3)) * 0.1
        mass = rng.uniform(1e-10, 1e-8, 200)
        a_ref, _ = acc_jerk(pos[:20], vel[:20], pos, vel, mass, 0.008)
        emul = ForcePipelineArray(eps=0.008, emulate_precision=True)
        r = emul.evaluate(pos[:20], vel[:20], pos, vel, mass)
        force_err = float(np.median(
            np.linalg.norm(r.acc - a_ref, axis=1) / np.linalg.norm(a_ref, axis=1)
        ))

        # full run on the reduced-precision machine
        sys_ = build_disk_system(PlanetesimalDiskConfig(n_planetesimals=100, seed=8))
        machine = Grape6Machine(
            Grape6Config.single_node(), eps=0.008, mode="hierarchy",
            emulate_precision=True,
        )
        sim = Simulation(
            sys_, Grape6Backend(machine),
            external_field=KeplerField(),
            timestep_params=TimestepParams(),
        )
        from repro.core import energy

        sim.initialize()
        e0 = energy(sim.system, 0.008, sim.external_field).total
        sim.evolve(10.0)
        sim.synchronize(10.0)
        e1 = energy(sim.system, 0.008, sim.external_field).total
        run_err = abs(e1 - e0) / abs(e0)
        return force_err, run_err

    force_err, run_err = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["quantity", "value"],
        title="ABL-PRECISION: 16-bit-mantissa pipeline emulation",
    )
    table.add_row("median per-force relative error", f"{force_err:.2e}")
    table.add_row("energy error, T=10 disk run", f"{run_err:.2e}")
    emit(table, "ablation_precision")

    # the hardware design point: per-force error ~1e-4..1e-5 is fine
    assert 1e-7 < force_err < 1e-3
    # and the integration is still usable for statistical dynamics
    assert run_err < 1e-4


@pytest.mark.benchmark(group="ablation")
def test_virtual_pipeline_tradeoff(benchmark):
    """ABL-PIPES: chip utilisation vs block size for VMP alternatives.

    Fewer virtual pipelines waste the chip on small blocks less but
    demand proportionally more j-memory bandwidth (modelled as cycles
    per fetched j); GRAPE-6's 6 x 8 = 48 is the balanced point for
    paper-scale blocks.
    """
    fresh("ablation_vmp")

    import repro.grape.pipeline as pl

    def run():
        rows = []
        for vmp in (2, 8, 16):
            old = pl.VMP_FACTOR
            pl.VMP_FACTOR = vmp
            try:
                arr = pl.ForcePipelineArray(n_pipelines=6, eps=0.0)
                effs = []
                for block in (12, 48, 384):
                    n_j = 3516  # paper-scale per-chip j-load
                    cycles = arr.cycles_for(block, n_j)
                    # useful interactions vs cycles x 6 pipes
                    effs.append(block * n_j / (cycles * 6))
                rows.append((vmp, 6 * vmp, *effs))
            finally:
                pl.VMP_FACTOR = old
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["VMP", "i-capacity", "util @block=12", "util @block=48", "util @block=384"],
        title="ABL-PIPES: chip utilisation vs virtual-pipeline factor",
    )
    for vmp, cap, *effs in rows:
        table.add_row(vmp, cap, *(f"{e:.1%}" for e in effs))
    emit(table, "ablation_vmp")

    by_vmp = {r[0]: r[2:] for r in rows}
    # tiny blocks favour small VMP (less padding waste)
    assert by_vmp[2][0] > by_vmp[16][0]
    # large blocks are insensitive (all near full utilisation)
    assert by_vmp[2][2] == pytest.approx(by_vmp[16][2], rel=0.1)


@pytest.mark.benchmark(group="ablation")
def test_overlap_software_pipelining(benchmark):
    """ABL-OVERLAP: overlapping host work with the next force pass.

    Production GRAPE drivers software-pipeline the block loop; the
    model shows how much of the gap between our conservative serial
    estimate and the hardware's potential that recovers, and that the
    gain is largest exactly where blocks are small (host-bound)."""
    fresh("ablation_overlap")

    from repro.constants import PAPER_N_PLANETESIMALS
    from repro.grape import Grape6TimingModel

    def run():
        model = Grape6TimingModel(Grape6Config.paper_full_system())
        n = PAPER_N_PLANETESIMALS + 2
        rows = []
        for block in (100, 1000, 3000, 10_000):
            serial = model.efficiency(block, n, overlap=False)
            piped = model.efficiency(block, n, overlap=True)
            rows.append((block, serial, piped))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["block", "efficiency (serial)", "efficiency (pipelined)", "gain"],
        title="ABL-OVERLAP: software pipelining of the block loop (N = 1.8e6)",
    )
    for block, s, p in rows:
        table.add_row(block, f"{s:.1%}", f"{p:.1%}", f"{p / s:.2f}x")
    emit(table, "ablation_overlap")

    # pipelining never hurts and gives a measurable gain everywhere
    assert all(p > s for _, s, p in rows)
    gains = [p / s for _, s, p in rows]
    assert max(gains) > 1.08
    # the relative gain is largest for the host-bound small blocks
    assert gains[0] == max(gains)


@pytest.mark.benchmark(group="ablation")
def test_stirring_theory_vs_simulation(benchmark):
    """ABL-STIR: measured disk self-stirring vs two-body relaxation."""
    fresh("ablation_stirring")

    def run():
        n = 300
        res = run_scaled_disk(
            HostDirectBackend(eps=0.008), n=n, t_end=400.0, seed=55,
            e_rms=0.002, protoplanets=[], dt_max=8.0, measure_energy=False,
        )
        sys_ = res.sim.system
        e_meas, i_meas = rms_eccentricity_inclination(sys_.pos, sys_.vel)
        area = np.pi * (35.0**2 - 15.0**2)
        sigma = sys_.mass.sum() / area
        m_eff = float((sys_.mass**2).sum() / sys_.mass.sum())
        model = StirringModel(surface_density=sigma, particle_mass=m_eff, a=25.0)
        e_pred = float(model.evolve_e_rms(0.002, np.array([400.0]))[0])
        return e_meas, i_meas, e_pred

    e_meas, i_meas, e_pred = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["quantity", "value"],
        title="ABL-STIR: self-stirring, simulation vs relaxation theory",
    )
    table.add_row("measured e_rms(T=400)", round(e_meas, 5))
    table.add_row("measured i_rms(T=400)", round(i_meas, 5))
    table.add_row("theory e_rms(T=400)", round(e_pred, 5))
    table.add_row("ratio sim/theory", round(e_meas / e_pred, 2))
    table.add_row("e/i ratio", round(e_meas / i_meas, 2))
    emit(table, "ablation_stirring")

    # stirring happened, is order-of-magnitude consistent with theory,
    # and the e/i ratio sits near the ~2 equilibrium
    assert e_meas > 0.003
    assert 0.1 < e_meas / e_pred < 10.0
    assert 1.2 < e_meas / i_meas < 4.0
