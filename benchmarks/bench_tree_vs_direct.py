"""TREE-VS-DIRECT — Section 3's algorithmic argument.

Paper: tree codes cut the per-step cost from O(N^2) to O(N log N), but
"it is very difficult to achieve high efficiency with these algorithms
when the timesteps of particles vary widely" — under block individual
timesteps the tree must be rebuilt every (small) block, destroying the
amortisation; and the force error of theta>0 walks is orders of
magnitude above what Hermite integration of close encounters needs.

Measured here, on the same scaled disk:
* force accuracy: tree (several theta) vs direct summation;
* work per *shared* step: tree interactions vs direct N^2 (tree wins);
* work under *block* steps: tree walk+rebuild vs direct on the active
  block only (direct wins — the paper's point).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import Octree, TreeBackend
from repro.core import HostDirectBackend
from repro.core.forces import acc_jerk
from repro.perf import Table, run_scaled_disk
from repro.planetesimal import PlanetesimalDiskConfig, build_disk_system

from bench_utils import emit, fresh


@pytest.mark.benchmark(group="tree")
def test_tree_force_accuracy(benchmark):
    fresh("tree_accuracy")

    sys_ = build_disk_system(PlanetesimalDiskConfig(n_planetesimals=2000, seed=13))
    n = sys_.n
    idx = np.arange(n)

    def run():
        a_direct, _ = acc_jerk(
            sys_.pos, sys_.vel, sys_.pos, sys_.vel, sys_.mass, 0.008,
            self_indices=idx,
        )
        rows = []
        for theta in (1.0, 0.5, 0.25):
            tree = Octree(sys_.pos, sys_.mass)
            a_tree, _ = tree.accelerations(
                sys_.pos, theta=theta, eps=0.008, exclude_self=idx
            )
            rel = np.linalg.norm(a_tree - a_direct, axis=1) / np.linalg.norm(
                a_direct, axis=1
            )
            rows.append(
                (theta, float(np.median(rel)), float(rel.max()),
                 tree.stats.total_interactions, n * n)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["theta", "median rel err", "max rel err", "tree interactions", "direct N^2"],
        title="TREE-VS-DIRECT: force accuracy and work per shared step",
    )
    for theta, med, mx, ti, nn in rows:
        table.add_row(theta, f"{med:.2e}", f"{mx:.2e}", ti, nn)
    emit(table, "tree_accuracy")

    meds = [r[1] for r in rows]
    works = [r[3] for r in rows]
    # smaller theta: better accuracy, more work
    assert meds[0] > meds[1] > meds[2]
    assert works[0] < works[1] < works[2]
    # per *shared* step the tree saves work at theta = 1.0
    assert works[0] < rows[0][4] / 2
    # but even theta=0.25 misses the ~1e-6 relative accuracy the
    # encounter-dominated Hermite scheme is run at
    assert meds[2] > 1e-6


@pytest.mark.benchmark(group="tree")
def test_tree_vs_direct_under_block_steps(benchmark):
    """The crossover the paper leans on: under individual timesteps the
    per-block rebuild makes the tree do O(N) work per block while the
    direct code does O(n_active x N) on hardware built exactly for it.

    Measured proxy: total interactions evaluated + trees rebuilt over
    the same physical integration span."""
    fresh("tree_vs_direct_blocks")

    def run():
        res_direct = run_scaled_disk(
            HostDirectBackend(eps=0.008), n=400, t_end=10.0, seed=17,
            measure_energy=True,
        )
        tree_backend = TreeBackend(eps=0.008, theta=0.5)
        res_tree = run_scaled_disk(
            tree_backend, n=400, t_end=10.0, seed=17, measure_energy=True,
        )
        return res_direct, tree_backend, res_tree

    res_direct, tree_backend, res_tree = benchmark.pedantic(run, rounds=1, iterations=1)

    n = res_direct.n
    direct_pairs = res_direct.interactions
    tree_walk = tree_backend.walk_interactions
    rebuild_cost = tree_backend.builds * n  # O(N log N) builds, N as proxy

    table = Table(
        ["quantity", "direct + block steps", "tree + block steps"],
        title="TREE-VS-DIRECT: same disk, same timestep structure",
    )
    table.add_row("block steps", res_direct.block_steps, res_tree.block_steps)
    table.add_row("pairwise interactions", direct_pairs, tree_walk)
    table.add_row("tree rebuilds", 0, tree_backend.builds)
    table.add_row("rebuild particle-loads", 0, rebuild_cost)
    table.add_row("energy error", res_direct.energy_error, res_tree.energy_error)
    table.add_row("python wall [s]", round(res_direct.wall_seconds, 2),
                  round(res_tree.wall_seconds, 2))
    emit(table, "tree_vs_direct_blocks")

    # The paper: "the actual gain in the calculation speed turned out to
    # be rather small" for tree + individual timesteps.  Quantified:
    # 1) the walk's arithmetic saving is modest (< 3.3x, vs the ~N/logN
    #    factor trees deliver in the shared-step regime)...
    assert tree_walk > 0.3 * direct_pairs
    # 2) ...every block pays a full O(N) rebuild on top...
    assert tree_backend.builds >= res_tree.block_steps
    assert rebuild_cost > 0
    # 3) ...the multipole error degrades energy conservation by orders
    #    of magnitude (the accuracy the paper's encounters demand)...
    assert res_tree.energy_error > 10 * res_direct.energy_error
    # 4) ...and end to end the direct code wins wall-clock in this
    #    regime (the irregular walk also being exactly what the GRAPE
    #    pipeline hardware cannot accelerate)
    assert res_direct.wall_seconds < res_tree.wall_seconds
