"""COMM-STRAT — host-parallelisation strategies (Section 4.3, Figs 3-7).

Reproduces the paper's architectural argument quantitatively:

* Figure 3 (naive copy): per-host communication does NOT shrink with p
  ("no better than a single host, as far as the communication bandwidth
  is concerned");
* Figures 4-5 (GRAPE data exchange via network boards): host NIC
  traffic eliminated;
* Figure 6 (2-D host matrix): per-host traffic scales as 1/sqrt(p);
* Figure 7 (the hybrid actually built): scales with p at 16 hosts.

Rows: per-host NIC bytes per block step and simulated step time over
each strategy's real topology, for p = 4 and 16 (the machine's size).
"""

from __future__ import annotations

import pytest

from repro.parallel import NaiveCopyStrategy, all_strategies
from repro.perf import Table

from bench_utils import emit, fresh

N_ACTIVE = 5000  # paper-scale block


@pytest.mark.benchmark(group="comm")
def test_strategy_comparison(benchmark):
    fresh("comm_strategies")

    def run():
        rows = []
        for p in (4, 16):
            for s in all_strategies(p):
                rows.append(
                    (p, s.name, s.host_nic_bytes_per_step(N_ACTIVE),
                     s.step(N_ACTIVE))
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["p", "strategy", "host NIC bytes/step", "sim step time [ms]"],
        title="COMM-STRAT: host parallelisation schemes (block = 5000)",
    )
    for p, name, nic, t in rows:
        table.add_row(p, name, int(nic), round(t * 1e3, 3))
    emit(table, "comm_strategies")

    by = {(p, name): (nic, t) for p, name, nic, t in rows}
    # Fig 3 claim: naive NIC volume does not shrink 4 -> 16 hosts
    assert by[(16, "naive-copy")][0] >= by[(4, "naive-copy")][0] * 0.9
    # Figs 4-5 claim: the NB exchange removes host NIC traffic
    assert by[(16, "grape-exchange")][0] < by[(16, "naive-copy")][0] / 100
    # Fig 6 claim: the 2-D grid beats naive at p=16
    assert by[(16, "host-2d-grid")][0] < by[(16, "naive-copy")][0] / 2
    # Fig 7: the hybrid (what GRAPE-6 built) also beats naive at p=16
    assert by[(16, "hybrid")][0] < by[(16, "naive-copy")][0] / 2


@pytest.mark.benchmark(group="comm")
def test_naive_copy_does_not_scale(benchmark):
    """The central negative result: naive per-host traffic vs p."""
    fresh("comm_naive_scaling")

    def run():
        return [
            (p, NaiveCopyStrategy(p).host_nic_bytes_per_step(N_ACTIVE),
             NaiveCopyStrategy(p).step(N_ACTIVE))
            for p in (2, 4, 8, 16, 32)
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["p", "host NIC bytes/step", "sim step time [ms]"],
        title="COMM-STRAT: naive copy (Fig 3) vs host count",
    )
    for p, nic, t in rows:
        table.add_row(p, int(nic), round(t * 1e3, 3))
    emit(table, "comm_naive_scaling")

    nic = [r[1] for r in rows]
    # traffic per host grows toward an O(n_active) asymptote — it never falls
    assert all(b >= a * 0.95 for a, b in zip(nic, nic[1:]))

    times = [r[2] for r in rows]
    # and simulated step time gets *worse* with more hosts (switch congestion)
    assert times[-1] >= times[0]


@pytest.mark.benchmark(group="comm")
def test_executed_data_movement(benchmark):
    """Beyond the analytic model: actually *run* distributed direct
    summation (ring = the Figs 4-5 exchange in software; 2-D grid =
    Fig 6) on the SPMD runtime and measure real bytes moved.

    The executed numbers confirm the model: ring per-rank traffic is
    O(N) independent of p; grid per-rank traffic falls with q."""
    import numpy as np

    from repro.parallel import grid_forces, ring_forces
    from repro.planetesimal import PlanetesimalDiskConfig, build_disk_system

    fresh("comm_executed")

    system = build_disk_system(
        PlanetesimalDiskConfig(n_planetesimals=240, seed=2, protoplanets=[])
    )
    pos, vel, mass = system.pos, system.vel, system.mass

    def run():
        rows = []
        for p in (2, 4, 8):
            r = ring_forces(pos, vel, mass, 0.008, n_ranks=p)
            rows.append(("ring", p, r.total_bytes, r.total_bytes / p, max(r.clock)))
        for q in (2, 4):
            g = grid_forces(pos, vel, mass, 0.008, q=q)
            rows.append(
                ("grid2d", q * q, g.total_bytes, g.total_bytes / (q * q), max(g.clock))
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["scheme", "ranks", "total bytes", "bytes/rank", "logical time [ms]"],
        title="COMM-STRAT: executed distributed summation (N = 240)",
    )
    for scheme, p, total, per, clock in rows:
        table.add_row(scheme, p, int(total), int(per), round(clock * 1e3, 3))
    emit(table, "comm_executed")

    ring = {p: per for scheme, p, _, per, _ in rows if scheme == "ring"}
    grid = {p: per for scheme, p, _, per, _ in rows if scheme == "grid2d"}
    # ring: per-rank bytes flat in p (within 2x across 4x in p)
    assert ring[8] == pytest.approx(ring[2], rel=1.0)
    # grid: per-rank bytes fall as the matrix grows
    assert grid[16] < grid[4]
