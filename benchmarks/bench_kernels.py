"""Kernel micro-benchmarks (statistical timing, pytest-benchmark).

Unlike the experiment benchmarks (single-shot workloads asserting the
paper's shapes), these time the library's hot kernels properly —
multiple rounds, statistics — so performance regressions in the
building blocks are visible across commits:

* direct force+jerk tile (the GRAPE pipeline arithmetic)
* predictor sweep
* Hermite corrector
* timestep quantisation
* octree build and walk
* block scheduling
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import Octree
from repro.core.forces import acc_jerk, acc_only
from repro.core.hermite import correct
from repro.core.predictor import predict_positions, predict_velocities
from repro.core.scheduler import BlockScheduler
from repro.core.timestep import TimestepParams, quantize

N_SRC = 2000
N_SINK = 128


@pytest.fixture(scope="module")
def bodies():
    rng = np.random.default_rng(0)
    pos = rng.normal(size=(N_SRC, 3)) * 10 + 25
    vel = rng.normal(size=(N_SRC, 3)) * 0.1
    mass = rng.uniform(1e-10, 1e-8, N_SRC)
    acc = rng.normal(size=(N_SRC, 3)) * 1e-3
    jerk = rng.normal(size=(N_SRC, 3)) * 1e-5
    return pos, vel, mass, acc, jerk


@pytest.mark.benchmark(group="kernels")
def test_kernel_acc_jerk_tile(benchmark, bodies):
    pos, vel, mass, _, _ = bodies
    idx = np.arange(N_SINK)
    result = benchmark(
        acc_jerk, pos[:N_SINK], vel[:N_SINK], pos, vel, mass, 0.008,
        self_indices=idx,
    )
    assert result[0].shape == (N_SINK, 3)


@pytest.mark.benchmark(group="kernels")
def test_kernel_acc_only_tile(benchmark, bodies):
    pos, vel, mass, _, _ = bodies
    result = benchmark(
        acc_only, pos[:N_SINK], pos, mass, 0.008,
        self_indices=np.arange(N_SINK),
    )
    assert result.shape == (N_SINK, 3)


@pytest.mark.benchmark(group="kernels")
def test_kernel_predictor(benchmark, bodies):
    pos, vel, _, acc, jerk = bodies
    dt = np.full(N_SRC, 0.125)

    def run():
        p = predict_positions(pos, vel, acc, jerk, dt)
        v = predict_velocities(vel, acc, jerk, dt)
        return p, v

    p, v = benchmark(run)
    assert p.shape == (N_SRC, 3)


@pytest.mark.benchmark(group="kernels")
def test_kernel_corrector(benchmark, bodies):
    pos, vel, _, acc, jerk = bodies
    n = N_SINK
    dt = np.full(n, 0.125)
    acc1 = acc[:n] * 1.01
    jerk1 = jerk[:n] * 1.01
    result = benchmark(
        correct, pos[:n], vel[:n], acc[:n], jerk[:n], acc1, jerk1, dt
    )
    assert result[0].shape == (n, 3)


@pytest.mark.benchmark(group="kernels")
def test_kernel_quantize(benchmark):
    rng = np.random.default_rng(1)
    params = TimestepParams(dt_max=1.0, dt_min=2.0**-20)
    desired = 10.0 ** rng.uniform(-6, 1, N_SRC)
    t_now = np.zeros(N_SRC)
    dt = benchmark(quantize, desired, t_now, None, params)
    assert dt.shape == (N_SRC,)


@pytest.mark.benchmark(group="kernels")
def test_kernel_scheduler(benchmark):
    rng = np.random.default_rng(2)
    t = np.zeros(N_SRC)
    dt = 2.0 ** rng.integers(-8, 0, N_SRC).astype(float)
    sched = BlockScheduler()
    t_next, active = benchmark(sched.next_block, t, dt)
    assert active.size >= 1


@pytest.mark.benchmark(group="kernels")
def test_kernel_tree_build(benchmark, bodies):
    pos, _, mass, _, _ = bodies
    tree = benchmark(Octree, pos, mass)
    assert tree.stats.n_nodes > 0


@pytest.mark.benchmark(group="kernels")
def test_kernel_tree_walk(benchmark, bodies):
    pos, _, mass, _, _ = bodies
    tree = Octree(pos, mass)
    acc, _ = benchmark(
        tree.accelerations, pos[:N_SINK], 0.6, 0.008,
    )
    assert acc.shape == (N_SINK, 3)
