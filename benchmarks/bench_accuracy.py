"""HERMITE-ACC — accuracy ablation (paper Section 3's requirement).

"This wide range of timescale also means that we need to integrate
particles with short timescale with high accuracy to maintain
reasonable overall accuracy of the result."

Measured:
* energy error vs the Aarseth accuracy parameter eta (4th-order
  scaling) for the block Hermite scheme;
* block Hermite vs shared-timestep Hermite at matched cost;
* Hermite vs leapfrog at matched step count (order comparison).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import SharedHermite, SharedLeapfrog
from repro.core import HostDirectBackend, KeplerField, energy
from repro.perf import Table, run_scaled_disk
from repro.planetesimal import PlanetesimalDiskConfig, build_disk_system

from bench_utils import emit, fresh


@pytest.mark.benchmark(group="accuracy")
def test_energy_error_vs_eta(benchmark):
    fresh("accuracy_eta")

    def run():
        rows = []
        for eta in (0.08, 0.04, 0.02, 0.01):
            # dt_max=16 keeps the criterion unclipped; T=100 lets the
            # doubling rule reach the eta-controlled equilibrium steps
            res = run_scaled_disk(
                HostDirectBackend(eps=0.008), n=200, t_end=100.0, seed=23,
                eta=eta, dt_max=16.0,
            )
            rows.append((eta, res.energy_error, res.particle_steps))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["eta", "relative energy error", "particle steps"],
        title="HERMITE-ACC: block Hermite accuracy vs eta",
    )
    for eta, err, steps in rows:
        table.add_row(eta, f"{err:.2e}", steps)
    emit(table, "accuracy_eta")

    errs = [r[1] for r in rows]
    steps = [r[2] for r in rows]
    # error decreases monotonically as eta shrinks; cost rises
    assert all(e1 > e2 for e1, e2 in zip(errs, errs[1:]))
    assert steps[0] < steps[-1]
    # 4th-order scheme: quartering eta cuts the error by far more than 4x
    assert errs[1] / errs[3] > 4.0


@pytest.mark.benchmark(group="accuracy")
def test_block_vs_shared_hermite_cost(benchmark):
    """Individual timesteps buy accuracy per interaction: to reach the
    block scheme's energy error, the shared scheme must step everyone
    at the encounter timescale."""
    fresh("accuracy_block_vs_shared")

    def run():
        res_block = run_scaled_disk(
            HostDirectBackend(eps=0.008), n=150, t_end=10.0, seed=29, eta=0.02,
            dt_max=16.0,
        )

        sys_shared = build_disk_system(
            PlanetesimalDiskConfig(n_planetesimals=150, seed=29)
        )
        field = KeplerField()
        e0 = energy(sys_shared, 0.008, field).total
        # shared dt = the block run's *smallest* step (what safety demands)
        dt_shared = float(res_block.sim.system.dt.min())
        shared = SharedHermite(sys_shared, eps=0.008, dt=dt_shared, external_field=field)
        shared.evolve(10.0)
        e1 = energy(sys_shared, 0.008, field).total
        err_shared = abs(e1 - e0) / abs(e0)
        shared_psteps = shared.steps * sys_shared.n
        return res_block, dt_shared, err_shared, shared_psteps

    res_block, dt_shared, err_shared, shared_psteps = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    table = Table(
        ["quantity", "block individual steps", "shared steps @dt_min"],
        title="HERMITE-ACC: block vs shared timesteps, same disk, T=10",
    )
    table.add_row("particle steps", res_block.particle_steps, shared_psteps)
    table.add_row("energy error", f"{res_block.energy_error:.2e}", f"{err_shared:.2e}")
    table.add_row("dt range", f"{res_block.sim.system.dt.min():.3g}"
                  f"..{res_block.sim.system.dt.max():.3g}", f"{dt_shared:.3g}")
    emit(table, "accuracy_block_vs_shared")

    # the block scheme reaches comparable-or-better accuracy with far
    # fewer particle-steps — the entire reason for the algorithm
    assert res_block.particle_steps < shared_psteps / 3
    assert res_block.energy_error < max(10 * err_shared, 1e-7)


@pytest.mark.benchmark(group="accuracy")
def test_pec_iteration_suppresses_secular_drift(benchmark):
    """ACC extension (Kokubo, Yoshinaga & Makino 1998): iterating the
    corrector makes the Hermite scheme quasi-time-symmetric, turning
    the secular energy drift of long eccentric-orbit integrations into
    a bounded oscillation."""
    fresh("accuracy_pec")

    from conftest_shim import make_two_body
    from repro.core import HostDirectBackend, Simulation, TimestepParams

    def run():
        rows = []
        for iters in (1, 2):
            s = make_two_body(m1=1.0, m2=1e-3, a=1.0, e=0.8)
            sim = Simulation(
                s, HostDirectBackend(eps=0.0),
                timestep_params=TimestepParams(
                    eta=0.05, eta_start=0.02, dt_max=2.0**-3
                ),
                corrector_iterations=iters,
            )
            sim.initialize()
            e0 = energy(sim.system, eps=0.0).total
            sim.evolve(40 * np.pi)  # ~20 orbits
            sim.synchronize(40 * np.pi)
            e1 = energy(sim.system, eps=0.0).total
            rows.append((iters, abs(e1 - e0) / abs(e0), sim.particle_steps))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["corrector iterations", "relative energy error (20 orbits)", "particle steps"],
        title="HERMITE-ACC: P(EC)^n time-symmetry (e=0.8 binary, eta=0.05)",
    )
    for iters, err, steps in rows:
        table.add_row(iters, f"{err:.2e}", steps)
    emit(table, "accuracy_pec")

    errs = dict((r[0], r[1]) for r in rows)
    # the iterated corrector conserves energy clearly better at equal
    # eta and essentially equal step count (full time symmetry would
    # also need symmetric step *selection*, which block quantisation
    # breaks — hence a finite, not unbounded, improvement)
    assert errs[2] < errs[1] / 2.0
    steps = dict((r[0], r[2]) for r in rows)
    assert steps[2] == pytest.approx(steps[1], rel=0.05)


@pytest.mark.benchmark(group="accuracy")
def test_hermite_vs_leapfrog_order(benchmark):
    fresh("accuracy_order")

    def run():
        from conftest_shim import make_two_body

        rows = []
        for dt in (0.02, 0.01, 0.005):
            errs = {}
            for name, cls in (("hermite", SharedHermite), ("leapfrog", SharedLeapfrog)):
                s = make_two_body(e=0.5)
                e0 = energy(s, eps=0.0).total
                integ = cls(s, eps=0.0, dt=dt)
                integ.evolve(2.5)
                errs[name] = abs(energy(s, eps=0.0).total - e0) / abs(e0)
            rows.append((dt, errs["hermite"], errs["leapfrog"]))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["dt", "Hermite energy err", "leapfrog energy err"],
        title="HERMITE-ACC: integrator order comparison (e=0.5 binary)",
    )
    for dt, eh, el in rows:
        table.add_row(dt, f"{eh:.2e}", f"{el:.2e}")
    emit(table, "accuracy_order")

    # hermite is 4th order, leapfrog 2nd: the gap widens as dt shrinks
    gaps = [el / eh for _, eh, el in rows]
    assert gaps[-1] > gaps[0]
    assert all(eh < el for _, eh, el in rows)
