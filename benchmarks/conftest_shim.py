"""Small factories shared by benchmarks (mirrors tests/conftest.py)."""

from __future__ import annotations

import numpy as np

from repro.core import ParticleSystem


def make_two_body(m1: float = 1.0, m2: float = 1e-3, a: float = 1.0, e: float = 0.0):
    """A bound two-body system at apocentre in its centre-of-mass frame."""
    mtot = m1 + m2
    r = a * (1.0 + e)
    v_rel = np.sqrt(mtot * (2.0 / r - 1.0 / a))
    pos = np.array([[-m2 / mtot * r, 0.0, 0.0], [m1 / mtot * r, 0.0, 0.0]])
    vel = np.array([[0.0, -m2 / mtot * v_rel, 0.0], [0.0, m1 / mtot * v_rel, 0.0]])
    return ParticleSystem(np.array([m1, m2]), pos, vel)
