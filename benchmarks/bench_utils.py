"""Shared helpers for the benchmark suite.

Every benchmark emits its "paper vs measured" table through
:func:`emit`, which both prints it (visible with ``pytest -s``) and
writes it under ``benchmarks/results/`` so the tables survive pytest's
output capture.  EXPERIMENTS.md is assembled from those files.

:func:`emit_json` is the machine-readable twin: it writes a structured
result document (``benchmarks/results/<name>.json``, or any explicit
path such as the repo-root ``BENCH_kernels.json`` baseline) so the
perf trajectory can be tracked across commits by tooling instead of by
eyeball.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.history import SCHEMA_VERSION, BenchHistory, host_fingerprint
from repro.perf import Table

RESULTS_DIR = Path(__file__).parent / "results"
HISTORY_DIR = RESULTS_DIR / "history"


def emit(table: Table, name: str) -> Path:
    """Print a table and persist it to ``benchmarks/results/<name>.txt``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = table.render()
    print()
    print(text)
    path = RESULTS_DIR / f"{name}.txt"
    # append: one experiment may emit several tables
    with open(path, "a") as f:
        f.write(text + "\n\n")
    return path


def emit_json(document: dict, name: str, path: Path | str | None = None,
              history: bool = False) -> Path:
    """Persist a machine-readable benchmark document (schema v2).

    ``document`` must be JSON-serialisable; ``"benchmark": name``, a
    ``schema_version`` and a host fingerprint (Python, CPU count,
    ``REPRO_KERNEL_THREADS``, NumPy — see
    :func:`repro.obs.history.host_fingerprint`) are stamped in so later
    comparisons can tell a code regression from a machine change.
    Default destination is ``benchmarks/results/<name>.json``; pass
    ``path`` to write elsewhere (e.g. a repo-root ``BENCH_*.json``
    baseline).  ``history=True`` additionally appends the document to
    the bench-history store (``benchmarks/results/history/``) read by
    ``repro perf diff`` / ``trend`` / ``gate``.
    """
    document = {"benchmark": name, "schema_version": SCHEMA_VERSION, **document}
    document.setdefault("host", host_fingerprint())
    if path is None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.json"
    path = Path(path)
    with open(path, "w") as f:
        json.dump(document, f, indent=2, sort_keys=False)
        f.write("\n")
    if history:
        BenchHistory(HISTORY_DIR).append(document)
    return path


def fresh(name: str) -> None:
    """Remove previous results files so re-runs do not accumulate."""
    for suffix in (".txt", ".json"):
        path = RESULTS_DIR / f"{name}{suffix}"
        if path.exists():
            path.unlink()
