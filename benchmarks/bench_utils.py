"""Shared helpers for the benchmark suite.

Every benchmark emits its "paper vs measured" table through
:func:`emit`, which both prints it (visible with ``pytest -s``) and
writes it under ``benchmarks/results/`` so the tables survive pytest's
output capture.  EXPERIMENTS.md is assembled from those files.
"""

from __future__ import annotations

from pathlib import Path

from repro.perf import Table

RESULTS_DIR = Path(__file__).parent / "results"


def emit(table: Table, name: str) -> Path:
    """Print a table and persist it to ``benchmarks/results/<name>.txt``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = table.render()
    print()
    print(text)
    path = RESULTS_DIR / f"{name}.txt"
    # append: one experiment may emit several tables
    with open(path, "a") as f:
        f.write(text + "\n\n")
    return path


def fresh(name: str) -> None:
    """Remove a previous results file so re-runs do not accumulate."""
    path = RESULTS_DIR / f"{name}.txt"
    if path.exists():
        path.unlink()
