"""FIG13 — gap formation near the protoplanet orbits (paper Figure 13).

The paper's only science figure: the planetesimal distribution at
T = 800 and T ~ 1880, with "Gap of the distribution is formed near the
radius of protoplanets."

Scaling (documented in DESIGN.md / EXPERIMENTS.md): gap clearing
proceeds at the synodic rate within the protoplanet feeding zone, so at
laptop scale (N = 500 vs 1.8 million; run length 1e4 vs the paper's
production span) we compress the clearing timescale by using heavier
protoplanets (3e-4 Msun vs 1e-5) with the softening scaled in
proportion (0.05 AU, still ~20x below the Hill radius, preserving the
paper's eps << r_H scattering argument).  The *morphology* reproduced
is the paper's: feeding zones around 20 AU and 30 AU depopulate while
the rest of the ring survives.

Metrics:
* primary — depletion of the feeding zone (|a - a_proto| < 3 r_H) in
  semi-major-axis space, the sharp version of the figure's visual gap;
* secondary — the radial surface-density profile (the figure itself).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HostDirectBackend, KeplerField, Simulation, TimestepParams
from repro.perf import Table
from repro.planetesimal import (
    PlanetesimalDiskConfig,
    Protoplanet,
    build_disk_system,
    cartesian_to_elements,
    surface_density_profile,
)
from repro.units import hill_radius

from bench_utils import emit, fresh

N_SCALED = 500
T_SNAPSHOT = 10_000.0
PROTO_MASS = 3e-4
EPS = 0.05
RADII = (20.0, 30.0)


def build_sim():
    protos = [
        Protoplanet(mass=PROTO_MASS, radius_au=20.0, phase=0.0),
        Protoplanet(mass=PROTO_MASS, radius_au=30.0, phase=np.pi),
    ]
    system = build_disk_system(
        PlanetesimalDiskConfig(n_planetesimals=N_SCALED, seed=7, protoplanets=protos)
    )
    sim = Simulation(
        system,
        HostDirectBackend(eps=EPS),
        external_field=KeplerField(),
        timestep_params=TimestepParams(eta=0.03, dt_max=2.0),
    )
    sim.initialize()
    return sim


def feeding_zone_counts(pos, vel, a_initial):
    """(initial, current) particle counts within 3 r_H of each radius."""
    el = cartesian_to_elements(pos, vel)
    bound = (el.e < 1.0) & (el.a > 0.0)
    out = {}
    for radius in RADII:
        w = 3.0 * float(hill_radius(radius, PROTO_MASS))
        init = int(np.sum(np.abs(a_initial - radius) < w))
        now = int(np.sum(bound & (np.abs(el.a - radius) < w)))
        out[radius] = (init, now)
    return out


@pytest.mark.benchmark(group="fig13")
def test_fig13_gap_formation(benchmark):
    fresh("fig13_gap")

    state = {}

    def run():
        sim = build_sim()
        n = N_SCALED
        a0 = cartesian_to_elements(sim.system.pos[:n], sim.system.vel[:n]).a.copy()
        sim.evolve(T_SNAPSHOT)
        snap = sim.predicted_state()
        state.update(sim=sim, snap=snap, a0=a0)
        return sim

    benchmark.pedantic(run, rounds=1, iterations=1)

    snap = state["snap"]
    counts = feeding_zone_counts(
        snap.pos[:N_SCALED], snap.vel[:N_SCALED], state["a0"]
    )
    depletion = {r: 1.0 - now / init for r, (init, now) in counts.items()}
    survivors = np.sum(
        cartesian_to_elements(snap.pos[:N_SCALED], snap.vel[:N_SCALED]).e < 1.0
    )

    table = Table(
        ["quantity", "paper", "measured (scaled)"],
        title="FIG13: gap formation near the protoplanet orbits",
    )
    table.add_row("N planetesimals", 1_799_998, N_SCALED)
    table.add_row("protoplanet mass [Msun]", "1e-5 (adopted)", PROTO_MASS)
    table.add_row("softening [AU]", 0.008, EPS)
    table.add_row("snapshot time", "800 / ~1880", T_SNAPSHOT)
    table.add_row("gap @20 AU", "visible (fig 13)", depletion[20.0] > 0.25)
    table.add_row("gap @30 AU", "visible (fig 13)", depletion[30.0] > 0.2)
    table.add_row("feeding-zone depletion @20 AU", "deep", round(depletion[20.0], 2))
    table.add_row("feeding-zone depletion @30 AU", "deep", round(depletion[30.0], 2))
    table.add_row("disk survives elsewhere", "yes", bool(survivors > 0.8 * N_SCALED))
    emit(table, "fig13_gap")

    # shape assertions: clear gaps at both protoplanet radii, disk intact
    assert depletion[20.0] > 0.25
    assert depletion[30.0] > 0.2
    # inner gap clears faster (shorter synodic period) — as in the figure,
    # where the inner gap is the more prominent at fixed time
    assert depletion[20.0] > depletion[30.0]
    assert survivors > 0.8 * N_SCALED


@pytest.mark.benchmark(group="fig13")
def test_fig13_radial_profile_series(benchmark):
    """The figure's 1-D content: radial distribution before/after."""
    fresh("fig13_profile")

    state = {}

    def run():
        sim = build_sim()
        state["r0"] = np.hypot(sim.system.pos[:N_SCALED, 0], sim.system.pos[:N_SCALED, 1])
        sim.evolve(T_SNAPSHOT / 2)  # the "left panel" epoch
        snap = sim.predicted_state()
        state["r1"] = np.hypot(snap.pos[:N_SCALED, 0], snap.pos[:N_SCALED, 1])
        state["sim"] = sim
        return sim

    benchmark.pedantic(run, rounds=1, iterations=1)

    edges = np.linspace(14, 36, 23)
    h0, _ = np.histogram(state["r0"], bins=edges)
    h1, _ = np.histogram(state["r1"], bins=edges)

    table = Table(
        ["r [AU]", "count T=0", "count T=mid"],
        title="FIG13 series: radial planetesimal counts",
    )
    for i in range(len(h0)):
        table.add_row(f"{0.5 * (edges[i] + edges[i + 1]):.1f}", int(h0[i]), int(h1[i]))
    emit(table, "fig13_profile")

    # most of the ring survives; total loss is the scattered tail
    assert h1.sum() > 0.7 * h0.sum()
