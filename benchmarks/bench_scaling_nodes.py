"""SCALE-NODES — throughput vs machine configuration (paper Section 5).

The paper builds the machine hierarchically: processor board -> node
(4 boards) -> cluster (4 nodes) -> full system (4 clusters).  This
benchmark prices a fixed paper-scale workload on each configuration and
reports sustained speed, efficiency, and parallel speed-up — showing
that the architecture scales to the full system without the host
network becoming the bottleneck (the design claim of Section 4.3).
"""

from __future__ import annotations

import pytest

from repro.constants import PAPER_N_PLANETESIMALS
from repro.grape import Grape6Config, Grape6TimingModel
from repro.perf import Table

from bench_utils import emit, fresh

CONFIGS = [
    ("1 board (32 chips)", Grape6Config.single_board()),
    ("1 node (128 chips)", Grape6Config.single_node()),
    ("1 cluster (512 chips)", Grape6Config.single_cluster()),
    ("full system (2048 chips)", Grape6Config.paper_full_system()),
]

N_TOTAL = PAPER_N_PLANETESIMALS + 2
BLOCK = 3000  # paper-scale mean block


@pytest.mark.benchmark(group="scaling")
def test_scaling_across_configurations(benchmark):
    fresh("scaling_nodes")

    def run():
        rows = []
        for label, cfg in CONFIGS:
            model = Grape6TimingModel(cfg)
            step = model.block_step(BLOCK, N_TOTAL)
            useful = BLOCK * N_TOTAL * 57
            rows.append(
                (label, cfg.total_chips, cfg.peak_flops / 1e12,
                 useful / step.total / 1e12, model.efficiency(BLOCK, N_TOTAL),
                 step.total)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    base_speed = rows[0][3]
    base_chips = rows[0][1]
    table = Table(
        ["configuration", "chips", "peak Tflops", "sustained Tflops",
         "efficiency", "speed-up", "ideal"],
        title="SCALE-NODES: fixed workload across GRAPE-6 configurations",
    )
    for label, chips, peak, sustained, eff, _ in rows:
        table.add_row(
            label, chips, round(peak, 1), round(sustained, 2),
            f"{eff:.1%}", round(sustained / base_speed, 1),
            chips // base_chips,
        )
    emit(table, "scaling_nodes")

    speeds = [r[3] for r in rows]
    # throughput must increase at every level of the hierarchy
    assert all(s2 > s1 for s1, s2 in zip(speeds, speeds[1:]))
    # full system speed-up over one board: >= half of the ideal 64x
    assert speeds[-1] / speeds[0] > 32
    # and efficiency must not collapse at full scale
    assert rows[-1][4] > 0.25


@pytest.mark.benchmark(group="scaling")
def test_scaling_block_size_interaction(benchmark):
    """Larger machines need larger blocks to stay efficient — the
    fundamental coupling between the scheduler and the hardware."""
    fresh("scaling_block_interplay")

    def run():
        out = {}
        for label, cfg in (CONFIGS[0], CONFIGS[3]):
            model = Grape6TimingModel(cfg)
            out[label] = [
                model.efficiency(b, N_TOTAL) for b in (100, 1000, 10_000)
            ]
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["configuration", "eff @block=100", "eff @block=1000", "eff @block=10000"],
        title="SCALE-NODES: efficiency vs block size per configuration",
    )
    for label, effs in out.items():
        table.add_row(label, *(f"{e:.1%}" for e in effs))
    emit(table, "scaling_block_interplay")

    small = out[CONFIGS[0][0]]
    full = out[CONFIGS[3][0]]
    # at block=100 the small machine is relatively *more* efficient
    assert small[0] > full[0]
    # at block=10000 both are healthy
    assert full[2] > 0.5
