#!/usr/bin/env python3
"""Lint: every force backend must implement the full ForceBackend surface.

The required surface is discovered from the AST of
``src/repro/core/backends.py`` — the methods of ``ForceBackend`` whose
bodies raise ``NotImplementedError`` — so adding a method to the
protocol automatically extends this check.  Every class in the source
tree that (transitively) subclasses ``ForceBackend`` must then

1. define or inherit a concrete override of each required method
   (inheriting the base stub does not count), and
2. bind an interaction counter (``self.counter = ...``) somewhere in
   its class chain, as the integrator and perf harness read it.

Pure standard library; run::

    python tools/check_backend_protocol.py [src_dir]

Defaults to the repository's ``src/repro`` tree.  Exit code 1 on gaps.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

__all__ = [
    "required_methods",
    "collect_classes",
    "backend_subclasses",
    "check",
    "main",
]

_PROTOCOL_FILE = Path("src") / "repro" / "core" / "backends.py"
_PROTOCOL_CLASS = "ForceBackend"


@dataclass
class ClassInfo:
    """What the lint needs to know about one class definition."""

    name: str
    path: Path
    lineno: int
    bases: list[str] = field(default_factory=list)
    methods: set[str] = field(default_factory=set)
    binds_counter: bool = False


def _base_name(node: ast.expr) -> str | None:
    """The textual last component of a base-class expression."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _raises_not_implemented(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Raise):
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Name) and exc.id == "NotImplementedError":
                return True
    return False


def _binds_self_counter(cls: ast.ClassDef) -> bool:
    for node in ast.walk(cls):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for tgt in targets:
            if (
                isinstance(tgt, ast.Attribute)
                and tgt.attr == "counter"
                and isinstance(tgt.value, ast.Name)
                and tgt.value.id == "self"
            ):
                return True
    return False


def required_methods(repo_root: Path = REPO_ROOT) -> list[str]:
    """The protocol surface: ForceBackend's NotImplementedError stubs."""
    tree = ast.parse((repo_root / _PROTOCOL_FILE).read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == _PROTOCOL_CLASS:
            return [
                item.name
                for item in node.body
                if isinstance(item, ast.FunctionDef)
                and _raises_not_implemented(item)
            ]
    raise RuntimeError(f"{_PROTOCOL_CLASS} not found in {_PROTOCOL_FILE}")


def collect_classes(src_dir: Path) -> dict[str, ClassInfo]:
    """Every class definition under ``src_dir``, keyed by class name."""
    classes: dict[str, ClassInfo] = {}
    for path in sorted(src_dir.rglob("*.py")):
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError:
            continue
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = ClassInfo(node.name, path, node.lineno)
            info.bases = [
                b for b in (_base_name(base) for base in node.bases) if b
            ]
            info.methods = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            info.binds_counter = _binds_self_counter(node)
            classes[node.name] = info
    return classes


def backend_subclasses(classes: dict[str, ClassInfo]) -> list[ClassInfo]:
    """Transitive ForceBackend subclasses, protocol class excluded."""

    def descends(name: str, seen: frozenset = frozenset()) -> bool:
        if name == _PROTOCOL_CLASS:
            return True
        info = classes.get(name)
        if info is None or name in seen:
            return False
        return any(descends(b, seen | {name}) for b in info.bases)

    return [
        info
        for name, info in sorted(classes.items())
        if name != _PROTOCOL_CLASS and descends(name)
    ]


def _chain(info: ClassInfo, classes: dict[str, ClassInfo]):
    """``info`` and its ancestors within the tree (protocol excluded)."""
    out, queue, seen = [], [info.name], set()
    while queue:
        name = queue.pop(0)
        if name in seen or name == _PROTOCOL_CLASS:
            continue
        seen.add(name)
        cls = classes.get(name)
        if cls is None:
            continue
        out.append(cls)
        queue.extend(cls.bases)
    return out


def check(src_dir: Path) -> list[str]:
    """Human-readable protocol-gap messages for ``src_dir``."""
    if not src_dir.is_dir():
        return [f"source directory not found: {src_dir}"]
    required = required_methods()
    classes = collect_classes(src_dir)
    problems = []
    for info in backend_subclasses(classes):
        chain = _chain(info, classes)
        provided = set().union(*(c.methods for c in chain))
        where = f"{info.path}:{info.lineno}"
        for method in required:
            if method not in provided:
                problems.append(
                    f"{where}: backend {info.name!r} neither defines nor "
                    f"inherits {method}() from the ForceBackend surface"
                )
        if not any(c.binds_counter for c in chain):
            problems.append(
                f"{where}: backend {info.name!r} never binds self.counter "
                "(the integrator and perf harness read it)"
            )
    return problems


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    src_dir = Path(argv[0]) if argv else REPO_ROOT / "src" / "repro"
    problems = check(src_dir)
    for msg in problems:
        print(msg)
    if problems:
        print(f"{len(problems)} backend-protocol gap(s)")
        return 1
    classes = collect_classes(src_dir)
    n = len(backend_subclasses(classes))
    print(f"backend protocol ok ({n} backends, "
          f"{len(required_methods())} required methods)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
