#!/usr/bin/env python3
"""Gate: fail when the bench history regresses vs the committed baselines.

For every ``BENCH_*.json`` baseline at the repository root, finds the
newest matching record in the bench-history store
(``benchmarks/results/history/``) and compares entry by entry with
:func:`repro.obs.history.compare_documents` — min-of-k plus a
deterministic bootstrap CI when repeat samples are available, a plain
threshold on the point ratio otherwise.

The check is **advisory by design**: a benchmark with no history record
is skipped with a note (fresh clones have no history until the
benchmarks run), so the test suite can call :func:`gate` unconditionally
without forcing every CI machine to run the benchmark suite first.

Run::

    python tools/check_bench_regression.py [--threshold 0.10]
        [--history DIR] [--baseline PATH ...]

Exit code 1 only on a statistically supported slowdown.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.errors import SnapshotError  # noqa: E402
from repro.obs.history import (  # noqa: E402
    BenchHistory,
    compare_documents,
    render_comparison,
)

__all__ = ["gate", "main"]

DEFAULT_HISTORY = REPO_ROOT / "benchmarks" / "results" / "history"


def _load(path: Path) -> dict:
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"cannot read benchmark document {path}: {exc}")
    if not isinstance(doc, dict):
        raise SnapshotError(f"{path} is not a benchmark document")
    return doc


def gate(baselines=None, history_root=None, threshold: float = 0.10,
         log=print) -> tuple[int, int]:
    """Compare each baseline against its newest history record.

    Returns ``(checked, failed)``; benchmarks without history are
    skipped (advisory mode).
    """
    if baselines is None:
        baselines = sorted(REPO_ROOT.glob("BENCH_*.json"))
    hist = BenchHistory(history_root or DEFAULT_HISTORY)
    checked = failed = 0
    for path in baselines:
        base = _load(Path(path))
        name = base.get("benchmark")
        current = hist.latest(name) if name else None
        if current is None:
            log(f"skip: no history record for {name!r} "
                f"(run the benchmarks to create one)")
            continue
        checked += 1
        result = compare_documents(base, current, threshold=threshold)
        text = render_comparison(result)
        if text:
            log(text)
        if result.regressions:
            failed += 1
    return checked, failed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold", type=float, default=0.10,
        help="fractional slowdown that fails the gate (default 0.10)",
    )
    parser.add_argument(
        "--history", default=None, help="bench-history store root"
    )
    parser.add_argument(
        "--baseline", action="append", default=None,
        help="baseline document(s); default: repo-root BENCH_*.json",
    )
    args = parser.parse_args(argv)
    try:
        checked, failed = gate(
            baselines=args.baseline,
            history_root=args.history,
            threshold=args.threshold,
        )
    except SnapshotError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if failed:
        print(f"bench regression gate FAILED "
              f"({failed} of {checked} benchmark(s) regressed)")
        return 1
    print(f"bench regression gate ok ({checked} benchmark(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
