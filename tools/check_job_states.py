#!/usr/bin/env python3
"""Lint: the campaign-service state machine must stay closed and tested.

The legal-transition table in :mod:`repro.serve.jobs` is the declared
contract of the job lifecycle.  This check enforces, statically:

1. **table completeness** — every :class:`JobState` member appears as a
   key of ``LEGAL_TRANSITIONS`` and every transition target is a
   declared member (a dangling state would make ``can_transition``
   raise ``KeyError`` at runtime);
2. **terminal soundness** — every ``TERMINAL_STATES`` member has no
   outgoing edges, and every non-terminal state has at least one (a
   non-terminal dead end would strand jobs forever);
3. **reachability** — every state except the two entry states
   (``QUEUED``, ``REJECTED``) is reachable from ``QUEUED`` through the
   table;
4. **source honesty** — every ``.transition(JobState.X, ...)`` call in
   ``src/repro/serve/`` (found by AST walk, so comments and strings
   cannot fool it) names a state that some legal transition actually
   targets, and every *targetable* state is requested by at least one
   call (an unexercised edge is either dead code or a missing
   implementation);
5. **test coverage** — every state is referenced by at least one test
   (``JobState.<NAME>`` or the string value ``"<value>"``).

Pure standard library; run::

    python tools/check_job_states.py [tests_dir]

Defaults to the repository's ``tests`` tree.  Exit code 1 on gaps.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.jobs import (  # noqa: E402
    LEGAL_TRANSITIONS,
    TERMINAL_STATES,
    JobState,
)

SERVE_DIR = REPO_ROOT / "src" / "repro" / "serve"

#: Entry states: jobs are *created* in these, never transitioned into
#: from nowhere.
ENTRY_STATES = frozenset({JobState.QUEUED, JobState.REJECTED})

__all__ = [
    "table_problems",
    "transition_calls",
    "source_problems",
    "untested_states",
    "check",
    "main",
]


def table_problems() -> list[str]:
    """Structural defects of the declared transition table itself."""
    problems = []
    members = set(JobState)
    for state in sorted(members - set(LEGAL_TRANSITIONS), key=lambda s: s.value):
        problems.append(
            f"JobState.{state.name} has no row in LEGAL_TRANSITIONS"
        )
    for state, targets in LEGAL_TRANSITIONS.items():
        for target in targets:
            if target not in members:  # pragma: no cover - needs a bad enum
                problems.append(
                    f"LEGAL_TRANSITIONS[{state!r}] targets undeclared {target!r}"
                )
        if state in TERMINAL_STATES and targets:
            problems.append(
                f"terminal JobState.{state.name} has outgoing edges: "
                f"{sorted(t.value for t in targets)}"
            )
        if state not in TERMINAL_STATES and not targets:
            problems.append(
                f"non-terminal JobState.{state.name} is a dead end "
                "(no outgoing edges)"
            )
    # reachability from the QUEUED entry state
    seen = {JobState.QUEUED}
    frontier = [JobState.QUEUED]
    while frontier:
        for target in LEGAL_TRANSITIONS.get(frontier.pop(), ()):  # noqa: B909
            if target not in seen:
                seen.add(target)
                frontier.append(target)
    for state in sorted(set(JobState) - seen - ENTRY_STATES,
                        key=lambda s: s.value):
        problems.append(
            f"JobState.{state.name} is unreachable from QUEUED via "
            "LEGAL_TRANSITIONS"
        )
    return problems


def transition_calls(root: Path = SERVE_DIR) -> list[tuple[str, int, str]]:
    """Every ``.transition(JobState.X, ...)`` call under ``root``.

    Returns ``(relative_path, line, state_name)`` tuples.  Calls whose
    first argument is not a literal ``JobState.X`` attribute are
    reported with state name ``"?"`` so the lint can flag them — the
    static check is only sound when transition targets are literal.
    """
    calls: list[tuple[str, int, str]] = []
    for path in sorted(root.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        try:
            rel = str(path.relative_to(REPO_ROOT))
        except ValueError:  # linting a tree outside the repo (tests)
            rel = str(path)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr == "transition"):
                continue
            arg = node.args[0] if node.args else None
            if (isinstance(arg, ast.Attribute)
                    and isinstance(arg.value, ast.Name)
                    and arg.value.id == "JobState"):
                calls.append((rel, node.lineno, arg.attr))
            else:
                calls.append((rel, node.lineno, "?"))
    return calls


def source_problems(root: Path = SERVE_DIR) -> list[str]:
    """Transition calls that disagree with the declared table."""
    problems = []
    legal_targets = {t for targets in LEGAL_TRANSITIONS.values() for t in targets}
    requested: set[JobState] = set()
    for rel, line, name in transition_calls(root):
        if name == "?":
            problems.append(
                f"{rel}:{line}: .transition() without a literal JobState "
                "target — the state-machine lint cannot verify it"
            )
            continue
        try:
            state = JobState[name]
        except KeyError:
            problems.append(
                f"{rel}:{line}: .transition(JobState.{name}) names an "
                "undeclared state"
            )
            continue
        requested.add(state)
        if state not in legal_targets:
            problems.append(
                f"{rel}:{line}: .transition(JobState.{name}) targets a state "
                "no LEGAL_TRANSITIONS row allows"
            )
    try:
        where = root.relative_to(REPO_ROOT)
    except ValueError:
        where = root
    for state in sorted(legal_targets - requested, key=lambda s: s.value):
        problems.append(
            f"JobState.{state.name} is a declared transition target but "
            f"no .transition() call under {where} requests it"
        )
    return problems


def untested_states(tests_dir: Path) -> list[str]:
    """States no test file mentions (by enum name or string value)."""
    corpus = "\n".join(
        p.read_text() for p in sorted(tests_dir.rglob("*.py"))
    )
    out = []
    for state in JobState:
        if f"JobState.{state.name}" in corpus or f'"{state.value}"' in corpus:
            continue
        out.append(state.value)
    return out


def check(tests_dir: Path) -> list[str]:
    """Human-readable gap messages."""
    problems = table_problems() + source_problems()
    if tests_dir.is_dir():
        for value in untested_states(tests_dir):
            problems.append(
                f"JobState {value!r} is never referenced by a test under "
                f"{tests_dir}"
            )
    else:
        problems.append(f"tests directory not found: {tests_dir}")
    return problems


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    tests_dir = Path(argv[0]) if argv else REPO_ROOT / "tests"
    problems = check(tests_dir)
    for msg in problems:
        print(msg)
    if problems:
        print(f"{len(problems)} job-state gap(s)")
        return 1
    n_edges = sum(len(t) for t in LEGAL_TRANSITIONS.values())
    print(
        f"job state machine ok ({len(list(JobState))} states, "
        f"{n_edges} legal edges, {len(transition_calls())} transition calls)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
