#!/usr/bin/env python3
"""Lint: every literal metric name must be declared in the catalogue.

Walks python sources for calls of the form ``<expr>.counter("name")``,
``<expr>.gauge("name")`` and ``<expr>.histogram("name")`` and fails
when a literal name is missing from
:data:`repro.obs.catalogue.METRIC_CATALOGUE` (dynamic families listed
in ``DYNAMIC_PREFIXES`` are admitted), or when the declared kind does
not match the accessor used.  Names built at runtime (f-strings etc.)
are skipped — they must belong to a declared dynamic family, which the
runtime registry's strict mode can enforce.

The catalogue itself is validated too (:func:`check_catalogue`): every
declared name must satisfy the naming convention, carry a known kind
and a help string, and declared metric families (``hybrid.*`` etc.)
must not collide with the dynamic prefixes.

Pure standard library; run::

    python tools/check_metric_names.py [paths...]

Defaults to the repository's ``src`` tree plus ``benchmarks`` and
``tools`` (everything that registers metrics).  Exit code 1 on
violations.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.catalogue import (  # noqa: E402
    DYNAMIC_PREFIXES,
    METRIC_CATALOGUE,
    NAME_RE,
    is_declared,
)

__all__ = [
    "find_metric_calls",
    "check_file",
    "check_paths",
    "check_catalogue",
    "main",
]

#: Accessor method name -> metric kind it creates.
_ACCESSORS = {"counter": "counter", "gauge": "gauge", "histogram": "histogram"}

#: The kinds a catalogue entry may declare.
_KINDS = frozenset(_ACCESSORS.values())


def find_metric_calls(tree: ast.AST):
    """Yield ``(lineno, kind, name)`` for literal-name metric registrations."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            continue
        kind = _ACCESSORS.get(node.func.attr)
        if kind is None or not node.args:
            continue
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            yield node.lineno, kind, arg.value


def check_file(path: Path) -> list[str]:
    """Human-readable violation messages for one python file."""
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:
        return [f"{path}: cannot parse: {exc}"]
    problems = []
    for lineno, kind, name in find_metric_calls(tree):
        if not NAME_RE.match(name):
            problems.append(
                f"{path}:{lineno}: metric name {name!r} violates the naming "
                "convention (dotted lower-case)"
            )
        elif not is_declared(name):
            problems.append(
                f"{path}:{lineno}: metric {name!r} is not declared in "
                "repro.obs.catalogue.METRIC_CATALOGUE"
            )
        else:
            declared = METRIC_CATALOGUE.get(name)
            if declared is not None and declared[0] != kind:
                problems.append(
                    f"{path}:{lineno}: metric {name!r} is declared as "
                    f"{declared[0]} but registered via .{kind}()"
                )
    return problems


def check_paths(paths) -> list[str]:
    """Violations across files and/or directory trees."""
    problems = []
    for p in paths:
        p = Path(p)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            problems.extend(check_file(f))
    return problems


def check_catalogue(catalogue=None) -> list[str]:
    """Self-validation of the declared catalogue."""
    catalogue = METRIC_CATALOGUE if catalogue is None else catalogue
    problems = []
    for name, entry in catalogue.items():
        if not NAME_RE.match(name):
            problems.append(
                f"catalogue: declared name {name!r} violates the naming "
                "convention (dotted lower-case)"
            )
        if len(entry) != 2 or entry[0] not in _KINDS:
            problems.append(
                f"catalogue: {name!r} must declare (kind, help) with kind "
                f"in {sorted(_KINDS)}, got {entry!r}"
            )
        elif not entry[1]:
            problems.append(f"catalogue: {name!r} has an empty help string")
        if any(name.startswith(p) for p in DYNAMIC_PREFIXES) and name not in (
            # the seed event counters double as documentation of the family
            "events.escape_total",
            "events.merger_total",
            "events.close_encounter_total",
        ):
            problems.append(
                f"catalogue: {name!r} shadows a dynamic prefix; declare it "
                "in DYNAMIC_PREFIXES terms or rename the family"
            )
    return problems


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    paths = argv or [
        REPO_ROOT / "src",
        REPO_ROOT / "benchmarks",
        REPO_ROOT / "tools",
    ]
    problems = check_catalogue() + check_paths(paths)
    for msg in problems:
        print(msg)
    if problems:
        print(f"{len(problems)} undeclared/ill-typed metric name(s)")
        return 1
    print("metric names ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
