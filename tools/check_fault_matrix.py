#!/usr/bin/env python3
"""Lint: every fault kind must be implemented, injectable, and tested.

For each member of :class:`repro.resilience.FaultKind` this check
requires:

1. an injector implementation — a ``_inject_<kind.value>`` method on
   :class:`repro.resilience.FaultInjector` (injection dispatches by
   name, so a missing method is a runtime AttributeError waiting for
   the first plan that schedules that kind);
2. an injection *site* — the kind must belong to a scheduling domain in
   :data:`repro.resilience.FAULT_DOMAINS`, and that domain's driver
   method (``apply_due`` for ``machine``, ``comm_overhead`` for
   ``comm``, ``rank_actions`` for ``rank``) must both exist on the
   injector and be called somewhere in ``src/repro`` outside
   ``faults.py`` itself — a fault kind whose domain no subsystem drives
   can never fire;
3. at least one test referencing the kind — ``FaultKind.<NAME>`` or the
   string value ``"<kind.value>"`` somewhere under ``tests/``.

Pure standard library; run::

    python tools/check_fault_matrix.py [tests_dir]

Defaults to the repository's ``tests`` tree.  Exit code 1 on gaps.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.resilience import FAULT_DOMAINS, FaultInjector, FaultKind  # noqa: E402

__all__ = [
    "DOMAIN_DRIVERS",
    "missing_injectors",
    "missing_domains",
    "undriven_domains",
    "untested_kinds",
    "check",
    "main",
]

#: domain -> the injector method a subsystem must call to drive it
DOMAIN_DRIVERS = {
    "machine": "apply_due",
    "comm": "comm_overhead",
    "rank": "rank_actions",
}


def missing_injectors() -> list[str]:
    """Fault kinds without a ``_inject_*`` method on the injector."""
    return [
        kind.value
        for kind in FaultKind
        if not callable(getattr(FaultInjector, f"_inject_{kind.value}", None))
    ]


def missing_domains() -> list[str]:
    """Fault kinds not mapped to a scheduling domain."""
    return [
        kind.value
        for kind in FaultKind
        if FAULT_DOMAINS.get(kind) not in DOMAIN_DRIVERS
    ]


def undriven_domains(src_dir: Path | None = None) -> list[str]:
    """Domains whose driver method nothing in ``src/repro`` calls.

    ``faults.py`` itself is excluded — the driver being *defined* there
    is not an injection site; some other subsystem must invoke it.
    """
    src_dir = src_dir or (REPO_ROOT / "src" / "repro")
    corpus = "\n".join(
        p.read_text()
        for p in sorted(src_dir.rglob("*.py"))
        if p.name != "faults.py"
    )
    out = []
    for domain, driver in sorted(DOMAIN_DRIVERS.items()):
        if not callable(getattr(FaultInjector, driver, None)):
            out.append(f"{domain} (driver {driver} not on FaultInjector)")
        elif f".{driver}(" not in corpus:
            out.append(f"{domain} (no call site of {driver}() in {src_dir})")
    return out


def untested_kinds(tests_dir: Path) -> list[str]:
    """Fault kinds no test file mentions (by enum name or string value)."""
    corpus = "\n".join(
        p.read_text() for p in sorted(tests_dir.rglob("*.py"))
    )
    out = []
    for kind in FaultKind:
        if f"FaultKind.{kind.name}" in corpus or f'"{kind.value}"' in corpus:
            continue
        out.append(kind.value)
    return out


def check(tests_dir: Path, src_dir: Path | None = None) -> list[str]:
    """Human-readable gap messages."""
    problems = []
    for kind in missing_injectors():
        problems.append(
            f"FaultKind {kind!r} has no FaultInjector._inject_{kind} "
            "implementation"
        )
    for kind in missing_domains():
        problems.append(
            f"FaultKind {kind!r} has no scheduling domain in FAULT_DOMAINS "
            "— nothing will ever fire it"
        )
    for msg in undriven_domains(src_dir):
        problems.append(f"fault domain {msg} has no injection site")
    if tests_dir.is_dir():
        for kind in untested_kinds(tests_dir):
            problems.append(
                f"FaultKind {kind!r} is never referenced by a test under "
                f"{tests_dir}"
            )
    else:
        problems.append(f"tests directory not found: {tests_dir}")
    return problems


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    tests_dir = Path(argv[0]) if argv else REPO_ROOT / "tests"
    problems = check(tests_dir)
    for msg in problems:
        print(msg)
    if problems:
        print(f"{len(problems)} fault-matrix gap(s)")
        return 1
    print(
        f"fault matrix ok ({len(list(FaultKind))} kinds, "
        f"{len(DOMAIN_DRIVERS)} driven domains)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
