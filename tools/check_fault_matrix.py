#!/usr/bin/env python3
"""Lint: every fault kind must be implemented and tested.

For each member of :class:`repro.resilience.FaultKind` this check
requires:

1. an injector implementation — a ``_inject_<kind.value>`` method on
   :class:`repro.resilience.FaultInjector` (injection dispatches by
   name, so a missing method is a runtime AttributeError waiting for
   the first plan that schedules that kind);
2. at least one test referencing the kind — ``FaultKind.<NAME>`` or the
   string value ``"<kind.value>"`` somewhere under ``tests/``.

Pure standard library; run::

    python tools/check_fault_matrix.py [tests_dir]

Defaults to the repository's ``tests`` tree.  Exit code 1 on gaps.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.resilience import FaultInjector, FaultKind  # noqa: E402

__all__ = ["missing_injectors", "untested_kinds", "check", "main"]


def missing_injectors() -> list[str]:
    """Fault kinds without a ``_inject_*`` method on the injector."""
    return [
        kind.value
        for kind in FaultKind
        if not callable(getattr(FaultInjector, f"_inject_{kind.value}", None))
    ]


def untested_kinds(tests_dir: Path) -> list[str]:
    """Fault kinds no test file mentions (by enum name or string value)."""
    corpus = "\n".join(
        p.read_text() for p in sorted(tests_dir.rglob("*.py"))
    )
    out = []
    for kind in FaultKind:
        if f"FaultKind.{kind.name}" in corpus or f'"{kind.value}"' in corpus:
            continue
        out.append(kind.value)
    return out


def check(tests_dir: Path) -> list[str]:
    """Human-readable gap messages."""
    problems = []
    for kind in missing_injectors():
        problems.append(
            f"FaultKind {kind!r} has no FaultInjector._inject_{kind} "
            "implementation"
        )
    if tests_dir.is_dir():
        for kind in untested_kinds(tests_dir):
            problems.append(
                f"FaultKind {kind!r} is never referenced by a test under "
                f"{tests_dir}"
            )
    else:
        problems.append(f"tests directory not found: {tests_dir}")
    return problems


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    tests_dir = Path(argv[0]) if argv else REPO_ROOT / "tests"
    problems = check(tests_dir)
    for msg in problems:
        print(msg)
    if problems:
        print(f"{len(problems)} fault-matrix gap(s)")
        return 1
    print(f"fault matrix ok ({len(list(FaultKind))} kinds covered)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
