#!/usr/bin/env python3
"""Lint: every registered force kernel must be tested and benchmarked.

For each :class:`repro.accel.registry.KernelSpec` (key ``op/name``)
this check requires:

1. an equivalence test — the literal key string somewhere under
   ``tests/`` (the canonical home is ``EQUIVALENCE_KERNELS`` in
   ``tests/test_accel_kernels.py``, which a test asserts equals the
   registry, so a kernel cannot be silently registered untested);
2. a benchmark entry — an ``entries`` row with matching ``op`` and
   ``kernel`` in the repo-root ``BENCH_kernels.json`` baseline
   (regenerate with ``PYTHONPATH=src python -m repro.accel.bench``).

Pure standard library beyond the repo itself; run::

    python tools/check_kernel_registry.py [tests_dir [bench_json]]

Exit code 1 on gaps.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.accel import all_kernels  # noqa: E402

__all__ = ["untested_kernels", "unbenchmarked_kernels", "check", "main"]


def untested_kernels(tests_dir: Path) -> list[str]:
    """Registered kernel keys no test file mentions literally."""
    corpus = "\n".join(p.read_text() for p in sorted(tests_dir.rglob("*.py")))
    return [s.key for s in all_kernels() if s.key not in corpus]


def unbenchmarked_kernels(bench_json: Path) -> list[str]:
    """Registered kernel keys with no entry in the benchmark baseline."""
    document = json.loads(bench_json.read_text())
    benched = {
        f"{e.get('op')}/{e.get('kernel')}" for e in document.get("entries", [])
    }
    return [s.key for s in all_kernels() if s.key not in benched]


def check(tests_dir: Path, bench_json: Path) -> list[str]:
    """Human-readable gap messages."""
    problems = []
    if tests_dir.is_dir():
        for key in untested_kernels(tests_dir):
            problems.append(
                f"kernel {key!r} has no equivalence test under {tests_dir} "
                "(add it to EQUIVALENCE_KERNELS in tests/test_accel_kernels.py)"
            )
    else:
        problems.append(f"tests directory not found: {tests_dir}")
    if bench_json.is_file():
        for key in unbenchmarked_kernels(bench_json):
            problems.append(
                f"kernel {key!r} has no entry in {bench_json.name} "
                "(regenerate: PYTHONPATH=src python -m repro.accel.bench)"
            )
    else:
        problems.append(f"benchmark baseline not found: {bench_json}")
    return problems


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    tests_dir = Path(argv[0]) if argv else REPO_ROOT / "tests"
    bench_json = (
        Path(argv[1]) if len(argv) > 1 else REPO_ROOT / "BENCH_kernels.json"
    )
    problems = check(tests_dir, bench_json)
    for msg in problems:
        print(msg)
    if problems:
        print(f"{len(problems)} kernel-registry gap(s)")
        return 1
    print(f"kernel registry ok ({len(all_kernels())} kernels covered)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
