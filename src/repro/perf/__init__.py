"""Performance accounting: flop conventions, projection model, harness.

* :mod:`~repro.perf.flops` — the 38/57-op Gordon Bell conventions
* :mod:`~repro.perf.model` — paper-scale sustained-speed projection
* :mod:`~repro.perf.harness` — scaled-run measurement harness
* :mod:`~repro.perf.report` — benchmark table rendering
"""

from .flops import flops_for_interactions, flops_from_counter, paper_total_flops, tflops
from .harness import RunResult, run_scaled_disk
from .model import (
    SustainedEstimate,
    extrapolate_from_histogram,
    extrapolate_sustained,
    paper_projection,
)
from .report import Table, format_quantity

__all__ = [
    "flops_for_interactions",
    "flops_from_counter",
    "paper_total_flops",
    "tflops",
    "RunResult",
    "run_scaled_disk",
    "SustainedEstimate",
    "extrapolate_from_histogram",
    "extrapolate_sustained",
    "paper_projection",
    "Table",
    "format_quantity",
]
