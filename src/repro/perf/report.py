"""Fixed-width table formatting for benchmark output.

Every benchmark prints its results through :class:`Table` so the
"paper value vs measured value" rows (EXPERIMENTS.md) come out of the
same code path that the tests exercise.
"""

from __future__ import annotations

from ..errors import ConfigurationError

__all__ = ["Table", "format_quantity"]


def format_quantity(value, precision: int = 4) -> str:
    """Human formatting: ints as ints, floats in general notation."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.{precision}g}"
        return f"{value:.{precision}g}"
    return str(value)


class Table:
    """Minimal fixed-width table with title and column alignment."""

    def __init__(self, columns: list[str], title: str | None = None) -> None:
        if not columns:
            raise ConfigurationError("a table needs columns")
        self.columns = list(columns)
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ConfigurationError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([format_quantity(v) for v in values])

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = []
        if self.title:
            lines.append(f"== {self.title} ==")
        lines.append(header)
        lines.append(sep)
        for r in self.rows:
            lines.append(" | ".join(v.rjust(w) for v, w in zip(r, widths)))
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console I/O
        print(self.render())
        print()
