"""Measurement harness shared by the benchmark scripts.

:func:`run_scaled_disk` runs the paper's problem at laptop scale with
any backend and collects everything the benchmark tables need: wall
time, block statistics, interaction counts, energy drift, and (for the
GRAPE backend) the modelled hardware timing totals.

Measurement goes through :mod:`repro.obs`: pass an
:class:`~repro.obs.Observability` bundle and the whole run — integrator
phase spans, GRAPE model time split, communication counters — lands in
one registry/trace, which :class:`RunResult` snapshots.  With the
default ``obs=None`` the null objects keep the run at seed speed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core import (
    EnergyTracker,
    KeplerField,
    Simulation,
    TimestepParams,
)
from ..obs import NULL_OBS
from ..planetesimal import PlanetesimalDiskConfig, build_disk_system

__all__ = ["RunResult", "run_scaled_disk"]


@dataclass
class RunResult:
    """Everything measured from one scaled run."""

    n: int
    t_end: float
    wall_seconds: float
    block_steps: int
    particle_steps: int
    mean_block: float
    median_block: float
    block_fraction: float
    energy_error: float
    interactions: int
    sim: Simulation = field(repr=False)
    #: Flat metrics snapshot (empty when observability was disabled).
    metrics: dict = field(default_factory=dict, repr=False)

    @property
    def interactions_per_second(self) -> float:
        return self.interactions / self.wall_seconds if self.wall_seconds else 0.0


def run_scaled_disk(
    backend,
    n: int = 512,
    t_end: float = 10.0,
    seed: int = 0,
    eta: float = 0.02,
    dt_max: float = 1.0,
    e_rms: float = 0.01,
    protoplanets=None,
    measure_energy: bool = True,
    max_block_steps: int | None = None,
    obs=None,
) -> RunResult:
    """Run the scaled paper disk with ``backend``; return measurements.

    ``backend`` must implement :class:`~repro.core.backends.ForceBackend`
    and expose an ``eps`` attribute (all provided backends do).  ``obs``
    (an :class:`~repro.obs.Observability`) enables metrics + tracing for
    the run; the GRAPE machine behind a GRAPE backend is attached
    automatically.
    """
    obs = obs or NULL_OBS
    machine = getattr(backend, "machine", None)
    if machine is not None and hasattr(machine, "observe"):
        machine.observe(obs)

    config = PlanetesimalDiskConfig(
        n_planetesimals=n, seed=seed, e_rms=e_rms, protoplanets=protoplanets
    )
    system = build_disk_system(config)
    sim = Simulation(
        system,
        backend,
        external_field=KeplerField(),
        timestep_params=TimestepParams(eta=eta, eta_start=eta / 2.0, dt_max=dt_max),
        obs=obs,
    )
    tracker = EnergyTracker(backend.eps, sim.external_field) if measure_energy else None
    interactions_before = backend.counter.force_interactions

    wall0 = time.perf_counter()
    with obs.tracer.span("run", n=n, t_end=float(t_end)):
        sim.initialize()
        if tracker is not None:
            tracker.start(sim.system)
        sim.evolve(t_end, max_block_steps=max_block_steps)
        sim.synchronize(min(t_end, float(sim.system.t.max())))
    wall = time.perf_counter() - wall0

    err = tracker.sample(sim.system) if tracker is not None else float("nan")
    interactions = backend.counter.force_interactions - interactions_before

    # Whole-run measurements land in the shared registry (one path for
    # benchmarks and production runs); the snapshot is what reports use.
    m = obs.metrics
    m.gauge("run.wall_seconds").set(wall)
    m.gauge("run.particles").set(sim.system.n)
    if np.isfinite(err):
        m.gauge("run.energy_error").set(err)
    m.counter("force.interactions_total").inc(interactions)
    snap = obs.metrics.snapshot()

    stats = sim.scheduler.stats
    n_total = sim.system.n
    return RunResult(
        n=n_total,
        t_end=t_end,
        wall_seconds=wall,
        block_steps=int(snap.get("blockstep.total", sim.block_steps)),
        particle_steps=int(snap.get("blockstep.active_particles", sim.particle_steps)),
        mean_block=stats.mean_block,
        median_block=stats.median_block(),
        block_fraction=stats.mean_block / n_total,
        energy_error=err,
        interactions=interactions,
        sim=sim,
        metrics=snap,
    )
