"""Measurement harness shared by the benchmark scripts.

:func:`run_scaled_disk` runs the paper's problem at laptop scale with
any backend and collects everything the benchmark tables need: wall
time, block statistics, interaction counts, energy drift, and (for the
GRAPE backend) the modelled hardware timing totals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core import (
    EnergyTracker,
    KeplerField,
    Simulation,
    TimestepParams,
)
from ..planetesimal import PlanetesimalDiskConfig, build_disk_system

__all__ = ["RunResult", "run_scaled_disk"]


@dataclass
class RunResult:
    """Everything measured from one scaled run."""

    n: int
    t_end: float
    wall_seconds: float
    block_steps: int
    particle_steps: int
    mean_block: float
    median_block: float
    block_fraction: float
    energy_error: float
    interactions: int
    sim: Simulation = field(repr=False)

    @property
    def interactions_per_second(self) -> float:
        return self.interactions / self.wall_seconds if self.wall_seconds else 0.0


def run_scaled_disk(
    backend,
    n: int = 512,
    t_end: float = 10.0,
    seed: int = 0,
    eta: float = 0.02,
    dt_max: float = 1.0,
    e_rms: float = 0.01,
    protoplanets=None,
    measure_energy: bool = True,
    max_block_steps: int | None = None,
) -> RunResult:
    """Run the scaled paper disk with ``backend``; return measurements.

    ``backend`` must implement :class:`~repro.core.backends.ForceBackend`
    and expose an ``eps`` attribute (all provided backends do).
    """
    config = PlanetesimalDiskConfig(
        n_planetesimals=n, seed=seed, e_rms=e_rms, protoplanets=protoplanets
    )
    system = build_disk_system(config)
    sim = Simulation(
        system,
        backend,
        external_field=KeplerField(),
        timestep_params=TimestepParams(eta=eta, eta_start=eta / 2.0, dt_max=dt_max),
    )
    tracker = EnergyTracker(backend.eps, sim.external_field) if measure_energy else None

    wall0 = time.perf_counter()
    sim.initialize()
    if tracker is not None:
        tracker.start(sim.system)
    sim.evolve(t_end, max_block_steps=max_block_steps)
    sim.synchronize(min(t_end, float(sim.system.t.max())))
    wall = time.perf_counter() - wall0

    err = tracker.sample(sim.system) if tracker is not None else float("nan")
    stats = sim.scheduler.stats
    n_total = sim.system.n
    return RunResult(
        n=n_total,
        t_end=t_end,
        wall_seconds=wall,
        block_steps=sim.block_steps,
        particle_steps=sim.particle_steps,
        mean_block=stats.mean_block,
        median_block=stats.median_block(),
        block_fraction=stats.mean_block / n_total,
        energy_error=err,
        interactions=backend.counter.force_interactions,
        sim=sim,
    )
