"""Paper-scale performance extrapolation.

Python cannot run 1.8 million particles for 1878 time units, but the
GRAPE-6 timing model is analytic in ``(n_active, n_total)``: what a
scaled run must supply is only the *block-size statistics* — what
fraction of the system a typical block contains.  Empirically (and in
the block-timestep literature) the mean block size grows roughly
linearly with N for a fixed problem class, so the mean *block
fraction* measured at small N transfers to the paper's N.

:func:`extrapolate_sustained` applies a measured block fraction to an
arbitrary machine/problem size; :func:`paper_projection` packages the
comparison against the paper's reported 29.5 Tflops / 46.5% of peak.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import (
    PAPER_ACHIEVED_TFLOPS,
    PAPER_N_PLANETESIMALS,
    PAPER_PEAK_TFLOPS,
    PAPER_TOTAL_BLOCK_STEPS,
    PAPER_WALL_CLOCK_HOURS,
)
from ..errors import ConfigurationError
from ..grape.timing import Grape6Config, Grape6TimingModel
from .flops import tflops

__all__ = ["SustainedEstimate", "extrapolate_sustained", "paper_projection"]


@dataclass(frozen=True)
class SustainedEstimate:
    """Model output for a steady stream of identical blocks."""

    n_total: int
    mean_block: int
    step_seconds: float
    sustained_tflops: float
    efficiency: float
    #: per-step component seconds, keyed host/pci/lvds/pipe/gbe
    breakdown: dict


def extrapolate_sustained(
    config: Grape6Config,
    n_total: int,
    mean_block: float,
    timing_model: Grape6TimingModel | None = None,
) -> SustainedEstimate:
    """Sustained speed for blocks of ``mean_block`` out of ``n_total``."""
    if n_total < 1 or mean_block < 1:
        raise ConfigurationError("need positive n_total and mean_block")
    model = timing_model or Grape6TimingModel(config)
    n_act = int(round(mean_block))
    step = model.block_step(n_act, n_total)
    useful = n_act * n_total * 57
    sustained = useful / step.total
    return SustainedEstimate(
        n_total=n_total,
        mean_block=n_act,
        step_seconds=step.total,
        sustained_tflops=tflops(sustained),
        efficiency=sustained / config.peak_flops,
        breakdown={
            "host": step.host,
            "pci": step.pci,
            "lvds": step.lvds,
            "pipe": step.pipe,
            "gbe": step.gbe,
        },
    )


def extrapolate_from_histogram(
    config: Grape6Config,
    n_total: int,
    size_counts: dict,
    n_measured: int,
    timing_model: Grape6TimingModel | None = None,
) -> SustainedEstimate:
    """Sustained speed from a measured block-size *distribution*.

    Small blocks are disproportionately expensive (fixed latencies and
    pipeline fill dominate), so the sustained speed over a run is a
    work-weighted harmonic mean, not the speed of the mean block.  This
    variant scales each observed block size by ``n_total / n_measured``
    and prices the whole distribution.

    Parameters
    ----------
    size_counts:
        ``{block_size: count}`` from
        :class:`~repro.core.scheduler.BlockStats`.
    n_measured:
        Particle count of the run the histogram came from.
    """
    if not size_counts:
        raise ConfigurationError("empty block-size histogram")
    model = timing_model or Grape6TimingModel(config)
    scale = n_total / n_measured
    total_seconds = 0.0
    total_interactions = 0.0
    total_steps = 0.0
    for size, count in size_counts.items():
        scaled = max(1, int(round(size * scale)))
        step = model.block_step(scaled, n_total)
        total_seconds += count * step.total
        total_interactions += count * scaled * n_total
        total_steps += count * scaled
    sustained = total_interactions * 57 / total_seconds
    mean_block = total_steps / sum(size_counts.values())
    # breakdown of the mean block for reporting
    rep = model.block_step(max(1, int(round(mean_block))), n_total)
    return SustainedEstimate(
        n_total=n_total,
        mean_block=int(round(mean_block)),
        step_seconds=total_seconds / sum(size_counts.values()),
        sustained_tflops=tflops(sustained),
        efficiency=sustained / config.peak_flops,
        breakdown={
            "host": rep.host,
            "pci": rep.pci,
            "lvds": rep.lvds,
            "pipe": rep.pipe,
            "gbe": rep.gbe,
        },
    )


def paper_projection(block_fraction: float) -> dict:
    """Project the paper's run from a measured block fraction.

    Parameters
    ----------
    block_fraction:
        ``mean_block / N`` measured on a scaled run of the same problem.

    Returns a dict with the model's sustained Tflops, efficiency and
    wall-clock for the paper's step count, next to the paper's reported
    numbers.
    """
    if not (0.0 < block_fraction <= 1.0):
        raise ConfigurationError("block_fraction must be in (0, 1]")
    config = Grape6Config.paper_full_system()
    n = PAPER_N_PLANETESIMALS + 2
    mean_block = max(1, int(round(block_fraction * n)))
    est = extrapolate_sustained(config, n, mean_block)
    n_blocks = PAPER_TOTAL_BLOCK_STEPS / mean_block
    wall_hours = n_blocks * est.step_seconds / 3600.0
    return {
        "model_mean_block": mean_block,
        "model_sustained_tflops": est.sustained_tflops,
        "model_efficiency": est.efficiency,
        "model_wall_hours": wall_hours,
        "model_breakdown": est.breakdown,
        "paper_sustained_tflops": PAPER_ACHIEVED_TFLOPS,
        "paper_peak_tflops": PAPER_PEAK_TFLOPS,
        "paper_efficiency": PAPER_ACHIEVED_TFLOPS / PAPER_PEAK_TFLOPS,
        "paper_wall_hours": PAPER_WALL_CLOCK_HOURS,
    }
