"""Gordon Bell flop-accounting conventions (paper Section 5.2).

"We follow the convention of assigning 38 operations for the calculation
of pairwise gravitational force, which is adopted in recent Gordon-Bell
prize applications.  GRAPE-6 calculates the time derivative, which adds
another 19 operations.  Thus, the total number of floating point
operations for one interaction is 57."

These helpers convert interaction counts (from
:class:`~repro.core.forces.InteractionCounter` or
:class:`~repro.grape.timing.TimingTotals`) into the paper's flop
figures so every benchmark reports in identical units.
"""

from __future__ import annotations

from ..constants import FLOPS_PER_FORCE, FLOPS_PER_INTERACTION, FLOPS_PER_JERK

__all__ = [
    "flops_for_interactions",
    "flops_from_counter",
    "paper_total_flops",
    "tflops",
]


def flops_for_interactions(n_interactions: int, with_jerk: bool = True) -> float:
    """Operations for ``n`` pairwise interactions under the convention."""
    per = FLOPS_PER_INTERACTION if with_jerk else FLOPS_PER_FORCE
    return float(n_interactions) * per


def flops_from_counter(counter) -> float:
    """Total operations recorded by an InteractionCounter.

    Force-only interactions book 38 ops; interactions that also
    produced a jerk book the additional 19.
    """
    return (
        counter.force_interactions * FLOPS_PER_FORCE
        + counter.jerk_interactions * FLOPS_PER_JERK
    )


def paper_total_flops() -> float:
    """The paper's total operation count: steps x N x 57 ~= 1.1e18."""
    from ..constants import PAPER_N_PLANETESIMALS, PAPER_TOTAL_BLOCK_STEPS

    n = PAPER_N_PLANETESIMALS + 2
    return PAPER_TOTAL_BLOCK_STEPS * n * FLOPS_PER_INTERACTION


def tflops(flops_per_s: float) -> float:
    """Convert flop/s to Tflops for report tables."""
    return flops_per_s / 1e12
