"""Deterministic SPMD mini-runtime: message-passing programs in-process.

The phase simulator (:mod:`repro.parallel.comm`) prices *transcripts*
of communication; this module runs actual *programs* — the style of the
mpi4py tutorials — deterministically in one process, so distributed
algorithms (like the systolic ring of :mod:`repro.parallel.ring`) can
be implemented, tested, and costed without real processes.

A rank program is a generator that ``yield``s communication operations
and receives their results::

    def program(comm):
        if comm.rank == 0:
            yield comm.send(1, np.arange(10))
        else:
            data = yield comm.recv(0)
        total = yield comm.allreduce(float(comm.rank))
        return total

    vm = VirtualMachine(n_ranks=2)
    result = vm.run(program)
    result.returns      # per-rank return values
    result.clock        # per-rank logical end times [s]
    result.total_bytes  # bytes moved

Semantics:

* point-to-point: ``send``/``recv`` match FIFO per (src, dst) pair;
* collectives: ``barrier``, ``bcast``, ``allgather``, ``reduce``,
  ``allreduce`` complete when every rank has posted its call (loose
  BSP); every rank must post collectives in the same order;
* logical time: message completion =
  ``max(sender clock, receiver clock) + latency + bytes/bandwidth``
  (a LogP-style model); collective completion = barrier of all clocks
  plus the slowest member transfer;
* determinism: the scheduler polls ranks in rank order — no threads,
  no races; a cycle with no runnable rank raises :class:`CommError`
  (deadlock) with the blocked-op summary;
* protocol checking: every operation carries a **superstep tag** (the
  rank's collective counter).  Two ranks blocked on collectives with
  different kinds or different superstep tags — one in ``barrier``,
  another in ``allreduce`` — is a schedule bug that would hang a real
  MPI job; here it raises :class:`~repro.errors.SpmdProtocolError`
  immediately, with the per-rank blocked-op summary.  The multiprocess
  engine (:mod:`repro.parallel.proc`) applies the same check across
  real processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import CommError, SpmdProtocolError

__all__ = ["VirtualMachine", "SpmdResult", "RankComm", "describe_op"]


def _payload_bytes(data) -> int:
    """Byte size of a message payload (ndarray-aware)."""
    if data is None:
        return 0
    if isinstance(data, np.ndarray):
        return int(data.nbytes)
    if isinstance(data, (bytes, bytearray)):
        return len(data)
    if isinstance(data, (int, float, bool, np.floating, np.integer)):
        return 8
    if isinstance(data, (list, tuple)):
        return sum(_payload_bytes(x) for x in data)
    return 64  # conservative default for small objects


# -- operation descriptors ---------------------------------------------------


@dataclass
class _Send:
    dst: int
    data: object
    nbytes: int
    superstep: int = -1


@dataclass
class _Recv:
    src: int
    superstep: int = -1


@dataclass
class _Collective:
    kind: str  # barrier | bcast | allgather | reduce | allreduce
    root: int | None
    data: object
    op: object
    #: superstep tag == the poster's collective counter.  In a legal
    #: BSP program every rank posts the same collective sequence, so
    #: simultaneously-blocked collectives must agree on (kind, tag).
    superstep: int = -1


def describe_op(op) -> str:
    """Human-readable ``kind@superstep`` label for a blocked operation."""
    if isinstance(op, _Collective):
        return f"{op.kind}@s{op.superstep}"
    if isinstance(op, _Send):
        return f"send(dst={op.dst})@s{op.superstep}"
    if isinstance(op, _Recv):
        return f"recv(src={op.src})@s{op.superstep}"
    return type(op).__name__


class RankComm:
    """Communicator handed to each rank program.

    ``superstep`` counts the collectives this rank has posted; every
    operation descriptor is stamped with it, which is what lets both
    schedulers turn a mismatched schedule into a structured error
    instead of a hang.
    """

    def __init__(self, rank: int, size: int) -> None:
        self.rank = rank
        self.size = size
        self.superstep = 0

    # Factory methods produce descriptors for the scheduler; programs
    # must ``yield`` them.

    def send(self, dst: int, data, nbytes: int | None = None) -> _Send:
        """Post a message to ``dst``; yields ``None`` on completion."""
        if not (0 <= dst < self.size) or dst == self.rank:
            raise CommError(f"invalid send destination {dst}")
        return _Send(dst=dst, data=data,
                     nbytes=_payload_bytes(data) if nbytes is None else int(nbytes),
                     superstep=self.superstep)

    def recv(self, src: int) -> _Recv:
        """Receive from ``src``; yields the payload."""
        if not (0 <= src < self.size) or src == self.rank:
            raise CommError(f"invalid recv source {src}")
        return _Recv(src=src, superstep=self.superstep)

    def _collective(self, kind, root=None, data=None, op=None) -> _Collective:
        c = _Collective(kind=kind, root=root, data=data, op=op,
                        superstep=self.superstep)
        self.superstep += 1
        return c

    def barrier(self) -> _Collective:
        """Synchronise all ranks; yields ``None``."""
        return self._collective("barrier")

    def bcast(self, data, root: int = 0) -> _Collective:
        """Yields the root's payload on every rank."""
        return self._collective("bcast", root=root, data=data)

    def allgather(self, data) -> _Collective:
        """Yields the list of payloads ordered by rank."""
        return self._collective("allgather", data=data)

    def reduce(self, data, root: int = 0, op=None) -> _Collective:
        """Yields the reduction on the root, ``None`` elsewhere."""
        return self._collective("reduce", root=root, data=data, op=op)

    def allreduce(self, data, op=None) -> _Collective:
        """Yields the reduction on every rank."""
        return self._collective("allreduce", data=data, op=op)


@dataclass
class SpmdResult:
    """Outcome of one :meth:`VirtualMachine.run`."""

    returns: list
    clock: list
    total_bytes: int
    messages: int


def _default_reduce(parts):
    """Sum that works for ndarrays and scalars."""
    out = parts[0]
    for p in parts[1:]:
        out = out + p
    return out


class VirtualMachine:
    """Runs one SPMD program on ``n_ranks`` virtual hosts.

    Parameters
    ----------
    n_ranks:
        Number of ranks.
    bandwidth:
        Link bandwidth [bytes/s] of every rank's interface.
    latency:
        Per-message latency [s].
    """

    def __init__(
        self,
        n_ranks: int,
        bandwidth: float = 100e6,
        latency: float = 50e-6,
    ) -> None:
        if n_ranks < 1:
            raise CommError("need at least one rank")
        if bandwidth <= 0 or latency < 0:
            raise CommError("invalid link parameters")
        self.n_ranks = int(n_ranks)
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)

    # -- execution -----------------------------------------------------------

    def run(self, program, *args) -> SpmdResult:
        """Execute ``program(comm, *args)`` on every rank to completion."""
        comms = [RankComm(r, self.n_ranks) for r in range(self.n_ranks)]
        gens = [program(comms[r], *args) for r in range(self.n_ranks)]

        clock = [0.0] * self.n_ranks
        returns: list = [None] * self.n_ranks
        done = [False] * self.n_ranks
        # what each rank is blocked on: None = runnable
        blocked: list = [None] * self.n_ranks
        # value to inject at next resume
        inbox: list = [None] * self.n_ranks
        # FIFO mailboxes for point-to-point: (src, dst) -> list of (data, nbytes, t_post)
        mail: dict = {}
        # pending recvs: (src, dst) -> True
        total_bytes = 0
        messages = 0

        def advance(r):
            """Resume rank r with inbox[r]; set its next blocked op."""
            nonlocal total_bytes
            try:
                op = gens[r].send(inbox[r]) if started[r] else next(gens[r])
            except StopIteration as stop:
                returns[r] = stop.value
                done[r] = True
                blocked[r] = None
                return
            started[r] = True
            inbox[r] = None
            blocked[r] = op

        started = [False] * self.n_ranks
        for r in range(self.n_ranks):
            advance(r)

        def transfer_time(nbytes):
            return self.latency + nbytes / self.bandwidth

        for _ in range(10_000_000):  # hard cap against runaway programs
            if all(done):
                break
            progressed = False

            # 1) match point-to-point pairs
            for r in range(self.n_ranks):
                op = blocked[r]
                if isinstance(op, _Send):
                    key = (r, op.dst)
                    mail.setdefault(key, []).append((op.data, op.nbytes, clock[r]))
                    # sends are buffered (eager): sender proceeds after
                    # injecting; its clock pays the serialisation cost
                    clock[r] += transfer_time(op.nbytes)
                    total_bytes += op.nbytes
                    messages += 1
                    inbox[r] = None
                    advance(r)
                    progressed = True
            for r in range(self.n_ranks):
                op = blocked[r]
                if isinstance(op, _Recv):
                    key = (op.src, r)
                    queue = mail.get(key)
                    if queue:
                        data, nbytes, t_post = queue.pop(0)
                        arrive = max(t_post + transfer_time(nbytes), clock[r])
                        clock[r] = arrive
                        inbox[r] = data
                        advance(r)
                        progressed = True

            # 2) collectives: complete when all ranks block on the same
            #    (kind, superstep) descriptor
            coll_ranks = [
                r for r in range(self.n_ranks)
                if isinstance(blocked[r], _Collective)
            ]
            if coll_ranks:
                # Superstep-tag check: two simultaneously-blocked
                # collectives must agree on (kind, superstep) — in a
                # legal program a rank cannot pass collective k until
                # every rank has posted it.  Disagreement (or a rank
                # that returned without posting it) can never resolve;
                # fail fast instead of deadlocking.
                tags = {
                    (blocked[r].kind, blocked[r].superstep) for r in coll_ranks
                }
                if len(tags) > 1:
                    raise SpmdProtocolError(
                        f"collective mismatch across ranks: {sorted(tags)}",
                        blocked=self._blocked_summary(blocked, done),
                    )
                if any(done):
                    kind, step = next(iter(tags))
                    finished = [r for r in range(self.n_ranks) if done[r]]
                    raise SpmdProtocolError(
                        f"collective mismatch: ranks {coll_ranks} wait on "
                        f"{kind}@s{step} but ranks {finished} already "
                        "returned without posting it",
                        blocked=self._blocked_summary(blocked, done),
                    )
            if len(coll_ranks) == self.n_ranks:
                colls = [blocked[r] for r in coll_ranks]
                self._complete_collective(colls, clock, inbox)
                nbytes = sum(_payload_bytes(c.data) for c in colls)
                total_bytes += nbytes
                messages += self.n_ranks
                for r in range(self.n_ranks):
                    advance(r)
                progressed = True

            if not progressed:
                if all(done):
                    break
                waiting = self._blocked_summary(blocked, done)
                # a recv whose source has returned (and left no mail)
                # is a schedule bug, not a transient stall
                for r in range(self.n_ranks):
                    op = blocked[r]
                    if (
                        isinstance(op, _Recv)
                        and done[op.src]
                        and not mail.get((op.src, r))
                    ):
                        raise SpmdProtocolError(
                            f"rank {r} waits on recv(src={op.src}) but rank "
                            f"{op.src} returned without sending (superstep "
                            f"mismatch at s{op.superstep})",
                            blocked=waiting,
                        )
                raise CommError(f"deadlock: ranks blocked on {waiting}")
        else:  # pragma: no cover - loop cap
            raise CommError("program exceeded the scheduler's step budget")

        return SpmdResult(
            returns=returns, clock=clock, total_bytes=total_bytes, messages=messages
        )

    def _blocked_summary(self, blocked, done) -> dict:
        """``rank -> blocked-op label`` for error messages."""
        return {
            r: describe_op(blocked[r])
            for r in range(self.n_ranks)
            if not done[r] and blocked[r] is not None
        }

    def _complete_collective(self, colls, clock, inbox) -> None:
        """Resolve one collective across all ranks; update clocks/inboxes."""
        kind = colls[0].kind
        n = self.n_ranks
        payloads = [c.data for c in colls]
        sizes = [_payload_bytes(d) for d in payloads]
        barrier_time = max(clock)

        if kind == "barrier":
            finish = barrier_time + self.latency
            results = [None] * n
        elif kind == "bcast":
            root = colls[0].root
            nbytes = sizes[root]
            finish = barrier_time + self.latency + nbytes / self.bandwidth
            results = [payloads[root]] * n
        elif kind == "allgather":
            nbytes = sum(sizes)
            finish = barrier_time + self.latency + nbytes / self.bandwidth
            results = [list(payloads)] * n
        elif kind in ("reduce", "allreduce"):
            op = colls[0].op or _default_reduce
            reduced = op(payloads) if colls[0].op else _default_reduce(payloads)
            nbytes = max(sizes) if kind == "reduce" else sum(sizes)
            finish = barrier_time + self.latency + nbytes / self.bandwidth
            if kind == "reduce":
                root = colls[0].root
                results = [reduced if r == root else None for r in range(n)]
            else:
                results = [reduced] * n
        else:  # pragma: no cover - descriptor factory prevents this
            raise CommError(f"unknown collective {kind}")

        for r in range(n):
            clock[r] = finish
            inbox[r] = results[r]
