"""The Figure-6 two-dimensional host matrix, functionally.

The paper's second solution to the host-communication problem:
"configure host computers themselves in a 2-dimensional network ...
use only 4 hosts (in one row or one column) as real hosts to do time
integrations and use other 12 hosts just to emulate the network
boards."

This module *executes* that scheme on the SPMD runtime: a q x q rank
matrix where rank (r, c) owns j-block c and serves i-block r.  One
force evaluation is:

1. every rank computes the partial force of its j-block on its row's
   i-block (no communication — each column already holds its j-block);
2. partial forces reduce along each row to the row root (column 0),
   the "real host" of that row;
3. row roots allgather so every real host sees the full result.

Per-rank traffic is O(N/q) per phase — the 1/sqrt(p) scaling the
COMM-STRAT benchmark shows analytically, here with actual data moving.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CommError
from .programs import ProgramContext, grid_force_program, partition_bounds
from .spmd import SpmdResult, VirtualMachine

__all__ = ["GridForceResult", "grid_forces"]


@dataclass(frozen=True)
class GridForceResult:
    """Forces from a 2-D grid run plus its communication costs."""

    acc: np.ndarray
    jerk: np.ndarray
    total_bytes: int
    messages: int
    clock: list


def grid_forces(
    pos: np.ndarray,
    vel: np.ndarray,
    mass: np.ndarray,
    eps: float,
    q: int,
    vm: VirtualMachine | None = None,
) -> GridForceResult:
    """All-pairs softened force+jerk on a ``q x q`` host matrix."""
    pos = np.ascontiguousarray(pos, dtype=np.float64)
    vel = np.ascontiguousarray(vel, dtype=np.float64)
    mass = np.ascontiguousarray(mass, dtype=np.float64)
    n = pos.shape[0]
    if q < 1:
        raise CommError("grid dimension must be positive")
    if q * q > max(n, 1) * q:  # pragma: no cover - defensive
        raise CommError("grid too large")
    if q > n:
        raise CommError("more rows than particles")
    vm = vm or VirtualMachine(n_ranks=q * q)
    if vm.n_ranks != q * q:
        raise CommError("virtual machine size must be q*q")
    ctx = ProgramContext(
        arrays={"pos": pos, "vel": vel, "mass": mass},
        params={"eps": eps, "q": q, "bounds": partition_bounds(n, q)},
    )

    result: SpmdResult = vm.run(grid_force_program, ctx)
    acc = np.zeros((n, 3))
    jerk = np.zeros((n, 3))
    for item in result.returns[0]:
        if item is None:
            continue
        lo, hi, a, j = item
        acc[lo:hi] = a
        jerk[lo:hi] = j
    return GridForceResult(
        acc=acc,
        jerk=jerk,
        total_bytes=result.total_bytes,
        messages=result.messages,
        clock=result.clock,
    )
