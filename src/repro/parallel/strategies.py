"""The paper's host-parallelisation strategies (Section 4.3, Figs 3-7).

Four ways to attach ``p`` hosts to GRAPE hardware, modelled as the
communication work one block step of ``n_active`` particles generates:

* :class:`NaiveCopyStrategy` (Figure 3) — every host keeps a full
  particle copy, so every corrected particle must reach every host over
  the shared network.  Per-host traffic is O(n_active) **independent of
  p** — the paper: "the amount of communication is not reduced when we
  increase the number of host computers".
* :class:`GrapeExchangeStrategy` (Figures 4-5) — GRAPE boards exchange
  j-data over dedicated LVDS links through network boards; hosts only
  synchronise.  Host NIC traffic drops to (almost) zero; the data ride
  fast dedicated links.
* :class:`Host2DGridStrategy` (Figure 6) — hosts in a q x q matrix;
  a row integrates, columns forward j-updates.  Per-host traffic scales
  as 1/q = 1/sqrt(p).
* :class:`HybridStrategy` (Figure 7, the built machine) — hardware
  exchange inside each 4-node cluster, GbE columns between clusters.

Every strategy exposes the same interface: an analytic per-host NIC
byte count and a simulated step time over its actual topology using
:class:`~repro.parallel.comm.CommSimulator`.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError
from ..grape.host import IPARTICLE_BYTES, JWRITE_BYTES, RESULT_BYTES
from .comm import CommSimulator, Transfer
from .topology import mesh2d_topology, nb_tree_topology, switch_topology

__all__ = [
    "HostParallelStrategy",
    "NaiveCopyStrategy",
    "GrapeExchangeStrategy",
    "Host2DGridStrategy",
    "HybridStrategy",
    "all_strategies",
]


class HostParallelStrategy:
    """Common interface of the four parallelisation schemes."""

    #: short identifier used in benchmark tables
    name: str = "abstract"

    def __init__(self, p: int) -> None:
        if p < 1:
            raise ConfigurationError("need at least one host")
        self.p = int(p)
        self.sim = self._build_simulator()

    def _build_simulator(self) -> CommSimulator:
        raise NotImplementedError

    def host_nic_bytes_per_step(self, n_active: int) -> float:
        """Analytic bytes through one host's network interface per step."""
        raise NotImplementedError

    def step(self, n_active: int) -> float:
        """Simulate one block step's communication; returns seconds."""
        raise NotImplementedError

    def share(self, n_active: int) -> int:
        """Particles owned per host (ceil split)."""
        return math.ceil(n_active / self.p)


class NaiveCopyStrategy(HostParallelStrategy):
    """Figure 3: independent host+GRAPE pairs on a switch.

    Each host integrates its 1/p share, then all-gathers the corrected
    particles so every host's full copy stays coherent.
    """

    name = "naive-copy"

    def _build_simulator(self) -> CommSimulator:
        return CommSimulator(switch_topology(self.p))

    def host_nic_bytes_per_step(self, n_active: int) -> float:
        s = self.share(n_active)
        # send to p-1 peers + receive from p-1 peers
        return 2.0 * (self.p - 1) * s * JWRITE_BYTES

    def step(self, n_active: int) -> float:
        report = self.sim.allgather(self.share(n_active) * JWRITE_BYTES)
        return report.seconds


class GrapeExchangeStrategy(HostParallelStrategy):
    """Figures 4-5: GRAPEs exchange data over dedicated NB links.

    Hosts push only their own i/j traffic over PCI; the network boards
    broadcast it to all processor boards.  Host NICs carry only the
    per-step synchronisation.
    """

    name = "grape-exchange"

    #: bytes of the per-step synchronisation message
    SYNC_BYTES = 64

    def _build_simulator(self) -> CommSimulator:
        return CommSimulator(nb_tree_topology(self.p))

    def host_nic_bytes_per_step(self, n_active: int) -> float:
        # hosts only synchronise; particle traffic bypasses their NICs
        return 2.0 * self.SYNC_BYTES

    def step(self, n_active: int) -> float:
        s = self.share(n_active)
        topo = self.sim.topology
        transfers = []
        payload = s * (IPARTICLE_BYTES + JWRITE_BYTES)
        for h in range(self.p):
            # host h streams its share into its NB; the NB cascade
            # carries it to every other NB (broadcast mode), each of
            # which forwards to its boards — model the worst single
            # cascade route: h's NB to the farthest NB's first board.
            transfers.append(Transfer(f"h{h}", f"pb{h}.0", payload))
            far = (self.p - 1) if h < self.p - 1 else 0
            if far != h:
                transfers.append(Transfer(f"h{h}", f"pb{far}.0", payload))
        report = self.sim.phase(transfers)
        # result reduction back up (same shape, reversed)
        back = self.sim.phase(
            Transfer(f"pb{h}.0", f"h{h}", s * RESULT_BYTES) for h in range(self.p)
        )
        return report.seconds + back.seconds


class Host2DGridStrategy(HostParallelStrategy):
    """Figure 6: hosts in a q x q matrix, rows integrate, columns forward.

    Requires ``p`` to be a perfect square.
    """

    name = "host-2d-grid"

    def __init__(self, p: int) -> None:
        q = math.isqrt(p)
        if q * q != p:
            raise ConfigurationError("the 2-D grid strategy needs a square host count")
        self.q = q
        super().__init__(p)

    def _build_simulator(self) -> CommSimulator:
        return CommSimulator(mesh2d_topology(self.q, self.q))

    def host_nic_bytes_per_step(self, n_active: int) -> float:
        # a row host owns n_active/q particles and must push updates to
        # the q-1 other hosts of its column (and receive likewise from
        # row peers' columns it sits in)
        s_row = math.ceil(n_active / self.q)
        return 2.0 * (self.q - 1) * s_row * JWRITE_BYTES / self.q

    def step(self, n_active: int) -> float:
        s_row = math.ceil(n_active / self.q)
        per_hop = math.ceil(s_row / self.q) * JWRITE_BYTES
        transfers = []
        for c in range(self.q):
            owner = f"h0.{c}"  # row 0 are the "real hosts"
            for r in range(1, self.q):
                transfers.append(Transfer(owner, f"h{r}.{c}", per_hop * self.q))
        report = self.sim.phase(transfers)
        return report.seconds


class HybridStrategy(HostParallelStrategy):
    """Figure 7: NB hardware inside clusters, GbE columns between them.

    ``p`` hosts in ``n_clusters`` rows; within a cluster the exchange is
    hardware (charged to LVDS, not the host NIC); across clusters each
    host sends its share down its column over Gigabit Ethernet.
    """

    name = "hybrid"

    def __init__(self, p: int, n_clusters: int = 4) -> None:
        if p % n_clusters != 0:
            raise ConfigurationError("host count must divide into clusters")
        self.n_clusters = n_clusters
        self.nodes_per_cluster = p // n_clusters
        super().__init__(p)

    def _build_simulator(self) -> CommSimulator:
        return CommSimulator(switch_topology(self.p))

    def host_nic_bytes_per_step(self, n_active: int) -> float:
        s = self.share(n_active)
        remote = self.n_clusters - 1
        return 2.0 * remote * s * JWRITE_BYTES

    def step(self, n_active: int) -> float:
        s = self.share(n_active)
        hosts = self.sim.topology.hosts
        transfers = []
        for c in range(self.n_clusters):
            for k in range(self.nodes_per_cluster):
                src = hosts[c * self.nodes_per_cluster + k]
                for c2 in range(self.n_clusters):
                    if c2 == c:
                        continue  # intra-cluster rides the NB hardware
                    dst = hosts[c2 * self.nodes_per_cluster + k]
                    transfers.append(Transfer(src, dst, s * JWRITE_BYTES))
        report = self.sim.phase(transfers)
        # intra-cluster hardware exchange: one LVDS stream of the
        # cluster's i-block (see Grape6TimingModel); add its time here
        # so strategies are comparable end to end.
        from ..constants import GRAPE6_LVDS_LINK_MBPS

        share_cluster = math.ceil(n_active / self.n_clusters)
        lvds = share_cluster * (IPARTICLE_BYTES + RESULT_BYTES) / (
            GRAPE6_LVDS_LINK_MBPS * 1e6
        )
        return report.seconds + lvds


def all_strategies(p: int):
    """Instantiate every strategy valid for ``p`` hosts."""
    out = [NaiveCopyStrategy(p), GrapeExchangeStrategy(p)]
    q = math.isqrt(p)
    if q * q == p and p > 1:
        out.append(Host2DGridStrategy(p))
    if p % 4 == 0:
        out.append(HybridStrategy(p))
    return out
