"""Phase-based communication cost simulator.

The substrate under the COMM-STRAT experiment.  A *phase* is a set of
point-to-point transfers that may proceed concurrently (one
communication round of an SPMD step); its duration is set by the most
congested link:

.. math::

    T_{phase} = \\max_{e \\in E}\\;
        \\Big( m_e \\, \\ell_e + \\frac{B_e}{\\beta_e} \\Big),

where over edge ``e`` the phase routes ``m_e`` messages totalling
``B_e`` bytes, with latency ``l_e`` and bandwidth ``beta_e`` — a
store-and-forward LogGP-style congestion model.  Messages follow
shortest-path routes from :class:`~repro.parallel.topology.Topology`.

Collective helpers (:meth:`CommSimulator.broadcast`,
:meth:`~CommSimulator.allgather`, :meth:`~CommSimulator.reduce`) expand
to transfer sets the way the flat (switch-based) implementations of the
era did, which is exactly the behaviour the paper's Section 4.3
argument targets.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ..errors import CommError
from .topology import Topology

__all__ = ["Transfer", "PhaseReport", "CommSimulator"]


@dataclass(frozen=True)
class Transfer:
    """One point-to-point message."""

    src: object
    dst: object
    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise CommError("cannot transfer negative bytes")


@dataclass(frozen=True)
class PhaseReport:
    """Outcome of one communication phase."""

    seconds: float
    total_bytes: int
    n_transfers: int
    #: The edge that set the phase time and its byte load.
    bottleneck_edge: tuple | None
    bottleneck_bytes: int


class CommSimulator:
    """Accumulates phases over a simulated run.

    With an observability bundle attached (``obs``), every phase feeds
    the ``comm.*`` metrics and emits a ``comm.phase`` span on the
    model-time track (its duration is the simulated phase time, not
    wall time).

    With a :class:`~repro.resilience.FaultInjector` attached
    (``injector``), comm-domain faults scheduled at the current phase
    index drop transfers: each drop retransmits the phase with
    exponential backoff, the extra time is charged to the phase, and
    ``comm.retransmits_total`` counts the repeats.
    """

    def __init__(self, topology: Topology, obs=None, injector=None) -> None:
        from ..obs import NULL_OBS

        self.topology = topology
        self.total_seconds = 0.0
        self.total_bytes = 0
        self.phases = 0
        self.retransmits = 0
        self.injector = injector
        #: Cumulative bytes per edge over all phases.
        self.edge_bytes: dict[tuple, int] = defaultdict(int)
        self.obs = obs or NULL_OBS
        m = self.obs.metrics
        self._c_bytes = m.counter("comm.bytes_sent")
        self._c_messages = m.counter("comm.messages_total")
        self._c_phases = m.counter("comm.phases_total")
        self._c_seconds = m.counter("comm.phase_seconds")
        self._h_bytes = m.histogram("comm.phase_bytes")
        self._c_retrans = m.counter("comm.retransmits_total")

    # -- core -----------------------------------------------------------------

    def phase(self, transfers) -> PhaseReport:
        """Execute one concurrent round of transfers."""
        transfers = [t for t in transfers if t.src != t.dst and t.nbytes > 0]
        edge_load: dict[tuple, int] = defaultdict(int)
        edge_msgs: dict[tuple, int] = defaultdict(int)
        for t in transfers:
            for edge in self.topology.path_edges(t.src, t.dst):
                edge_load[edge] += t.nbytes
                edge_msgs[edge] += 1

        seconds = 0.0
        bottleneck = None
        bottleneck_bytes = 0
        for edge, nbytes in edge_load.items():
            attrs = self.topology.edge_attrs(edge)
            t_edge = edge_msgs[edge] * attrs["latency"] + nbytes / attrs["bandwidth"]
            if t_edge > seconds:
                seconds = t_edge
                bottleneck = edge
                bottleneck_bytes = nbytes
            self.edge_bytes[edge] += nbytes

        if self.injector is not None:
            extra, retries = self.injector.comm_overhead(self.phases, seconds)
            if retries:
                seconds += extra
                self.retransmits += retries
                self._c_retrans.inc(retries)

        total = sum(t.nbytes for t in transfers)
        self.total_seconds += seconds
        self.total_bytes += total
        self.phases += 1
        self._c_bytes.inc(total)
        self._c_messages.inc(len(transfers))
        self._c_phases.inc()
        self._c_seconds.inc(seconds)
        self._h_bytes.observe(total)
        if self.obs.enabled:
            self.obs.tracer.model_span(
                "comm.phase",
                seconds,
                attrs={"bytes": total, "transfers": len(transfers)},
            )
        return PhaseReport(
            seconds=seconds,
            total_bytes=total,
            n_transfers=len(transfers),
            bottleneck_edge=bottleneck,
            bottleneck_bytes=bottleneck_bytes,
        )

    # -- collectives -------------------------------------------------------------

    def broadcast(self, root, nbytes: int, targets=None) -> PhaseReport:
        """Root sends the same payload to every (other) target host."""
        targets = self.topology.hosts if targets is None else list(targets)
        return self.phase(
            Transfer(root, t, nbytes) for t in targets if t != root
        )

    def allgather(self, nbytes_per_host: int, hosts=None) -> PhaseReport:
        """Every host sends its block to every other host (flat)."""
        hosts = self.topology.hosts if hosts is None else list(hosts)
        return self.phase(
            Transfer(s, d, nbytes_per_host)
            for s in hosts
            for d in hosts
            if s != d
        )

    def gather(self, root, nbytes_per_host: int, hosts=None) -> PhaseReport:
        """Every host sends its block to the root."""
        hosts = self.topology.hosts if hosts is None else list(hosts)
        return self.phase(
            Transfer(s, root, nbytes_per_host) for s in hosts if s != root
        )

    def reduce(self, root, nbytes: int, hosts=None) -> PhaseReport:
        """Flat reduction: payloads converge on the root.

        (The NB hardware reduction is modelled separately in
        :mod:`repro.grape.network`; this is the software fallback the
        naive strategies must use.)
        """
        return self.gather(root, nbytes, hosts)

    def reset(self) -> None:
        self.total_seconds = 0.0
        self.total_bytes = 0
        self.phases = 0
        self.edge_bytes.clear()
