"""Engine-portable SPMD rank programs.

The same generator programs run on two schedulers:

* :class:`~repro.parallel.spmd.VirtualMachine` — deterministic
  in-process execution with a LogP-style *predicted* cost model;
* :class:`~repro.parallel.proc.ProcEngine` — real worker processes
  over pipes and shared memory, with *measured* wall-clock costs.

To be portable a program must be a module-level callable taking
``(comm, ctx)`` where ``ctx`` is a :class:`ProgramContext`: named
arrays (plain ndarrays on the VM, shared-memory views in workers) plus
a picklable parameter dict.  Programs treat ``ctx.arrays`` as
read-only input and move everything else through ``comm``.

Three programs live here:

* :func:`ring_force_program` — the systolic travelling-block ring of
  :mod:`repro.parallel.ring`;
* :func:`grid_force_program` — the Figure-6 q x q host matrix of
  :mod:`repro.parallel.grid2d`;
* :func:`chunk_force_program` — the block-step force evaluation used
  by :class:`repro.parallel.backend.SpmdBackend`: ranks compute
  per-j-chunk partials with the accel engine's chunk kernel and the
  root folds them in ascending global chunk order, which is what keeps
  multiprocess results bit-identical to the serial and threaded
  single-process paths.
"""

from __future__ import annotations

import numpy as np

from ..core.forces import acc_jerk

__all__ = [
    "ProgramContext",
    "ArrayView",
    "partition_bounds",
    "ring_force_program",
    "grid_force_program",
    "chunk_force_program",
]


class ProgramContext:
    """Inputs of one SPMD program: named arrays + picklable params."""

    def __init__(self, arrays: dict | None = None, params: dict | None = None):
        self.arrays = dict(arrays or {})
        self.params = dict(params or {})


class ArrayView:
    """Duck-typed stand-in for a ``ParticleSystem`` built from bare arrays.

    Exposes exactly the attributes the accel engine's
    ``acc_jerk_active_chunk`` touches (``mass``/``pos``/``vel``/
    ``acc``/``jerk``/``t``/``n``), so workers can run force kernels
    against shared-memory segments without constructing a full system.
    """

    def __init__(self, mass, pos, vel, acc, jerk, t) -> None:
        self.mass = mass
        self.pos = pos
        self.vel = vel
        self.acc = acc
        self.jerk = jerk
        self.t = t

    @property
    def n(self) -> int:
        return self.mass.shape[0]

    @classmethod
    def from_arrays(cls, arrays: dict) -> "ArrayView":
        return cls(arrays["mass"], arrays["pos"], arrays["vel"],
                   arrays["acc"], arrays["jerk"], arrays["t"])


def partition_bounds(n: int, p: int) -> list[int]:
    """Bounds of contiguous ~n/p slices (picklable ints, length p+1)."""
    return [int(b) for b in np.linspace(0, n, p + 1).astype(int)]


# -- the systolic ring (paper Figures 4-5, in software) ----------------------


def ring_force_program(comm, ctx):
    """Travelling-block all-pairs forces on a ring of ranks.

    ``ctx.arrays``: ``pos``/``vel``/``mass`` of the whole system;
    ``ctx.params``: ``eps`` and the partition ``bounds``.  Returns the
    per-rank ``(lo, hi, acc, jerk)`` gathered on every rank.
    """
    pos, vel, mass = ctx.arrays["pos"], ctx.arrays["vel"], ctx.arrays["mass"]
    eps = float(ctx.params["eps"])
    bounds = ctx.params["bounds"]
    lo, hi = bounds[comm.rank], bounds[comm.rank + 1]
    mine = np.arange(lo, hi)
    my_pos, my_vel = pos[lo:hi], vel[lo:hi]
    # travelling block starts as my own slice
    blk_idx, blk_pos, blk_vel, blk_mass = mine, pos[lo:hi], vel[lo:hi], mass[lo:hi]

    acc = np.zeros((mine.size, 3))
    jerk = np.zeros((mine.size, 3))
    left = (comm.rank - 1) % comm.size
    right = (comm.rank + 1) % comm.size

    for hop in range(comm.size):
        if np.array_equal(blk_idx, mine):
            # self block: exclude the diagonal
            a, j = acc_jerk(
                my_pos, my_vel, blk_pos, blk_vel, blk_mass, eps,
                self_indices=np.arange(mine.size),
            )
        else:
            a, j = acc_jerk(my_pos, my_vel, blk_pos, blk_vel, blk_mass, eps)
        acc += a
        jerk += j
        if hop < comm.size - 1 and comm.size > 1:
            payload = (blk_idx, blk_pos, blk_vel, blk_mass)
            # even ranks send first to break the cycle deterministically
            if comm.rank % 2 == 0:
                yield comm.send(right, payload)
                incoming = yield comm.recv(left)
            else:
                incoming = yield comm.recv(left)
                yield comm.send(right, payload)
            blk_idx, blk_pos, blk_vel, blk_mass = incoming

    gathered = yield comm.allgather((lo, hi, acc, jerk))
    return gathered


# -- the Figure-6 2-D host matrix --------------------------------------------


def grid_force_program(comm, ctx):
    """All-pairs forces on a ``q x q`` rank matrix.

    Rank ``(r, c)`` computes its j-block's partial force on its row's
    i-block; partials reduce along each row to the row root (column 0,
    the "real host"), in ascending source-column order; row roots
    allgather.  ``ctx.params``: ``eps``, ``q``, ``bounds``.
    """
    pos, vel, mass = ctx.arrays["pos"], ctx.arrays["vel"], ctx.arrays["mass"]
    eps = float(ctx.params["eps"])
    q = int(ctx.params["q"])
    bounds = ctx.params["bounds"]
    row, col = divmod(comm.rank, q)
    ilo, ihi = bounds[row], bounds[row + 1]
    jlo, jhi = bounds[col], bounds[col + 1]

    if row == col:
        a, j = acc_jerk(
            pos[ilo:ihi], vel[ilo:ihi], pos[jlo:jhi], vel[jlo:jhi],
            mass[jlo:jhi], eps, self_indices=np.arange(ihi - ilo),
        )
    else:
        a, j = acc_jerk(
            pos[ilo:ihi], vel[ilo:ihi], pos[jlo:jhi], vel[jlo:jhi],
            mass[jlo:jhi], eps,
        )

    root = row * q
    if col != 0:
        yield comm.send(root, (a, j))
        gathered = yield comm.allgather(None)
        return gathered
    for src_col in range(1, q):
        pa, pj = yield comm.recv(row * q + src_col)
        a = a + pa
        j = j + pj
    gathered = yield comm.allgather((ilo, ihi, a, j))
    return gathered


# -- the block-step chunk program (SpmdBackend) ------------------------------


def chunk_force_program(comm, ctx):
    """One block-step force evaluation, decomposed over j-chunks.

    The global chunk plan (``ctx.params["chunks"]``, the accel
    engine's ``jplan``) is dealt round-robin across ranks; each rank
    computes its chunks' ``(acc, jerk)`` partials with
    ``acc_jerk_active_chunk`` and routes them to rank 0, which folds
    them **in ascending global chunk index** — the exact summation
    order of the engine's serial and threaded sweeps, so the result is
    bit-identical to a single-process run.

    ``ctx.params["route"]`` selects the exchange pattern: ``"gather"``
    (every rank sends straight to the root) or ``"ring"`` (partials
    drain hop-by-hop toward rank 0 — the systolic pattern, exercising
    p2p chains).  A closing ``barrier`` marks the superstep boundary.
    Returns ``(acc, jerk)`` on rank 0, ``None`` elsewhere.
    """
    from ..accel import get_engine

    engine = get_engine()
    sysv = ArrayView.from_arrays(ctx.arrays)
    active = np.asarray(ctx.arrays["active"], dtype=np.intp)
    chunks = [tuple(c) for c in ctx.params["chunks"]]
    t_now = float(ctx.params["t_now"])
    eps = float(ctx.params["eps"])
    route = ctx.params.get("route", "gather")

    parts = {
        k: engine.acc_jerk_active_chunk(sysv, active, t_now, eps, j0, j1)
        for k, (j0, j1) in enumerate(chunks)
        if k % comm.size == comm.rank
    }

    if comm.size > 1:
        if route == "ring":
            # systolic drain: rank r collects from r+1, forwards to r-1
            if comm.rank < comm.size - 1:
                incoming = yield comm.recv(comm.rank + 1)
                parts.update(incoming)
            if comm.rank > 0:
                yield comm.send(comm.rank - 1, parts)
        else:
            if comm.rank == 0:
                for src in range(1, comm.size):
                    incoming = yield comm.recv(src)
                    parts.update(incoming)
            else:
                yield comm.send(0, parts)
    yield comm.barrier()

    if comm.rank != 0:
        return None
    acc = np.zeros((active.size, 3))
    jerk = np.zeros((active.size, 3))
    # Fixed-order reduction: ascending global chunk index, matching
    # the engine's serial accumulation and threaded slab fold.
    for k in range(len(chunks)):
        pa, pj = parts[k]
        acc += pa
        jerk += pj
    return acc, jerk
