"""SPMD force backend: block-step forces over real worker processes.

:class:`SpmdBackend` plugs the supervised multiprocess engine of
:mod:`repro.parallel.proc` into the integration driver's
:class:`~repro.core.backends.ForceBackend` slot.  Every force
evaluation ships the particle arrays into shared memory and runs
:func:`~repro.parallel.programs.chunk_force_program`: the accel
engine's j-chunk plan is dealt round-robin across ranks, each rank
computes its chunks' partial ``(acc, jerk)`` with the engine's fused
chunk kernel, and rank 0 folds the partials in ascending global chunk
order — the exact summation order of the engine's serial sweep and
threaded slab reduction.  Consequence: a multiprocess run is
**bit-identical** to the equivalent in-process run, which is what makes
rank-kill chaos tests meaningful (recovery must reproduce the same
bits, not just similar physics).

Three execution modes share the one program:

* ``"proc"`` — the supervised process gang (heartbeats, restart,
  degrade);
* ``"vm"`` — the in-process :class:`~repro.parallel.spmd.VirtualMachine`
  (deterministic scheduling, predicted comm costs, no processes);
* ``"serial"`` — the plain accel-engine evaluation, as
  :class:`~repro.core.backends.HostDirectBackend` would do it (the
  equality baseline).
"""

from __future__ import annotations

import numpy as np

from ..core.backends import ForceBackend
from ..core.forces import InteractionCounter
from ..errors import ConfigurationError
from .proc import ProcConfig, ProcEngine, ProcResult
from .programs import ProgramContext, chunk_force_program
from .spmd import VirtualMachine

__all__ = ["SpmdBackend"]

_SHARED = ("mass", "pos", "vel", "acc", "jerk", "t")


class SpmdBackend(ForceBackend):
    """Block-step forces computed by an SPMD gang of worker processes.

    Parameters
    ----------
    eps:
        Plummer softening.
    n_ranks:
        Gang size (``mode="serial"`` ignores it).
    mode:
        ``"proc"`` (supervised processes), ``"vm"`` (in-process
        scheduler) or ``"serial"`` (single-process baseline).
    route:
        Partial-force exchange pattern of the chunk program:
        ``"gather"`` or ``"ring"``.
    config:
        :class:`~repro.parallel.proc.ProcConfig` supervision knobs.
    injector:
        Optional :class:`~repro.resilience.FaultInjector`; its
        rank-domain faults fire at superstep boundaries of the gang.
    engine:
        A :class:`repro.accel.KernelEngine` for the chunk plan and the
        serial/potential paths; defaults to the process-wide engine.
    obs:
        Observability bundle, forwarded to the process engine.
    """

    def __init__(
        self,
        eps: float,
        n_ranks: int = 2,
        mode: str = "proc",
        route: str = "gather",
        config: ProcConfig | None = None,
        injector=None,
        engine=None,
        obs=None,
    ) -> None:
        if eps < 0:
            raise ValueError("softening must be non-negative")
        if mode not in ("proc", "vm", "serial"):
            raise ConfigurationError(f"unknown spmd mode {mode!r}")
        if route not in ("gather", "ring"):
            raise ConfigurationError(f"unknown spmd route {route!r}")
        if n_ranks < 1:
            raise ConfigurationError("need at least one rank")
        self.eps = float(eps)
        self.n_ranks = int(n_ranks)
        self.mode = mode
        self.route = route
        self.config = config
        self.injector = injector
        self.obs = obs
        self.counter = InteractionCounter()
        if engine is None:
            from ..accel import get_engine

            engine = get_engine()
        self.engine = engine
        self._proc: ProcEngine | None = None
        #: the last :class:`~repro.parallel.proc.ProcResult` (proc mode)
        self.last_result: ProcResult | None = None

    # -- ForceBackend surface --------------------------------------------

    def load(self, system) -> None:
        if self.mode == "proc" and self._proc is None:
            self._proc = ProcEngine(
                self.n_ranks,
                self.config,
                injector=self.injector,
                obs=self.obs,
            )

    def forces_on(self, system, active: np.ndarray, t_now: float):
        active = np.asarray(active)
        if self.mode == "serial":
            return self.engine.acc_jerk_active(
                system, active, t_now, self.eps, counter=self.counter
            )
        params = {
            "eps": self.eps,
            "t_now": float(t_now),
            "chunks": [tuple(c) for c in self.engine.jplan(system.n)],
            "route": self.route,
        }
        self.counter.add(active.size, system.n, with_jerk=True)
        if self.mode == "vm":
            arrays = {name: getattr(system, name) for name in _SHARED}
            arrays["active"] = active
            ctx = ProgramContext(arrays=arrays, params=params)
            result = VirtualMachine(n_ranks=self.n_ranks).run(
                chunk_force_program, ctx
            )
            return result.returns[0]
        if self._proc is None:
            self.load(system)
        for name in _SHARED:
            self._proc.share(name, getattr(system, name))
        self._proc.share("active", active)
        self.last_result = self._proc.run(chunk_force_program, params)
        return self.last_result.returns[0]

    def push_updates(self, system, active: np.ndarray) -> None:
        # forces_on refreshes every shared segment per evaluation, so
        # corrected rows need no separate staging
        return None

    def potential(self, system) -> np.ndarray:
        n = system.n
        return self.engine.pairwise_potential(
            system.pos, system.pos, system.mass, self.eps,
            self_indices=np.arange(n),
        )

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Release the process gang's shared memory (idempotent)."""
        if self._proc is not None:
            self._proc.close()
            self._proc = None

    def __enter__(self) -> "SpmdBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
