"""Benchmark harness: measured multiprocess IPC vs the comm cost models.

Runs the shared rank force programs (ring exchange and 2-D grid
reduction) three ways for each scheme/rank-count point and records, per
entry:

* the **measured** wall clock of the supervised multiprocess engine
  (:class:`repro.parallel.proc.ProcEngine` — real processes, real pipes,
  real shared memory), with repeat samples so the bench-history gate can
  bootstrap a confidence interval;
* the in-process :class:`~repro.parallel.spmd.VirtualMachine`'s logical
  clock for the identical program — the latency/bandwidth *prediction*
  of the same message schedule;
* the Section 4.3 analytic strategy model
  (:class:`~repro.parallel.strategies.GrapeExchangeStrategy` for the
  ring, :class:`~repro.parallel.strategies.Host2DGridStrategy` for the
  grid): per-host NIC bytes and simulated step time over the paper's
  topology.

This closes the loop on the paper's scaling argument: the comm model
predicted the message-passing costs, and this benchmark measures what
the real IPC fabric actually charges for the same schedule.  Every run
also asserts the process results are bit-identical to the VM results —
a benchmark that drifted from the parity contract would be measuring
the wrong thing.

Writes the machine-readable baseline ``BENCH_spmd.json`` at the
repository root and appends a record to the bench-history store read by
``repro perf diff/trend/gate``.  Run as a module (repo root)::

    PYTHONPATH=src python -m repro.parallel.bench
    PYTHONPATH=src python -m repro.parallel.bench --quick -o /tmp/spmd.json

Document schema::

    {
      "benchmark": "spmd",
      "config":  {n, eps, repeats, vm_bandwidth, vm_latency, ...},
      "entries": [
        {"scheme": "ring", "p": 4, "n": 192,
         "wall_seconds": ..., "samples_seconds": [...], "repeats": 3,
         "vm_clock_seconds": ..., "model_step_seconds": ...,
         "ipc_bytes": ..., "ipc_messages": ..., "supersteps": ...,
         "model_nic_bytes": ..., "straggler_wait_seconds": ...},
        ...
      ]
    }
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

import numpy as np

__all__ = ["RING_RANKS", "GRID_SIDES", "run_spmd_bench", "main"]

#: Rank counts for the ring exchange scan.
RING_RANKS: tuple[int, ...] = (2, 4)

#: Grid sides q for the q x q 2-D reduction scan.
GRID_SIDES: tuple[int, ...] = (2,)

_EPS = 0.008


def _cluster(n: int, seed: int):
    rng = np.random.default_rng(seed)
    return (
        rng.normal(size=(n, 3)),
        rng.normal(size=(n, 3)) * 0.1,
        rng.uniform(0.5, 1.5, n) / n,
    )


def _assert_parity(vm_returns, proc_returns, label: str) -> None:
    """The measured engine must still be bit-identical to the VM.

    Each rank returns the allgathered list of ``(lo, hi, acc, jerk)``
    slabs (``None`` for grid ranks outside the compute row).
    """
    for rank, (vm_ret, proc_ret) in enumerate(zip(vm_returns, proc_returns)):
        for vm_item, proc_item in zip(vm_ret, proc_ret):
            if vm_item is None:
                if proc_item is not None:
                    raise AssertionError(
                        f"{label} rank {rank}: VM None, proc not"
                    )
                continue
            lo, hi, acc, jerk = vm_item
            plo, phi, pacc, pjerk = proc_item
            if (lo, hi) != (plo, phi):
                raise AssertionError(f"{label} rank {rank}: bounds differ")
            if not (np.array_equal(acc, pacc) and np.array_equal(jerk, pjerk)):
                raise AssertionError(f"{label} rank {rank}: bits differ")


def _measure_point(scheme: str, p: int, n: int, seed: int, repeats: int,
                   strategy, program, params: dict) -> dict:
    from .proc import ProcEngine
    from .programs import ProgramContext
    from .spmd import VirtualMachine

    pos, vel, mass = _cluster(n, seed)
    ctx = ProgramContext(
        arrays={"pos": pos, "vel": vel, "mass": mass}, params=params
    )
    vm_res = VirtualMachine(n_ranks=p).run(program, ctx)

    samples = []
    with ProcEngine(p) as eng:
        for name, arr in (("pos", pos), ("vel", vel), ("mass", mass)):
            eng.share(name, arr)
        for _ in range(repeats):
            proc_res = eng.run(program, params)
            samples.append(float(proc_res.wall_seconds))
    _assert_parity(vm_res.returns, proc_res.returns, f"{scheme} p={p}")

    return {
        # identity
        "scheme": scheme,
        "p": int(p),
        "n": int(n),
        # measured (multiprocess IPC)
        "wall_seconds": min(samples),
        "samples_seconds": samples,
        "repeats": len(samples),
        "ipc_bytes": float(proc_res.total_bytes),
        "ipc_messages": float(proc_res.messages),
        "supersteps": float(proc_res.supersteps),
        "straggler_wait_seconds": float(proc_res.straggler_wait_seconds),
        # predicted (VM logical clock on the identical schedule)
        "vm_clock_seconds": float(max(vm_res.clock)),
        "vm_bytes": float(vm_res.total_bytes),
        "vm_messages": float(vm_res.messages),
        # predicted (Section 4.3 analytic strategy model)
        "model_step_seconds": float(strategy.step(n)),
        "model_nic_bytes": float(strategy.host_nic_bytes_per_step(n)),
    }


def run_spmd_bench(
    n: int = 192,
    seed: int = 17,
    repeats: int = 3,
    ring_ranks=RING_RANKS,
    grid_sides=GRID_SIDES,
    log=print,
) -> dict:
    """Scan ring and 2-D grid schemes; return the benchmark document."""
    from .programs import grid_force_program, partition_bounds, ring_force_program
    from .spmd import VirtualMachine
    from .strategies import GrapeExchangeStrategy, Host2DGridStrategy

    entries = []
    for p in ring_ranks:
        entry = _measure_point(
            "ring", p, n, seed, repeats,
            GrapeExchangeStrategy(p),
            ring_force_program,
            {"eps": _EPS, "bounds": partition_bounds(n, p)},
        )
        entries.append(entry)
        if log:
            log(
                f"  ring    p={p}  measured {entry['wall_seconds']:.4f} s"
                f"  vm-clock {entry['vm_clock_seconds']:.6f} s"
                f"  model {entry['model_step_seconds']:.6f} s"
            )
    for q in grid_sides:
        entry = _measure_point(
            "2d-grid", q * q, n, seed, repeats,
            Host2DGridStrategy(q * q),
            grid_force_program,
            {"eps": _EPS, "q": int(q), "bounds": partition_bounds(n, q)},
        )
        entries.append(entry)
        if log:
            log(
                f"  2d-grid p={q * q}  measured {entry['wall_seconds']:.4f} s"
                f"  vm-clock {entry['vm_clock_seconds']:.6f} s"
                f"  model {entry['model_step_seconds']:.6f} s"
            )

    vm = VirtualMachine(n_ranks=2)
    return {
        "config": {
            "n": int(n),
            "eps": _EPS,
            "seed": int(seed),
            "repeats": int(repeats),
            "ring_ranks": [int(p) for p in ring_ranks],
            "grid_sides": [int(q) for q in grid_sides],
            "vm_bandwidth": vm.bandwidth,
            "vm_latency": vm.latency,
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "entries": entries,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small cluster, fewer repeats"
    )
    parser.add_argument("--n", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "-o", "--output", default=None,
        help="output path (default: BENCH_spmd.json at the repo root)",
    )
    args = parser.parse_args(argv)

    n = args.n if args.n is not None else (64 if args.quick else 192)
    repeats = args.repeats if args.repeats is not None else (
        2 if args.quick else 3
    )
    document = run_spmd_bench(n=n, repeats=repeats)

    if args.output is None:
        out_path = Path(__file__).resolve().parents[3] / "BENCH_spmd.json"
    else:
        out_path = Path(args.output)

    bench_dir = Path(__file__).resolve().parents[3] / "benchmarks"
    sys.path.insert(0, str(bench_dir))
    try:
        from bench_utils import emit_json
    finally:
        sys.path.pop(0)
    emit_json(document, "spmd", path=out_path, history=True)
    print(f"wrote {out_path} (+ history record)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
