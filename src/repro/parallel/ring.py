"""Systolic-ring distributed direct summation.

The classical distributed-memory algorithm for all-pairs forces (and
the software analogue of the GRAPE data-exchange hardware of Figures
4-5): ``p`` ranks each own ``N/p`` particles; a travelling copy of each
j-slice hops around the ring, and after ``p`` hops every rank has
accumulated the force of the whole system on its own particles while
only ever talking to its ring neighbours.

Implemented as an SPMD program on
:class:`~repro.parallel.spmd.VirtualMachine`, so tests can verify both
the numerics (identical to single-node direct summation) and the
communication costs (per-rank traffic O(N) per force evaluation —
independent of p, which is why a *ring of hosts* does not fix the
paper's bandwidth problem and dedicated hardware links do).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.forces import acc_jerk
from ..errors import CommError
from .spmd import SpmdResult, VirtualMachine

__all__ = ["RingForceResult", "ring_forces"]


@dataclass(frozen=True)
class RingForceResult:
    """Forces assembled from a ring run plus its communication costs."""

    acc: np.ndarray
    jerk: np.ndarray
    total_bytes: int
    messages: int
    #: logical end times per rank [s]
    clock: list


def _partition(n: int, p: int) -> list[np.ndarray]:
    """Contiguous slices of ~n/p particles per rank."""
    bounds = np.linspace(0, n, p + 1).astype(int)
    return [np.arange(bounds[r], bounds[r + 1]) for r in range(p)]


def ring_forces(
    pos: np.ndarray,
    vel: np.ndarray,
    mass: np.ndarray,
    eps: float,
    n_ranks: int,
    vm: VirtualMachine | None = None,
    obs=None,
) -> RingForceResult:
    """All-pairs softened force+jerk via a ``n_ranks``-stage ring.

    Every rank owns a contiguous particle slice; j-data circulates
    ``n_ranks - 1`` hops.  Returns forces for the *whole* system (self
    interactions excluded) plus the VM's communication accounting.
    With ``obs`` attached, the evaluation runs under a ``ring.forces``
    wall-clock span and the VM's traffic feeds the ``comm.*`` counters.
    """
    from ..obs import NULL_OBS

    obs = obs or NULL_OBS
    pos = np.ascontiguousarray(pos, dtype=np.float64)
    vel = np.ascontiguousarray(vel, dtype=np.float64)
    mass = np.ascontiguousarray(mass, dtype=np.float64)
    n = pos.shape[0]
    if n_ranks < 1:
        raise CommError("need at least one rank")
    if n_ranks > n:
        raise CommError("more ranks than particles")
    vm = vm or VirtualMachine(n_ranks=n_ranks)
    slices = _partition(n, n_ranks)

    def program(comm):
        mine = slices[comm.rank]
        my_pos = pos[mine]
        my_vel = vel[mine]
        # travelling block starts as my own slice
        blk_idx, blk_pos, blk_vel, blk_mass = mine, pos[mine], vel[mine], mass[mine]

        acc = np.zeros((mine.size, 3))
        jerk = np.zeros((mine.size, 3))
        left = (comm.rank - 1) % comm.size
        right = (comm.rank + 1) % comm.size

        for hop in range(comm.size):
            if np.array_equal(blk_idx, mine):
                # self block: exclude the diagonal
                a, j = acc_jerk(
                    my_pos, my_vel, blk_pos, blk_vel, blk_mass, eps,
                    self_indices=np.arange(mine.size),
                )
            else:
                a, j = acc_jerk(my_pos, my_vel, blk_pos, blk_vel, blk_mass, eps)
            acc += a
            jerk += j
            if hop < comm.size - 1 and comm.size > 1:
                payload = (blk_idx, blk_pos, blk_vel, blk_mass)
                # even ranks send first to break the cycle deterministically
                if comm.rank % 2 == 0:
                    yield comm.send(right, payload)
                    incoming = yield comm.recv(left)
                else:
                    incoming = yield comm.recv(left)
                    yield comm.send(right, payload)
                blk_idx, blk_pos, blk_vel, blk_mass = incoming

        gathered = yield comm.allgather((mine, acc, jerk))
        return gathered

    with obs.tracer.span("ring.forces", n=n, ranks=n_ranks):
        result: SpmdResult = vm.run(program)
    acc = np.zeros((n, 3))
    jerk = np.zeros((n, 3))
    for idx, a, j in result.returns[0]:
        acc[idx] = a
        jerk[idx] = j
    m = obs.metrics
    m.counter("comm.bytes_sent").inc(result.total_bytes)
    m.counter("comm.messages_total").inc(result.messages)
    return RingForceResult(
        acc=acc,
        jerk=jerk,
        total_bytes=result.total_bytes,
        messages=result.messages,
        clock=result.clock,
    )
