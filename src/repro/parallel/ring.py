"""Systolic-ring distributed direct summation.

The classical distributed-memory algorithm for all-pairs forces (and
the software analogue of the GRAPE data-exchange hardware of Figures
4-5): ``p`` ranks each own ``N/p`` particles; a travelling copy of each
j-slice hops around the ring, and after ``p`` hops every rank has
accumulated the force of the whole system on its own particles while
only ever talking to its ring neighbours.

Implemented as an SPMD program on
:class:`~repro.parallel.spmd.VirtualMachine`, so tests can verify both
the numerics (identical to single-node direct summation) and the
communication costs (per-rank traffic O(N) per force evaluation —
independent of p, which is why a *ring of hosts* does not fix the
paper's bandwidth problem and dedicated hardware links do).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CommError
from .programs import ProgramContext, partition_bounds, ring_force_program
from .spmd import SpmdResult, VirtualMachine

__all__ = ["RingForceResult", "ring_forces"]


@dataclass(frozen=True)
class RingForceResult:
    """Forces assembled from a ring run plus its communication costs."""

    acc: np.ndarray
    jerk: np.ndarray
    total_bytes: int
    messages: int
    #: logical end times per rank [s]
    clock: list


def _partition(n: int, p: int) -> list[np.ndarray]:
    """Contiguous slices of ~n/p particles per rank."""
    bounds = np.linspace(0, n, p + 1).astype(int)
    return [np.arange(bounds[r], bounds[r + 1]) for r in range(p)]


def ring_forces(
    pos: np.ndarray,
    vel: np.ndarray,
    mass: np.ndarray,
    eps: float,
    n_ranks: int,
    vm: VirtualMachine | None = None,
    obs=None,
) -> RingForceResult:
    """All-pairs softened force+jerk via a ``n_ranks``-stage ring.

    Every rank owns a contiguous particle slice; j-data circulates
    ``n_ranks - 1`` hops.  Returns forces for the *whole* system (self
    interactions excluded) plus the VM's communication accounting.
    With ``obs`` attached, the evaluation runs under a ``ring.forces``
    wall-clock span and the VM's traffic feeds the ``comm.*`` counters.
    """
    from ..obs import NULL_OBS

    obs = obs or NULL_OBS
    pos = np.ascontiguousarray(pos, dtype=np.float64)
    vel = np.ascontiguousarray(vel, dtype=np.float64)
    mass = np.ascontiguousarray(mass, dtype=np.float64)
    n = pos.shape[0]
    if n_ranks < 1:
        raise CommError("need at least one rank")
    if n_ranks > n:
        raise CommError("more ranks than particles")
    vm = vm or VirtualMachine(n_ranks=n_ranks)
    ctx = ProgramContext(
        arrays={"pos": pos, "vel": vel, "mass": mass},
        params={"eps": eps, "bounds": partition_bounds(n, n_ranks)},
    )

    with obs.tracer.span("ring.forces", n=n, ranks=n_ranks):
        result: SpmdResult = vm.run(ring_force_program, ctx)
    acc = np.zeros((n, 3))
    jerk = np.zeros((n, 3))
    for lo, hi, a, j in result.returns[0]:
        acc[lo:hi] = a
        jerk[lo:hi] = j
    m = obs.metrics
    m.counter("comm.bytes_sent").inc(result.total_bytes)
    m.counter("comm.messages_total").inc(result.messages)
    return RingForceResult(
        acc=acc,
        jerk=jerk,
        total_bytes=result.total_bytes,
        messages=result.messages,
        clock=result.clock,
    )
