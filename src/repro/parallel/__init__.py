"""Simulated host-parallelisation substrate (paper Section 4.3).

* :mod:`~repro.parallel.topology` — switch / ring / 2-D mesh / NB-tree
  network builders (networkx)
* :mod:`~repro.parallel.comm` — phase-based communication cost simulator
* :mod:`~repro.parallel.strategies` — the paper's four host schemes
"""

from .comm import CommSimulator, PhaseReport, Transfer
from .grid2d import GridForceResult, grid_forces
from .ring import RingForceResult, ring_forces
from .spmd import RankComm, SpmdResult, VirtualMachine
from .strategies import (
    GrapeExchangeStrategy,
    Host2DGridStrategy,
    HostParallelStrategy,
    HybridStrategy,
    NaiveCopyStrategy,
    all_strategies,
)
from .topology import (
    Topology,
    mesh2d_topology,
    nb_tree_topology,
    ring_topology,
    switch_topology,
)

__all__ = [
    "CommSimulator",
    "PhaseReport",
    "Transfer",
    "GridForceResult",
    "grid_forces",
    "RingForceResult",
    "ring_forces",
    "RankComm",
    "SpmdResult",
    "VirtualMachine",
    "GrapeExchangeStrategy",
    "Host2DGridStrategy",
    "HostParallelStrategy",
    "HybridStrategy",
    "NaiveCopyStrategy",
    "all_strategies",
    "Topology",
    "mesh2d_topology",
    "nb_tree_topology",
    "ring_topology",
    "switch_topology",
]
