"""Simulated host-parallelisation substrate (paper Section 4.3).

* :mod:`~repro.parallel.topology` — switch / ring / 2-D mesh / NB-tree
  network builders (networkx)
* :mod:`~repro.parallel.comm` — phase-based communication cost simulator
* :mod:`~repro.parallel.strategies` — the paper's four host schemes
* :mod:`~repro.parallel.spmd` — deterministic in-process SPMD scheduler
  with superstep-tagged protocol checking
* :mod:`~repro.parallel.programs` — engine-portable rank programs
* :mod:`~repro.parallel.proc` — supervised multiprocess SPMD engine
  (heartbeats, rank restart, graceful degrade)
* :mod:`~repro.parallel.backend` — the ``spmd`` force backend
"""

from .backend import SpmdBackend
from .comm import CommSimulator, PhaseReport, Transfer
from .grid2d import GridForceResult, grid_forces
from .proc import ProcConfig, ProcEngine, ProcResult
from .programs import (
    ArrayView,
    ProgramContext,
    chunk_force_program,
    grid_force_program,
    partition_bounds,
    ring_force_program,
)
from .ring import RingForceResult, ring_forces
from .spmd import RankComm, SpmdResult, VirtualMachine, describe_op
from .strategies import (
    GrapeExchangeStrategy,
    Host2DGridStrategy,
    HostParallelStrategy,
    HybridStrategy,
    NaiveCopyStrategy,
    all_strategies,
)
from .topology import (
    Topology,
    mesh2d_topology,
    nb_tree_topology,
    ring_topology,
    switch_topology,
)

__all__ = [
    "CommSimulator",
    "PhaseReport",
    "Transfer",
    "GridForceResult",
    "grid_forces",
    "RingForceResult",
    "ring_forces",
    "RankComm",
    "SpmdResult",
    "VirtualMachine",
    "describe_op",
    "ProcConfig",
    "ProcEngine",
    "ProcResult",
    "SpmdBackend",
    "ArrayView",
    "ProgramContext",
    "partition_bounds",
    "ring_force_program",
    "grid_force_program",
    "chunk_force_program",
    "GrapeExchangeStrategy",
    "Host2DGridStrategy",
    "HostParallelStrategy",
    "HybridStrategy",
    "NaiveCopyStrategy",
    "all_strategies",
    "Topology",
    "mesh2d_topology",
    "nb_tree_topology",
    "ring_topology",
    "switch_topology",
]
