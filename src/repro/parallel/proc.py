"""Supervised multiprocess SPMD engine: real ranks, real failure modes.

:class:`ProcEngine` runs the same generator rank programs as the
in-process :class:`~repro.parallel.spmd.VirtualMachine`, but across
genuine worker processes: particle arrays live in
``multiprocessing.shared_memory`` segments, every communication
operation is proxied over a per-rank pipe to the supervisor, and the
supervisor replicates the VM's deterministic matching semantics (FIFO
point-to-point mail, collectives completing when every rank has posted
the same superstep tag, reductions folded in rank order).  Because the
matching rules and the data are identical, a program produces the same
bits on the VM and on the process gang — and the chunk-aligned force
program keeps those bits identical to the serial and threaded
single-process accel paths.

Robustness model (the reason this module exists):

* **dead ranks** are detected through process sentinels and exit
  codes; **hung ranks** through lease-style heartbeats (the
  ``repro.serve`` pattern: a worker-side beat thread stamps a shared
  clock array; ``deadline = max(started, last_beat) + lease``);
* every operation carries a **superstep tag**; mismatched collective
  ordering raises :class:`~repro.errors.SpmdProtocolError` instead of
  deadlocking, and bounded op timeouts raise
  :class:`~repro.errors.SpmdTimeoutError` with straggler metrics;
* on rank death the supervisor **restarts** the rank and replays its
  completed operations from a per-rank journal (the deterministic
  replay cursor): journaled results are served instantly, duplicate
  sends are suppressed, and the rank rejoins the gang live at the
  superstep where it died.  A fingerprint check on replayed ops turns
  non-deterministic programs into structured errors;
* when the restart budget is exhausted the engine **degrades
  gracefully**: workers are killed and the same program re-runs on the
  in-process VM (bit-identical, since program + data + matching rules
  are the same), with the honest wall-clock overhead charged to the
  ``spmd.recovery_seconds`` metric — the same honesty contract as
  :mod:`repro.resilience.recover`;
* seeded rank-level faults (:class:`~repro.resilience.FaultKind`
  ``RANK_KILL`` / ``RANK_STALL`` / ``MSG_DELAY``) are drawn from an
  attached :class:`~repro.resilience.FaultInjector` at superstep
  boundaries, so chaos tests are reproducible.

Requires the ``fork`` start method (Linux); on platforms without it
construction raises :class:`~repro.errors.SpmdError` so callers can
fall back to the VM.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection, shared_memory

import numpy as np

from ..errors import SpmdError, SpmdProtocolError, SpmdTimeoutError
from .programs import ProgramContext
from .spmd import (
    RankComm,
    _Collective,
    _Recv,
    _Send,
    _default_reduce,
    _payload_bytes,
    describe_op,
)

__all__ = ["ProcConfig", "ProcResult", "ProcEngine"]


@dataclass(frozen=True)
class ProcConfig:
    """Supervision knobs of one :class:`ProcEngine`."""

    #: bounded wait for any single blocked op (barrier, recv, ...)
    op_timeout: float = 30.0
    #: worker beat cadence; lease expiry marks a rank as hung
    heartbeat_interval: float = 0.05
    lease_seconds: float = 5.0
    #: rank restarts before the engine gives up on process execution
    max_restarts: int = 2
    #: ``degrade`` reruns on the in-process VM, ``raise`` propagates
    on_failure: str = "degrade"
    #: supervisor poll granularity [s]
    poll_interval: float = 0.02


@dataclass
class ProcResult:
    """Outcome of one :meth:`ProcEngine.run`."""

    returns: list
    wall_seconds: float
    total_bytes: int = 0
    messages: int = 0
    supersteps: int = 0
    restarts: int = 0
    deaths: int = 0
    heartbeat_expiries: int = 0
    replayed_ops: int = 0
    degraded: bool = False
    #: longest observed blocked wait on any op [s]
    straggler_wait_seconds: float = 0.0
    #: wall seconds spent restarting ranks / degrading
    recovery_seconds: float = 0.0


# -- worker side -------------------------------------------------------------


def _attach_arrays(manifest: dict):
    """Attach shared-memory segments; returns (arrays, segments)."""
    arrays, segments = {}, []
    for name, (shm_name, shape, dtype) in manifest.items():
        # forked workers share the parent's resource tracker, so the
        # attach-side auto-registration is an idempotent no-op and the
        # parent's unlink() is the single point of cleanup
        seg = shared_memory.SharedMemory(name=shm_name)
        segments.append(seg)
        arrays[name] = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)
    return arrays, segments


def _worker_main(rank, size, program, manifest, params,
                 req_conn, rep_conn, hb, stall, heartbeat_interval):
    """Drive one rank's generator, proxying every op to the supervisor."""
    import threading

    signal.signal(signal.SIGINT, signal.SIG_IGN)  # supervisor owns ^C
    arrays, segments = _attach_arrays(manifest)
    ctx = ProgramContext(arrays=arrays, params=params)
    comm = RankComm(rank, size)
    hb[rank] = time.monotonic()
    stop = threading.Event()

    def beat():
        while not stop.is_set():
            if not stall[rank]:
                hb[rank] = time.monotonic()
            time.sleep(heartbeat_interval)

    threading.Thread(target=beat, daemon=True).start()

    def maybe_stall():
        # an injected heartbeat stall: the beat thread stops stamping
        # and the op loop wedges — exactly what a hung rank looks like
        while stall[rank]:
            time.sleep(0.01)

    try:
        gen = program(comm, ctx)
        idx = 0
        result = None
        try:
            op = next(gen)
            while True:
                maybe_stall()
                if isinstance(op, _Send):
                    req_conn.send(
                        ("op", idx, "send", op.superstep, op.dst, op.data,
                         op.nbytes)
                    )
                    result = None  # eager: no reply to wait for
                elif isinstance(op, _Recv):
                    req_conn.send(("op", idx, "recv", op.superstep, op.src))
                    result = rep_conn.recv()
                elif isinstance(op, _Collective):
                    req_conn.send(
                        ("op", idx, "coll", op.superstep, op.kind, op.root,
                         op.data, op.op)
                    )
                    result = rep_conn.recv()
                else:
                    raise SpmdError(f"rank {rank} yielded a non-op {op!r}")
                idx += 1
                op = gen.send(result)
        except StopIteration as stop_iter:
            req_conn.send(("done", stop_iter.value))
    except BaseException:
        try:
            req_conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
        raise
    finally:
        stop.set()
        for seg in segments:
            seg.close()


# -- supervisor state --------------------------------------------------------


@dataclass
class _Rank:
    """Supervisor-side view of one rank."""

    proc: object = None
    req: object = None          # worker -> supervisor connection
    rep: object = None          # supervisor -> worker connection
    started: float = 0.0
    done: bool = False
    value: object = None
    blocked: object = None      # live blocked op tuple or None
    posted: float = 0.0         # when the blocked op was posted
    #: completed ops: (fingerprint, needs_reply, result)
    journal: list = field(default_factory=list)
    #: next live op index (== len(journal) once replay catches up)
    restarts: int = 0
    #: deliveries held back by an injected message delay
    delay_until: float = 0.0


class ProcEngine:
    """Supervised gang of worker processes running one SPMD program.

    Shared arrays are registered once with :meth:`share` (and cheaply
    refreshed with new values on later calls); :meth:`run` forks one
    worker per rank, supervises them to completion, and returns a
    :class:`ProcResult`.  The engine is reusable across runs — the
    superstep counter is cumulative, which is what lets a seeded
    :class:`~repro.resilience.FaultPlan` target "superstep 7" of a
    multi-block simulation.

    Parameters
    ----------
    n_ranks:
        Gang size.
    config:
        :class:`ProcConfig` supervision knobs.
    injector:
        Optional :class:`~repro.resilience.FaultInjector` whose
        rank-domain faults fire at superstep boundaries.
    obs:
        Observability bundle; feeds the ``spmd.*`` metric family.
    """

    def __init__(self, n_ranks: int, config: ProcConfig | None = None,
                 injector=None, obs=None) -> None:
        if n_ranks < 1:
            raise SpmdError("need at least one rank")
        try:
            self._mp = mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX
            raise SpmdError(
                "ProcEngine needs the fork start method; "
                "use the in-process VirtualMachine instead"
            ) from exc
        self.n_ranks = int(n_ranks)
        self.config = config or ProcConfig()
        self.injector = injector
        self.supersteps = 0  # cumulative across runs
        self._segments: dict[str, tuple] = {}  # name -> (shm, view)
        self._hb = self._mp.Array("d", self.n_ranks, lock=False)
        self._stall = self._mp.Array("b", self.n_ranks, lock=False)
        self._closed = False
        self.observe(obs)

    # -- observability ---------------------------------------------------

    def observe(self, obs) -> None:
        from ..obs import NULL_OBS

        self.obs = obs or NULL_OBS
        m = self.obs.metrics
        self._c_runs = m.counter("spmd.runs_total")
        self._c_steps = m.counter("spmd.supersteps_total")
        self._c_msgs = m.counter("spmd.messages_total")
        self._c_bytes = m.counter("spmd.bytes_total")
        self._c_deaths = m.counter("spmd.rank_deaths_total")
        self._c_restarts = m.counter("spmd.rank_restarts_total")
        self._c_expiries = m.counter("spmd.heartbeat_expiries_total")
        self._c_degrades = m.counter("spmd.degrades_total")
        self._c_proto = m.counter("spmd.protocol_errors_total")
        self._c_replayed = m.counter("spmd.replayed_ops_total")
        self._c_recovery = m.counter("spmd.recovery_seconds")
        self._h_wait = m.histogram("spmd.op_wait_seconds")
        self._g_ranks = m.gauge("spmd.ranks")
        self._g_shm = m.gauge("spmd.shm_bytes")
        self._g_ranks.set(self.n_ranks)

    # -- shared arrays ---------------------------------------------------

    def share(self, name: str, array: np.ndarray) -> None:
        """Publish (or refresh) a named array in shared memory."""
        array = np.ascontiguousarray(array)
        entry = self._segments.get(name)
        if entry is not None:
            shm, view = entry
            if view.shape == array.shape and view.dtype == array.dtype:
                np.copyto(view, array)
                return
            shm.close()
            shm.unlink()
            del self._segments[name]
        shm = shared_memory.SharedMemory(create=True, size=max(array.nbytes, 1))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        np.copyto(view, array)
        self._segments[name] = (shm, view)
        self._g_shm.set(sum(s.size for s, _ in self._segments.values()))

    def _manifest(self) -> dict:
        return {
            name: (shm.name, view.shape, view.dtype.str)
            for name, (shm, view) in self._segments.items()
        }

    def _parent_arrays(self) -> dict:
        return {name: view for name, (_, view) in self._segments.items()}

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Release shared-memory segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for shm, _ in self._segments.values():
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()

    def __enter__(self) -> "ProcEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- rank process management ----------------------------------------

    def _spawn(self, state: _Rank, rank: int, program, params) -> None:
        req_parent, req_child = self._mp.Pipe(duplex=False)
        rep_parent, rep_child = self._mp.Pipe(duplex=False)
        self._stall[rank] = 0
        self._hb[rank] = time.monotonic()
        proc = self._mp.Process(
            target=_worker_main,
            args=(rank, self.n_ranks, program, self._manifest(), params,
                  req_child, rep_parent, self._hb, self._stall,
                  self.config.heartbeat_interval),
            daemon=True,
            name=f"spmd-rank-{rank}",
        )
        proc.start()
        req_child.close()
        rep_parent.close()
        state.proc = proc
        state.req = req_parent
        state.rep = rep_child
        state.started = time.monotonic()
        state.blocked = None
        state.posted = 0.0

    def _kill(self, state: _Rank) -> None:
        proc = state.proc
        if proc is not None and proc.is_alive():
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except ProcessLookupError:  # pragma: no cover - raced exit
                pass
            proc.join(timeout=5.0)
        for conn_ in (state.req, state.rep):
            if conn_ is not None:
                try:
                    conn_.close()
                except OSError:  # pragma: no cover
                    pass

    # -- the run ---------------------------------------------------------

    def run(self, program, params: dict | None = None) -> ProcResult:
        """Execute ``program(comm, ctx)`` on every rank to completion."""
        if self._closed:
            raise SpmdError("engine is closed")
        params = dict(params or {})
        self._c_runs.inc()
        t0 = time.monotonic()
        with self.obs.tracer.span("spmd.run", ranks=self.n_ranks):
            try:
                result = self._supervise(program, params)
            except SpmdProtocolError:
                self._c_proto.inc()
                raise
        result.wall_seconds = time.monotonic() - t0
        return result

    def _degrade(self, program, params, res: ProcResult,
                 ranks: list[_Rank], reason: str) -> ProcResult:
        """Kill the gang and rerun on the in-process VM (bit-identical)."""
        from .spmd import VirtualMachine

        t0 = time.monotonic()
        for state in ranks:
            self._kill(state)
        self._c_degrades.inc()
        ctx = ProgramContext(arrays=self._parent_arrays(), params=params)
        with self.obs.tracer.span("spmd.degrade", reason=reason[:80]):
            vm_result = VirtualMachine(n_ranks=self.n_ranks).run(program, ctx)
        res.returns = vm_result.returns
        res.degraded = True
        overhead = time.monotonic() - t0
        res.recovery_seconds += overhead
        self._c_recovery.inc(overhead)
        return res

    def _supervise(self, program, params) -> ProcResult:
        cfg = self.config
        res = ProcResult(returns=[None] * self.n_ranks, wall_seconds=0.0)
        ranks = [_Rank() for _ in range(self.n_ranks)]
        #: FIFO point-to-point mail: (src, dst) -> [(data, nbytes), ...]
        mail: dict = {}
        #: deliveries held by an injected message delay: (release_t, rank, msg)
        held: list = []

        for r, state in enumerate(ranks):
            self._spawn(state, r, program, params)
        self._apply_rank_faults(ranks)

        def live(state):
            return not state.done and state.proc is not None

        def deliver(r, msg):
            state = ranks[r]
            now = time.monotonic()
            if state.delay_until > now:
                held.append((state.delay_until, r, msg))
                return
            try:
                state.rep.send(msg)
            except (BrokenPipeError, OSError):
                # the rank died between posting the op and this reply;
                # the result is already journaled, so the restarted
                # incarnation will be served from the replay cursor
                pass

        def waited(state):
            if state.blocked is None:
                return 0.0
            return time.monotonic() - state.posted

        def blocked_summary():
            out = {}
            for r, state in enumerate(ranks):
                if state.done:
                    continue
                if state.blocked is not None:
                    out[r] = describe_op(state.blocked)
                else:
                    out[r] = "running"
            return out

        def finish_op(r, op, result, needs_reply):
            """Journal a completed op and deliver its result."""
            state = ranks[r]
            fp = _fingerprint(op)
            state.journal.append((fp, needs_reply, result))
            if state.blocked is op:
                wait = waited(state)
                self._h_wait.observe(wait)
                res.straggler_wait_seconds = max(
                    res.straggler_wait_seconds, wait
                )
                state.blocked = None
            if needs_reply:
                deliver(r, result)

        def try_match():
            """VM-identical matching over the live blocked set."""
            progressed = True
            while progressed:
                progressed = False
                # point-to-point: recvs against FIFO mail
                for r, state in enumerate(ranks):
                    op = state.blocked
                    if isinstance(op, _Recv):
                        queue = mail.get((op.src, r))
                        if queue:
                            data, nbytes = queue.pop(0)
                            finish_op(r, op, data, needs_reply=True)
                            progressed = True
                # collectives: superstep-tag check, then completion
                coll = {
                    r: state.blocked for r, state in enumerate(ranks)
                    if isinstance(state.blocked, _Collective)
                }
                if coll:
                    tags = {(c.kind, c.superstep) for c in coll.values()}
                    if len(tags) > 1:
                        raise SpmdProtocolError(
                            "collective mismatch across ranks: "
                            f"{sorted(tags)}",
                            blocked=blocked_summary(),
                        )
                    finished = [r for r, s in enumerate(ranks) if s.done]
                    if finished:
                        kind, step = next(iter(tags))
                        raise SpmdProtocolError(
                            f"collective mismatch: ranks {sorted(coll)} "
                            f"wait on {kind}@s{step} but ranks {finished} "
                            "already returned without posting it",
                            blocked=blocked_summary(),
                        )
                if len(coll) == self.n_ranks:
                    results = _complete_collective(
                        [coll[r] for r in range(self.n_ranks)], self.n_ranks
                    )
                    nbytes = sum(
                        _payload_bytes(c.data) for c in coll.values()
                    )
                    res.total_bytes += nbytes
                    res.messages += self.n_ranks
                    self._c_bytes.inc(nbytes)
                    self._c_msgs.inc(self.n_ranks)
                    for r in range(self.n_ranks):
                        finish_op(r, coll[r], results[r], needs_reply=True)
                    res.supersteps += 1
                    self.supersteps += 1
                    self._c_steps.inc()
                    self._apply_rank_faults(ranks)
                    progressed = True

        def handle_request(r, msg):
            state = ranks[r]
            kind = msg[0]
            if kind == "done":
                state.value = msg[1]
                state.done = True
                res.returns[r] = msg[1]
                state.proc.join(timeout=5.0)
                return
            if kind == "error":
                raise SpmdError(
                    f"rank {r} raised:\n{msg[1]}"
                )
            _, idx, op_kind, superstep, *rest = msg
            op = _reconstruct(op_kind, superstep, rest)
            if idx < len(state.journal):
                # replay: serve the journaled result, suppress effects
                fp, needs_reply, result = state.journal[idx]
                if fp != _fingerprint(op):
                    raise SpmdProtocolError(
                        f"rank {r} diverged on restart: replayed op "
                        f"{describe_op(op)} (index {idx}) does not match "
                        f"journal entry {fp}",
                        blocked=blocked_summary(),
                    )
                res.replayed_ops += 1
                self._c_replayed.inc()
                if needs_reply:
                    deliver(r, result)
                return
            # live op
            if isinstance(op, _Send):
                mail.setdefault((r, op.dst), []).append((op.data, op.nbytes))
                res.total_bytes += op.nbytes
                res.messages += 1
                self._c_bytes.inc(op.nbytes)
                self._c_msgs.inc()
                finish_op(r, op, None, needs_reply=False)
            else:
                state.blocked = op
                state.posted = time.monotonic()

        def reap_and_restart():
            """Detect dead/hung ranks; restart or signal degrade."""
            now = time.monotonic()
            for r, state in enumerate(ranks):
                if state.done or state.proc is None:
                    continue
                hung = False
                if state.proc.is_alive():
                    deadline = (
                        max(state.started, self._hb[r]) + cfg.lease_seconds
                    )
                    if now < deadline:
                        continue
                    hung = True
                    res.heartbeat_expiries += 1
                    self._c_expiries.inc()
                # rank is dead or hung: drain its last requests first
                # (a completed "done"/"error" may be sitting in the pipe)
                try:
                    while state.req.poll():
                        handle_request(r, state.req.recv())
                        if state.done:
                            break
                except (EOFError, OSError):
                    pass
                if state.done:
                    continue
                t_rec = time.monotonic()
                self._kill(state)
                code = state.proc.exitcode
                why = (
                    "heartbeat lease expired" if hung
                    else f"worker died (exit code {code})" if code is not None
                    and code >= 0
                    else f"worker killed by signal {-code}" if code is not None
                    else "worker vanished"
                )
                res.deaths += 1
                self._c_deaths.inc()
                if state.restarts >= cfg.max_restarts:
                    raise _GangFailure(f"rank {r}: {why}; restart budget "
                                       f"({cfg.max_restarts}) exhausted")
                state.restarts += 1
                res.restarts += 1
                self._c_restarts.inc()
                state.blocked = None
                # drop deliveries addressed to the dead incarnation:
                # journal replay will re-serve every completed result
                held[:] = [h for h in held if h[1] != r]
                state.delay_until = 0.0
                self._spawn(state, r, program, params)
                overhead = time.monotonic() - t_rec
                res.recovery_seconds += overhead
                self._c_recovery.inc(overhead)
                # a restart legitimately stalls its peers: refresh their
                # op timers so recovery is not misread as a straggler
                for other in ranks:
                    if other.blocked is not None:
                        other.posted = time.monotonic()

        def check_timeouts():
            now = time.monotonic()
            for r, state in enumerate(ranks):
                if state.blocked is None or state.done:
                    continue
                if now - state.posted > cfg.op_timeout:
                    raise SpmdTimeoutError(
                        f"rank {r} exceeded the {cfg.op_timeout:g}s op "
                        f"timeout in {describe_op(state.blocked)}",
                        blocked=blocked_summary(),
                    )

        try:
            while not all(state.done for state in ranks):
                # release message deliveries whose delay has elapsed
                if held:
                    now = time.monotonic()
                    due = [h for h in held if h[0] <= now]
                    for h in due:
                        held.remove(h)
                        try:
                            ranks[h[1]].rep.send(h[2])
                        except (BrokenPipeError, OSError):
                            pass  # dead rank: replay re-serves it
                waitable = [
                    state.req for state in ranks
                    if live(state) and state.req is not None
                ] + [
                    state.proc.sentinel for state in ranks if live(state)
                ]
                if not waitable:
                    break
                connection.wait(waitable, timeout=cfg.poll_interval)
                for r, state in enumerate(ranks):
                    if not live(state):
                        continue
                    try:
                        while state.req.poll():
                            handle_request(r, state.req.recv())
                            if state.done:
                                break
                    except (EOFError, OSError):
                        pass  # death handled by reap_and_restart
                try_match()
                # consult the injector every tick, not only at superstep
                # boundaries: with the >=-and-consume schedule a due
                # fault fires promptly even mid-p2p-exchange
                self._apply_rank_faults(ranks)
                reap_and_restart()
                try_match()
                check_timeouts()
        except _GangFailure as failure:
            if cfg.on_failure != "degrade":
                for state in ranks:
                    self._kill(state)
                raise SpmdError(str(failure)) from None
            return self._degrade(program, params, res, ranks, str(failure))
        except BaseException:
            for state in ranks:
                self._kill(state)
            raise
        finally:
            for state in ranks:
                if state.proc is not None and not state.proc.is_alive():
                    state.proc.join(timeout=1.0)
        for state in ranks:
            self._kill(state)
        return res

    # -- seeded rank faults ----------------------------------------------

    def _apply_rank_faults(self, ranks) -> None:
        """Fire rank-domain faults due at the current superstep."""
        if self.injector is None:
            return
        actions = self.injector.rank_actions(self.supersteps)
        for spec in actions:
            target = spec.target
            if target is None:
                target = spec.params.get("rank", spec.at_block % self.n_ranks)
            r = int(target) % self.n_ranks
            state = ranks[r]
            kind = spec.kind.value
            if kind == "rank_kill":
                if state.proc is not None and state.proc.is_alive():
                    os.kill(state.proc.pid, signal.SIGKILL)
            elif kind == "rank_stall":
                self._stall[r] = 1
                # the beat thread stops stamping; lease expiry will
                # SIGKILL and restart the rank (flag cleared on spawn)
            elif kind == "msg_delay":
                seconds = float(spec.params.get("seconds", 0.05))
                state.delay_until = time.monotonic() + seconds


class _GangFailure(Exception):
    """Internal: a rank exhausted its restart budget."""


# -- op plumbing shared with the worker --------------------------------------


def _reconstruct(op_kind, superstep, rest):
    if op_kind == "send":
        dst, data, nbytes = rest
        return _Send(dst=dst, data=data, nbytes=nbytes, superstep=superstep)
    if op_kind == "recv":
        (src,) = rest
        return _Recv(src=src, superstep=superstep)
    kind, root, data, op = rest
    return _Collective(kind=kind, root=root, data=data, op=op,
                       superstep=superstep)


def _fingerprint(op) -> tuple:
    """Replay identity of an op — payloads excluded (they are rebuilt
    deterministically by the restarted rank)."""
    if isinstance(op, _Send):
        return ("send", op.superstep, op.dst)
    if isinstance(op, _Recv):
        return ("recv", op.superstep, op.src)
    return ("coll", op.superstep, op.kind, op.root)


def _complete_collective(colls, n: int) -> list:
    """Resolve one collective; mirrors the VM's data semantics."""
    kind = colls[0].kind
    payloads = [c.data for c in colls]
    if kind == "barrier":
        return [None] * n
    if kind == "bcast":
        return [payloads[colls[0].root]] * n
    if kind == "allgather":
        return [list(payloads)] * n
    if kind in ("reduce", "allreduce"):
        op = colls[0].op
        reduced = op(payloads) if op else _default_reduce(payloads)
        if kind == "reduce":
            root = colls[0].root
            return [reduced if r == root else None for r in range(n)]
        return [reduced] * n
    raise SpmdError(f"unknown collective {kind}")  # pragma: no cover
