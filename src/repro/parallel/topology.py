"""Network topologies for the host-parallelisation analysis.

Builders for the interconnect shapes the paper discusses (Section 4.3):

* :func:`switch_topology` — hosts on a central Ethernet switch
  (Figures 3 and 11);
* :func:`ring_topology` — a ring of dedicated links;
* :func:`mesh2d_topology` — the 2-D host matrix of Figure 6;
* :func:`nb_tree_topology` — network boards cascaded in a tree over
  processor boards (Figure 5).

Each returns a :class:`Topology`: a networkx graph whose edges carry
``bandwidth`` (bytes/s) and ``latency`` (s), with shortest-path routing
cached for the cost simulator.
"""

from __future__ import annotations

import networkx as nx

from ..constants import GRAPE6_GBE_BANDWIDTH_MBPS, GRAPE6_LVDS_LINK_MBPS
from ..errors import TopologyError

__all__ = [
    "Topology",
    "switch_topology",
    "ring_topology",
    "mesh2d_topology",
    "nb_tree_topology",
]

_GBE = GRAPE6_GBE_BANDWIDTH_MBPS * 1e6
_LVDS = GRAPE6_LVDS_LINK_MBPS * 1e6


class Topology:
    """A routed network: graph + shortest-path routing.

    ``graph`` must have ``bandwidth`` and ``latency`` on every edge.
    Host nodes (message sources/sinks) carry ``kind="host"``; internal
    nodes (switches, network boards) are pure forwarders.
    """

    def __init__(self, graph: nx.Graph, name: str) -> None:
        for u, v, data in graph.edges(data=True):
            if "bandwidth" not in data or "latency" not in data:
                raise TopologyError(f"edge ({u}, {v}) missing bandwidth/latency")
            if data["bandwidth"] <= 0:
                raise TopologyError(f"edge ({u}, {v}) has non-positive bandwidth")
        self.graph = graph
        self.name = name
        self._paths: dict[tuple, list] = {}

    @property
    def hosts(self) -> list:
        """Host nodes in stable order."""
        return sorted(
            (n for n, d in self.graph.nodes(data=True) if d.get("kind") == "host"),
            key=str,
        )

    def path(self, src, dst) -> list:
        """Shortest path (hop count) from ``src`` to ``dst``, cached."""
        key = (src, dst)
        if key not in self._paths:
            try:
                self._paths[key] = nx.shortest_path(self.graph, src, dst)
            except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
                raise TopologyError(f"no route {src} -> {dst}") from exc
        return self._paths[key]

    def path_edges(self, src, dst) -> list[tuple]:
        """Edges of the route as canonical (min, max) node pairs."""
        p = self.path(src, dst)
        return [tuple(sorted((p[i], p[i + 1]), key=str)) for i in range(len(p) - 1)]

    def edge_attrs(self, edge: tuple) -> dict:
        return self.graph.edges[edge]


def switch_topology(p: int, bandwidth: float = _GBE, latency: float = 50e-6) -> Topology:
    """``p`` hosts hanging off one central switch (paper Figures 3/11)."""
    if p < 1:
        raise TopologyError("need at least one host")
    g = nx.Graph()
    g.add_node("switch", kind="switch")
    for r in range(p):
        g.add_node(f"h{r}", kind="host")
        g.add_edge(f"h{r}", "switch", bandwidth=bandwidth, latency=latency)
    return Topology(g, name=f"switch-{p}")


def ring_topology(p: int, bandwidth: float = _LVDS, latency: float = 2e-6) -> Topology:
    """``p`` hosts on a ring of dedicated point-to-point links."""
    if p < 2:
        raise TopologyError("a ring needs at least two hosts")
    g = nx.Graph()
    for r in range(p):
        g.add_node(f"h{r}", kind="host")
    for r in range(p):
        g.add_edge(f"h{r}", f"h{(r + 1) % p}", bandwidth=bandwidth, latency=latency)
    return Topology(g, name=f"ring-{p}")


def mesh2d_topology(
    rows: int, cols: int, bandwidth: float = _GBE, latency: float = 50e-6
) -> Topology:
    """The 2-D host matrix of Figure 6 (no wraparound).

    Host ``(r, c)`` is named ``h{r}.{c}``; rows carry i-traffic, columns
    carry j-update traffic in the paper's scheme.
    """
    if rows < 1 or cols < 1:
        raise TopologyError("mesh dimensions must be positive")
    g = nx.Graph()
    for r in range(rows):
        for c in range(cols):
            g.add_node(f"h{r}.{c}", kind="host", row=r, col=c)
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                g.add_edge(f"h{r}.{c}", f"h{r}.{c + 1}", bandwidth=bandwidth, latency=latency)
            if r + 1 < rows:
                g.add_edge(f"h{r}.{c}", f"h{r + 1}.{c}", bandwidth=bandwidth, latency=latency)
    return Topology(g, name=f"mesh-{rows}x{cols}")


def nb_tree_topology(
    n_hosts: int,
    boards_per_host: int = 4,
    bandwidth: float = _LVDS,
    latency: float = 2e-6,
) -> Topology:
    """Hosts over cascaded network boards to processor boards (Figure 5).

    Each host connects to its network board; NBs form a chain (the
    cascade links of the real hardware); each NB fans out to its
    processor boards (named ``pb{h}.{b}``, kind ``board``).
    """
    if n_hosts < 1:
        raise TopologyError("need at least one host")
    g = nx.Graph()
    for h in range(n_hosts):
        g.add_node(f"h{h}", kind="host")
        g.add_node(f"nb{h}", kind="nb")
        g.add_edge(f"h{h}", f"nb{h}", bandwidth=bandwidth, latency=latency)
        if h > 0:
            g.add_edge(f"nb{h - 1}", f"nb{h}", bandwidth=bandwidth, latency=latency)
        for b in range(boards_per_host):
            g.add_node(f"pb{h}.{b}", kind="board")
            g.add_edge(f"nb{h}", f"pb{h}.{b}", bandwidth=bandwidth, latency=latency)
    return Topology(g, name=f"nbtree-{n_hosts}x{boards_per_host}")
