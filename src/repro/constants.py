"""Paper-level constants: problem parameters and GRAPE-6 hardware figures.

Every number in this module is taken directly from the SC2002 paper text
(sections cited inline).  Keeping them in one place makes the benchmark
harness's "paper value vs measured" tables trivially auditable.
"""

from __future__ import annotations

__all__ = [
    "PAPER_N_PLANETESIMALS",
    "PAPER_N_PROTOPLANETS",
    "PAPER_RING_INNER_AU",
    "PAPER_RING_OUTER_AU",
    "PAPER_MASS_EXPONENT",
    "PAPER_MASS_LO",
    "PAPER_MASS_HI",
    "PAPER_SURFACE_DENSITY_EXPONENT",
    "PAPER_PROTOPLANET_MASS",
    "PAPER_PROTOPLANET_RADII_AU",
    "PAPER_SOFTENING_AU",
    "PAPER_SIM_TIME_UNITS",
    "PAPER_SNAPSHOT_TIMES",
    "PAPER_TOTAL_BLOCK_STEPS",
    "PAPER_WALL_CLOCK_HOURS",
    "PAPER_ACHIEVED_TFLOPS",
    "PAPER_PEAK_TFLOPS",
    "FLOPS_PER_FORCE",
    "FLOPS_PER_JERK",
    "FLOPS_PER_INTERACTION",
    "GRAPE6_PIPELINE_CLOCK_HZ",
    "GRAPE6_PIPELINES_PER_CHIP",
    "GRAPE6_CHIP_PEAK_GFLOPS",
    "GRAPE6_CHIPS_PER_DAUGHTER_CARD",
    "GRAPE6_DAUGHTER_CARDS_PER_BOARD",
    "GRAPE6_CHIPS_PER_BOARD",
    "GRAPE6_BOARDS_PER_NODE",
    "GRAPE6_NODES_PER_CLUSTER",
    "GRAPE6_CLUSTERS",
    "GRAPE6_TOTAL_CHIPS",
    "GRAPE6_LVDS_LINK_MBPS",
    "GRAPE6_PCI_BANDWIDTH_MBPS",
    "GRAPE6_GBE_BANDWIDTH_MBPS",
    "GRAPE6_NB_DOWNLINKS",
    "GRAPE6_JMEM_PARTICLES_PER_CHIP",
]

# --- Problem setup (Section 2) -------------------------------------------

#: Number of planetesimals in the paper's run ("1,799,998 planetesimals").
PAPER_N_PLANETESIMALS = 1_799_998

#: Two massive protoplanets: proto-Uranus and proto-Neptune.
PAPER_N_PROTOPLANETS = 2

#: Planetesimal ring inner radius [AU].
PAPER_RING_INNER_AU = 15.0

#: Planetesimal ring outer radius [AU].
PAPER_RING_OUTER_AU = 35.0

#: Mass-function exponent: N(m) dm ~ m**-2.5.
PAPER_MASS_EXPONENT = -2.5

#: Lower cutoff of the planetesimal mass function [Msun].  The OCR of the
#: paper drops the exponents; 2e-12 Msun (~4e18 kg, a ~100 km icy body) is
#: the value consistent with the Hayashi-nebula disk mass used by the
#: authors' companion papers.
PAPER_MASS_LO = 2.0e-12

#: Upper cutoff of the planetesimal mass function [Msun].
PAPER_MASS_HI = 4.0e-10

#: Surface density profile: Sigma(r) ~ r**-1.5 (Hayashi 1981 nebula slope).
PAPER_SURFACE_DENSITY_EXPONENT = -1.5

#: Protoplanet mass [Msun].  The text gives "mass ..." with the exponent
#: lost to OCR; 1e-5 Msun (~3.3 Earth masses, a typical proto-ice-giant
#: core) is adopted and recorded as a substitution in DESIGN.md.
PAPER_PROTOPLANET_MASS = 1.0e-5

#: Protoplanet orbital radii [AU]: proto-Uranus, proto-Neptune.
PAPER_PROTOPLANET_RADII_AU = (20.0, 30.0)

#: Plummer softening applied to all non-solar interactions [AU].
PAPER_SOFTENING_AU = 0.008

# --- Run statistics (Section 6) -------------------------------------------

#: Length of the paper's run in code time units (OCR gives "1878.8"-like
#: figures; the snapshot times quoted are T = 800 and T ~ 2000).
PAPER_SIM_TIME_UNITS = 1878.8

#: Snapshot times shown in Figure 13 [code time units].
PAPER_SNAPSHOT_TIMES = (800.0, 1878.8)

#: Total number of individual (block) particle-steps in the run.  The OCR
#: loses the mantissa; this value is recovered from the stated identities
#: total_ops = steps * N * 57 = 1.1e18 and 29.5 Tflops * wall seconds.
PAPER_TOTAL_BLOCK_STEPS = 1.07e10

#: Wall-clock time of the full simulation, including file I/O [hours].
PAPER_WALL_CLOCK_HOURS = 10.3

#: Achieved sustained performance reported by the paper [Tflops].
PAPER_ACHIEVED_TFLOPS = 29.5

#: Theoretical peak of the 2048-chip configuration [Tflops].
PAPER_PEAK_TFLOPS = 63.4

# --- Flop-counting convention (Section 5.2) --------------------------------

#: Operations per pairwise force evaluation (Gordon Bell convention).
FLOPS_PER_FORCE = 38

#: Additional operations for the force time-derivative (jerk).
FLOPS_PER_JERK = 19

#: Total operations per GRAPE-6 interaction (force + jerk).
FLOPS_PER_INTERACTION = FLOPS_PER_FORCE + FLOPS_PER_JERK  # = 57

# --- GRAPE-6 hardware (Section 5) ------------------------------------------

#: Pipeline clock frequency [Hz].
GRAPE6_PIPELINE_CLOCK_HZ = 90_000_000

#: Force pipelines integrated on one GRAPE-6 chip.
GRAPE6_PIPELINES_PER_CHIP = 6

#: Peak speed of one chip [Gflops]: 6 pipes * 90 MHz * 57 ops = 30.78.
GRAPE6_CHIP_PEAK_GFLOPS = (
    GRAPE6_PIPELINES_PER_CHIP * GRAPE6_PIPELINE_CLOCK_HZ * FLOPS_PER_INTERACTION / 1e9
)

#: Chips mounted on one daughter card.
GRAPE6_CHIPS_PER_DAUGHTER_CARD = 4

#: Daughter cards per processor board.
GRAPE6_DAUGHTER_CARDS_PER_BOARD = 8

#: Processor chips per processor board (4 * 8 = 32).
GRAPE6_CHIPS_PER_BOARD = GRAPE6_CHIPS_PER_DAUGHTER_CARD * GRAPE6_DAUGHTER_CARDS_PER_BOARD

#: Processor boards attached to one host (one node).
GRAPE6_BOARDS_PER_NODE = 4

#: Nodes per hardware cluster (4x4 configuration, Figure 7).
GRAPE6_NODES_PER_CLUSTER = 4

#: Clusters in the complete system (Figure 11).
GRAPE6_CLUSTERS = 4

#: Total pipeline chips: 32 * 4 * 4 * 4 = 2048.
GRAPE6_TOTAL_CHIPS = (
    GRAPE6_CHIPS_PER_BOARD
    * GRAPE6_BOARDS_PER_NODE
    * GRAPE6_NODES_PER_CLUSTER
    * GRAPE6_CLUSTERS
)

#: LVDS semi-serial board link data rate [MB/s] (Section 5.2).
GRAPE6_LVDS_LINK_MBPS = 90.0

#: Host PCI bus effective bandwidth [MB/s] (32-bit/33 MHz PCI era).
GRAPE6_PCI_BANDWIDTH_MBPS = 133.0

#: Gigabit Ethernet effective bandwidth between hosts [MB/s].
GRAPE6_GBE_BANDWIDTH_MBPS = 100.0

#: Downlinks per network board (to processor boards or cascaded NBs).
GRAPE6_NB_DOWNLINKS = 4

#: j-particle memory capacity per chip [particles] (16k words per pipeline
#: memory bank in GRAPE-6; we model the documented 16384/chip budget).
GRAPE6_JMEM_PARTICLES_PER_CHIP = 16384
