"""The historical GRAPE-6 host-library API, as a thin compatibility layer.

Real GRAPE-6 applications (NBODY4, the planetesimal codes) talk to the
hardware through a small C library whose call sequence is idiomatic
enough to be worth reproducing: open the device, write j-particles,
then per block issue ``calc_firsthalf`` (ship i-particles, start the
pipelines) followed by ``calc_lasthalf`` (collect forces).  This module
exposes that exact shape over :class:`~repro.grape.system.Grape6Machine`,
so code written against the historical API ports directly:

    g6 = Grape6Driver(machine)
    g6.open()
    for k in keys:
        g6.set_j_particle(k, mass, pos, vel, acc, jerk, t)
    g6.calc_firsthalf(t_now, i_keys, i_pos, i_vel)
    acc, jerk = g6.calc_lasthalf()
    g6.close()

The driver keeps its own mirror of the particle set (as the C library
kept DMA buffers) and therefore works even though the machine's flat
mode reads from a :class:`~repro.core.particles.ParticleSystem`.
"""

from __future__ import annotations

import numpy as np

from ..core.particles import ParticleSystem
from ..errors import ConfigurationError, GrapeError
from .system import Grape6Machine

__all__ = ["Grape6Driver"]


class Grape6Driver:
    """Stateful, historical-shape front end to a :class:`Grape6Machine`."""

    def __init__(
        self, machine: Grape6Machine, trace_wire: bool = False, obs=None
    ) -> None:
        from ..obs import NULL_OBS

        self.machine = machine
        self._open = False
        self._store: dict[int, tuple] = {}
        self._system: ParticleSystem | None = None
        self._dirty = True
        self._pending: tuple | None = None
        #: When tracing, every command/result is encoded on the wire
        #: protocol and kept here (what a bus analyser would capture).
        self.trace_wire = bool(trace_wire)
        self.wire_log: list[bytes] = []
        self._codec = None
        if self.trace_wire:
            from .protocol import FrameCodec

            self._codec = FrameCodec()
        #: Observability: spans around the two-phase force call, plus
        #: j-write and wire-byte counters (null objects when disabled).
        self.obs = obs or NULL_OBS
        self._c_jwrites = self.obs.metrics.counter("grape.jwrite_total")
        self._c_wire_bytes = self.obs.metrics.counter("grape.wire_bytes_total")

    @property
    def wire_bytes_total(self) -> int:
        """Bytes captured on the traced wire."""
        return sum(len(b) for b in self.wire_log)

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> None:
        """Attach to the (simulated) hardware."""
        if self._open:
            raise GrapeError("device already open")
        self._open = True

    def close(self) -> None:
        """Detach; further calls require a new open()."""
        self._require_open()
        self._open = False
        self._pending = None

    def _require_open(self) -> None:
        if not self._open:
            raise GrapeError("device not open")

    # -- j-particle management ------------------------------------------------

    def set_j_particle(self, key, mass, pos, vel, acc=None, jerk=None, t=0.0) -> None:
        """Write (or overwrite) one j-particle slot by key."""
        self._require_open()
        acc = np.zeros(3) if acc is None else np.asarray(acc, dtype=float)
        jerk = np.zeros(3) if jerk is None else np.asarray(jerk, dtype=float)
        self._store[int(key)] = (
            float(mass),
            np.asarray(pos, dtype=float).copy(),
            np.asarray(vel, dtype=float).copy(),
            acc.copy(),
            jerk.copy(),
            float(t),
        )
        self._dirty = True
        self._c_jwrites.inc()
        if self._codec is not None:
            frame = self._codec.encode_set_j(key, mass, pos, vel, acc, jerk, t)
            self.wire_log.append(frame)
            self._c_wire_bytes.inc(len(frame))

    @property
    def n_j_particles(self) -> int:
        return len(self._store)

    def _flush(self) -> None:
        """Materialise the store into the machine's j-memory."""
        if not self._dirty:
            return
        if not self._store:
            raise GrapeError("no j-particles written")
        keys = np.array(sorted(self._store), dtype=np.int64)
        mass = np.array([self._store[k][0] for k in keys])
        pos = np.stack([self._store[k][1] for k in keys])
        vel = np.stack([self._store[k][2] for k in keys])
        acc = np.stack([self._store[k][3] for k in keys])
        jerk = np.stack([self._store[k][4] for k in keys])
        t = np.array([self._store[k][5] for k in keys])
        system = ParticleSystem(mass, pos, vel, keys=keys)
        system.acc[...] = acc
        system.jerk[...] = jerk
        system.t[...] = t
        self._system = system
        self.machine.load(system)
        self._dirty = False

    # -- force calls ---------------------------------------------------------------

    def calc_firsthalf(self, t_now: float, i_keys, i_pos=None, i_vel=None) -> None:
        """Ship the i-block and start the pipelines.

        ``i_keys`` must reference resident j-particles (the usual case:
        forces on a subset of the stored set).  Explicit ``i_pos`` /
        ``i_vel`` override the stored state (predicted i-particles).
        """
        self._require_open()
        if self._pending is not None:
            raise GrapeError("calc_firsthalf already pending")
        with self.obs.tracer.span("grape.calc_firsthalf"):
            self._flush()
            i_keys = np.asarray(i_keys, dtype=np.int64)
            if i_keys.size == 0:
                raise ConfigurationError("empty i-block")
            key_to_row = {int(k): r for r, k in enumerate(self._system.key)}
            try:
                rows = np.array([key_to_row[int(k)] for k in i_keys])
            except KeyError as exc:
                raise GrapeError(f"i-particle key {exc} not resident") from exc
            if i_pos is not None:
                self._system.pos[rows] = np.asarray(i_pos, dtype=float)
            if i_vel is not None:
                self._system.vel[rows] = np.asarray(i_vel, dtype=float)
            self._pending = (rows, float(t_now))
            if self._codec is not None:
                frames = [
                    self._codec.encode_set_ti(t_now),
                    self._codec.encode_calc(
                        i_keys, self._system.pos[rows], self._system.vel[rows]
                    ),
                ]
                self.wire_log.extend(frames)
                self._c_wire_bytes.inc(sum(len(f) for f in frames))

    def calc_lasthalf(self) -> tuple[np.ndarray, np.ndarray]:
        """Collect ``(acc, jerk)`` for the block started by firsthalf."""
        self._require_open()
        if self._pending is None:
            raise GrapeError("no calc_firsthalf pending")
        with self.obs.tracer.span("grape.calc_lasthalf"):
            rows, t_now = self._pending
            self._pending = None
            acc, jerk = self.machine.compute_block(self._system, rows, t_now)
            if self._codec is not None:
                frame = self._codec.encode_result(acc, jerk)
                self.wire_log.append(frame)
                self._c_wire_bytes.inc(len(frame))
        return acc, jerk

    # -- accounting -----------------------------------------------------------------

    def read_counters(self) -> dict:
        """Hardware counters, in the spirit of the library's perf calls."""
        t = self.machine.totals
        return {
            "blocks": t.blocks,
            "particle_steps": t.particle_steps,
            "interactions": t.interactions,
            "model_seconds": t.total_seconds,
            "achieved_flops": self.machine.achieved_flops(),
        }
