"""Nodes and clusters: the GRAPE-6 system hierarchy above boards.

Paper Section 5.1: "we call a system of single host, single [network
board] and 4 processor boards a *node*, and a 4-node system with
hardware network a *cluster*."  The complete machine is four clusters
joined by Gigabit Ethernet (Figure 11).

Work division (the hybrid scheme of Section 5.1):

* **j-parallelism inside a cluster** — the four nodes of a cluster each
  hold one quarter of *all* particles in their j-memories; every node
  computes the partial force of its quarter on the cluster's i-block
  and the partials are summed over the cluster's hardware network
  (the NB data-exchange scheme of Figures 4-5, so the *hosts* never
  exchange particle data).
* **i-parallelism across clusters** — each cluster serves one quarter
  of the active block; clusters exchange corrected particles over
  Gigabit Ethernet.
"""

from __future__ import annotations

import numpy as np

from ..constants import GRAPE6_BOARDS_PER_NODE
from ..errors import ConfigurationError, GrapeMemoryError
from .board import ProcessorBoard, round_robin_slices
from .host import HostInterface
from .links import Link, gbe_link
from .network import NetworkBoard, NetworkMode
from .pipeline import PipelineResult

__all__ = ["Node", "Cluster"]


class Node:
    """One host + one network board + four processor boards."""

    def __init__(
        self,
        node_id: int,
        eps: float = 0.0,
        boards_per_node: int = GRAPE6_BOARDS_PER_NODE,
        chips_per_board: int = 32,
        jmem_capacity_per_chip: int | None = None,
        emulate_precision: bool = False,
    ) -> None:
        if boards_per_node < 1:
            raise ConfigurationError("a node needs at least one board")
        self.node_id = int(node_id)
        self.boards = [
            ProcessorBoard(
                board_id=b,
                eps=eps,
                n_chips=chips_per_board,
                jmem_capacity_per_chip=jmem_capacity_per_chip,
                emulate_precision=emulate_precision,
            )
            for b in range(boards_per_node)
        ]
        self.nb = NetworkBoard(nb_id=node_id, targets=self.boards, mode=NetworkMode.BROADCAST)
        self.host = HostInterface()

    @property
    def n_chips(self) -> int:
        return sum(b.n_chips for b in self.boards)

    @property
    def n_resident(self) -> int:
        return self.nb.n_resident

    @property
    def capacity(self) -> int:
        return self.nb.capacity

    @property
    def alive_capacity(self) -> int:
        return self.nb.alive_capacity

    def load(self, key, mass, pos, vel, acc, jerk, t) -> None:
        """Load this node's j-slice, split over its boards."""
        self.nb.load(key, mass, pos, vel, acc, jerk, t)

    def update(self, key, mass, pos, vel, acc, jerk, t) -> None:
        self.host.write_j_particles(len(key))
        self.nb.update(key, mass, pos, vel, acc, jerk, t)

    def compute(
        self, pos_i, vel_i, i_keys, t_now: float, clock_hz: float
    ) -> PipelineResult:
        """Partial forces of this node's j-slice on the i-block."""
        self.host.send_i_particles(len(pos_i))
        result = self.nb.compute(pos_i, vel_i, i_keys, t_now, clock_hz)
        self.host.receive_results(len(pos_i))
        return result

    def reset_counters(self) -> None:
        self.host.reset_counters()
        self.nb.reset_counters()


class Cluster:
    """Four nodes with a dedicated inter-NB hardware network."""

    def __init__(self, cluster_id: int, nodes) -> None:
        nodes = list(nodes)
        if not nodes:
            raise ConfigurationError("a cluster needs at least one node")
        self.cluster_id = int(cluster_id)
        self.nodes = nodes
        #: Gigabit link of this cluster's hosts to the rest of the system.
        self.gbe: Link = gbe_link()

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_chips(self) -> int:
        return sum(n.n_chips for n in self.nodes)

    @property
    def capacity(self) -> int:
        return sum(n.capacity for n in self.nodes)

    @property
    def n_resident(self) -> int:
        return sum(n.n_resident for n in self.nodes)

    @property
    def alive_capacity(self) -> int:
        return sum(n.alive_capacity for n in self.nodes)

    def load(self, key, mass, pos, vel, acc, jerk, t) -> None:
        """Distribute *all* particles over this cluster's nodes (j-split).

        Healthy hardware gets the host library's round-robin split
        (loads balanced to ±1).  If masking has left some node short of
        its equal share, the split degrades to contiguous slices
        weighted by alive capacity so the slice still fits.
        """
        n = len(key)
        slices = round_robin_slices(n, self.n_nodes)
        caps = np.array([node.alive_capacity for node in self.nodes], dtype=float)
        if any(idx.size > cap for idx, cap in zip(slices, caps)):
            total = caps.sum()
            if n and total == 0.0:
                raise GrapeMemoryError("no working chips in this cluster")
            if total:
                shares = np.floor(np.cumsum(caps) / total * n).astype(int)
                shares[int(np.nonzero(caps)[0][-1]):] = n
                bounds = np.concatenate([[0], shares])
                slices = [
                    np.arange(bounds[i], bounds[i + 1]) for i in range(self.n_nodes)
                ]
        for node, idx in zip(self.nodes, slices):
            node.load(key[idx], mass[idx], pos[idx], vel[idx], acc[idx], jerk[idx], t[idx])

    def update(self, key, mass, pos, vel, acc, jerk, t) -> None:
        """Push corrected particles to whichever nodes hold them."""
        key = np.asarray(key, dtype=np.int64)
        # round-robin residency: node r holds global slots r mod n_nodes;
        # but residency was assigned by load order, so route by lookup.
        for node in self.nodes:
            mask = np.fromiter(
                (
                    any(chip.jmem.holds(k) for b in node.boards for chip in b.chips)
                    for k in key
                ),
                dtype=bool,
                count=len(key),
            )
            if np.any(mask):
                node.update(
                    key[mask], mass[mask], pos[mask], vel[mask],
                    acc[mask], jerk[mask], t[mask],
                )

    def compute(
        self, pos_i, vel_i, i_keys, t_now: float, clock_hz: float
    ) -> PipelineResult:
        """Full force on the i-block: sum the nodes' j-partials.

        The inter-node reduction runs on the cluster's hardware network
        (NB cascade links); nodes compute in parallel so the cluster
        pipeline time is the slowest node.
        """
        n_i = len(pos_i)
        acc = np.zeros((n_i, 3))
        jerk = np.zeros((n_i, 3))
        max_cycles = 0
        interactions = 0
        for node in self.nodes:
            res = node.compute(pos_i, vel_i, i_keys, t_now, clock_hz)
            acc += res.acc
            jerk += res.jerk
            max_cycles = max(max_cycles, res.cycles)
            interactions += res.interactions
        return PipelineResult(
            acc=acc, jerk=jerk, cycles=max_cycles, interactions=interactions
        )

    def reset_counters(self) -> None:
        self.gbe.reset()
        for node in self.nodes:
            node.reset_counters()
