"""GRAPE-6 hardware simulator (paper Sections 4-5, Figures 1-12).

The package mirrors the physical hierarchy:

* :mod:`~repro.grape.pipeline` — the 57-op force pipeline (6 per chip)
* :mod:`~repro.grape.chip` — chip: pipelines + predictor + j-memory
* :mod:`~repro.grape.board` — processor board: 32 chips + reduction
* :mod:`~repro.grape.network` — network board: fan-out + reduction tree
* :mod:`~repro.grape.host` — host CPU + PCI cost models
* :mod:`~repro.grape.cluster` — node (host + NB + 4 PB), 4-node cluster
* :mod:`~repro.grape.links` — LVDS / PCI / GbE link models
* :mod:`~repro.grape.timing` — machine config + analytic step model
* :mod:`~repro.grape.system` — the assembled machine and its
  :class:`~repro.core.backends.ForceBackend` adapter
* :mod:`~repro.grape.fixedpoint` — hardware number-format emulation
"""

from .board import ProcessorBoard, round_robin_slices
from .chip import Grape6Chip, JMemory
from .driver import Grape6Driver
from .neighbours import NeighbourResult, neighbour_search
from .cluster import Cluster, Node
from .fixedpoint import FixedPointGrid, round_mantissa
from .host import HostCostModel, HostInterface
from .links import Link, gbe_link, lvds_link, pci_link
from .network import NetworkBoard, NetworkMode
from .pipeline import ForcePipelineArray, PipelineResult
from .selftest import ChipReport, SelfTestReport, self_test
from .system import Grape6Backend, Grape6Machine
from .timing import Grape6Config, Grape6TimingModel, StepTiming, TimingTotals

__all__ = [
    "ProcessorBoard",
    "round_robin_slices",
    "Grape6Chip",
    "JMemory",
    "Grape6Driver",
    "NeighbourResult",
    "neighbour_search",
    "Cluster",
    "Node",
    "FixedPointGrid",
    "round_mantissa",
    "HostCostModel",
    "HostInterface",
    "Link",
    "gbe_link",
    "lvds_link",
    "pci_link",
    "NetworkBoard",
    "NetworkMode",
    "ForcePipelineArray",
    "PipelineResult",
    "ChipReport",
    "SelfTestReport",
    "self_test",
    "Grape6Backend",
    "Grape6Machine",
    "Grape6Config",
    "Grape6TimingModel",
    "StepTiming",
    "TimingTotals",
]
