"""GRAPE-6 neighbour-list hardware emulation.

The real GRAPE-6 pipeline evaluates, alongside each force, whether the
j-particle lies within the i-particle's neighbour sphere ``h_i`` and
records its index into an on-chip neighbour memory (plus the index of
the nearest neighbour) — at **zero extra pipeline cycles**, since the
comparison rides the same datapath as the force.  Production codes use
the lists for close-encounter treatment and collision detection.

This module provides the functional equivalent used by
:class:`~repro.grape.system.Grape6Machine`:

* :func:`neighbour_search` — vectorised (i, j) range query returning,
  per i-particle, the j-keys within ``h_i`` and the nearest neighbour;
* :func:`merge_neighbour_results` — board-level reduction combining
  per-chip query results for the same i-block;
* the machine-level plumbing lives in ``Grape6Machine.neighbours_of``
  (flat mode: one sweep; hierarchy mode: per-chip queries merged by the
  boards, mirroring the hardware's per-chip neighbour memories).

Both the search and the merge break exact nearest-distance ties by the
smallest j-key, so results are independent of source ordering and of
the chip partition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = ["NeighbourResult", "neighbour_search", "merge_neighbour_results"]

_NO_KEY = np.iinfo(np.int64).max  # sentinel above any real j-key


@dataclass(frozen=True)
class NeighbourResult:
    """Neighbour query output for one i-block."""

    #: list (len n_i) of int64 arrays of j-keys within h_i
    lists: list
    #: nearest-neighbour j-key per i-particle (-1 if no candidates)
    nearest_key: np.ndarray
    #: distance to the nearest neighbour (inf if none)
    nearest_dist: np.ndarray


def neighbour_search(
    pos_i: np.ndarray,
    pos_j: np.ndarray,
    j_keys: np.ndarray,
    h: np.ndarray | float,
    exclude_keys: np.ndarray | None = None,
) -> NeighbourResult:
    """Range + nearest query of an i-block against a j-set.

    Parameters
    ----------
    pos_i, pos_j:
        Sink and source positions.
    j_keys:
        Source identity keys (returned in the lists).
    h:
        Neighbour radius per i-particle (scalar broadcasts).
    exclude_keys:
        Per-i key to exclude (the particle itself when resident).
    """
    pos_i = np.atleast_2d(np.asarray(pos_i, dtype=np.float64))
    pos_j = np.atleast_2d(np.asarray(pos_j, dtype=np.float64))
    j_keys = np.asarray(j_keys, dtype=np.int64)
    n_i = pos_i.shape[0]
    h = np.broadcast_to(np.asarray(h, dtype=np.float64), (n_i,))
    if np.any(h < 0):
        raise ConfigurationError("neighbour radius must be non-negative")
    if n_i == 0:
        return NeighbourResult(
            lists=[],
            nearest_key=np.empty(0, dtype=np.int64),
            nearest_dist=np.empty(0),
        )

    dr = pos_j[None, :, :] - pos_i[:, None, :]
    dist2 = np.einsum("ijk,ijk->ij", dr, dr)
    if exclude_keys is not None:
        excl = np.asarray(exclude_keys, dtype=np.int64)
        mask = j_keys[None, :] == excl[:, None]
        dist2 = np.where(mask, np.inf, dist2)

    within = dist2 < (h[:, None] ** 2)
    lists = [j_keys[within[i]] for i in range(n_i)]

    if pos_j.shape[0] == 0:
        nearest_key = np.full(n_i, -1, dtype=np.int64)
        nearest_dist = np.full(n_i, np.inf)
    else:
        best = dist2.min(axis=1)
        # ties on exact distance resolve to the smallest j-key so the
        # result is independent of source ordering
        candidates = np.where(dist2 == best[:, None], j_keys[None, :], _NO_KEY)
        nearest_key = candidates.min(axis=1)
        nearest_dist = np.sqrt(best)
        nearest_key = np.where(np.isfinite(nearest_dist), nearest_key, -1)
        nearest_key = nearest_key.astype(np.int64)
    return NeighbourResult(lists=lists, nearest_key=nearest_key, nearest_dist=nearest_dist)


def merge_neighbour_results(results: list[NeighbourResult]) -> NeighbourResult:
    """Combine per-chip results for the same i-block (board reduction).

    The merged neighbour lists are key-sorted and the nearest-neighbour
    reduction breaks exact distance ties by the smallest j-key, so the
    outcome does not depend on the chip partition or ordering.  An
    i-block of zero particles merges to an empty result.
    """
    if not results:
        raise ConfigurationError("nothing to merge")
    n_i = len(results[0].lists)
    if any(len(r.lists) != n_i for r in results):
        raise ConfigurationError("chip results disagree on i-block size")
    if n_i == 0:
        return NeighbourResult(
            lists=[],
            nearest_key=np.empty(0, dtype=np.int64),
            nearest_dist=np.empty(0),
        )
    lists = []
    for i in range(n_i):
        parts = [r.lists[i] for r in results]
        merged = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        lists.append(np.sort(merged))
    dists = np.stack([r.nearest_dist for r in results])
    keys = np.stack([r.nearest_key for r in results])
    best = dists.min(axis=0)
    # ties across chips resolve to the smallest j-key (order-free)
    candidates = np.where(dists == best[None, :], keys, _NO_KEY)
    nearest_key = candidates.min(axis=0)
    nearest_key = np.where(np.isfinite(best), nearest_key, -1).astype(np.int64)
    return NeighbourResult(
        lists=lists,
        nearest_key=nearest_key,
        nearest_dist=best,
    )
