"""GRAPE-6 neighbour-list hardware emulation.

The real GRAPE-6 pipeline evaluates, alongside each force, whether the
j-particle lies within the i-particle's neighbour sphere ``h_i`` and
records its index into an on-chip neighbour memory (plus the index of
the nearest neighbour) — at **zero extra pipeline cycles**, since the
comparison rides the same datapath as the force.  Production codes use
the lists for close-encounter treatment and collision detection.

This module provides the functional equivalent used by
:class:`~repro.grape.system.Grape6Machine`:

* :func:`neighbour_search` — vectorised (i, j) range query returning,
  per i-particle, the j-keys within ``h_i`` and the nearest neighbour;
* the machine-level plumbing lives in ``Grape6Machine.neighbours_of``
  (flat mode: one sweep; hierarchy mode: per-chip queries merged by the
  boards, mirroring the hardware's per-chip neighbour memories).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = ["NeighbourResult", "neighbour_search"]


@dataclass(frozen=True)
class NeighbourResult:
    """Neighbour query output for one i-block."""

    #: list (len n_i) of int64 arrays of j-keys within h_i
    lists: list
    #: nearest-neighbour j-key per i-particle (-1 if no candidates)
    nearest_key: np.ndarray
    #: distance to the nearest neighbour (inf if none)
    nearest_dist: np.ndarray


def neighbour_search(
    pos_i: np.ndarray,
    pos_j: np.ndarray,
    j_keys: np.ndarray,
    h: np.ndarray | float,
    exclude_keys: np.ndarray | None = None,
) -> NeighbourResult:
    """Range + nearest query of an i-block against a j-set.

    Parameters
    ----------
    pos_i, pos_j:
        Sink and source positions.
    j_keys:
        Source identity keys (returned in the lists).
    h:
        Neighbour radius per i-particle (scalar broadcasts).
    exclude_keys:
        Per-i key to exclude (the particle itself when resident).
    """
    pos_i = np.atleast_2d(np.asarray(pos_i, dtype=np.float64))
    pos_j = np.atleast_2d(np.asarray(pos_j, dtype=np.float64))
    j_keys = np.asarray(j_keys, dtype=np.int64)
    n_i = pos_i.shape[0]
    h = np.broadcast_to(np.asarray(h, dtype=np.float64), (n_i,))
    if np.any(h < 0):
        raise ConfigurationError("neighbour radius must be non-negative")

    dr = pos_j[None, :, :] - pos_i[:, None, :]
    dist2 = np.einsum("ijk,ijk->ij", dr, dr)
    if exclude_keys is not None:
        excl = np.asarray(exclude_keys, dtype=np.int64)
        mask = j_keys[None, :] == excl[:, None]
        dist2 = np.where(mask, np.inf, dist2)

    within = dist2 < (h[:, None] ** 2)
    lists = [j_keys[within[i]] for i in range(n_i)]

    if pos_j.shape[0] == 0:
        nearest_key = np.full(n_i, -1, dtype=np.int64)
        nearest_dist = np.full(n_i, np.inf)
    else:
        arg = np.argmin(dist2, axis=1)
        nearest_dist = np.sqrt(dist2[np.arange(n_i), arg])
        nearest_key = np.where(np.isfinite(nearest_dist), j_keys[arg], -1)
        nearest_key = nearest_key.astype(np.int64)
    return NeighbourResult(lists=lists, nearest_key=nearest_key, nearest_dist=nearest_dist)


def merge_neighbour_results(results: list[NeighbourResult]) -> NeighbourResult:
    """Combine per-chip results for the same i-block (board reduction)."""
    if not results:
        raise ConfigurationError("nothing to merge")
    n_i = len(results[0].lists)
    lists = []
    for i in range(n_i):
        parts = [r.lists[i] for r in results]
        lists.append(np.concatenate(parts) if parts else np.empty(0, dtype=np.int64))
    dists = np.stack([r.nearest_dist for r in results])
    keys = np.stack([r.nearest_key for r in results])
    arg = np.argmin(dists, axis=0)
    cols = np.arange(n_i)
    return NeighbourResult(
        lists=lists,
        nearest_key=keys[arg, cols],
        nearest_dist=dists[arg, cols],
    )
