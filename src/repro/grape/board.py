"""The GRAPE-6 processor board (PB) model.

A processor board (paper Figure 8) carries 32 chips — eight daughter
cards of four chips — one LVDS input port and one LVDS output port, and
a hardware reduction tree that sums the partial forces of its chips.

The board's j-slice is distributed round-robin over its chips so chip
loads differ by at most one particle; the board's force time is the
*maximum* chip time (chips run in parallel), plus the reduction tree
(a few cycles per i-particle, negligible and folded into the pipeline
depth).
"""

from __future__ import annotations

import numpy as np

from ..constants import GRAPE6_CHIPS_PER_BOARD, GRAPE6_CHIPS_PER_DAUGHTER_CARD
from ..errors import GrapeMemoryError
from .chip import Grape6Chip
from .links import Link, lvds_link
from .pipeline import PipelineResult

__all__ = ["ProcessorBoard", "round_robin_slices"]


def round_robin_slices(n_items: int, n_bins: int) -> list[np.ndarray]:
    """Index arrays assigning ``n_items`` to ``n_bins`` round-robin.

    Bin ``b`` receives items ``b, b+n_bins, b+2*n_bins, ...`` — the
    GRAPE-6 host library's j-distribution, which balances loads to ±1.
    """
    return [np.arange(b, n_items, n_bins) for b in range(n_bins)]


class ProcessorBoard:
    """One processor board: 32 chips behind one LVDS port pair."""

    def __init__(
        self,
        board_id: int,
        eps: float = 0.0,
        n_chips: int = GRAPE6_CHIPS_PER_BOARD,
        jmem_capacity_per_chip: int | None = None,
        emulate_precision: bool = False,
    ) -> None:
        self.board_id = int(board_id)
        kwargs = {}
        if jmem_capacity_per_chip is not None:
            kwargs["jmem_capacity"] = jmem_capacity_per_chip
        self.chips = [
            Grape6Chip(chip_id=c, eps=eps, emulate_precision=emulate_precision, **kwargs)
            for c in range(n_chips)
        ]
        self.link_in: Link = lvds_link()
        self.link_out: Link = lvds_link()
        #: Cumulative board-level force time [s] (max over chips per call).
        self.force_seconds = 0.0

    @property
    def n_chips(self) -> int:
        return len(self.chips)

    @property
    def n_daughter_cards(self) -> int:
        return -(-self.n_chips // GRAPE6_CHIPS_PER_DAUGHTER_CARD)

    @property
    def n_resident(self) -> int:
        """Total j-particles stored on this board."""
        return sum(chip.n_resident for chip in self.chips)

    @property
    def capacity(self) -> int:
        return sum(chip.jmem.capacity for chip in self.chips)

    @property
    def alive_capacity(self) -> int:
        """j-memory capacity of the working chips only (what the
        distribution layer may actually use after masking)."""
        return sum(c.jmem.capacity for c in self.alive_chips())

    # -- j-memory management -------------------------------------------------

    def alive_chips(self) -> list:
        """Chips with at least one working pipeline (dead ones are
        skipped by the j-distribution, as the production host library
        did for chips with fully defective pipeline sets)."""
        return [c for c in self.chips if not c.pipelines.is_dead]

    def load(self, key, mass, pos, vel, acc, jerk, t) -> None:
        """Distribute a j-slice round-robin over the working chips."""
        n = len(key)
        chips = self.alive_chips()
        if not chips and n > 0:
            raise GrapeMemoryError("no working chips on this board")
        cap = sum(c.jmem.capacity for c in chips)
        if n > cap:
            raise GrapeMemoryError(f"{n} particles exceed board capacity {cap}")
        for chip in self.chips:
            if chip.pipelines.is_dead and chip.n_resident:
                chip.jmem.load(
                    np.empty(0, dtype=np.int64), np.empty(0), np.empty((0, 3)),
                    np.empty((0, 3)), np.empty((0, 3)), np.empty((0, 3)), np.empty(0),
                )
        for chip, idx in zip(chips, round_robin_slices(n, len(chips))):
            chip.jmem.load(
                key[idx], mass[idx], pos[idx], vel[idx], acc[idx], jerk[idx], t[idx]
            )

    def update(self, key, mass, pos, vel, acc, jerk, t) -> None:
        """Rewrite resident particles after a corrector step."""
        key = np.asarray(key, dtype=np.int64)
        for chip in self.chips:
            mask = np.fromiter(
                (chip.jmem.holds(k) for k in key), dtype=bool, count=len(key)
            )
            if np.any(mask):
                chip.jmem.update(
                    key[mask], mass[mask], pos[mask], vel[mask],
                    acc[mask], jerk[mask], t[mask],
                )

    # -- force computation ---------------------------------------------------

    def compute(
        self,
        pos_i: np.ndarray,
        vel_i: np.ndarray,
        i_keys: np.ndarray,
        t_now: float,
        clock_hz: float,
    ) -> PipelineResult:
        """Partial force on the i-block from this board's j-slice.

        Chips run in parallel; the board result is the reduction-tree
        sum and the board time is the slowest chip's cycle count.
        """
        n_i = len(pos_i)
        acc = np.zeros((n_i, 3))
        jerk = np.zeros((n_i, 3))
        max_cycles = 0
        interactions = 0
        for chip in self.chips:
            if chip.n_resident == 0:
                continue
            res = chip.compute(pos_i, vel_i, i_keys, t_now)
            acc += res.acc
            jerk += res.jerk
            max_cycles = max(max_cycles, res.cycles)
            interactions += res.interactions
        self.force_seconds += max_cycles / clock_hz
        return PipelineResult(
            acc=acc, jerk=jerk, cycles=max_cycles, interactions=interactions
        )

    def reset_counters(self) -> None:
        self.force_seconds = 0.0
        self.link_in.reset()
        self.link_out.reset()
        for chip in self.chips:
            chip.reset_counters()
