"""Hardware self-test: bring-up diagnostics for a GRAPE-6 machine.

Real special-purpose hardware ships with test programs (the paper's
Figure 8 shows "the GRAPE-6 processor board under testing").  This
module provides the simulator's equivalent: push known test vectors
through every chip of a machine and compare against the host reference
kernel, reporting per-chip pass/fail — which is how masked-pipeline or
mis-seated-board conditions are found before a production run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.forces import acc_jerk
from ..errors import GrapeError

__all__ = ["ChipReport", "SelfTestReport", "self_test"]


@dataclass(frozen=True)
class ChipReport:
    """Result of testing one chip."""

    cluster: int
    node: int
    board: int
    chip: int
    ok: bool
    max_rel_error: float
    n_resident: int
    active_pipelines: int
    #: Chip was skipped because every pipeline is masked.  Masked chips
    #: count as ``ok`` (they are excluded from the j-distribution, so
    #: they cannot corrupt results) but are reported separately.
    masked: bool = False


@dataclass
class SelfTestReport:
    """Aggregate of a full machine self-test."""

    chips: list = field(default_factory=list)

    @property
    def n_tested(self) -> int:
        return len(self.chips)

    @property
    def n_failed(self) -> int:
        return sum(1 for c in self.chips if not c.ok)

    @property
    def n_masked(self) -> int:
        return sum(1 for c in self.chips if c.masked)

    @property
    def all_ok(self) -> bool:
        return self.n_failed == 0

    def failures(self) -> list:
        return [c for c in self.chips if not c.ok]

    def masked_chips(self) -> list:
        return [c for c in self.chips if c.masked]

    def summary(self) -> str:
        status = "PASS" if self.all_ok else "FAIL"
        masked = f", {self.n_masked} masked" if self.n_masked else ""
        return (
            f"GRAPE-6 self-test: {status} "
            f"({self.n_tested - self.n_failed}/{self.n_tested} chips ok{masked})"
        )


def self_test(
    machine,
    n_vectors: int = 24,
    seed: int = 0,
    rel_tol: float = 1e-10,
    reload_system=None,
) -> SelfTestReport:
    """Run test vectors through every chip of a hierarchy-mode machine.

    Each chip receives a synthetic j-load and an i-block; its partial
    forces are checked against the host kernel evaluated on the same
    slice.  Requires ``mode="hierarchy"`` (in flat mode there is no
    per-chip hardware to test).

    With ``emulate_precision`` machines, pass a looser ``rel_tol``
    (~1e-3) — the short-mantissa datapath is *supposed* to round.

    .. warning::
       The test vectors overwrite resident j-memory (as the real test
       programs did).  Run before loading a simulation, call
       ``machine.load(system)`` again afterwards, or pass the live
       system as ``reload_system=`` to have it restored automatically
       (used by in-run self-test sweeps).
    """
    if not machine.clusters:
        raise GrapeError("self_test requires a hierarchy-mode machine")
    rng = np.random.default_rng(seed)
    report = SelfTestReport()

    for ci, cluster in enumerate(machine.clusters):
        for ni, node in enumerate(cluster.nodes):
            for bi, board in enumerate(node.boards):
                for chi, chip in enumerate(board.chips):
                    if chip.pipelines.is_dead:
                        report.chips.append(
                            ChipReport(
                                cluster=ci, node=ni, board=bi, chip=chi,
                                ok=True, max_rel_error=0.0, n_resident=0,
                                active_pipelines=0, masked=True,
                            )
                        )
                        continue
                    n_j = n_vectors
                    key = np.arange(n_j, dtype=np.int64) + 1000
                    mass = rng.uniform(0.5, 1.5, n_j)
                    pos = rng.normal(size=(n_j, 3)) * 2.0
                    vel = rng.normal(size=(n_j, 3)) * 0.3
                    zero3 = np.zeros((n_j, 3))
                    chip.jmem.load(key, mass, pos, vel, zero3, zero3, np.zeros(n_j))

                    pos_i = rng.normal(size=(4, 3)) * 2.0 + 5.0
                    vel_i = rng.normal(size=(4, 3)) * 0.3
                    res = chip.compute(
                        pos_i, vel_i, np.array([-1, -2, -3, -4]), t_now=0.0
                    )
                    a_ref, j_ref = acc_jerk(
                        pos_i, vel_i, pos, vel, mass, machine.eps
                    )
                    scale = np.linalg.norm(a_ref, axis=1) + 1e-300
                    err_a = float(
                        np.max(np.linalg.norm(res.acc - a_ref, axis=1) / scale)
                    )
                    jscale = np.linalg.norm(j_ref, axis=1) + 1e-300
                    err_j = float(
                        np.max(np.linalg.norm(res.jerk - j_ref, axis=1) / jscale)
                    )
                    err = max(err_a, err_j)
                    report.chips.append(
                        ChipReport(
                            cluster=ci, node=ni, board=bi, chip=chi,
                            ok=err <= rel_tol, max_rel_error=err,
                            n_resident=chip.n_resident,
                            active_pipelines=chip.pipelines.active_pipelines,
                        )
                    )
    if reload_system is not None:
        machine.load(reload_system)
    return report
