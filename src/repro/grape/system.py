"""The assembled GRAPE-6 machine and its integrator-facing backend.

:class:`Grape6Machine` is the complete Figure-11 system: clusters of
nodes of boards of chips, plus the analytic timing model that prices
every block step.  It runs in one of two functional modes:

``"flat"`` (default)
    Forces are evaluated in one vectorised sweep (numerically identical
    to the host reference up to float summation order) while **all
    hardware costs are charged through the timing model** using the
    exact per-chip load shapes.  This is the fast path used by long
    benchmark runs.

``"hierarchy"``
    The force request actually descends the object tree — every chip
    predicts its resident j-slice and evaluates its partial forces,
    boards and network boards reduce them, links count bytes.  This is
    the validation path: tests assert it agrees with ``"flat"`` to
    float-reordering tolerance, and that the hardware counters agree
    with the analytic model.

:class:`Grape6Backend` adapts the machine to the
:class:`~repro.core.backends.ForceBackend` interface so a
:class:`~repro.core.integrator.Simulation` can run "on GRAPE-6".
"""

from __future__ import annotations

import numpy as np

from ..core.backends import ForceBackend
from ..core.forces import InteractionCounter
from ..core.predictor import predict_system
from ..errors import ConfigurationError, GrapeError, GrapeMemoryError
from .board import round_robin_slices
from .cluster import Cluster, Node
from .host import HostCostModel
from .timing import Grape6Config, Grape6TimingModel, TimingTotals

__all__ = ["Grape6Machine", "Grape6Backend"]


class Grape6Machine:
    """A complete GRAPE-6 machine (functional + performance simulator).

    Parameters
    ----------
    config:
        Machine shape; defaults to the paper's 2048-chip system.
    eps:
        Plummer softening baked into the force pipelines.
    mode:
        ``"flat"`` or ``"hierarchy"`` (see module docstring).
    emulate_precision:
        Route the pipelines through the reduced-precision emulation.
    jmem_capacity_per_chip:
        Override chip j-memory capacity (tests use small values to
        exercise overflow handling).
    """

    def __init__(
        self,
        config: Grape6Config | None = None,
        eps: float = 0.0,
        mode: str = "flat",
        emulate_precision: bool = False,
        jmem_capacity_per_chip: int | None = None,
        host_cost: HostCostModel | None = None,
        obs=None,
    ) -> None:
        if mode not in ("flat", "hierarchy"):
            raise ConfigurationError(f"unknown mode {mode!r}")
        self.config = config or Grape6Config()
        self.eps = float(eps)
        self.mode = mode
        self.emulate_precision = bool(emulate_precision)
        self.timing_model = Grape6TimingModel(self.config, host_cost=host_cost)
        self.totals = TimingTotals()
        self.jmem_capacity_per_chip = jmem_capacity_per_chip
        from ..accel import get_engine

        #: Force-kernel engine serving flat mode; shared with the host
        #: backend so flat results stay bitwise identical to it.
        self.engine = get_engine()
        self.clusters: list[Cluster] = []
        if mode == "hierarchy":
            self.clusters = self._build_clusters()
        self._n_loaded = 0
        #: Resilience hooks (:mod:`repro.resilience`); ``None`` keeps the
        #: fault path at one-attribute-lookup cost per block.
        self.injector = None
        self.recovery = None
        self._block_index = 0
        self.observe(obs)

    # -- observability -------------------------------------------------------

    def observe(self, obs) -> None:
        """Attach an observability bundle (:class:`repro.obs.Observability`).

        Every block step then reports the modelled time split into the
        metrics registry (``grape.pipeline_seconds`` / ``host_seconds``
        / ``comm_seconds``, mirroring :attr:`totals`) and emits a
        ``grape.block_step`` span on the model-time track whose
        children are the per-stage critical path — host arithmetic,
        j-memory write (PCI), reduction tree (LVDS), force pipelines,
        GbE broadcast.  Pass ``None`` to detach (the null default).
        """
        from ..obs import NULL_OBS

        self.obs = obs or NULL_OBS
        m = self.obs.metrics
        self._c_blocks = m.counter("grape.blocks_total")
        self._c_interactions = m.counter("grape.interactions_total")
        self._c_pipe_s = m.counter("grape.pipeline_seconds")
        self._c_host_s = m.counter("grape.host_seconds")
        self._c_comm_s = m.counter("grape.comm_seconds")
        m.gauge("grape.peak_flops").set(self.config.peak_flops)
        if self.injector is not None:
            self.injector.observe(self.obs)
        if self.recovery is not None:
            self.recovery.observe(self.obs)

    # -- resilience ----------------------------------------------------------

    def attach_resilience(self, plan=None) -> None:
        """Arm the machine with a fault plan and a recovery manager.

        ``plan`` is a :class:`repro.resilience.FaultPlan` (or ``None``
        for detection/recovery without injected faults).  After this,
        every :meth:`compute_block` (a) applies faults the plan schedules
        for the current block index, (b) sanity-checks the returned
        forces, and (c) on any :class:`~repro.errors.GrapeError` masks
        the offending hardware, reloads the j-distribution and
        re-evaluates the block — the operational loop of a real GRAPE
        installation.
        """
        from ..resilience import FaultInjector, RecoveryManager

        self.injector = FaultInjector(plan, self, obs=self.obs)
        self.recovery = RecoveryManager(self, obs=self.obs)

    def iter_chips(self):
        """Yield ``(cluster_i, node_i, board_i, chip_i, chip)`` tuples."""
        for ci, cluster in enumerate(self.clusters):
            for ni, node in enumerate(cluster.nodes):
                for bi, board in enumerate(node.boards):
                    for chi, chip in enumerate(board.chips):
                        yield ci, ni, bi, chi, chip

    def iter_boards(self):
        """Yield ``(cluster_i, node_i, board_i, board)`` tuples."""
        for ci, cluster in enumerate(self.clusters):
            for ni, node in enumerate(cluster.nodes):
                for bi, board in enumerate(node.boards):
                    yield ci, ni, bi, board

    # -- construction -------------------------------------------------------

    def _build_clusters(self) -> list[Cluster]:
        cfg = self.config
        clusters = []
        for c in range(cfg.n_clusters):
            nodes = [
                Node(
                    node_id=c * cfg.nodes_per_cluster + k,
                    eps=self.eps,
                    boards_per_node=cfg.boards_per_node,
                    chips_per_board=cfg.chips_per_board,
                    jmem_capacity_per_chip=self.jmem_capacity_per_chip,
                    emulate_precision=self.emulate_precision,
                )
                for k in range(cfg.nodes_per_cluster)
            ]
            clusters.append(Cluster(cluster_id=c, nodes=nodes))
        return clusters

    # -- capacity ---------------------------------------------------------------

    @property
    def jmem_capacity(self) -> int:
        """Particles one full j-copy can hold (per cluster)."""
        if self.clusters:
            return self.clusters[0].capacity
        cap = self.jmem_capacity_per_chip or 16384
        return cap * self.config.chips_per_node * self.config.nodes_per_cluster

    # -- particle management ------------------------------------------------------

    def load(self, system) -> None:
        """Write the whole particle set into every cluster's j-copy."""
        n = system.n
        if n > self.jmem_capacity:
            raise GrapeMemoryError(
                f"{n} particles exceed the machine's j-capacity {self.jmem_capacity}"
            )
        self._n_loaded = n
        if self.recovery is not None and self.recovery.host_only:
            return  # hardware is out of capacity; the host kernel serves
        for cluster in self.clusters:
            cluster.load(
                system.key, system.mass, system.pos, system.vel,
                system.acc, system.jerk, system.t,
            )

    def push_updates(self, system, active: np.ndarray) -> None:
        """Propagate corrected particles to all j-copies."""
        if not self.clusters:
            return  # flat mode reads the live arrays; nothing stored
        idx = np.asarray(active)
        for cluster in self.clusters:
            cluster.update(
                system.key[idx], system.mass[idx], system.pos[idx],
                system.vel[idx], system.acc[idx], system.jerk[idx],
                system.t[idx],
            )

    # -- force computation ----------------------------------------------------------

    def compute_block(
        self, system, active: np.ndarray, t_now: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Force + jerk on the active block; charges the timing model."""
        active = np.asarray(active)
        n_active = active.size
        n_total = system.n
        if self._n_loaded != n_total:
            raise GrapeMemoryError(
                "machine particle count is stale; call load() after changing N"
            )

        if self.injector is not None:
            self.injector.apply_due(self._block_index)
        self._block_index += 1

        try:
            if self.recovery is not None and self.recovery.host_only:
                acc, jerk = self._compute_flat(system, active, t_now)
            elif self.mode == "flat":
                acc, jerk = self._compute_flat(system, active, t_now)
            else:
                acc, jerk = self._compute_hierarchy(system, active, t_now)
            if self.recovery is not None:
                self.recovery.check_forces(acc, jerk)
        except GrapeError as exc:
            if self.recovery is None:
                raise
            acc, jerk = self.recovery.recover_block(system, active, t_now, exc)

        step = self.timing_model.block_step(n_active, n_total)
        self.totals.add(step, n_active, n_total)
        self._c_blocks.inc()
        self._c_interactions.inc(n_active * n_total)
        self._c_pipe_s.inc(step.pipe)
        self._c_host_s.inc(step.host)
        self._c_comm_s.inc(step.pci + step.lvds + step.gbe)
        if self.obs.enabled:
            self.obs.tracer.model_span(
                "grape.block_step",
                step.total,
                attrs={"n_active": int(n_active), "n_total": int(n_total)},
                children=[
                    ("grape.host_calc", step.host),
                    ("grape.jmem_write", step.pci),
                    ("grape.reduction_tree", step.lvds),
                    ("grape.pipeline", step.pipe),
                    ("grape.gbe_bcast", step.gbe),
                ],
            )

        # Retransmit cost of armed link faults: charged as pure overhead
        # (no block, no interactions), exactly like a flaky LVDS cable.
        if self.injector is not None:
            overhead = self.injector.link_overhead(step)
            if overhead:
                extra = sum(overhead.values())
                self.totals.add_overhead(**overhead)
                self._c_comm_s.inc(extra)
                if self.obs.enabled:
                    self.obs.tracer.model_span("grape.link_retransmit", extra)
        return acc, jerk

    def _compute_flat(self, system, active, t_now):
        # Same engine dispatch as HostDirectBackend.forces_on — the
        # kernel pick and the arithmetic match exactly, which is what
        # keeps flat mode bitwise identical to the host backend.
        return self.engine.acc_jerk_active(system, active, t_now, self.eps)

    def _compute_hierarchy(self, system, active, t_now):
        from ..core.predictor import predict_positions, predict_velocities

        # Host-side prediction of the i-block only; the chips predict
        # their own j-slices.
        dt = t_now - system.t[active]
        pos_i = predict_positions(
            system.pos[active], system.vel[active],
            system.acc[active], system.jerk[active], dt,
        )
        vel_i = predict_velocities(
            system.vel[active], system.acc[active], system.jerk[active], dt
        )
        i_keys = system.key[active]

        n_active = active.size
        acc = np.zeros((n_active, 3))
        jerk = np.zeros((n_active, 3))
        shares = round_robin_slices(n_active, len(self.clusters))
        for cluster, share in zip(self.clusters, shares):
            if share.size == 0:
                continue
            res = cluster.compute(
                pos_i[share], vel_i[share], i_keys[share],
                t_now, self.config.clock_hz,
            )
            acc[share] = res.acc
            jerk[share] = res.jerk
        return acc, jerk

    # -- neighbour search -----------------------------------------------------------

    def neighbours_of(self, system, active: np.ndarray, t_now: float, h):
        """Hardware neighbour-list query for the active block.

        Returns a :class:`~repro.grape.neighbours.NeighbourResult` with
        per-particle neighbour keys within radius ``h`` and nearest
        neighbours.  Free of pipeline cycles (rides the force pass on
        the real chip); the result transfer is small and not priced.
        """
        from ..core.predictor import predict_positions
        from .neighbours import merge_neighbour_results, neighbour_search

        active = np.asarray(active)
        dt = t_now - system.t[active]
        pos_i = predict_positions(
            system.pos[active], system.vel[active],
            system.acc[active], system.jerk[active], dt,
        )
        i_keys = system.key[active]

        if self.mode == "flat":
            predict_system(system, t_now)
            return neighbour_search(
                pos_i, system.pred_pos, system.key, h, exclude_keys=i_keys
            )

        # every cluster holds a full j-copy; query exactly one of them
        chip_results = []
        for node in self.clusters[0].nodes:
            for board in node.boards:
                for chip in board.chips:
                    if chip.n_resident:
                        chip_results.append(
                            chip.neighbours(pos_i, i_keys, t_now, h)
                        )
        return merge_neighbour_results(chip_results)

    # -- reporting ----------------------------------------------------------------

    def achieved_flops(self) -> float:
        """Modelled sustained speed over everything computed so far."""
        return self.totals.achieved_flops_per_s()

    def efficiency(self) -> float:
        """Achieved / peak over the accumulated run."""
        peak = self.config.peak_flops
        return self.achieved_flops() / peak if peak else 0.0

    def reset_counters(self) -> None:
        self.totals = TimingTotals()
        for cluster in self.clusters:
            cluster.reset_counters()

    def topology_graph(self):
        """The machine as a networkx graph (racks-and-cables view).

        Nodes carry a ``kind`` attribute (system / switch / host / nb /
        board / chip); edges carry ``link`` (gbe / pci / lvds / on-board).
        Works in both modes — the graph is derived from the config.
        """
        import networkx as nx

        cfg = self.config
        g = nx.Graph()
        g.add_node("system", kind="system")
        g.add_node("gbe-switch", kind="switch")
        g.add_edge("system", "gbe-switch", link="virtual")
        for c in range(cfg.n_clusters):
            for k in range(cfg.nodes_per_cluster):
                host = f"host-{c}.{k}"
                nb = f"nb-{c}.{k}"
                g.add_node(host, kind="host", cluster=c)
                g.add_node(nb, kind="nb", cluster=c)
                g.add_edge(host, "gbe-switch", link="gbe")
                g.add_edge(host, nb, link="pci")
                # intra-cluster NB cascade ring
                if k > 0:
                    g.add_edge(f"nb-{c}.{k - 1}", nb, link="lvds")
                for b in range(cfg.boards_per_node):
                    board = f"pb-{c}.{k}.{b}"
                    g.add_node(board, kind="board", cluster=c)
                    g.add_edge(nb, board, link="lvds")
                    for ch in range(cfg.chips_per_board):
                        chip = f"chip-{c}.{k}.{b}.{ch}"
                        g.add_node(chip, kind="chip", cluster=c)
                        g.add_edge(board, chip, link="on-board")
        return g


class Grape6Backend(ForceBackend):
    """:class:`~repro.core.backends.ForceBackend` adapter for the machine.

    Drop-in replacement for
    :class:`~repro.core.backends.HostDirectBackend`: the integration is
    identical (flat mode) or float-reordering-close (hierarchy mode),
    and the machine's :class:`~repro.grape.timing.TimingTotals` price
    what the run would have cost on the real hardware.
    """

    def __init__(self, machine: Grape6Machine) -> None:
        self.machine = machine
        self.counter = InteractionCounter()

    @property
    def eps(self) -> float:
        return self.machine.eps

    def load(self, system) -> None:
        self.machine.load(system)

    def forces_on(self, system, active: np.ndarray, t_now: float):
        acc, jerk = self.machine.compute_block(system, active, t_now)
        self.counter.add(np.asarray(active).size, system.n, with_jerk=True)
        return acc, jerk

    def push_updates(self, system, active: np.ndarray) -> None:
        self.machine.push_updates(system, active)

    def potential(self, system) -> np.ndarray:
        n = system.n
        return self.machine.engine.pairwise_potential(
            system.pos, system.pos, system.mass, self.eps, self_indices=np.arange(n)
        )
