"""The GRAPE-6 force pipeline model.

One physical pipeline evaluates **one particle–particle interaction per
clock cycle** (90 MHz): softened force and its time derivative, 57
floating-point-operation equivalents (38 + 19, the paper's Section 5.2
convention).  Six pipelines share a chip; each physical pipeline
multiplexes ``VMP_FACTOR`` *virtual* pipelines (Makino & Taiji 1998) so
one pass of the chip serves up to ``6 * VMP_FACTOR = 48`` i-particles
while streaming the chip's j-memory once — this is what makes the
memory bandwidth per chip manageable.

The class below is *functional + counted*: it produces numerically
correct partial forces (optionally through the reduced-precision
emulation of :mod:`repro.grape.fixedpoint`) and reports the cycle count
the real pipeline would have spent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GrapeError
from .fixedpoint import PIPELINE_MANTISSA_BITS, round_mantissa

__all__ = ["VMP_FACTOR", "PIPELINE_DEPTH", "PipelineResult", "ForcePipelineArray"]

#: Virtual pipelines multiplexed onto one physical pipeline.
VMP_FACTOR = 8

#: Pipeline depth in cycles (fill/drain latency per pass).
PIPELINE_DEPTH = 30


@dataclass(frozen=True)
class PipelineResult:
    """Partial forces plus the hardware cost of producing them."""

    acc: np.ndarray  #: (n_i, 3) partial acceleration
    jerk: np.ndarray  #: (n_i, 3) partial jerk
    cycles: int  #: pipeline cycles consumed
    interactions: int  #: i*j pairwise interactions evaluated


class ForcePipelineArray:
    """The six-pipeline force datapath of one GRAPE-6 chip.

    Parameters
    ----------
    n_pipelines:
        Physical pipelines (6 on the real chip).
    eps:
        Plummer softening baked into the evaluation (GRAPE-6 takes eps
        per i-particle; the paper uses one global value).
    emulate_precision:
        If True, inputs are rounded to the pipeline's short mantissa
        before evaluation, emulating the hardware's non-IEEE datapath.
        The wide accumulators are emulated by accumulating in float64.
    """

    def __init__(
        self,
        n_pipelines: int = 6,
        eps: float = 0.0,
        emulate_precision: bool = False,
    ) -> None:
        if n_pipelines < 1:
            raise GrapeError("need at least one pipeline")
        self.n_pipelines = int(n_pipelines)
        self.eps = float(eps)
        self.emulate_precision = bool(emulate_precision)
        #: Working pipelines.  Real GRAPE-6 used chips with defective
        #: pipelines by masking them out: capacity shrinks, results stay
        #: exact.  See :meth:`mask_pipelines`.
        self.active_pipelines = self.n_pipelines

    def mask_pipelines(self, n_defective: int) -> None:
        """Mark ``n_defective`` pipelines as unusable (chip still works).

        Masking every pipeline makes the chip dead; callers must then
        keep j-particles off it.
        """
        if not (0 <= n_defective <= self.n_pipelines):
            raise GrapeError("invalid defective-pipeline count")
        self.active_pipelines = self.n_pipelines - n_defective

    @property
    def is_dead(self) -> bool:
        return self.active_pipelines == 0

    @property
    def i_capacity(self) -> int:
        """i-particles served per chip pass (working x virtual)."""
        return self.active_pipelines * VMP_FACTOR

    def passes_required(self, n_i: int) -> int:
        """Chip passes needed to serve ``n_i`` i-particles."""
        if n_i <= 0:
            return 0
        if self.is_dead:
            raise GrapeError("all pipelines of this chip are masked")
        return -(-n_i // self.i_capacity)  # ceil division

    def cycles_for(self, n_i: int, n_j: int) -> int:
        """Cycle cost of serving ``n_i`` i-particles against ``n_j`` sources.

        Each pass streams the j-memory once at one j-particle per
        ``VMP_FACTOR`` cycles (the fetched j is reused for the 8 virtual
        i-particles of each physical pipeline), so a pass costs
        ``VMP_FACTOR * n_j`` cycles plus fill/drain.  At full occupancy
        (``n_i`` = 48) the chip sustains 6 interactions per cycle — the
        paper's 30.7 Gflops chip peak.
        """
        if n_i <= 0 or n_j <= 0:
            return 0
        if self.is_dead:
            raise GrapeError("all pipelines of this chip are masked")
        return self.passes_required(n_i) * (VMP_FACTOR * n_j + PIPELINE_DEPTH)

    def evaluate(
        self,
        pos_i: np.ndarray,
        vel_i: np.ndarray,
        pos_j: np.ndarray,
        vel_j: np.ndarray,
        mass_j: np.ndarray,
        exclude_keys: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> PipelineResult:
        """Evaluate partial force+jerk on the i-block from this j-set.

        ``exclude_keys = (i_keys, j_keys)`` removes self-interactions by
        identity: where an i-particle's key appears among the j-keys,
        that single pair is skipped (the hardware does this by matching
        particle indices).
        """
        n_i = len(pos_i)
        n_j = len(pos_j)
        if n_i == 0 or n_j == 0:
            z = np.zeros((n_i, 3))
            return PipelineResult(acc=z, jerk=z.copy(), cycles=0, interactions=0)

        if self.emulate_precision:
            bits = PIPELINE_MANTISSA_BITS
            pos_i = round_mantissa(pos_i, 52)  # positions: wide fixed point
            pos_j = round_mantissa(pos_j, 52)
            vel_i = round_mantissa(vel_i, bits)
            vel_j = round_mantissa(vel_j, bits)
            mass_j = round_mantissa(mass_j, bits)

        self_indices = None
        if exclude_keys is not None:
            i_keys, j_keys = exclude_keys
            # Map each i-key to its position in the j-set (or leave it
            # unmatched).  A sentinel column of +inf-distance is cheaper
            # than masking, so build an explicit index with -1 handled
            # by pointing at an impossible column only when present.
            order = np.argsort(j_keys)
            pos_in_sorted = np.searchsorted(j_keys[order], i_keys)
            pos_in_sorted = np.clip(pos_in_sorted, 0, len(j_keys) - 1)
            candidate = order[pos_in_sorted]
            matched = j_keys[candidate] == i_keys
            if np.any(matched):
                # acc_jerk masks (row, col) pairs; unmatched rows point
                # at column 0 but must not be masked — handle by
                # splitting the call when there are unmatched rows.
                if np.all(matched):
                    self_indices = candidate
                else:
                    res_m = self.evaluate(
                        pos_i[matched],
                        vel_i[matched],
                        pos_j,
                        vel_j,
                        mass_j,
                        exclude_keys=(i_keys[matched], j_keys),
                    )
                    res_u = self.evaluate(
                        pos_i[~matched], vel_i[~matched], pos_j, vel_j, mass_j
                    )
                    acc = np.zeros((n_i, 3))
                    jerk = np.zeros((n_i, 3))
                    acc[matched], jerk[matched] = res_m.acc, res_m.jerk
                    acc[~matched], jerk[~matched] = res_u.acc, res_u.jerk
                    return PipelineResult(
                        acc=acc,
                        jerk=jerk,
                        cycles=self.cycles_for(n_i, n_j),
                        interactions=n_i * n_j,
                    )

        from ..accel import get_engine

        acc, jerk = get_engine().acc_jerk(
            pos_i, vel_i, pos_j, vel_j, mass_j, self.eps, self_indices=self_indices
        )
        if self.emulate_precision:
            # per-interaction results carry short-mantissa error, but the
            # accumulation is wide: emulate by rounding the final sums
            # only at the (much finer) accumulator resolution - i.e. not
            # at all in float64.
            pass
        return PipelineResult(
            acc=acc,
            jerk=jerk,
            cycles=self.cycles_for(n_i, n_j),
            interactions=n_i * n_j,
        )
