"""The GRAPE-6 network board (NB) model.

A network board (paper Figures 5, 7, 10) is the fan-out/fan-in element
between one host port and four downlinks (processor boards or cascaded
NBs).  It contains:

* a configurable distribution network for the downstream direction —
  **broadcast**, **2-way multicast**, or **point-to-point** (Section
  4.3: "Thus, we can use a 4-host, 16-processor board system as single
  entity, as two units, and as four separate units");
* a hardware **reduction tree** for the upstream direction that sums
  partial forces arriving from the downlinks;
* two output ports and three cascade inputs for connecting the NBs of
  different nodes in one cluster (modelled at cluster level).

Time model: all four downlinks run in parallel, so a broadcast of B
bytes costs one link transfer of B; point-to-point of per-target
payloads costs the slowest target's transfer.  The reduction tree adds
the uplink transfer of one result block.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from ..errors import ConfigurationError, GrapeLinkError, GrapeMemoryError
from .links import Link, lvds_link
from .pipeline import PipelineResult

__all__ = ["NetworkMode", "NetworkBoard"]


class NetworkMode(Enum):
    """Downstream routing configurations of a network board."""

    BROADCAST = "broadcast"
    MULTICAST_2WAY = "multicast-2way"
    POINT_TO_POINT = "point-to-point"


class NetworkBoard:
    """One network board with up to four downlink targets.

    ``targets`` are objects exposing the board compute interface
    (``compute``, ``load``, ``update``, ``n_resident``, ``capacity``) —
    either :class:`~repro.grape.board.ProcessorBoard` or another
    :class:`NetworkBoard` (cascading, paper Section 4.3).
    """

    MAX_DOWNLINKS = 4

    def __init__(self, nb_id: int, targets, mode: NetworkMode = NetworkMode.BROADCAST):
        targets = list(targets)
        if not targets:
            raise ConfigurationError("a network board needs at least one target")
        if len(targets) > self.MAX_DOWNLINKS:
            raise ConfigurationError(
                f"a network board has at most {self.MAX_DOWNLINKS} downlinks"
            )
        self.nb_id = int(nb_id)
        self.targets = targets
        self.mode = mode
        self.uplink: Link = lvds_link()
        self.downlinks: list[Link] = [lvds_link() for _ in targets]
        #: Cumulative time spent in NB transfers [s].
        self.comm_seconds = 0.0

    # -- structure -----------------------------------------------------------

    @property
    def n_resident(self) -> int:
        return sum(t.n_resident for t in self.targets)

    @property
    def capacity(self) -> int:
        return sum(t.capacity for t in self.targets)

    @property
    def alive_capacity(self) -> int:
        """Capacity below this NB counting only working chips."""
        return sum(getattr(t, "alive_capacity", t.capacity) for t in self.targets)

    def descendants_boards(self):
        """All processor boards below this NB (flattening cascades)."""
        out = []
        for t in self.targets:
            if isinstance(t, NetworkBoard):
                out.extend(t.descendants_boards())
            else:
                out.append(t)
        return out

    # -- j-memory management ---------------------------------------------------

    def load(self, key, mass, pos, vel, acc, jerk, t) -> None:
        """Split a j-slice over the downlink targets by capacity share.

        Shares follow *alive* capacity, so a target whose chips are all
        masked receives nothing and the slice lands on working hardware.
        """
        n = len(key)
        caps = np.array(
            [getattr(t_, "alive_capacity", t_.capacity) for t_ in self.targets],
            dtype=float,
        )
        total = caps.sum()
        if total == 0.0:
            if n:
                raise GrapeMemoryError("no working chips below this network board")
            shares = np.zeros(len(self.targets), dtype=int)
        else:
            shares = np.floor(np.cumsum(caps / total) * n).astype(int)
            # pin the remainder on the last *working* target (a dead
            # trailing target must end with an empty slice, not the rest)
            shares[int(np.nonzero(caps)[0][-1]):] = n
        start = 0
        for tgt, stop in zip(self.targets, shares):
            sl = slice(start, stop)
            tgt.load(key[sl], mass[sl], pos[sl], vel[sl], acc[sl], jerk[sl], t[sl])
            # downstream write traffic
            self.comm_seconds += self.downlinks[0].transfer(
                (stop - start) * 88
            )
            start = stop

    def update(self, key, mass, pos, vel, acc, jerk, t) -> None:
        for tgt in self.targets:
            tgt.update(key, mass, pos, vel, acc, jerk, t)

    # -- data movement -------------------------------------------------------

    def broadcast_time(self, nbytes: int) -> float:
        """Time to push ``nbytes`` to every target (parallel links)."""
        if self.mode is NetworkMode.POINT_TO_POINT:
            raise GrapeLinkError("broadcast not available in point-to-point mode")
        times = [link.transfer(nbytes) for link in self.downlinks]
        t = max(times)
        self.comm_seconds += t
        return t

    def reduce_time(self, nbytes: int) -> float:
        """Time for the reduction tree to emit one summed result block."""
        t = self.uplink.transfer(nbytes)
        self.comm_seconds += t
        return t

    # -- force computation -----------------------------------------------------

    def compute(
        self,
        pos_i: np.ndarray,
        vel_i: np.ndarray,
        i_keys: np.ndarray,
        t_now: float,
        clock_hz: float,
    ) -> PipelineResult:
        """Fan out the i-block, reduce the partial forces.

        Targets operate in parallel; the NB cost is the slowest target
        plus the up/down transfers, which the caller assembles from the
        link counters.
        """
        n_i = len(pos_i)
        acc = np.zeros((n_i, 3))
        jerk = np.zeros((n_i, 3))
        max_cycles = 0
        interactions = 0
        for tgt in self.targets:
            res = tgt.compute(pos_i, vel_i, i_keys, t_now, clock_hz)
            acc += res.acc
            jerk += res.jerk
            max_cycles = max(max_cycles, res.cycles)
            interactions += res.interactions
        return PipelineResult(
            acc=acc, jerk=jerk, cycles=max_cycles, interactions=interactions
        )

    def reset_counters(self) -> None:
        self.comm_seconds = 0.0
        self.uplink.reset()
        for link in self.downlinks:
            link.reset()
        for t in self.targets:
            t.reset_counters()
