"""Host-computer cost model.

The paper's hosts are Athlon XP Linux PCs.  Under the GRAPE division of
labour the host performs, per active particle per block step, **O(1)**
work (prediction of the i-particle, the Hermite corrector, timestep
update, scheduler bookkeeping) while the GRAPE does the **O(N)** force
loop (Section 4.3).  The cost model below captures that with two
calibrated constants plus the PCI transfer costs of the host interface
board; the SCALE-NODES and HOST-VS-GRAPE benchmarks sweep them.

Default constants correspond to a ~1 Gflops-class early-2000s CPU
running the (C-implemented) host code of the production runs:
~2.5 microseconds per particle-step of host arithmetic and ~40
microseconds of fixed per-block overhead (scheduler + DMA setup).
"""

from __future__ import annotations

from dataclasses import dataclass

from .links import Link, pci_link

__all__ = ["HostCostModel", "HostInterface", "IPARTICLE_BYTES", "RESULT_BYTES"]

#: Bytes the host ships per i-particle (predicted pos+vel, eps, key...).
IPARTICLE_BYTES = 56

#: Bytes returned per i-particle (acc, jerk, potential, neighbour info).
RESULT_BYTES = 56

#: Bytes per j-particle memory write (matches JMemory.JPARTICLE_BYTES).
JWRITE_BYTES = 88


@dataclass
class HostCostModel:
    """Per-step host CPU cost: ``t = fixed + per_particle * n_active``."""

    seconds_per_particle_step: float = 2.5e-6
    seconds_fixed_per_block: float = 4.0e-5

    def block_time(self, n_active: int) -> float:
        """Host CPU time for one block of ``n_active`` particles."""
        if n_active < 0:
            raise ValueError("n_active must be non-negative")
        return self.seconds_fixed_per_block + self.seconds_per_particle_step * n_active


class HostInterface:
    """The host-interface board (HIB): PCI transfers host <-> GRAPE."""

    def __init__(self, cost_model: HostCostModel | None = None) -> None:
        self.pci: Link = pci_link()
        self.cost_model = cost_model or HostCostModel()
        #: Cumulative host CPU seconds (modelled, not measured).
        self.host_seconds = 0.0
        #: Cumulative PCI seconds.
        self.pci_seconds = 0.0

    def send_i_particles(self, n: int) -> float:
        """Ship an i-block to the GRAPE side; returns the PCI time."""
        t = self.pci.transfer(n * IPARTICLE_BYTES)
        self.pci_seconds += t
        return t

    def receive_results(self, n: int) -> float:
        """Collect force results for ``n`` i-particles."""
        t = self.pci.transfer(n * RESULT_BYTES)
        self.pci_seconds += t
        return t

    def write_j_particles(self, n: int) -> float:
        """Write ``n`` corrected particles back to j-memory."""
        t = self.pci.transfer(n * JWRITE_BYTES)
        self.pci_seconds += t
        return t

    def charge_host_block(self, n_active: int) -> float:
        """Account the host CPU work for one block step."""
        t = self.cost_model.block_time(n_active)
        self.host_seconds += t
        return t

    def reset_counters(self) -> None:
        self.host_seconds = 0.0
        self.pci_seconds = 0.0
        self.pci.reset()
