"""Emulation of GRAPE-6 number formats.

The real GRAPE-6 pipeline is not IEEE double precision end to end: to
fit six pipelines on one die it uses a mix of formats (Makino & Taiji
1998):

* **j-particle positions** — 64-bit fixed point over the simulation
  volume (so subtraction of nearby positions loses no precision);
* **pipeline intermediates** (the ``r^2``, ``1/r^3`` datapath) — short
  floating-point words with roughly a 16-bit mantissa;
* **force accumulation** — wide (64-bit fixed point) accumulators, so
  summing a million contributions does not lose the small ones.

This module provides rounding helpers that emulate those formats on top
of NumPy float64, used by the pipeline model's optional
``emulate_precision`` mode.  The point of the emulation is to let the
test-suite demonstrate the paper's implicit accuracy claim: limited
pipeline precision is fine because (a) each *individual* pairwise force
is only needed to ~1e-4 relative (the Hermite corrector tolerates it)
and (b) the wide accumulators keep the *sum* unbiased.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "round_mantissa",
    "FixedPointGrid",
    "PIPELINE_MANTISSA_BITS",
    "POSITION_GRID_BITS",
]

#: Mantissa width of the pipeline's intermediate floating-point format.
PIPELINE_MANTISSA_BITS = 16

#: Word width of the fixed-point j-position format.
POSITION_GRID_BITS = 64


def round_mantissa(x: np.ndarray, bits: int) -> np.ndarray:
    """Round float64 values to ``bits`` mantissa bits (round-to-nearest).

    Emulates a shorter floating-point format while keeping float64
    storage.  ``bits >= 52`` is the identity; ``bits`` must be >= 1.
    Zeros, infinities and NaNs pass through unchanged.
    """
    if bits < 1:
        raise ConfigurationError("mantissa must keep at least one bit")
    if bits >= 52:
        return np.asarray(x, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    out = x.copy()
    finite = np.isfinite(x) & (x != 0.0)
    if np.any(finite):
        m, e = np.frexp(x[finite])
        scale = 2.0**bits
        out[finite] = np.ldexp(np.round(m * scale) / scale, e)
    return out


class FixedPointGrid:
    """A fixed-point representation over a bounded coordinate range.

    Parameters
    ----------
    extent:
        Half-width of the representable range: coordinates live in
        ``[-extent, extent)``.
    bits:
        Total word width; the grid step is ``2*extent / 2**bits``.

    GRAPE-6 stores j-positions this way; for a 64-bit word over a
    ±100 AU box the step is ~1e-17 AU, far below double-precision ULP at
    35 AU, so the emulation at 64 bits is exact — tests exercise the
    quantisation logic with small ``bits``.
    """

    def __init__(self, extent: float, bits: int = POSITION_GRID_BITS) -> None:
        if extent <= 0:
            raise ConfigurationError("extent must be positive")
        if not (2 <= bits <= 64):
            raise ConfigurationError("bits must be in [2, 64]")
        self.extent = float(extent)
        self.bits = int(bits)
        self.step = 2.0 * self.extent / float(2**bits)

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Snap coordinates to the grid; raises if out of range."""
        x = np.asarray(x, dtype=np.float64)
        if np.any(np.abs(x) > self.extent):
            raise ConfigurationError(
                f"coordinate outside fixed-point range ±{self.extent}"
            )
        return np.round(x / self.step) * self.step

    def roundtrip_error_bound(self) -> float:
        """Maximum absolute quantisation error (half the grid step)."""
        return 0.5 * self.step
