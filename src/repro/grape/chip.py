"""The GRAPE-6 processor chip model.

One chip (paper Figure 9) integrates:

* six force pipelines (:class:`~repro.grape.pipeline.ForcePipelineArray`),
* one **predictor pipeline** that advances the chip's locally stored
  j-particles to the current block time with the Taylor predictor —
  exactly the arithmetic of :mod:`repro.core.predictor`,
* the j-particle **memory interface** (SSRAM on the daughter card) with
  a bounded particle capacity, and
* the network interface (modelled at board level).

A chip owns a *slice* of the global particle set.  The host writes
j-particles into chip memory at load time and rewrites individual slots
after each corrector step; the chip predicts and streams them through
the pipelines on every force request.
"""

from __future__ import annotations

import numpy as np

from ..constants import GRAPE6_JMEM_PARTICLES_PER_CHIP
from ..core.predictor import predict_positions, predict_velocities
from ..errors import GrapeMemoryError
from .pipeline import ForcePipelineArray, PipelineResult

__all__ = ["JMemory", "Grape6Chip"]


class JMemory:
    """Fixed-capacity j-particle store of one chip.

    Slots hold ``(key, mass, pos, vel, acc, jerk, t)``; the predictor
    needs position derivatives up to jerk.  Writes address slots by
    *key* (the host keeps the key->(chip, slot) directory).
    """

    def __init__(self, capacity: int = GRAPE6_JMEM_PARTICLES_PER_CHIP) -> None:
        if capacity < 1:
            raise GrapeMemoryError("j-memory capacity must be positive")
        self.capacity = int(capacity)
        self.n = 0
        self.key = np.empty(0, dtype=np.int64)
        self.mass = np.empty(0)
        self.pos = np.empty((0, 3))
        self.vel = np.empty((0, 3))
        self.acc = np.empty((0, 3))
        self.jerk = np.empty((0, 3))
        self.t = np.empty(0)
        self._slot_of_key: dict[int, int] = {}
        #: Bytes written into this memory (for the comm model).
        self.bytes_written = 0

    #: Bytes per j-particle write (GRAPE-6 stores position as 3x64-bit
    #: fixed point, velocity/acc/jerk as shorter words, mass, time; the
    #: host interface transfer is ~88 bytes per particle).
    JPARTICLE_BYTES = 88

    def load(self, key, mass, pos, vel, acc, jerk, t) -> None:
        """Bulk-load a fresh particle slice (replaces all contents)."""
        n = len(key)
        if n > self.capacity:
            raise GrapeMemoryError(
                f"{n} particles exceed j-memory capacity {self.capacity}"
            )
        self.n = n
        self.key = np.ascontiguousarray(key, dtype=np.int64)
        self.mass = np.ascontiguousarray(mass, dtype=np.float64)
        self.pos = np.ascontiguousarray(pos, dtype=np.float64)
        self.vel = np.ascontiguousarray(vel, dtype=np.float64)
        self.acc = np.ascontiguousarray(acc, dtype=np.float64)
        self.jerk = np.ascontiguousarray(jerk, dtype=np.float64)
        self.t = np.ascontiguousarray(t, dtype=np.float64)
        self._slot_of_key = {int(k): i for i, k in enumerate(self.key)}
        self.bytes_written += n * self.JPARTICLE_BYTES

    def holds(self, key: int) -> bool:
        return int(key) in self._slot_of_key

    def update(self, key, mass, pos, vel, acc, jerk, t) -> None:
        """Rewrite the slots of existing particles (post-corrector push)."""
        key = np.asarray(key, dtype=np.int64)
        slots = np.empty(len(key), dtype=np.int64)
        for i, k in enumerate(key):
            try:
                slots[i] = self._slot_of_key[int(k)]
            except KeyError:
                raise GrapeMemoryError(f"key {int(k)} not resident in this j-memory")
        self.mass[slots] = mass
        self.pos[slots] = pos
        self.vel[slots] = vel
        self.acc[slots] = acc
        self.jerk[slots] = jerk
        self.t[slots] = t
        self.bytes_written += len(key) * self.JPARTICLE_BYTES


class Grape6Chip:
    """One GRAPE-6 chip: j-memory + predictor + 6 force pipelines."""

    def __init__(
        self,
        chip_id: int,
        eps: float = 0.0,
        jmem_capacity: int = GRAPE6_JMEM_PARTICLES_PER_CHIP,
        emulate_precision: bool = False,
    ) -> None:
        self.chip_id = int(chip_id)
        self.jmem = JMemory(capacity=jmem_capacity)
        self.pipelines = ForcePipelineArray(
            n_pipelines=6, eps=eps, emulate_precision=emulate_precision
        )
        #: Cumulative hardware counters.
        self.force_cycles = 0
        self.predictor_cycles = 0
        self.interactions = 0

    @property
    def n_resident(self) -> int:
        """j-particles currently stored on this chip."""
        return self.jmem.n

    def predict_local(self, t_now: float) -> tuple[np.ndarray, np.ndarray]:
        """Run the predictor pipeline over the resident j-particles.

        One j-particle per cycle, overlapping the force pipelines in
        real hardware; counted separately here.
        """
        m = self.jmem
        dt = t_now - m.t
        pred_pos = predict_positions(m.pos, m.vel, m.acc, m.jerk, dt)
        pred_vel = predict_velocities(m.vel, m.acc, m.jerk, dt)
        self.predictor_cycles += m.n
        return pred_pos, pred_vel

    def compute(
        self,
        pos_i: np.ndarray,
        vel_i: np.ndarray,
        i_keys: np.ndarray,
        t_now: float,
    ) -> PipelineResult:
        """Partial force on the i-block from this chip's j-slice."""
        if self.jmem.n == 0:
            z = np.zeros((len(pos_i), 3))
            return PipelineResult(acc=z, jerk=z.copy(), cycles=0, interactions=0)
        pred_pos, pred_vel = self.predict_local(t_now)
        result = self.pipelines.evaluate(
            pos_i,
            vel_i,
            pred_pos,
            pred_vel,
            self.jmem.mass,
            exclude_keys=(np.asarray(i_keys, dtype=np.int64), self.jmem.key),
        )
        self.force_cycles += result.cycles
        self.interactions += result.interactions
        return result

    def neighbours(
        self,
        pos_i: np.ndarray,
        i_keys: np.ndarray,
        t_now: float,
        h: np.ndarray | float,
    ):
        """Neighbour query against this chip's (predicted) j-slice.

        On the real chip this rides the force pass for free; no cycles
        are charged here either.
        """
        from .neighbours import NeighbourResult, neighbour_search

        if self.jmem.n == 0:
            n_i = np.atleast_2d(pos_i).shape[0]
            return NeighbourResult(
                lists=[np.empty(0, dtype=np.int64) for _ in range(n_i)],
                nearest_key=np.full(n_i, -1, dtype=np.int64),
                nearest_dist=np.full(n_i, np.inf),
            )
        pred_pos, _ = self.predict_local(t_now)
        return neighbour_search(
            pos_i, pred_pos, self.jmem.key, h,
            exclude_keys=np.asarray(i_keys, dtype=np.int64),
        )

    def reset_counters(self) -> None:
        self.force_cycles = 0
        self.predictor_cycles = 0
        self.interactions = 0
