"""Communication-link models: LVDS board links, PCI, Gigabit Ethernet.

The paper's architecture argument (Sections 4.3 and 5.2) is entirely
about link budgets: the LVDS semi-serial links between boards run at
90 MB/s, the host's PCI bus limits host↔GRAPE traffic, and Gigabit
Ethernet carries inter-cluster traffic.  Each :class:`Link` accumulates
transferred bytes and exposes the time a transfer would have taken, so
higher layers can assemble per-step critical paths.
"""

from __future__ import annotations

from ..constants import (
    GRAPE6_GBE_BANDWIDTH_MBPS,
    GRAPE6_LVDS_LINK_MBPS,
    GRAPE6_PCI_BANDWIDTH_MBPS,
)
from ..errors import GrapeLinkError

__all__ = ["Link", "lvds_link", "pci_link", "gbe_link"]


class Link:
    """A simplex communication link with bandwidth + per-message latency.

    Parameters
    ----------
    name:
        Label used in reports ("lvds", "pci", "gbe", ...).
    bandwidth_bytes_per_s:
        Sustained payload bandwidth.
    latency_s:
        Fixed per-message cost (setup, DMA initiation, interrupt).

    Fault injection arms a link with :meth:`fail_next` (the next *n*
    transfers are dropped and retried with exponential backoff, each
    retry paying the full transfer again) or :meth:`delay_next` (a
    one-shot bandwidth degradation).  Retries are counted in
    ``retransmits`` and their cost lands in the returned transfer time,
    so the timing model sees degraded links without special-casing.
    """

    __slots__ = (
        "name", "bandwidth", "latency", "bytes_total", "messages",
        "retransmits", "_drop_next", "_delay_factor",
    )

    def __init__(self, name: str, bandwidth_bytes_per_s: float, latency_s: float) -> None:
        if bandwidth_bytes_per_s <= 0:
            raise GrapeLinkError("bandwidth must be positive")
        if latency_s < 0:
            raise GrapeLinkError("latency must be non-negative")
        self.name = name
        self.bandwidth = float(bandwidth_bytes_per_s)
        self.latency = float(latency_s)
        self.bytes_total = 0
        self.messages = 0
        self.retransmits = 0
        self._drop_next = 0
        self._delay_factor = 1.0

    def transfer_time(self, nbytes: int) -> float:
        """Time one message of ``nbytes`` takes (no state change)."""
        if nbytes < 0:
            raise GrapeLinkError("cannot transfer negative bytes")
        return self.latency + nbytes / self.bandwidth

    # -- fault arming ----------------------------------------------------

    def fail_next(self, n: int = 1) -> None:
        """Drop the next ``n`` transfer attempts (each is retried)."""
        if n < 0:
            raise GrapeLinkError("cannot arm a negative drop count")
        self._drop_next += int(n)

    def delay_next(self, factor: float) -> None:
        """Stretch the next transfer's time by ``factor`` (one-shot)."""
        if factor < 1.0:
            raise GrapeLinkError("delay factor must be >= 1")
        self._delay_factor = float(factor)

    def transfer(self, nbytes: int) -> float:
        """Record a message and return its transfer time.

        If drops are armed, the message is retransmitted until it gets
        through: attempt ``k`` adds a full transfer plus a backoff wait
        of ``latency * 2**k``.
        """
        t = self.transfer_time(nbytes)
        if self._delay_factor != 1.0:
            t *= self._delay_factor
            self._delay_factor = 1.0
        attempt = 0
        while self._drop_next > 0:
            self._drop_next -= 1
            self.retransmits += 1
            t += self.transfer_time(nbytes) + self.latency * (2.0 ** attempt)
            attempt += 1
        self.bytes_total += int(nbytes)
        self.messages += 1
        return t

    def reset(self) -> None:
        self.bytes_total = 0
        self.messages = 0
        self.retransmits = 0
        self._drop_next = 0
        self._delay_factor = 1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Link({self.name}, {self.bandwidth/1e6:.0f} MB/s, "
            f"{self.bytes_total} B in {self.messages} msgs)"
        )


def lvds_link() -> Link:
    """The 90 MB/s semi-serial LVDS link between boards (paper 5.2)."""
    return Link("lvds", GRAPE6_LVDS_LINK_MBPS * 1e6, latency_s=2e-6)


def pci_link() -> Link:
    """The host PCI bus (32-bit/33 MHz era, ~133 MB/s peak)."""
    return Link("pci", GRAPE6_PCI_BANDWIDTH_MBPS * 1e6, latency_s=5e-6)


def gbe_link() -> Link:
    """Gigabit Ethernet between hosts (~100 MB/s effective)."""
    return Link("gbe", GRAPE6_GBE_BANDWIDTH_MBPS * 1e6, latency_s=50e-6)
