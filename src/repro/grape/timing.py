"""Configuration and analytic timing model of the GRAPE-6 machine.

:class:`Grape6Config` describes a machine from one processor board up to
the paper's full 2048-chip system; :class:`Grape6TimingModel` computes,
for a block of ``n_active`` particles against ``n_total`` sources, the
per-step critical path

.. math::

    T_{step} = T_{host} + T_{PCI} + T_{LVDS} + T_{pipe} + T_{GbE},

the model Makino uses for GRAPE throughput analyses.  The terms:

* ``T_host`` — O(1)-per-particle host arithmetic on each host's share
  of the block (hosts work in parallel);
* ``T_PCI`` — i-particle send, result receive and j-memory write-back
  over each host's PCI bus;
* ``T_LVDS`` — i-block distribution to the node's boards and the
  cluster's nodes plus the reduction return path, over 90 MB/s links;
* ``T_pipe`` — the force pipelines: ``ceil(n_i / 48)`` passes per chip,
  each pass streaming the chip's j-slice at ``VMP_FACTOR`` cycles per
  j-particle;
* ``T_GbE`` — propagation of corrected particles to the other clusters'
  j-memory copies over Gigabit Ethernet.

The same model extrapolates to the paper's production configuration in
the PERF-TFLOPS benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..constants import (
    FLOPS_PER_INTERACTION,
    GRAPE6_GBE_BANDWIDTH_MBPS,
    GRAPE6_LVDS_LINK_MBPS,
    GRAPE6_PCI_BANDWIDTH_MBPS,
    GRAPE6_PIPELINE_CLOCK_HZ,
    GRAPE6_PIPELINES_PER_CHIP,
)
from ..errors import ConfigurationError
from .host import IPARTICLE_BYTES, JWRITE_BYTES, RESULT_BYTES, HostCostModel
from .pipeline import PIPELINE_DEPTH, VMP_FACTOR

__all__ = ["Grape6Config", "StepTiming", "TimingTotals", "Grape6TimingModel"]


@dataclass(frozen=True)
class Grape6Config:
    """Shape and clocking of a GRAPE-6 machine.

    The defaults are the paper's full system: 4 clusters x 4 nodes x
    4 boards x 32 chips = 2048 chips, 63.4 Tflops peak.
    """

    n_clusters: int = 4
    nodes_per_cluster: int = 4
    boards_per_node: int = 4
    chips_per_board: int = 32
    clock_hz: float = GRAPE6_PIPELINE_CLOCK_HZ
    pipelines_per_chip: int = GRAPE6_PIPELINES_PER_CHIP

    def __post_init__(self) -> None:
        for name in ("n_clusters", "nodes_per_cluster", "boards_per_node", "chips_per_board"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")
        if self.clock_hz <= 0:
            raise ConfigurationError("clock must be positive")

    # -- structure ------------------------------------------------------------

    @property
    def n_hosts(self) -> int:
        return self.n_clusters * self.nodes_per_cluster

    @property
    def chips_per_node(self) -> int:
        return self.boards_per_node * self.chips_per_board

    @property
    def total_boards(self) -> int:
        return self.n_hosts * self.boards_per_node

    @property
    def total_chips(self) -> int:
        return self.total_boards * self.chips_per_board

    @property
    def total_pipelines(self) -> int:
        return self.total_chips * self.pipelines_per_chip

    # -- peak speeds ------------------------------------------------------------

    @property
    def peak_interactions_per_s(self) -> float:
        """One interaction per pipeline per cycle."""
        return self.total_pipelines * self.clock_hz

    @property
    def peak_flops(self) -> float:
        """Peak in the paper's 57-op convention (63.4 Tflops full system)."""
        return self.peak_interactions_per_s * FLOPS_PER_INTERACTION

    # -- common presets -----------------------------------------------------------

    @classmethod
    def paper_full_system(cls) -> "Grape6Config":
        """The 2048-chip, 16-host machine of the paper."""
        return cls()

    @classmethod
    def single_cluster(cls) -> "Grape6Config":
        return cls(n_clusters=1)

    @classmethod
    def single_node(cls) -> "Grape6Config":
        return cls(n_clusters=1, nodes_per_cluster=1)

    @classmethod
    def single_board(cls) -> "Grape6Config":
        return cls(n_clusters=1, nodes_per_cluster=1, boards_per_node=1)

    @classmethod
    def scaled_down(cls, chips_per_board: int = 2) -> "Grape6Config":
        """A tiny machine for functional tests (full hierarchy, few chips)."""
        return cls(
            n_clusters=2,
            nodes_per_cluster=2,
            boards_per_node=2,
            chips_per_board=chips_per_board,
        )


@dataclass(frozen=True)
class StepTiming:
    """Critical-path breakdown of one block step [seconds]."""

    host: float
    pci: float
    lvds: float
    pipe: float
    gbe: float

    @property
    def total(self) -> float:
        return self.host + self.pci + self.lvds + self.pipe + self.gbe


@dataclass
class TimingTotals:
    """Accumulated run totals (what the performance report consumes)."""

    host: float = 0.0
    pci: float = 0.0
    lvds: float = 0.0
    pipe: float = 0.0
    gbe: float = 0.0
    blocks: int = 0
    particle_steps: int = 0
    interactions: int = 0

    def add(self, step: StepTiming, n_active: int, n_total: int) -> None:
        self.host += step.host
        self.pci += step.pci
        self.lvds += step.lvds
        self.pipe += step.pipe
        self.gbe += step.gbe
        self.blocks += 1
        self.particle_steps += int(n_active)
        self.interactions += int(n_active) * int(n_total)

    def add_overhead(
        self,
        host: float = 0.0,
        pci: float = 0.0,
        lvds: float = 0.0,
        pipe: float = 0.0,
        gbe: float = 0.0,
    ) -> None:
        """Charge extra seconds (retransmits, recovery re-evaluations)
        without counting a block or any useful interactions — overhead
        lowers ``achieved_flops_per_s`` as it did on the real machine."""
        self.host += host
        self.pci += pci
        self.lvds += lvds
        self.pipe += pipe
        self.gbe += gbe

    @property
    def total_seconds(self) -> float:
        return self.host + self.pci + self.lvds + self.pipe + self.gbe

    def to_dict(self) -> dict:
        """JSON-friendly snapshot (for run logs and reports)."""
        return {
            "host_s": self.host,
            "pci_s": self.pci,
            "lvds_s": self.lvds,
            "pipe_s": self.pipe,
            "gbe_s": self.gbe,
            "blocks": self.blocks,
            "particle_steps": self.particle_steps,
            "interactions": self.interactions,
            "total_s": self.total_seconds,
            "achieved_flops": self.achieved_flops_per_s(),
        }

    @property
    def total_flops(self) -> float:
        """Useful operations in the paper's 57-op convention."""
        return self.interactions * FLOPS_PER_INTERACTION

    def achieved_flops_per_s(self) -> float:
        """Sustained speed over the accumulated wall-clock model."""
        if self.total_seconds == 0.0:
            return 0.0
        return self.total_flops / self.total_seconds


class Grape6TimingModel:
    """Analytic per-block-step timing for a :class:`Grape6Config`."""

    def __init__(
        self,
        config: Grape6Config,
        host_cost: HostCostModel | None = None,
        lvds_bandwidth: float = GRAPE6_LVDS_LINK_MBPS * 1e6,
        pci_bandwidth: float = GRAPE6_PCI_BANDWIDTH_MBPS * 1e6,
        gbe_bandwidth: float = GRAPE6_GBE_BANDWIDTH_MBPS * 1e6,
        lvds_latency: float = 2e-6,
        pci_latency: float = 5e-6,
        gbe_latency: float = 50e-6,
    ) -> None:
        self.config = config
        self.host_cost = host_cost or HostCostModel()
        self.lvds_bandwidth = lvds_bandwidth
        self.pci_bandwidth = pci_bandwidth
        self.gbe_bandwidth = gbe_bandwidth
        self.lvds_latency = lvds_latency
        self.pci_latency = pci_latency
        self.gbe_latency = gbe_latency

    # -- load shapes ------------------------------------------------------------

    def i_share_per_cluster(self, n_active: int) -> int:
        """i-block particles each cluster serves (ceil split)."""
        return math.ceil(n_active / self.config.n_clusters)

    def i_share_per_host(self, n_active: int) -> int:
        """i-block particles each host owns."""
        return math.ceil(n_active / self.config.n_hosts)

    def j_per_chip(self, n_total: int) -> int:
        """j-particles resident on each chip (round-robin over a node)."""
        per_node = math.ceil(n_total / self.config.nodes_per_cluster)
        return math.ceil(per_node / self.config.chips_per_node)

    def chip_cycles(self, n_active: int, n_total: int) -> int:
        """Pipeline cycles of the busiest chip for one block."""
        n_i = self.i_share_per_cluster(n_active)
        n_j = self.j_per_chip(n_total)
        if n_i == 0 or n_j == 0:
            return 0
        i_capacity = self.config.pipelines_per_chip * VMP_FACTOR
        passes = math.ceil(n_i / i_capacity)
        return passes * (VMP_FACTOR * n_j + PIPELINE_DEPTH)

    # -- the step model ------------------------------------------------------------

    def block_step(self, n_active: int, n_total: int) -> StepTiming:
        """Critical-path times of one block step."""
        if n_active < 0 or n_total < 0:
            raise ConfigurationError("particle counts must be non-negative")
        cfg = self.config
        share_host = self.i_share_per_host(n_active)
        share_cluster = self.i_share_per_cluster(n_active)

        t_host = self.host_cost.block_time(share_host)

        pci_bytes = share_host * (IPARTICLE_BYTES + RESULT_BYTES + JWRITE_BYTES)
        t_pci = 3 * self.pci_latency + pci_bytes / self.pci_bandwidth

        # Every node must receive the cluster's whole i-block and return
        # its reduced partials (links run in parallel across boards).
        lvds_bytes = share_cluster * (IPARTICLE_BYTES + RESULT_BYTES)
        t_lvds = 2 * self.lvds_latency + lvds_bytes / self.lvds_bandwidth

        t_pipe = self.chip_cycles(n_active, n_total) / cfg.clock_hz

        # Corrected particles propagate down the columns to the other
        # clusters' j-copies (paper Figure 6 / hybrid scheme).
        remote_clusters = cfg.n_clusters - 1
        if remote_clusters > 0:
            gbe_bytes = remote_clusters * share_host * JWRITE_BYTES
            t_gbe = remote_clusters * self.gbe_latency + gbe_bytes / self.gbe_bandwidth
        else:
            t_gbe = 0.0

        return StepTiming(host=t_host, pci=t_pci, lvds=t_lvds, pipe=t_pipe, gbe=t_gbe)

    def block_step_overlapped(self, n_active: int, n_total: int) -> float:
        """Steady-state per-block time with software pipelining [s].

        Production GRAPE drivers overlap the host's work on block ``k``
        (corrector, scheduler, j-writeback) with the hardware's force
        pass for block ``k+1``: the host ships the i-block, and while
        the pipelines run it finishes the previous block.  In steady
        state the per-block time is then

        ``max(host + pci_writeback,  pipe + lvds + pci_i/o) + gbe``

        — the GbE propagation of corrected particles cannot overlap the
        next force pass because remote j-copies must be current before
        they are used.  (The non-overlapped :meth:`block_step` is the
        conservative default used by the headline PERF numbers.)
        """
        step = self.block_step(n_active, n_total)
        host_side = step.host + 0.4 * step.pci  # writeback share of PCI
        grape_side = step.pipe + step.lvds + 0.6 * step.pci
        return max(host_side, grape_side) + step.gbe

    def efficiency(
        self, n_active: int, n_total: int, overlap: bool = False
    ) -> float:
        """Achieved / peak for a steady stream of identical blocks."""
        if overlap:
            total = self.block_step_overlapped(n_active, n_total)
        else:
            total = self.block_step(n_active, n_total).total
        if total == 0.0:
            return 0.0
        useful = n_active * n_total * FLOPS_PER_INTERACTION
        return useful / (total * self.config.peak_flops)
