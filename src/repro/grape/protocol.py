"""Host-interface wire protocol: the DMA command stream, byte for byte.

The real host library talks to the host-interface board through framed
DMA buffers.  This module defines a concrete wire format for the four
command types the GRAPE-6 workflow needs and a codec for it, so the
driver's traffic can be produced, inspected, and corrupted in tests the
way a bus analyser would see it:

frame layout (little endian)::

    magic   u16   0x47E6  ("G6")
    type    u8    command code
    flags   u8    reserved, zero
    length  u32   payload bytes
    payload ...
    crc     u32   CRC-32 of header (sans magic) + payload

Commands:

* ``SET_J``  — write one j-particle slot (key, mass, pos, vel, acc,
  jerk, t): 8 + 14*8 = 120 payload bytes
* ``SET_TI`` — set the block time: 8 bytes
* ``CALC``   — start pipelines on an i-block: count + packed i-records
  (key, pos, vel): count * (8 + 6*8) bytes + 4
* ``RESULT`` — force results: count + packed (acc, jerk): count * 48 + 4
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from ..errors import GrapeLinkError

__all__ = ["Command", "Frame", "encode_frame", "decode_frame", "FrameCodec"]

_MAGIC = 0x47E6
_HEADER = struct.Struct("<HBBI")


class Command(IntEnum):
    """Wire command codes."""

    SET_J = 0x01
    SET_TI = 0x02
    CALC = 0x03
    RESULT = 0x04


@dataclass(frozen=True)
class Frame:
    """One decoded frame."""

    command: Command
    payload: bytes


def encode_frame(command: Command, payload: bytes) -> bytes:
    """Frame a payload with header and trailing CRC-32."""
    header = _HEADER.pack(_MAGIC, int(command), 0, len(payload))
    crc = zlib.crc32(header[2:] + payload) & 0xFFFFFFFF
    return header + payload + struct.pack("<I", crc)


def decode_frame(buffer: bytes) -> tuple[Frame, int]:
    """Decode one frame from the head of ``buffer``.

    Returns ``(frame, bytes_consumed)``.  Raises
    :class:`GrapeLinkError` on bad magic, unknown command, short
    buffers, or CRC mismatch.
    """
    if len(buffer) < _HEADER.size + 4:
        raise GrapeLinkError("short frame: header truncated")
    magic, code, flags, length = _HEADER.unpack_from(buffer)
    if magic != _MAGIC:
        raise GrapeLinkError(f"bad frame magic 0x{magic:04x}")
    try:
        command = Command(code)
    except ValueError as exc:
        raise GrapeLinkError(f"unknown command code 0x{code:02x}") from exc
    total = _HEADER.size + length + 4
    if len(buffer) < total:
        raise GrapeLinkError("short frame: payload truncated")
    payload = bytes(buffer[_HEADER.size : _HEADER.size + length])
    (crc,) = struct.unpack_from("<I", buffer, _HEADER.size + length)
    expect = zlib.crc32(buffer[2 : _HEADER.size] + payload) & 0xFFFFFFFF
    if crc != expect:
        raise GrapeLinkError("frame CRC mismatch (corrupted transfer)")
    return Frame(command=command, payload=payload), total


class FrameCodec:
    """Typed encode/decode of the four GRAPE-6 command payloads."""

    _JREC = struct.Struct("<q14d")  # key + mass,pos3,vel3,acc3,jerk3,t
    _IREC = struct.Struct("<q6d")  # key + pos3, vel3
    _FREC = struct.Struct("<6d")  # acc3 + jerk3

    # -- SET_J ----------------------------------------------------------

    def encode_set_j(self, key, mass, pos, vel, acc, jerk, t) -> bytes:
        payload = self._JREC.pack(
            int(key), float(mass), *np.asarray(pos, float),
            *np.asarray(vel, float), *np.asarray(acc, float),
            *np.asarray(jerk, float), float(t),
        )
        return encode_frame(Command.SET_J, payload)

    def decode_set_j(self, frame: Frame) -> dict:
        self._expect(frame, Command.SET_J, self._JREC.size)
        vals = self._JREC.unpack(frame.payload)
        return {
            "key": vals[0],
            "mass": vals[1],
            "pos": np.array(vals[2:5]),
            "vel": np.array(vals[5:8]),
            "acc": np.array(vals[8:11]),
            "jerk": np.array(vals[11:14]),
            "t": vals[14],
        }

    # -- SET_TI ----------------------------------------------------------

    def encode_set_ti(self, t: float) -> bytes:
        return encode_frame(Command.SET_TI, struct.pack("<d", float(t)))

    def decode_set_ti(self, frame: Frame) -> float:
        self._expect(frame, Command.SET_TI, 8)
        return struct.unpack("<d", frame.payload)[0]

    # -- CALC --------------------------------------------------------------

    def encode_calc(self, keys, pos, vel) -> bytes:
        keys = np.asarray(keys, dtype=np.int64)
        pos = np.asarray(pos, dtype=np.float64)
        vel = np.asarray(vel, dtype=np.float64)
        n = keys.size
        parts = [struct.pack("<I", n)]
        for k in range(n):
            parts.append(self._IREC.pack(int(keys[k]), *pos[k], *vel[k]))
        return encode_frame(Command.CALC, b"".join(parts))

    def decode_calc(self, frame: Frame) -> dict:
        if frame.command is not Command.CALC:
            raise GrapeLinkError(f"expected CALC, got {frame.command.name}")
        (n,) = struct.unpack_from("<I", frame.payload)
        expect = 4 + n * self._IREC.size
        if len(frame.payload) != expect:
            raise GrapeLinkError("CALC payload length mismatch")
        keys = np.empty(n, dtype=np.int64)
        pos = np.empty((n, 3))
        vel = np.empty((n, 3))
        for k in range(n):
            vals = self._IREC.unpack_from(frame.payload, 4 + k * self._IREC.size)
            keys[k] = vals[0]
            pos[k] = vals[1:4]
            vel[k] = vals[4:7]
        return {"keys": keys, "pos": pos, "vel": vel}

    # -- RESULT ---------------------------------------------------------------

    def encode_result(self, acc, jerk) -> bytes:
        acc = np.asarray(acc, dtype=np.float64)
        jerk = np.asarray(jerk, dtype=np.float64)
        n = acc.shape[0]
        parts = [struct.pack("<I", n)]
        for k in range(n):
            parts.append(self._FREC.pack(*acc[k], *jerk[k]))
        return encode_frame(Command.RESULT, b"".join(parts))

    def decode_result(self, frame: Frame) -> tuple[np.ndarray, np.ndarray]:
        if frame.command is not Command.RESULT:
            raise GrapeLinkError(f"expected RESULT, got {frame.command.name}")
        (n,) = struct.unpack_from("<I", frame.payload)
        if len(frame.payload) != 4 + n * self._FREC.size:
            raise GrapeLinkError("RESULT payload length mismatch")
        acc = np.empty((n, 3))
        jerk = np.empty((n, 3))
        for k in range(n):
            vals = self._FREC.unpack_from(frame.payload, 4 + k * self._FREC.size)
            acc[k] = vals[0:3]
            jerk[k] = vals[3:6]
        return acc, jerk

    @staticmethod
    def _expect(frame: Frame, command: Command, size: int) -> None:
        if frame.command is not command:
            raise GrapeLinkError(
                f"expected {command.name}, got {frame.command.name}"
            )
        if len(frame.payload) != size:
            raise GrapeLinkError(f"{command.name} payload length mismatch")
