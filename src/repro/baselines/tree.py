"""Barnes–Hut octree: the paper's algorithmic counterfactual.

Section 3 of the paper argues that O(N log N) tree codes do not pay off
for the planetesimal problem: "it is very difficult to achieve high
efficiency with these algorithms when the timesteps of particles vary
widely".  To *quantify* that claim (the TREE-VS-DIRECT benchmark) this
module provides a complete monopole Barnes–Hut implementation:

* **vectorised level-by-level construction** (no per-node Python
  recursion): each level splits all of its over-full cells at once with
  a stable octant sort, and the mass/COM/velocity-moment/quadrupole
  aggregates roll up bottom-up with ``np.add.reduceat`` over the
  contiguous child ranges the build leaves behind,
* CSR adjacency (``child_ptr``/``child_idx``) and contiguous leaf
  membership (``leaf_perm`` + per-node start/count), so tree walks are
  pure ``np.repeat``/fancy-index frontier expansion,
* multipole acceptance criterion ``s / d < theta``,
* two walk strategies behind :func:`resolve_walk_mode` (knob
  ``walk=``, env ``REPRO_TREE_WALK``): the legacy **per-sink frontier**
  (``"persink"``) that expands an (i, node) pair frontier level by
  level, and the **grouped walk** (``"grouped"``, default) of
  :mod:`repro.hybrid.walk` that shares one interaction list per
  spatially coherent sink group and evaluates it in bulk through the
  :mod:`repro.accel` kernel engine (Fukushige & Kawai's GRAPE tree
  scheme),
* optional jerk estimates from node centre-of-mass velocities, allowing
  the tree to stand in as a :class:`~repro.core.backends.ForceBackend`
  under the block-timestep Hermite integrator — exactly the hybrid
  scheme [MA93] the paper cites.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "Octree",
    "OctreeStats",
    "WALK_MODES",
    "resolve_walk_mode",
    "concat_ranges",
]

_SQRT3 = float(np.sqrt(3.0))  # circumscribed-sphere factor of a cube

#: Known tree-walk strategies (``grouped`` is the vectorised default).
WALK_MODES = ("grouped", "persink")

#: Per-byte popcounts, for octant-mask child ranking during descent.
_POPCOUNT = np.array([bin(i).count("1") for i in range(256)], dtype=np.int64)


def resolve_walk_mode(walk: str | None = None) -> str:
    """The tree-walk strategy to use.

    Explicit ``walk=`` wins, then the ``REPRO_TREE_WALK`` environment
    variable, then ``"grouped"``.
    """
    mode = walk if walk is not None else os.environ.get("REPRO_TREE_WALK", "grouped")
    if mode not in WALK_MODES:
        raise ConfigurationError(
            f"unknown tree walk {mode!r} (choose from {WALK_MODES})"
        )
    return mode


def concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """``concatenate([arange(s, s+l) for s, l in zip(starts, lengths)])``
    without the Python loop (the classic cumsum trick)."""
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    ends = np.cumsum(lengths)
    out[0] = starts[0]
    out[ends[:-1]] = starts[1:] - (starts[:-1] + lengths[:-1] - 1)
    return np.cumsum(out)


class OctreeStats:
    """Counters of one tree build / walk."""

    __slots__ = ("n_nodes", "n_leaves", "max_depth", "pp_interactions", "node_interactions")

    def __init__(self) -> None:
        self.n_nodes = 0
        self.n_leaves = 0
        self.max_depth = 0
        self.pp_interactions = 0
        self.node_interactions = 0

    @property
    def total_interactions(self) -> int:
        """Particle-particle plus particle-node evaluations."""
        return self.pp_interactions + self.node_interactions


class Octree:
    """A monopole Barnes–Hut octree over a fixed particle set.

    Parameters
    ----------
    pos, mass:
        Particle positions ``(n, 3)`` and masses ``(n,)``.
    vel:
        Optional velocities; required for jerk estimates.
    leaf_size:
        Maximum particles per leaf (buckets trade tree depth for
        direct-sum work; 8-16 is standard).
    quadrupole:
        Also build traceless quadrupole moments
        ``Q = sum m (3 y y^T - |y|^2 I)`` per node; accepted-node
        accelerations then include the quadrupole term (jerks stay
        monopole — the classical compromise of tree+Hermite hybrids).

    Nodes are numbered in breadth-first level order (root is 0);
    every internal node's children occupy the contiguous id range
    ``[first_child, first_child + n_children)`` sorted by octant, and
    each node's particles occupy the contiguous ``leaf_perm`` slice
    ``[leaf_start, leaf_start + leaf_count)`` (leaves only).
    """

    def __init__(
        self,
        pos: np.ndarray,
        mass: np.ndarray,
        vel: np.ndarray | None = None,
        leaf_size: int = 8,
        quadrupole: bool = False,
    ) -> None:
        if leaf_size < 1:
            raise ConfigurationError("leaf_size must be >= 1")
        self.pos = np.ascontiguousarray(pos, dtype=np.float64)
        self.mass = np.ascontiguousarray(mass, dtype=np.float64)
        self.vel = None if vel is None else np.ascontiguousarray(vel, dtype=np.float64)
        self.n = self.pos.shape[0]
        if self.pos.shape != (self.n, 3):
            raise ConfigurationError("pos must be (n, 3)")
        self.leaf_size = int(leaf_size)
        self.quadrupole = bool(quadrupole)
        self.stats = OctreeStats()
        self.walk_stats = None
        self._oct_masks = None
        self._build()

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        """Level-synchronous vectorised build.

        Each pass splits every over-full cell of the current level at
        once: octant labels come from three coordinate compares, a
        stable ``argsort`` on ``parent*8 + octant`` groups particles by
        child cell while keeping ascending particle order inside each
        cell, and ``np.unique`` materialises exactly the non-empty
        children — sorted by (parent, octant), so every parent's
        children are contiguous ids.  Aggregates then roll up bottom-up
        over those contiguous ranges with ``np.add.reduceat``.
        """
        pos = self.pos
        center0 = 0.5 * (pos.min(axis=0) + pos.max(axis=0))
        half0 = 0.5 * float((pos.max(axis=0) - pos.min(axis=0)).max())
        half0 = max(half0, 1e-12) * 1.0000001  # avoid particles exactly on faces

        # per-level node arrays (concatenated at the end; BFS numbering)
        centers_lv = [center0[None, :].copy()]
        halves_lv = [np.array([half0])]
        parents_lv = [np.array([-1], dtype=np.int64)]
        octants_lv = [np.zeros(1, dtype=np.int64)]
        fc_lv: list[np.ndarray] = []
        nc_lv: list[np.ndarray] = []
        ls_lv: list[np.ndarray] = []
        lc_lv: list[np.ndarray] = []
        offsets = [0]  # global id of each level's first node

        self.leaf_perm = np.empty(self.n, dtype=np.int64)
        cursor = 0
        n_leaves = 0
        # particles still descending: indices + local node id within the
        # level, always sorted by node with ascending index inside a node
        idx = np.arange(self.n, dtype=np.int64)
        node_of = np.zeros(self.n, dtype=np.int64)
        level = 0
        while True:
            n_lv = halves_lv[level].shape[0]
            offsets.append(offsets[level] + n_lv)
            counts = np.bincount(node_of, minlength=n_lv)
            make_leaf = (counts <= self.leaf_size) | (level > 60)

            fc = np.full(n_lv, -1, dtype=np.int64)
            nc = np.zeros(n_lv, dtype=np.int64)
            ls = np.full(n_lv, -1, dtype=np.int64)
            lc = np.zeros(n_lv, dtype=np.int64)

            leaf_nodes = np.flatnonzero(make_leaf)
            if leaf_nodes.size:
                lcounts = counts[leaf_nodes]
                starts = cursor + np.concatenate(([0], np.cumsum(lcounts[:-1])))
                ls[leaf_nodes] = starts
                lc[leaf_nodes] = lcounts
                in_leaf = make_leaf[node_of]
                done = idx[in_leaf]
                self.leaf_perm[cursor : cursor + done.size] = done
                cursor += done.size
                n_leaves += leaf_nodes.size

            live = ~make_leaf[node_of]
            idx2 = idx[live]
            fc_lv.append(fc)
            nc_lv.append(nc)
            ls_lv.append(ls)
            lc_lv.append(lc)
            if idx2.size == 0:
                break

            pn = node_of[live]
            pc = centers_lv[level][pn]
            octant = (
                (pos[idx2, 0] > pc[:, 0]).astype(np.int64)
                + 2 * (pos[idx2, 1] > pc[:, 1]).astype(np.int64)
                + 4 * (pos[idx2, 2] > pc[:, 2]).astype(np.int64)
            )
            key = pn * 8 + octant
            order = np.argsort(key, kind="stable")
            idx2 = idx2[order]
            key = key[order]
            ukey, inv = np.unique(key, return_inverse=True)

            cpar = ukey // 8  # local parent id of each new child
            coct = ukey % 8
            nc_split = np.bincount(cpar, minlength=n_lv)
            csum = np.concatenate(([0], np.cumsum(nc_split[:-1])))
            splitters = np.flatnonzero(nc_split > 0)
            fc[splitters] = offsets[level + 1] + csum[splitters]
            nc[splitters] = nc_split[splitters]

            qh = halves_lv[level][cpar] * 0.5
            sign = np.stack(
                [
                    np.where(coct & 1, 1.0, -1.0),
                    np.where(coct & 2, 1.0, -1.0),
                    np.where(coct & 4, 1.0, -1.0),
                ],
                axis=1,
            )
            centers_lv.append(centers_lv[level][cpar] + sign * qh[:, None])
            halves_lv.append(qh)
            parents_lv.append(offsets[level] + cpar)
            octants_lv.append(coct)

            idx = idx2
            node_of = inv
            level += 1

        self.node_center = np.concatenate(centers_lv[: level + 1])
        self.node_half = np.concatenate(halves_lv[: level + 1])
        self.node_parent = np.concatenate(parents_lv[: level + 1])
        self.node_octant = np.concatenate(octants_lv[: level + 1])
        self.node_first_child = np.concatenate(fc_lv)
        self.node_n_children = np.concatenate(nc_lv)
        self.node_leaf_start = np.concatenate(ls_lv)
        self.node_leaf_count = np.concatenate(lc_lv)
        self._n_nodes = self.node_half.shape[0]
        self._level_offsets = offsets[: level + 2]

        # CSR adjacency: child ids of node v are
        # child_idx[child_ptr[v]:child_ptr[v+1]] (== first_child..+n).
        self.child_ptr = np.concatenate(
            ([0], np.cumsum(self.node_n_children))
        )
        has = self.node_n_children > 0
        self.child_idx = concat_ranges(
            self.node_first_child[has], self.node_n_children[has]
        )

        self._aggregate()
        self.stats.n_nodes = self._n_nodes
        self.stats.n_leaves = n_leaves
        self.stats.max_depth = level
        self.root = 0

    def _aggregate(self) -> None:
        """Bottom-up mass/COM/momentum/quadrupole over contiguous ranges."""
        n_nodes = self._n_nodes
        offsets = self._level_offsets
        n_levels = len(offsets) - 1

        mass_s = np.zeros(n_nodes)
        wpos = np.zeros((n_nodes, 3))  # sum m x
        psum = np.zeros((n_nodes, 3))  # sum x (zero-mass fallback)
        cnt = np.zeros(n_nodes)
        mom = np.zeros((n_nodes, 3))  # sum m v

        leaves = np.flatnonzero(self.node_leaf_start >= 0)
        lsorted = leaves[np.argsort(self.node_leaf_start[leaves])]
        starts = self.node_leaf_start[lsorted]
        pm = self.mass[self.leaf_perm]
        pp = self.pos[self.leaf_perm]
        mass_s[lsorted] = np.add.reduceat(pm, starts)
        wpos[lsorted] = np.add.reduceat(pm[:, None] * pp, starts)
        psum[lsorted] = np.add.reduceat(pp, starts)
        cnt[lsorted] = self.node_leaf_count[lsorted]
        if self.vel is not None:
            pv = self.vel[self.leaf_perm]
            mom[lsorted] = np.add.reduceat(pm[:, None] * pv, starts)

        def roll_up(values: np.ndarray) -> None:
            """Add each level's sums into its parents, deepest first."""
            for lv in range(n_levels - 2, -1, -1):
                child_sl = slice(offsets[lv + 1], offsets[lv + 2])
                if child_sl.start == child_sl.stop:
                    continue
                ids = np.arange(offsets[lv], offsets[lv + 1])
                internal = ids[self.node_first_child[ids] >= 0]
                st = self.node_first_child[internal] - offsets[lv + 1]
                values[internal] += np.add.reduceat(values[child_sl], st, axis=0)

        for arr in (mass_s, wpos, psum, cnt):
            roll_up(arr)
        if self.vel is not None:
            roll_up(mom)

        safe = np.where(mass_s > 0, mass_s, 1.0)
        self.node_mass = mass_s
        self.node_com = np.where(
            (mass_s > 0)[:, None], wpos / safe[:, None], psum / cnt[:, None]
        )
        self.node_mom = mom

        if not self.quadrupole:
            self.node_quad = None
            return
        # Hierarchical second moments M2 = sum m y y^T about each node's
        # COM: leaves directly, parents by the parallel-axis shift
        # M2_p = sum_c (M2_c + m_c d d^T), d = com_c - com_p.
        m2 = np.zeros((n_nodes, 3, 3))
        com_rep = np.repeat(
            self.node_com[lsorted], self.node_leaf_count[lsorted], axis=0
        )
        y = pp - com_rep
        m2[lsorted] = np.add.reduceat(
            pm[:, None, None] * y[:, :, None] * y[:, None, :], starts, axis=0
        )
        for lv in range(n_levels - 2, -1, -1):
            child_sl = slice(offsets[lv + 1], offsets[lv + 2])
            if child_sl.start == child_sl.stop:
                continue
            ids = np.arange(offsets[lv], offsets[lv + 1])
            internal = ids[self.node_first_child[ids] >= 0]
            st = self.node_first_child[internal] - offsets[lv + 1]
            d = self.node_com[child_sl] - self.node_com[self.node_parent[child_sl]]
            shifted = m2[child_sl] + (
                mass_s[child_sl][:, None, None] * d[:, :, None] * d[:, None, :]
            )
            m2[internal] += np.add.reduceat(shifted, st, axis=0)
        tr = np.trace(m2, axis1=1, axis2=2)
        self.node_quad = 3.0 * m2 - tr[:, None, None] * np.eye(3)

    @property
    def octant_masks(self) -> np.ndarray:
        """Per-node uint8 bitmask of which octants have a child.

        A sink descends without an 8-wide child table: its target child
        is ``first_child + popcount(mask & (bit - 1))`` when
        ``mask & bit`` is set (children are stored sorted by octant).
        """
        if self._oct_masks is None:
            masks = np.zeros(self._n_nodes, dtype=np.uint8)
            if self._n_nodes > 1:
                np.bitwise_or.at(
                    masks,
                    self.node_parent[1:],
                    (1 << self.node_octant[1:]).astype(np.uint8),
                )
            self._oct_masks = masks
        return self._oct_masks

    def children(self, node: int) -> list[int]:
        """Child node indices (empty for a leaf)."""
        return [int(c) for c in self.child_idx[self.child_ptr[node] : self.child_ptr[node + 1]]]

    # -- force evaluation -----------------------------------------------------

    def accelerations(
        self,
        pos_i: np.ndarray,
        theta: float,
        eps: float,
        vel_i: np.ndarray | None = None,
        exclude_self: np.ndarray | None = None,
        h_i: np.ndarray | float | None = None,
        walk: str | None = None,
        n_crit: int = 32,
        engine=None,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Tree forces (and jerks if velocities are available).

        Parameters
        ----------
        pos_i:
            Sink positions ``(n_i, 3)``.
        theta:
            Opening angle; 0 forces an exact (all-leaves) walk.
        eps:
            Plummer softening for particle-particle terms (node terms
            use the same softening for consistency).
        vel_i:
            Sink velocities, required if the tree was built with
            velocities and jerks are wanted.
        exclude_self:
            Source-index of each sink (sinks that are tree particles),
            to drop self-interaction in leaf sums.
        h_i:
            Optional per-sink neighbour-sphere radius (scalar
            broadcasts).  Sources with unsoftened ``dist2 < h_i**2``
            are excluded from the walk entirely — the exact complement
            of :func:`repro.grape.neighbours.neighbour_search`'s range
            predicate — so a hybrid backend can add the near field by
            direct summation without double counting.  Nodes are only
            accepted as multipoles when their cube lies wholly outside
            the sink's sphere.
        walk:
            Walk strategy override (:data:`WALK_MODES`); defaults to
            ``REPRO_TREE_WALK`` / ``"grouped"``.
        n_crit:
            Grouped walk only: stop refining a sink group once its
            population is at most this (bigger groups amortise the walk
            over more sinks at the price of a looser bounding sphere).
        engine:
            Grouped walk only: a :class:`repro.accel.KernelEngine` to
            evaluate the interaction lists (one is created on demand).

        Returns ``(acc, jerk_or_None)``.
        """
        if theta < 0:
            raise ConfigurationError("theta must be non-negative")
        pos_i = np.atleast_2d(np.asarray(pos_i, dtype=np.float64))
        n_i = pos_i.shape[0]
        want_jerk = self.vel is not None and vel_i is not None
        if want_jerk:
            vel_i = np.atleast_2d(np.asarray(vel_i, dtype=np.float64))
        if h_i is not None:
            h_i = np.broadcast_to(np.asarray(h_i, dtype=np.float64), (n_i,))
            if np.any(h_i < 0):
                raise ConfigurationError("neighbour radius must be non-negative")

        if resolve_walk_mode(walk) == "grouped":
            from ..hybrid.walk import grouped_accelerations

            acc, jerk, wstats = grouped_accelerations(
                self, pos_i, theta, eps,
                vel_i=vel_i if want_jerk else None,
                exclude_self=exclude_self, h_i=h_i,
                n_crit=n_crit, engine=engine,
            )
            self.walk_stats = wstats
            self.stats.node_interactions += wstats.node_terms
            self.stats.pp_interactions += wstats.pp_terms
            return acc, jerk if want_jerk else None

        self.walk_stats = None
        acc = np.zeros((n_i, 3))
        jerk = np.zeros((n_i, 3)) if want_jerk else None
        eps2 = float(eps) ** 2

        # frontier of (sink, node) pairs
        pi = np.arange(n_i, dtype=np.int64)
        nodes = np.full(n_i, self.root, dtype=np.int64)

        while pi.size:
            d = self.node_com[nodes] - pos_i[pi]
            dist2 = np.einsum("ij,ij->i", d, d)
            size = 2.0 * self.node_half[nodes]
            is_leaf = self.node_leaf_start[nodes] >= 0
            accept = (size * size < theta * theta * dist2) & ~is_leaf
            if np.any(accept):
                # A cube that contains the sink can satisfy the opening
                # criterion once theta > 2/sqrt(3) (the sink is within
                # sqrt(3)/2 * size of the COM) yet its monopole would
                # absorb the sink's own mass — always open such nodes.
                delta = pos_i[pi] - self.node_center[nodes]
                inside = np.abs(delta).max(axis=1) <= self.node_half[nodes]
                accept &= ~inside
                if h_i is not None:
                    # neighbour-sphere exclusion: accept only nodes whose
                    # cube lies entirely outside the sink's sphere
                    cdist = np.sqrt(np.einsum("ij,ij->i", delta, delta))
                    clearance = h_i[pi] + _SQRT3 * self.node_half[nodes]
                    accept &= cdist > clearance

            # 1) accepted internal nodes: monopole contribution
            if np.any(accept):
                ai = pi[accept]
                an = nodes[accept]
                dr = self.node_com[an] - pos_i[ai]
                r2 = np.einsum("ij,ij->i", dr, dr) + eps2
                # eps = 0 with a sink exactly on a node COM divides by
                # zero; keep the inf (the term is genuinely singular
                # there) but silence the runtime warning.
                with np.errstate(divide="ignore"):
                    inv_r3 = 1.0 / (r2 * np.sqrt(r2))
                contrib = (self.node_mass[an] * inv_r3)[:, None] * dr
                if self.quadrupole:
                    # a_quad = Q s / r^5 - (5/2)(s^T Q s) s / r^7 with
                    # s = sink - com = -dr
                    s = -dr
                    q = self.node_quad[an]
                    qs = np.einsum("ijk,ik->ij", q, s)
                    sqs = np.einsum("ij,ij->i", s, qs)
                    inv_r5 = inv_r3 / r2
                    inv_r7 = inv_r5 / r2
                    contrib = contrib + qs * inv_r5[:, None] - (
                        2.5 * sqs * inv_r7
                    )[:, None] * s
                np.add.at(acc, ai, contrib)
                if want_jerk:
                    node_mass = self.node_mass[an][:, None]
                    node_vel = np.divide(
                        self.node_mom[an],
                        node_mass,
                        out=np.zeros_like(self.node_mom[an]),
                        where=node_mass > 0,
                    )
                    dv = node_vel - vel_i[ai]
                    rv = np.einsum("ij,ij->i", dr, dv)
                    jc = (self.node_mass[an] * inv_r3)[:, None] * dv - (
                        3.0 * self.node_mass[an] * inv_r3 * rv / r2
                    )[:, None] * dr
                    np.add.at(jerk, ai, jc)
                self.stats.node_interactions += int(accept.sum())

            # 2) leaves: direct particle sums
            leaf_sel = is_leaf
            if np.any(leaf_sel):
                li = pi[leaf_sel]
                ln = nodes[leaf_sel]
                for sink, node in zip(li, ln):
                    start = self.node_leaf_start[node]
                    count = self.node_leaf_count[node]
                    src = self.leaf_perm[start : start + count]
                    dr = self.pos[src] - pos_i[sink]
                    dist2 = np.einsum("ij,ij->i", dr, dr)
                    r2 = dist2 + eps2
                    if exclude_self is not None:
                        mask = src == exclude_self[sink]
                        r2[mask] = np.inf
                    if h_i is not None:
                        # strict-inequality complement of neighbour_search's
                        # ``dist2 < h**2`` range predicate (same unsoftened
                        # distances, so the near/far split is exact)
                        r2[dist2 < h_i[sink] ** 2] = np.inf
                    with np.errstate(divide="ignore"):
                        inv_r3 = 1.0 / (r2 * np.sqrt(r2))
                    w = self.mass[src] * inv_r3
                    acc[sink] += (w[:, None] * dr).sum(axis=0)
                    if want_jerk:
                        dv = self.vel[src] - vel_i[sink]
                        rv = np.einsum("ij,ij->i", dr, dv)
                        jerk[sink] += (
                            (w[:, None] * dv) - (3.0 * w * rv / r2)[:, None] * dr
                        ).sum(axis=0)
                    self.stats.pp_interactions += count

            # 3) rejected internal nodes expand to children — CSR
            #    fancy-index, same (sink, child) order the recursive
            #    frontier produced
            expand = ~accept & ~is_leaf
            if np.any(expand):
                en = nodes[expand]
                reps = self.node_n_children[en]
                pi = np.repeat(pi[expand], reps)
                nodes = concat_ranges(self.node_first_child[en], reps)
            else:
                pi = np.empty(0, dtype=np.int64)
                nodes = np.empty(0, dtype=np.int64)

        return acc, jerk
