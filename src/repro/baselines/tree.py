"""Barnes–Hut octree: the paper's algorithmic counterfactual.

Section 3 of the paper argues that O(N log N) tree codes do not pay off
for the planetesimal problem: "it is very difficult to achieve high
efficiency with these algorithms when the timesteps of particles vary
widely".  To *quantify* that claim (the TREE-VS-DIRECT benchmark) this
module provides a complete monopole Barnes–Hut implementation:

* octree construction over a particle set (bucket leaves),
* multipole acceptance criterion ``s / d < theta``,
* a **vectorised frontier walk** that evaluates forces for a whole
  block of sink particles at once (NumPy-friendly: the classic
  per-particle recursive walk is replaced by an (i, node) pair frontier
  that expands rejected nodes level by level),
* optional jerk estimates from node centre-of-mass velocities, allowing
  the tree to stand in as a :class:`~repro.core.backends.ForceBackend`
  under the block-timestep Hermite integrator — exactly the hybrid
  scheme [MA93] the paper cites.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = ["Octree", "OctreeStats"]

_SQRT3 = float(np.sqrt(3.0))  # circumscribed-sphere factor of a cube


class OctreeStats:
    """Counters of one tree build / walk."""

    __slots__ = ("n_nodes", "n_leaves", "max_depth", "pp_interactions", "node_interactions")

    def __init__(self) -> None:
        self.n_nodes = 0
        self.n_leaves = 0
        self.max_depth = 0
        self.pp_interactions = 0
        self.node_interactions = 0

    @property
    def total_interactions(self) -> int:
        """Particle-particle plus particle-node evaluations."""
        return self.pp_interactions + self.node_interactions


class Octree:
    """A monopole Barnes–Hut octree over a fixed particle set.

    Parameters
    ----------
    pos, mass:
        Particle positions ``(n, 3)`` and masses ``(n,)``.
    vel:
        Optional velocities; required for jerk estimates.
    leaf_size:
        Maximum particles per leaf (buckets trade tree depth for
        direct-sum work; 8-16 is standard).
    quadrupole:
        Also build traceless quadrupole moments
        ``Q = sum m (3 y y^T - |y|^2 I)`` per node; accepted-node
        accelerations then include the quadrupole term (jerks stay
        monopole — the classical compromise of tree+Hermite hybrids).
    """

    def __init__(
        self,
        pos: np.ndarray,
        mass: np.ndarray,
        vel: np.ndarray | None = None,
        leaf_size: int = 8,
        quadrupole: bool = False,
    ) -> None:
        if leaf_size < 1:
            raise ConfigurationError("leaf_size must be >= 1")
        self.pos = np.ascontiguousarray(pos, dtype=np.float64)
        self.mass = np.ascontiguousarray(mass, dtype=np.float64)
        self.vel = None if vel is None else np.ascontiguousarray(vel, dtype=np.float64)
        self.n = self.pos.shape[0]
        if self.pos.shape != (self.n, 3):
            raise ConfigurationError("pos must be (n, 3)")
        self.leaf_size = int(leaf_size)
        self.quadrupole = bool(quadrupole)
        self.stats = OctreeStats()
        self._build()

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        n_guess = max(16, 4 * self.n)
        self.node_center = np.zeros((n_guess, 3))
        self.node_half = np.zeros(n_guess)
        self.node_mass = np.zeros(n_guess)
        self.node_com = np.zeros((n_guess, 3))
        self.node_mom = np.zeros((n_guess, 3))  # mass-weighted velocity
        self.node_quad = np.zeros((n_guess, 3, 3)) if self.quadrupole else None
        self.node_first_child = np.full(n_guess, -1, dtype=np.int64)
        self.node_n_children = np.zeros(n_guess, dtype=np.int64)
        self.node_leaf_start = np.full(n_guess, -1, dtype=np.int64)
        self.node_leaf_count = np.zeros(n_guess, dtype=np.int64)
        #: permutation of particle indices so leaves are contiguous
        self.leaf_perm = np.empty(self.n, dtype=np.int64)
        self._n_nodes = 0
        self._leaf_cursor = 0

        center = 0.5 * (self.pos.min(axis=0) + self.pos.max(axis=0))
        half = 0.5 * float((self.pos.max(axis=0) - self.pos.min(axis=0)).max())
        half = max(half, 1e-12) * 1.0000001  # avoid particles exactly on faces
        root = self._alloc_node(center, half)
        self._subdivide(root, np.arange(self.n), depth=0)
        self._trim()
        self.stats.n_nodes = self._n_nodes
        self.root = root

    def _alloc_node(self, center, half) -> int:
        i = self._n_nodes
        if i >= len(self.node_half):
            self._grow()
        self.node_center[i] = center
        self.node_half[i] = half
        self._n_nodes += 1
        return i

    def _array_names(self) -> tuple:
        names = (
            "node_center", "node_half", "node_mass", "node_com", "node_mom",
            "node_first_child", "node_n_children", "node_leaf_start",
            "node_leaf_count",
        )
        return names + ("node_quad",) if self.quadrupole else names

    def _grow(self) -> None:
        for name in self._array_names():
            arr = getattr(self, name)
            pad = np.zeros((len(arr),) + arr.shape[1:], dtype=arr.dtype)
            if name in ("node_first_child", "node_leaf_start"):
                pad -= 1
            setattr(self, name, np.concatenate([arr, pad]))

    def _subdivide(self, node: int, idx: np.ndarray, depth: int) -> None:
        self.stats.max_depth = max(self.stats.max_depth, depth)
        m = self.mass[idx]
        mtot = m.sum()
        self.node_mass[node] = mtot
        if mtot > 0:
            self.node_com[node] = (m[:, None] * self.pos[idx]).sum(axis=0) / mtot
        else:
            self.node_com[node] = self.pos[idx].mean(axis=0)
        if self.vel is not None:
            self.node_mom[node] = (m[:, None] * self.vel[idx]).sum(axis=0)
        if self.quadrupole:
            y = self.pos[idx] - self.node_com[node]
            y2 = np.einsum("ij,ij->i", y, y)
            self.node_quad[node] = 3.0 * np.einsum("i,ij,ik->jk", m, y, y) - np.einsum(
                "i,i->", m, y2
            ) * np.eye(3)

        if len(idx) <= self.leaf_size or depth > 60:
            start = self._leaf_cursor
            self.leaf_perm[start : start + len(idx)] = idx
            self.node_leaf_start[node] = start
            self.node_leaf_count[node] = len(idx)
            self._leaf_cursor += len(idx)
            self.stats.n_leaves += 1
            return

        center = self.node_center[node]
        # octant index 0..7 from the sign of each coordinate offset
        oct_idx = (
            (self.pos[idx, 0] > center[0]).astype(np.int64)
            + 2 * (self.pos[idx, 1] > center[1]).astype(np.int64)
            + 4 * (self.pos[idx, 2] > center[2]).astype(np.int64)
        )
        half = self.node_half[node] * 0.5
        children = []
        for o in range(8):
            sub = idx[oct_idx == o]
            if sub.size == 0:
                continue
            offset = np.array(
                [half if o & 1 else -half, half if o & 2 else -half, half if o & 4 else -half]
            )
            child = self._alloc_node(center + offset, half)
            children.append((child, sub))
        self.node_first_child[node] = children[0][0]
        self.node_n_children[node] = len(children)
        self._children_of = getattr(self, "_children_of", {})
        self._children_of[node] = [c for c, _ in children]
        for child, sub in children:
            self._subdivide(child, sub, depth + 1)

    def _trim(self) -> None:
        n = self._n_nodes
        for name in self._array_names():
            setattr(self, name, getattr(self, name)[:n])

    def children(self, node: int) -> list[int]:
        """Child node indices (empty for a leaf)."""
        if self.node_leaf_start[node] >= 0:
            return []
        return self._children_of[node]

    # -- force evaluation -----------------------------------------------------

    def accelerations(
        self,
        pos_i: np.ndarray,
        theta: float,
        eps: float,
        vel_i: np.ndarray | None = None,
        exclude_self: np.ndarray | None = None,
        h_i: np.ndarray | float | None = None,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Tree forces (and jerks if velocities are available).

        Parameters
        ----------
        pos_i:
            Sink positions ``(n_i, 3)``.
        theta:
            Opening angle; 0 forces an exact (all-leaves) walk.
        eps:
            Plummer softening for particle-particle terms (node terms
            use the same softening for consistency).
        vel_i:
            Sink velocities, required if the tree was built with
            velocities and jerks are wanted.
        exclude_self:
            Source-index of each sink (sinks that are tree particles),
            to drop self-interaction in leaf sums.
        h_i:
            Optional per-sink neighbour-sphere radius (scalar
            broadcasts).  Sources with unsoftened ``dist2 < h_i**2``
            are excluded from the walk entirely — the exact complement
            of :func:`repro.grape.neighbours.neighbour_search`'s range
            predicate — so a hybrid backend can add the near field by
            direct summation without double counting.  Nodes are only
            accepted as multipoles when their cube lies wholly outside
            the sink's sphere.

        Returns ``(acc, jerk_or_None)``.
        """
        if theta < 0:
            raise ConfigurationError("theta must be non-negative")
        pos_i = np.atleast_2d(np.asarray(pos_i, dtype=np.float64))
        n_i = pos_i.shape[0]
        want_jerk = self.vel is not None and vel_i is not None
        if want_jerk:
            vel_i = np.atleast_2d(np.asarray(vel_i, dtype=np.float64))
        if h_i is not None:
            h_i = np.broadcast_to(np.asarray(h_i, dtype=np.float64), (n_i,))
            if np.any(h_i < 0):
                raise ConfigurationError("neighbour radius must be non-negative")
        acc = np.zeros((n_i, 3))
        jerk = np.zeros((n_i, 3)) if want_jerk else None
        eps2 = float(eps) ** 2

        # frontier of (sink, node) pairs
        pi = np.arange(n_i, dtype=np.int64)
        nodes = np.full(n_i, self.root, dtype=np.int64)

        while pi.size:
            d = self.node_com[nodes] - pos_i[pi]
            dist2 = np.einsum("ij,ij->i", d, d)
            size = 2.0 * self.node_half[nodes]
            is_leaf = self.node_leaf_start[nodes] >= 0
            with np.errstate(divide="ignore"):
                accept = (size * size < theta * theta * dist2) & ~is_leaf
            if np.any(accept):
                # A cube that contains the sink can satisfy the opening
                # criterion once theta > 2/sqrt(3) (the sink is within
                # sqrt(3)/2 * size of the COM) yet its monopole would
                # absorb the sink's own mass — always open such nodes.
                delta = pos_i[pi] - self.node_center[nodes]
                inside = np.abs(delta).max(axis=1) <= self.node_half[nodes]
                accept &= ~inside
                if h_i is not None:
                    # neighbour-sphere exclusion: accept only nodes whose
                    # cube lies entirely outside the sink's sphere
                    cdist = np.sqrt(np.einsum("ij,ij->i", delta, delta))
                    clearance = h_i[pi] + _SQRT3 * self.node_half[nodes]
                    accept &= cdist > clearance

            # 1) accepted internal nodes: monopole contribution
            if np.any(accept):
                ai = pi[accept]
                an = nodes[accept]
                dr = self.node_com[an] - pos_i[ai]
                r2 = np.einsum("ij,ij->i", dr, dr) + eps2
                inv_r3 = 1.0 / (r2 * np.sqrt(r2))
                contrib = (self.node_mass[an] * inv_r3)[:, None] * dr
                if self.quadrupole:
                    # a_quad = Q s / r^5 - (5/2)(s^T Q s) s / r^7 with
                    # s = sink - com = -dr
                    s = -dr
                    q = self.node_quad[an]
                    qs = np.einsum("ijk,ik->ij", q, s)
                    sqs = np.einsum("ij,ij->i", s, qs)
                    inv_r5 = inv_r3 / r2
                    inv_r7 = inv_r5 / r2
                    contrib = contrib + qs * inv_r5[:, None] - (
                        2.5 * sqs * inv_r7
                    )[:, None] * s
                np.add.at(acc, ai, contrib)
                if want_jerk:
                    node_mass = self.node_mass[an][:, None]
                    node_vel = np.divide(
                        self.node_mom[an],
                        node_mass,
                        out=np.zeros_like(self.node_mom[an]),
                        where=node_mass > 0,
                    )
                    dv = node_vel - vel_i[ai]
                    rv = np.einsum("ij,ij->i", dr, dv)
                    jc = (self.node_mass[an] * inv_r3)[:, None] * dv - (
                        3.0 * self.node_mass[an] * inv_r3 * rv / r2
                    )[:, None] * dr
                    np.add.at(jerk, ai, jc)
                self.stats.node_interactions += int(accept.sum())

            # 2) leaves: direct particle sums
            leaf_sel = is_leaf
            if np.any(leaf_sel):
                li = pi[leaf_sel]
                ln = nodes[leaf_sel]
                for sink, node in zip(li, ln):
                    start = self.node_leaf_start[node]
                    count = self.node_leaf_count[node]
                    src = self.leaf_perm[start : start + count]
                    dr = self.pos[src] - pos_i[sink]
                    dist2 = np.einsum("ij,ij->i", dr, dr)
                    r2 = dist2 + eps2
                    if exclude_self is not None:
                        mask = src == exclude_self[sink]
                        r2[mask] = np.inf
                    if h_i is not None:
                        # strict-inequality complement of neighbour_search's
                        # ``dist2 < h**2`` range predicate (same unsoftened
                        # distances, so the near/far split is exact)
                        r2[dist2 < h_i[sink] ** 2] = np.inf
                    inv_r3 = 1.0 / (r2 * np.sqrt(r2))
                    w = self.mass[src] * inv_r3
                    acc[sink] += (w[:, None] * dr).sum(axis=0)
                    if want_jerk:
                        dv = self.vel[src] - vel_i[sink]
                        rv = np.einsum("ij,ij->i", dr, dv)
                        jerk[sink] += (
                            (w[:, None] * dv) - (3.0 * w * rv / r2)[:, None] * dr
                        ).sum(axis=0)
                    self.stats.pp_interactions += count

            # 3) rejected internal nodes expand to children
            expand = ~accept & ~is_leaf
            if np.any(expand):
                new_pi = []
                new_nodes = []
                for sink, node in zip(pi[expand], nodes[expand]):
                    for child in self._children_of[node]:
                        new_pi.append(sink)
                        new_nodes.append(child)
                pi = np.array(new_pi, dtype=np.int64)
                nodes = np.array(new_nodes, dtype=np.int64)
            else:
                pi = np.empty(0, dtype=np.int64)
                nodes = np.empty(0, dtype=np.int64)

        return acc, jerk
