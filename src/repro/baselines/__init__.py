"""Baselines the paper argues against (and we therefore implement).

* :class:`~repro.baselines.tree.Octree` /
  :class:`~repro.baselines.treebackend.TreeBackend` — Barnes–Hut
* :class:`~repro.baselines.shared_step.SharedHermite` /
  :class:`~repro.baselines.shared_step.SharedLeapfrog` — global steps
* :class:`~repro.baselines.direct_host.HostOnlyBackend` — no GRAPE
"""

from .direct_host import HostOnlyBackend
from .shared_step import SharedHermite, SharedLeapfrog
from .tree import Octree, OctreeStats
from .treebackend import TreeBackend

__all__ = [
    "HostOnlyBackend",
    "SharedHermite",
    "SharedLeapfrog",
    "Octree",
    "OctreeStats",
    "TreeBackend",
]
