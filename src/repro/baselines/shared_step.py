"""Shared (global) timestep integrators.

The paper's Section 3 premise: with a single global timestep, the whole
system must march at the pace of the *fastest* particle — a close
encounter with an hours-scale timescale stalls 1.8 million particles
whose natural step is months.  These reference integrators quantify
that (the HERMITE-ACC and TREE-VS-DIRECT benchmarks):

* :class:`SharedHermite` — the same 4th-order Hermite scheme as the
  production integrator, but every particle takes every step;
* :class:`SharedLeapfrog` — kick-drift-kick leapfrog, the standard
  2nd-order collisionless workhorse, for the accuracy-order comparison.

Both operate directly on a :class:`~repro.core.particles.ParticleSystem`
with any :class:`~repro.core.backends.ForceBackend`-independent force
callable, to stay decoupled from the block machinery.
"""

from __future__ import annotations

import numpy as np

from ..accel import get_engine
from ..core.forces import InteractionCounter
from ..core.hermite import hermite_step_arrays
from ..errors import ConfigurationError

__all__ = ["SharedHermite", "SharedLeapfrog"]


class _SharedBase:
    """State common to the shared-step integrators."""

    def __init__(self, system, eps: float, external_field=None) -> None:
        self.system = system
        self.eps = float(eps)
        self.external_field = external_field
        self.counter = InteractionCounter()
        self.time = float(system.t[0])
        self.steps = 0

    def _mutual_acc_jerk(self, pos, vel):
        n = pos.shape[0]
        return get_engine().acc_jerk(
            pos, vel, pos, vel, self.system.mass, self.eps,
            self_indices=np.arange(n), counter=self.counter,
        )

    def _total_acc_jerk(self, pos, vel):
        acc, jerk = self._mutual_acc_jerk(pos, vel)
        if self.external_field is not None:
            ea, ej = self.external_field.acc_jerk(pos, vel)
            acc = acc + ea
            jerk = jerk + ej
        return acc, jerk


class SharedHermite(_SharedBase):
    """4th-order Hermite with one global step for all particles."""

    def __init__(self, system, eps: float, dt: float, external_field=None) -> None:
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        super().__init__(system, eps, external_field)
        self.dt = float(dt)
        self._acc, self._jerk = self._total_acc_jerk(system.pos, system.vel)

    def step(self) -> None:
        s = self.system
        dt_arr = np.full(s.n, self.dt)
        pos1, vel1, acc1, jerk1, _ = hermite_step_arrays(
            s.pos, s.vel, self._acc, self._jerk, dt_arr, self._total_acc_jerk
        )
        s.pos[...] = pos1
        s.vel[...] = vel1
        self._acc, self._jerk = acc1, jerk1
        self.time += self.dt
        s.t[...] = self.time
        self.steps += 1

    def evolve(self, t_end: float) -> None:
        # guard against accumulation drift with an epsilon margin
        while self.time + self.dt <= t_end * (1 + 1e-12):
            self.step()


class SharedLeapfrog(_SharedBase):
    """Kick-drift-kick leapfrog with one global step.

    Second-order and symplectic for the mutual forces; the external
    field is folded into the kicks so the scheme stays KDK throughout.
    """

    def __init__(self, system, eps: float, dt: float, external_field=None) -> None:
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        super().__init__(system, eps, external_field)
        self.dt = float(dt)

    def _total_acc(self, pos, vel):
        n = pos.shape[0]
        acc = get_engine().acc_only(
            pos, pos, self.system.mass, self.eps,
            self_indices=np.arange(n), counter=self.counter,
        )
        if self.external_field is not None:
            ea, _ = self.external_field.acc_jerk(pos, vel)
            acc = acc + ea
        return acc

    def step(self) -> None:
        s = self.system
        dt = self.dt
        acc = self._total_acc(s.pos, s.vel)
        s.vel += 0.5 * dt * acc  # kick
        s.pos += dt * s.vel  # drift
        acc = self._total_acc(s.pos, s.vel)
        s.vel += 0.5 * dt * acc  # kick
        self.time += dt
        s.t[...] = self.time
        self.steps += 1

    def evolve(self, t_end: float) -> None:
        while self.time + self.dt <= t_end * (1 + 1e-12):
            self.step()
