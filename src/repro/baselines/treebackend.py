"""Tree-based force backend for the block-timestep integrator.

The [MA93] hybrid the paper discusses: individual timesteps with a tree
for the force loop.  The tree must be rebuilt whenever sources move,
which under individual timesteps means *every block step* — this
rebuild cost (plus the poor amortisation of the walk over tiny blocks)
is precisely why the paper says "the actual gain in the calculation
speed turned out to be rather small".  The TREE-VS-DIRECT benchmark
measures that with this backend.

The tree is built over source particles *predicted to the block time*,
so the force is consistent with the direct backends up to the multipole
truncation error.
"""

from __future__ import annotations

import numpy as np

from ..accel import get_engine
from ..core.backends import ForceBackend
from ..core.forces import InteractionCounter
from ..core.predictor import predict_system
from ..errors import ConfigurationError
from .tree import Octree, resolve_walk_mode

__all__ = ["TreeBackend"]


class TreeBackend(ForceBackend):
    """Barnes–Hut force backend (monopole, rebuilt every block).

    Parameters
    ----------
    eps:
        Plummer softening (matching the direct backends).
    theta:
        Opening angle; smaller is more accurate and more expensive.
    leaf_size:
        Bucket size of the octree.
    walk:
        Tree-walk strategy (:data:`repro.baselines.tree.WALK_MODES`);
        ``None`` resolves ``REPRO_TREE_WALK`` / ``"grouped"``.
    n_crit:
        Grouped-walk sink-group size target.
    engine:
        :class:`repro.accel.KernelEngine` for grouped-walk bulk
        evaluation (defaults to the process-wide engine).
    """

    def __init__(self, eps: float, theta: float = 0.5, leaf_size: int = 8,
                 walk: str | None = None, n_crit: int = 32, engine=None) -> None:
        if theta < 0:
            raise ConfigurationError("theta must be non-negative")
        if n_crit < 1:
            raise ConfigurationError("n_crit must be >= 1")
        self.eps = float(eps)
        self.theta = float(theta)
        self.leaf_size = int(leaf_size)
        self.walk = resolve_walk_mode(walk)
        self.n_crit = int(n_crit)
        self.engine = engine
        self.counter = InteractionCounter()
        #: trees built over the run (== block steps; the cost driver)
        self.builds = 0
        #: cumulative tree-walk interaction count (pp + node)
        self.walk_interactions = 0

    def load(self, system) -> None:
        return None

    def forces_on(self, system, active: np.ndarray, t_now: float):
        predict_system(system, t_now)
        tree = Octree(
            system.pred_pos, system.mass, vel=system.pred_vel, leaf_size=self.leaf_size
        )
        self.builds += 1
        active = np.asarray(active)
        acc, jerk = tree.accelerations(
            system.pred_pos[active],
            theta=self.theta,
            eps=self.eps,
            vel_i=system.pred_vel[active],
            exclude_self=_dense_exclusion(active, system.n),
            walk=self.walk,
            n_crit=self.n_crit,
            engine=self.engine,
        )
        self.walk_interactions += tree.stats.total_interactions
        # Book as force_interactions for comparability with direct sums.
        self.counter.add(active.size, system.n, with_jerk=True)
        return acc, jerk

    def push_updates(self, system, active: np.ndarray) -> None:
        return None

    def potential(self, system) -> np.ndarray:
        n = system.n
        return get_engine().pairwise_potential(
            system.pos, system.pos, system.mass, self.eps, self_indices=np.arange(n)
        )


def _dense_exclusion(active: np.ndarray, n: int) -> np.ndarray:
    """Per-sink source index for self-exclusion in leaf sums.

    ``Octree.accelerations`` indexes ``exclude_self`` by sink position,
    so simply return the active indices themselves.
    """
    return np.asarray(active, dtype=np.int64)
