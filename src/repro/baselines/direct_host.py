"""The no-GRAPE counterfactual: direct summation priced on the host CPU.

Section 4.1 of the paper: "a single workstation with the effective
speed of several hundred Mflops is too slow as a host" — let alone as
the force engine.  This module wraps the reference
:class:`~repro.core.backends.HostDirectBackend` with a host-CPU cost
model so the HOST-VS-GRAPE benchmark can compare a pure-host run
against the GRAPE-accelerated one on equal terms (modelled early-2000s
wall-clock, not Python wall-clock).
"""

from __future__ import annotations

import numpy as np

from ..constants import FLOPS_PER_INTERACTION
from ..core.backends import HostDirectBackend
from ..errors import ConfigurationError

__all__ = ["HostOnlyBackend"]


class HostOnlyBackend(HostDirectBackend):
    """Direct summation with era-host cost accounting.

    Parameters
    ----------
    eps:
        Plummer softening.
    host_flops:
        Sustained floating-point speed of the modelled host CPU
        [flop/s].  The paper-era Athlon XP sustains a few hundred
        Mflops on this kernel; default 400 Mflops.
    """

    def __init__(self, eps: float, host_flops: float = 4.0e8) -> None:
        if host_flops <= 0:
            raise ConfigurationError("host_flops must be positive")
        super().__init__(eps=eps)
        self.host_flops = float(host_flops)
        #: Modelled seconds the era host would have spent on forces.
        self.modelled_seconds = 0.0

    def forces_on(self, system, active: np.ndarray, t_now: float):
        n_before = self.counter.force_interactions
        result = super().forces_on(system, active, t_now)
        pairs = self.counter.force_interactions - n_before
        self.modelled_seconds += pairs * FLOPS_PER_INTERACTION / self.host_flops
        return result

    def achieved_flops(self) -> float:
        """Sustained modelled speed (= host_flops by construction)."""
        if self.modelled_seconds == 0.0:
            return 0.0
        return (
            self.counter.force_interactions
            * FLOPS_PER_INTERACTION
            / self.modelled_seconds
        )
