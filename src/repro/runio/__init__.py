"""Production-run I/O: run logs, snapshot schedules, output management.

The paper's 10.3-hour figure explicitly includes "file operations"; a
production N-body run is a long-lived process whose observability and
restartability live here:

* :class:`~repro.runio.runlog.RunLogger` — JSONL per-interval
  diagnostics (time, block counts, energy error, block statistics);
* :class:`~repro.runio.schedule.SnapshotSchedule` /
  :class:`~repro.runio.schedule.OutputManager` — cadence-driven
  snapshot writing with restart support.
"""

from .driver import ProductionRun, RunReport
from .runlog import RunLogger, read_run_log
from .schedule import OutputManager, SnapshotSchedule

__all__ = [
    "ProductionRun",
    "RunReport",
    "RunLogger",
    "read_run_log",
    "OutputManager",
    "SnapshotSchedule",
]
