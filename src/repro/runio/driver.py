"""The production-run driver: everything a long run needs, assembled.

``Simulation.evolve`` is the inner loop; a *production* run (the
paper's was 10.3 hours) additionally wants scheduled snapshots, a run
log, periodic energy accounting, escaper pruning, checkpoint–restart,
and a final report.  :class:`ProductionRun` packages that workflow:

    run = ProductionRun(
        sim,
        directory="runs/disk-n2000",
        snapshot_interval=100.0,
        diagnostics_interval=20.0,
        prune_escapers_beyond=200.0,
        checkpoint_interval=500,          # block steps
    )
    report = run.execute(t_end=1000.0)
    print(report.summary())

If the run dies (machine crash, injected host-kill), continue it with::

    run = ProductionRun.resume("runs/disk-n2000", backend)
    report = run.execute()                # t_end restored from checkpoint

The resumed run is bit-identical to one that was never interrupted: the
checkpoint stores the raw integrator state at a block boundary and the
block scheduler is stateless.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..core.diagnostics import EnergyTracker
from ..errors import ConfigurationError
from .runlog import RunLogger
from .schedule import OutputManager, SnapshotSchedule

__all__ = ["RunReport", "ProductionRun"]


@dataclass
class RunReport:
    """Final accounting of one production run."""

    t_final: float
    block_steps: int
    particle_steps: int
    n_final: int
    mergers: int
    escapers_removed: int
    snapshots_written: int
    max_energy_error: float
    #: GRAPE timing totals when the backend exposes them (else None)
    grape_totals: dict | None = None
    checkpoints_written: int = 0
    #: Health events emitted by the run watchdogs (0 = clean run).
    health_events: int = 0

    def summary(self) -> str:
        lines = [
            f"production run complete at T = {self.t_final:g}",
            f"  blocks {self.block_steps:,}, particle steps {self.particle_steps:,}",
            f"  particles remaining {self.n_final} "
            f"(mergers {self.mergers}, escapers removed {self.escapers_removed})",
            f"  snapshots {self.snapshots_written}, "
            f"checkpoints {self.checkpoints_written}, "
            f"max |dE/E| {self.max_energy_error:.2e}",
        ]
        if self.grape_totals:
            lines.append(
                f"  GRAPE model: {self.grape_totals['total_s']:.3f} s, "
                f"{self.grape_totals['achieved_flops'] / 1e12:.2f} Tflops"
            )
        if self.health_events:
            lines.append(f"  health events {self.health_events} (see run.jsonl)")
        return "\n".join(lines)


class ProductionRun:
    """Managed execution of a :class:`~repro.core.integrator.Simulation`.

    Parameters
    ----------
    sim:
        An initialised (or initialisable) simulation.
    directory:
        Run directory for snapshots, checkpoints and the JSONL log.
    snapshot_interval:
        Simulation-time cadence of snapshots (None disables them).
    diagnostics_interval:
        Cadence of energy sampling + log records (None disables).
    prune_escapers_beyond:
        Remove hyperbolic particles outside this radius at diagnostics
        cadence (None disables pruning).
    run_id:
        Label written to the log header.
    checkpoint_interval:
        Checkpoint every this many *block steps* into
        ``<directory>/checkpoints`` (None disables; see
        :class:`~repro.resilience.CheckpointManager`).
    checkpoint_metadata:
        Extra JSON-serialisable dict stored in every checkpoint under
        ``config`` (the CLI stores how to rebuild the backend here).
    energy_error_limit:
        Energy watchdog threshold: a diagnostics sample beyond this
        relative error trips the watchdog, logs the event, and triggers
        an in-run self-test sweep when the backend has recovery armed.
    selftest_every:
        Run a self-test sweep every this many block steps (None
        disables; requires an armed hierarchy-mode GRAPE backend).
    on_block:
        Callback invoked with the simulation after every block (after
        snapshot/diag/checkpoint handling) — used by kill-and-resume
        tests and custom steering.
    """

    def __init__(
        self,
        sim,
        directory,
        snapshot_interval: float | None = None,
        diagnostics_interval: float | None = None,
        prune_escapers_beyond: float | None = None,
        run_id: str = "run",
        checkpoint_interval: int | None = None,
        checkpoint_metadata: dict | None = None,
        energy_error_limit: float | None = None,
        selftest_every: int | None = None,
        on_block=None,
    ) -> None:
        if snapshot_interval is not None and snapshot_interval <= 0:
            raise ConfigurationError("snapshot_interval must be positive")
        if diagnostics_interval is not None and diagnostics_interval <= 0:
            raise ConfigurationError("diagnostics_interval must be positive")
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ConfigurationError("checkpoint_interval must be >= 1 block")
        if energy_error_limit is not None and energy_error_limit <= 0:
            raise ConfigurationError("energy_error_limit must be positive")
        if selftest_every is not None and selftest_every < 1:
            raise ConfigurationError("selftest_every must be >= 1 block")
        self.sim = sim
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.run_id = run_id
        self.snapshot_interval = snapshot_interval
        self.diagnostics_interval = diagnostics_interval
        self.prune_escapers_beyond = prune_escapers_beyond
        self.checkpoint_interval = checkpoint_interval
        self.checkpoint_metadata = checkpoint_metadata
        self.energy_error_limit = energy_error_limit
        self.selftest_every = selftest_every
        self.on_block = on_block
        self.escapers_removed = 0
        self.checkpoints_written = 0
        #: Checkpoint state dict when constructed by :meth:`resume`.
        self._restore: dict | None = None

    # -- restart ---------------------------------------------------------

    @classmethod
    def resume(
        cls,
        directory,
        backend,
        *,
        external_field=None,
        timestep_params=None,
        collision_policy=None,
        corrector_iterations: int = 1,
        obs=None,
        **overrides,
    ) -> "ProductionRun":
        """Rebuild a run from the latest checkpoint in ``directory``.

        ``backend`` must be constructed the same way as the original
        run's (the CLI stores its recipe in the checkpoint ``config``).
        Intervals and run id are restored from the checkpoint; keyword
        ``overrides`` replace any of them.  Raises
        :class:`~repro.errors.CheckpointError` when the directory holds
        no checkpoint.
        """
        from ..core.integrator import Simulation
        from ..resilience import CheckpointManager

        directory = Path(directory)
        manager = CheckpointManager(directory / "checkpoints", obs=obs)
        system, state = manager.load_latest()
        sim = Simulation.from_restart(
            system,
            backend,
            state["time"],
            external_field=external_field,
            timestep_params=timestep_params,
            collision_policy=collision_policy,
            corrector_iterations=corrector_iterations,
            obs=obs,
            block_steps=state.get("block_steps", 0),
            particle_steps=state.get("particle_steps", 0),
            mergers=state.get("mergers", 0),
        )
        kwargs = {
            "snapshot_interval": state.get("snapshot_interval"),
            "diagnostics_interval": state.get("diagnostics_interval"),
            "prune_escapers_beyond": state.get("prune_escapers_beyond"),
            "checkpoint_interval": state.get("checkpoint_interval"),
            "energy_error_limit": state.get("energy_error_limit"),
            "selftest_every": state.get("selftest_every"),
            "run_id": state.get("run_id", "run"),
            # keep carrying the backend recipe: without this, checkpoints
            # written *after* a resume would lose the config and a second
            # resume could not rebuild the backend
            "checkpoint_metadata": state.get("config"),
        }
        kwargs.update(overrides)
        run = cls(sim, directory, **kwargs)
        run.escapers_removed = int(state.get("escapers_removed", 0))
        run._restore = state
        return run

    # -- internals -------------------------------------------------------

    def _grape_totals(self) -> dict | None:
        machine = getattr(self.sim.backend, "machine", None)
        totals = getattr(machine, "totals", None)
        return totals.to_dict() if totals is not None else None

    def _recovery(self):
        machine = getattr(self.sim.backend, "machine", None)
        return getattr(machine, "recovery", None)

    def _write_checkpoint(self, manager, tracker, t_end, next_diag, output) -> None:
        sim = self.sim
        state = {
            "time": float(sim.time),
            "t_end": float(t_end),
            "block_steps": sim.block_steps,
            "particle_steps": sim.particle_steps,
            "mergers": getattr(sim, "mergers", 0),
            "escapers_removed": self.escapers_removed,
            "reference_energy": tracker.reference_energy,
            "max_error": tracker.max_error,
            "next_diag": next_diag,
            "snapshot_next_time": (
                output.schedule.next_time if output is not None else None
            ),
            "run_id": self.run_id,
            "snapshot_interval": self.snapshot_interval,
            "diagnostics_interval": self.diagnostics_interval,
            "checkpoint_interval": self.checkpoint_interval,
            "prune_escapers_beyond": self.prune_escapers_beyond,
            "energy_error_limit": self.energy_error_limit,
            "selftest_every": self.selftest_every,
        }
        if self.checkpoint_metadata:
            state["config"] = self.checkpoint_metadata
        manager.write(sim.system, state)
        self.checkpoints_written += 1

    # -- execution -------------------------------------------------------

    def execute(self, t_end: float | None = None) -> RunReport:
        """Run to ``t_end`` with the configured management; blocking.

        On a resumed run ``t_end`` may be omitted — the target stored in
        the checkpoint is used.
        """
        sim = self.sim
        restore = self._restore
        if t_end is None:
            if restore is None or restore.get("t_end") is None:
                raise ConfigurationError(
                    "t_end is required (nothing to restore it from)"
                )
            t_end = float(restore["t_end"])
        if not sim._initialized:
            sim.initialize()

        tracker = EnergyTracker(sim.backend.eps, sim.external_field)
        if restore is not None:
            # keep the original reference: re-baselining would hide any
            # energy drift accumulated before the interruption
            tracker.restore(
                restore["reference_energy"],
                max_error=restore.get("max_error", 0.0),
                t=sim.time,
            )
        else:
            tracker.start(sim.system)

        output = None
        if self.snapshot_interval is not None:
            output = OutputManager(
                self.directory,
                SnapshotSchedule(self.snapshot_interval, t_start=sim.time),
            )
            if restore is not None and restore.get("snapshot_next_time") is not None:
                output.schedule.next_time = float(restore["snapshot_next_time"])
        next_diag = (
            sim.time + self.diagnostics_interval
            if self.diagnostics_interval is not None
            else None
        )
        if (
            restore is not None
            and self.diagnostics_interval is not None
            and restore.get("next_diag") is not None
        ):
            next_diag = float(restore["next_diag"])

        ckpt = None
        if self.checkpoint_interval is not None:
            from ..resilience import CheckpointManager

            ckpt = CheckpointManager(self.directory / "checkpoints", obs=sim.obs)

        watchdog = None
        if self.energy_error_limit is not None:
            from ..resilience import EnergyWatchdog

            watchdog = EnergyWatchdog(self.energy_error_limit, obs=sim.obs)

        from ..obs.health import HealthMonitor, HealthSample

        health = HealthMonitor(obs=sim.obs)

        recovery = self._recovery()
        blocks_since_ckpt = 0
        blocks_since_sweep = 0

        def sweep_and_log(s, log, reason: str) -> None:
            report = recovery.selftest_sweep(s.system)
            if report is not None:
                log.event(
                    "selftest_sweep",
                    reason=reason,
                    failed=report.n_failed,
                    masked=report.n_masked,
                    t=s.time,
                )

        with RunLogger(
            self.directory / "run.jsonl",
            run_id=self.run_id,
            metadata={
                "n": sim.system.n,
                "t_end": t_end,
                "resumed": restore is not None,
            },
        ) as log:
            if restore is not None:
                log.event("resume", t=sim.time, block_steps=sim.block_steps)

            def per_block(s):
                nonlocal next_diag, blocks_since_ckpt, blocks_since_sweep
                if output is not None:
                    path = output.maybe_write(s, {"run_id": self.run_id})
                    if path is not None:
                        log.event("snapshot", file=path.name, t=s.time)
                if next_diag is not None and s.time >= next_diag:
                    snap = s.predicted_state()
                    from ..core.diagnostics import energy

                    e = energy(snap, s.backend.eps, s.external_field).total
                    err = abs(e - tracker.reference_energy) / abs(
                        tracker.reference_energy
                    )
                    tracker.samples.append((float(s.time), err))
                    log.record(s, energy_error=err)
                    if watchdog is not None and watchdog.check(err):
                        log.event("watchdog", energy_error=err, t=s.time)
                        if recovery is not None:
                            sweep_and_log(s, log, "watchdog")
                    sample = HealthSample(
                        t=float(s.time),
                        metrics=sim.obs.metrics.snapshot(),
                        energy_error=err,
                    )
                    for ev in health.check(sample):
                        log.event("health", **ev.to_record())
                    if self.prune_escapers_beyond is not None:
                        removed = s.remove_escapers(
                            r_min=self.prune_escapers_beyond
                        )
                        if removed:
                            self.escapers_removed += removed
                            log.event("prune", removed=removed, t=s.time)
                    while next_diag <= s.time:
                        next_diag += self.diagnostics_interval
                if self.selftest_every is not None and recovery is not None:
                    blocks_since_sweep += 1
                    if blocks_since_sweep >= self.selftest_every:
                        blocks_since_sweep = 0
                        sweep_and_log(s, log, "periodic")
                if ckpt is not None:
                    blocks_since_ckpt += 1
                    if blocks_since_ckpt >= self.checkpoint_interval:
                        blocks_since_ckpt = 0
                        self._write_checkpoint(
                            ckpt, tracker, t_end, next_diag, output
                        )
                        log.event("checkpoint", t=s.time)
                if self.on_block is not None:
                    self.on_block(s)

            sim.evolve(t_end, callback=per_block)
            sim.synchronize(min(t_end, float(sim.system.t.max())))
            final_err = tracker.sample(sim.system)
            log.record(sim, energy_error=final_err, note="final")

        return RunReport(
            t_final=float(sim.time),
            block_steps=sim.block_steps,
            particle_steps=sim.particle_steps,
            n_final=sim.system.n,
            mergers=getattr(sim, "mergers", 0),
            escapers_removed=self.escapers_removed,
            snapshots_written=output.n_snapshots if output is not None else 0,
            max_energy_error=tracker.max_error,
            grape_totals=self._grape_totals(),
            checkpoints_written=self.checkpoints_written,
            health_events=health.events_total,
        )
