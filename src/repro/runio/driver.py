"""The production-run driver: everything a long run needs, assembled.

``Simulation.evolve`` is the inner loop; a *production* run (the
paper's was 10.3 hours) additionally wants scheduled snapshots, a run
log, periodic energy accounting, escaper pruning, and a final report.
:class:`ProductionRun` packages that workflow:

    run = ProductionRun(
        sim,
        directory="runs/disk-n2000",
        snapshot_interval=100.0,
        diagnostics_interval=20.0,
        prune_escapers_beyond=200.0,
    )
    report = run.execute(t_end=1000.0)
    print(report.summary())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..core.diagnostics import EnergyTracker
from ..errors import ConfigurationError
from .runlog import RunLogger
from .schedule import OutputManager, SnapshotSchedule

__all__ = ["RunReport", "ProductionRun"]


@dataclass
class RunReport:
    """Final accounting of one production run."""

    t_final: float
    block_steps: int
    particle_steps: int
    n_final: int
    mergers: int
    escapers_removed: int
    snapshots_written: int
    max_energy_error: float
    #: GRAPE timing totals when the backend exposes them (else None)
    grape_totals: dict | None = None

    def summary(self) -> str:
        lines = [
            f"production run complete at T = {self.t_final:g}",
            f"  blocks {self.block_steps:,}, particle steps {self.particle_steps:,}",
            f"  particles remaining {self.n_final} "
            f"(mergers {self.mergers}, escapers removed {self.escapers_removed})",
            f"  snapshots {self.snapshots_written}, "
            f"max |dE/E| {self.max_energy_error:.2e}",
        ]
        if self.grape_totals:
            lines.append(
                f"  GRAPE model: {self.grape_totals['total_s']:.3f} s, "
                f"{self.grape_totals['achieved_flops'] / 1e12:.2f} Tflops"
            )
        return "\n".join(lines)


class ProductionRun:
    """Managed execution of a :class:`~repro.core.integrator.Simulation`.

    Parameters
    ----------
    sim:
        An initialised (or initialisable) simulation.
    directory:
        Run directory for snapshots and the JSONL log.
    snapshot_interval:
        Simulation-time cadence of snapshots (None disables them).
    diagnostics_interval:
        Cadence of energy sampling + log records (None disables).
    prune_escapers_beyond:
        Remove hyperbolic particles outside this radius at diagnostics
        cadence (None disables pruning).
    run_id:
        Label written to the log header.
    """

    def __init__(
        self,
        sim,
        directory,
        snapshot_interval: float | None = None,
        diagnostics_interval: float | None = None,
        prune_escapers_beyond: float | None = None,
        run_id: str = "run",
    ) -> None:
        if snapshot_interval is not None and snapshot_interval <= 0:
            raise ConfigurationError("snapshot_interval must be positive")
        if diagnostics_interval is not None and diagnostics_interval <= 0:
            raise ConfigurationError("diagnostics_interval must be positive")
        self.sim = sim
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.run_id = run_id
        self.snapshot_interval = snapshot_interval
        self.diagnostics_interval = diagnostics_interval
        self.prune_escapers_beyond = prune_escapers_beyond
        self.escapers_removed = 0

    def _grape_totals(self) -> dict | None:
        machine = getattr(self.sim.backend, "machine", None)
        totals = getattr(machine, "totals", None)
        return totals.to_dict() if totals is not None else None

    def execute(self, t_end: float) -> RunReport:
        """Run to ``t_end`` with the configured management; blocking."""
        sim = self.sim
        if not sim._initialized:
            sim.initialize()

        tracker = EnergyTracker(sim.backend.eps, sim.external_field)
        tracker.start(sim.system)

        output = None
        if self.snapshot_interval is not None:
            output = OutputManager(
                self.directory,
                SnapshotSchedule(self.snapshot_interval, t_start=sim.time),
            )
        next_diag = (
            sim.time + self.diagnostics_interval
            if self.diagnostics_interval is not None
            else None
        )

        with RunLogger(
            self.directory / "run.jsonl",
            run_id=self.run_id,
            metadata={"n": sim.system.n, "t_end": t_end},
        ) as log:

            def per_block(s):
                nonlocal next_diag
                if output is not None:
                    path = output.maybe_write(s, {"run_id": self.run_id})
                    if path is not None:
                        log.event("snapshot", file=path.name, t=s.time)
                if next_diag is not None and s.time >= next_diag:
                    snap = s.predicted_state()
                    from ..core.diagnostics import energy

                    e = energy(snap, s.backend.eps, s.external_field).total
                    err = abs(e - tracker.reference_energy) / abs(
                        tracker.reference_energy
                    )
                    tracker.samples.append((float(s.time), err))
                    log.record(s, energy_error=err)
                    if self.prune_escapers_beyond is not None:
                        removed = s.remove_escapers(
                            r_min=self.prune_escapers_beyond
                        )
                        if removed:
                            self.escapers_removed += removed
                            log.event("prune", removed=removed, t=s.time)
                    while next_diag <= s.time:
                        next_diag += self.diagnostics_interval

            sim.evolve(t_end, callback=per_block)
            sim.synchronize(min(t_end, float(sim.system.t.max())))
            final_err = tracker.sample(sim.system)
            log.record(sim, energy_error=final_err, note="final")

        return RunReport(
            t_final=float(sim.time),
            block_steps=sim.block_steps,
            particle_steps=sim.particle_steps,
            n_final=sim.system.n,
            mergers=getattr(sim, "mergers", 0),
            escapers_removed=self.escapers_removed,
            snapshots_written=output.n_snapshots if output is not None else 0,
            max_energy_error=tracker.max_error,
            grape_totals=self._grape_totals(),
        )
