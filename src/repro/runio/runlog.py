"""JSONL run logging for long simulations.

One JSON object per line — append-only, crash-safe (a truncated final
line is tolerated by the reader), trivially greppable.  Records
whatever the caller samples, always stamped with simulation time and
cumulative step counts.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import SnapshotError

__all__ = ["RunLogger", "read_run_log"]


class RunLogger:
    """Appends diagnostic records to a JSONL file.

    Use as a context manager or call :meth:`close` explicitly::

        with RunLogger(path, run_id="disk-n500") as log:
            log.record(sim, energy_error=1e-9)

    Reopening an existing log appends records without emitting a second
    ``header`` (a restarted run continues the same file).  Writes are
    buffered and flushed to the OS every ``flush_every`` records — and
    on :meth:`flush` / :meth:`close` — so a crash mid-run loses at most
    ``flush_every - 1`` records; the reader tolerates a torn tail line.
    """

    def __init__(
        self,
        path,
        run_id: str = "",
        metadata: dict | None = None,
        flush_every: int = 32,
    ) -> None:
        self.path = Path(path)
        self.run_id = run_id
        self.flush_every = max(1, int(flush_every))
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._fh = open(self.path, "a")
        self.records_written = 0
        self._unflushed = 0
        if fresh:
            header = {"kind": "header", "run_id": run_id, **(metadata or {})}
            self._write(header)
            self.flush()

    def _write(self, obj: dict) -> None:
        try:
            self._fh.write(json.dumps(obj) + "\n")
        except TypeError as exc:
            raise SnapshotError(f"non-serialisable log record: {exc}") from exc
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Push buffered records to the OS (crash-safety checkpoint)."""
        if not self._fh.closed:
            self._fh.flush()
        self._unflushed = 0

    def record(self, sim, **extra) -> None:
        """Log one diagnostic sample of a Simulation."""
        stats = sim.scheduler.stats
        obj = {
            "kind": "sample",
            "t": float(sim.time),
            "n": int(sim.system.n),
            "block_steps": int(sim.block_steps),
            "particle_steps": int(sim.particle_steps),
            "mean_block": float(stats.mean_block),
            "mergers": int(getattr(sim, "mergers", 0)),
        }
        obj.update(extra)
        self._write(obj)
        self.records_written += 1

    def event(self, kind: str, **payload) -> None:
        """Log a free-form event record."""
        self._write({"kind": kind, **payload})
        self.records_written += 1

    def close(self) -> None:
        if not self._fh.closed:
            self.flush()
            self._fh.close()

    def __enter__(self) -> "RunLogger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_run_log(path) -> list[dict]:
    """Read every intact record of a JSONL run log.

    A truncated final line (crash mid-write) is skipped silently; any
    other malformed line raises :class:`SnapshotError`.
    """
    path = Path(path)
    if not path.exists():
        raise SnapshotError(f"run log not found: {path}")
    records = []
    lines = path.read_text().splitlines()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # torn tail record: tolerate
            raise SnapshotError(f"corrupt run log line {i + 1} in {path}")
    return records
