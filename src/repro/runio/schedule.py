"""Snapshot schedules and output management for long runs.

:class:`SnapshotSchedule` answers "is an output due?" against a fixed
cadence; :class:`OutputManager` owns a run directory, writes numbered
snapshots through :mod:`repro.core.snapshots`, and can locate the
latest one for a restart — the workflow of the paper's multi-hour
production runs.
"""

from __future__ import annotations

import re
from pathlib import Path

from ..core.snapshots import load_snapshot, save_snapshot
from ..errors import ConfigurationError, SnapshotError

__all__ = ["SnapshotSchedule", "OutputManager"]


class SnapshotSchedule:
    """Fixed-interval output cadence starting at ``t_start``.

    ``due(t)`` is True whenever ``t`` has crossed the next output time;
    calling :meth:`mark_done` advances the schedule.  Robust to a
    simulation overshooting several intervals in one block step (the
    schedule then fires once per call until it catches up).
    """

    def __init__(self, interval: float, t_start: float = 0.0) -> None:
        if interval <= 0:
            raise ConfigurationError("snapshot interval must be positive")
        self.interval = float(interval)
        self.next_time = float(t_start) + self.interval

    def due(self, t: float) -> bool:
        return t >= self.next_time - 1e-12

    def mark_done(self) -> None:
        self.next_time += self.interval


class OutputManager:
    """Numbered snapshot output in a run directory.

    Files are named ``snap_NNNNNN.npz`` with the index in metadata, so
    the latest state is always discoverable for a restart.
    """

    _PATTERN = re.compile(r"snap_(\d{6})\.npz$")

    def __init__(self, directory, schedule: SnapshotSchedule | None = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.schedule = schedule
        self._index = self._next_free_index()

    def _next_free_index(self) -> int:
        existing = [
            int(m.group(1))
            for p in self.directory.glob("snap_*.npz")
            if (m := self._PATTERN.search(p.name))
        ]
        return max(existing) + 1 if existing else 0

    @property
    def n_snapshots(self) -> int:
        return len(list(self.directory.glob("snap_*.npz")))

    def write(self, system, time: float, metadata: dict | None = None) -> Path:
        """Write the next numbered snapshot."""
        meta = dict(metadata or {})
        meta.update({"snapshot_index": self._index, "time": float(time)})
        path = save_snapshot(
            self.directory / f"snap_{self._index:06d}.npz", system, meta
        )
        self._index += 1
        return path

    def maybe_write(self, sim, metadata: dict | None = None) -> Path | None:
        """Write a snapshot if the schedule says one is due."""
        if self.schedule is None:
            raise ConfigurationError("no schedule attached")
        if not self.schedule.due(sim.time):
            return None
        path = self.write(sim.predicted_state(), sim.time, metadata)
        self.schedule.mark_done()
        return path

    def latest(self):
        """Load the newest snapshot: ``(system, metadata)``.

        Raises :class:`SnapshotError` when the directory has none.
        """
        candidates = sorted(self.directory.glob("snap_*.npz"))
        if not candidates:
            raise SnapshotError(f"no snapshots in {self.directory}")
        return load_snapshot(candidates[-1])
