"""Fault detection: force sanity guard, j-memory scan, energy watchdog.

Detection mirrors how bad hardware shows up in a real GRAPE run:

* a chip with corrupted j-memory or a wedged pipeline returns garbage
  forces **this block** — caught by :func:`force_guard` on every result;
* marginal hardware shows up as slow energy drift — caught by the
  :class:`EnergyWatchdog` on the production driver's diagnostics;
* localisation uses :func:`scan_jmem`, the software analogue of reading
  back j-memory over the host interface and comparing with the master
  copy.
"""

from __future__ import annotations

import numpy as np

from ..errors import HardwareFaultError

__all__ = ["FORCE_LIMIT", "force_guard", "scan_jmem", "EnergyWatchdog"]

#: Any |acc| or |jerk| component beyond this is treated as hardware
#: garbage (physical values in code units are O(1..1e6) even in deep
#: encounters; 1e30 only appears via overflow or bit corruption).
FORCE_LIMIT = 1e30


def force_guard(acc: np.ndarray, jerk: np.ndarray, limit: float = FORCE_LIMIT) -> None:
    """Raise :class:`~repro.errors.HardwareFaultError` on garbage forces."""
    bad = not (np.all(np.isfinite(acc)) and np.all(np.isfinite(jerk)))
    if not bad:
        bad = bool(
            np.any(np.abs(acc) > limit) or np.any(np.abs(jerk) > limit)
        )
    if bad:
        raise HardwareFaultError(
            "force guard: non-finite or overflowing acc/jerk returned by the "
            "GRAPE machine"
        )


def scan_jmem(machine) -> list[tuple[int, int, int, int]]:
    """Coordinates of chips whose resident j-memory holds non-finite words.

    Returns ``(cluster, node, board, chip)`` tuples; empty in flat mode
    (no per-chip memory exists).
    """
    bad = []
    for ci, ni, bi, chi, chip in machine.iter_chips():
        m = chip.jmem
        if m.n == 0:
            continue
        ok = (
            np.all(np.isfinite(m.pos))
            and np.all(np.isfinite(m.vel))
            and np.all(np.isfinite(m.acc))
            and np.all(np.isfinite(m.jerk))
            and np.all(np.isfinite(m.mass))
        )
        if not ok:
            bad.append((ci, ni, bi, chi))
    return bad


class EnergyWatchdog:
    """Trips when the run's relative energy error exceeds a limit.

    The production driver samples energy periodically; feeding each
    sample through :meth:`check` turns slow corruption (a marginal chip
    returning slightly-wrong forces) into an actionable event — the
    driver reacts with a self-test sweep.
    """

    def __init__(self, limit: float, obs=None) -> None:
        from ..obs import NULL_OBS

        if limit <= 0:
            raise ValueError("watchdog limit must be positive")
        self.limit = float(limit)
        self.trips = 0
        self.obs = obs or NULL_OBS
        self._c_trips = self.obs.metrics.counter("faults.watchdog_trips_total")

    def check(self, rel_error: float) -> bool:
        """Record one energy sample; returns True if the watchdog trips."""
        if abs(rel_error) <= self.limit:
            return False
        self.trips += 1
        self._c_trips.inc()
        return True
