"""Checkpoint–restart: periodic durable state for the production driver.

A checkpoint is an atomic snapshot of the **raw** integrator state
(positions, velocities, forces, individual times and timesteps — not a
predicted state) plus the driver bookkeeping needed to continue
bit-identically: counters, the energy reference, and the output
schedule.  Because the block scheduler is stateless (it reads ``t`` and
``dt`` each call), a resumed run replays exactly the block sequence the
interrupted run would have taken.

Files in the checkpoint directory::

    ckpt_000001.npz   snapshot + JSON state (atomic: tmp + os.replace)
    latest            text pointer to the newest complete checkpoint

The ``latest`` pointer is itself written atomically, so a crash at any
instant leaves either the previous checkpoint or the new one — never a
torn file under a live name.
"""

from __future__ import annotations

import os
from pathlib import Path
from time import perf_counter

from ..core.snapshots import load_snapshot, save_snapshot
from ..errors import CheckpointError

__all__ = ["CheckpointManager"]

_CKPT_PATTERN = "ckpt_{:06d}.npz"
_POINTER = "latest"


class CheckpointManager:
    """Writes and restores checkpoints in one directory."""

    def __init__(self, directory, obs=None) -> None:
        from ..obs import NULL_OBS

        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.obs = obs or NULL_OBS
        self._c_writes = self.obs.metrics.counter("checkpoint.writes_total")
        self._c_restores = self.obs.metrics.counter("checkpoint.restores_total")
        self._h_write_s = self.obs.metrics.histogram("checkpoint.write_seconds")

    # -- discovery -------------------------------------------------------

    def _next_index(self) -> int:
        existing = sorted(self.directory.glob("ckpt_*.npz"))
        if not existing:
            return 1
        return int(existing[-1].stem.split("_")[1]) + 1

    def latest_path(self) -> Path | None:
        """Path of the newest complete checkpoint, or ``None``."""
        pointer = self.directory / _POINTER
        if pointer.exists():
            candidate = self.directory / pointer.read_text().strip()
            if candidate.exists():
                return candidate
        # pointer lost/stale: fall back to the newest file on disk
        existing = sorted(self.directory.glob("ckpt_*.npz"))
        return existing[-1] if existing else None

    # -- write -----------------------------------------------------------

    def write(self, system, state: dict) -> Path:
        """Checkpoint ``system`` + driver ``state``; returns the path.

        The snapshot write is atomic; the ``latest`` pointer is flipped
        only after the snapshot is durable, in a second atomic rename.
        """
        t0 = perf_counter()
        path = self.directory / _CKPT_PATTERN.format(self._next_index())
        written = save_snapshot(path, system, metadata={"checkpoint": state})
        pointer = self.directory / _POINTER
        tmp = pointer.with_name(_POINTER + ".tmp")
        tmp.write_text(written.name + "\n")
        os.replace(tmp, pointer)
        self._c_writes.inc()
        self._h_write_s.observe(perf_counter() - t0)
        return written

    # -- restore ---------------------------------------------------------

    def load_latest(self):
        """Load the newest checkpoint; returns ``(system, state)``.

        Raises
        ------
        CheckpointError
            If the directory holds no checkpoint, or the newest file is
            not a checkpoint (no driver state embedded).
        """
        path = self.latest_path()
        if path is None:
            raise CheckpointError(
                f"no checkpoint found in {self.directory} — start the run "
                "with a checkpoint interval before trying to resume"
            )
        system, meta = load_snapshot(path)
        state = meta.get("checkpoint")
        if state is None:
            raise CheckpointError(f"{path} is a plain snapshot, not a checkpoint")
        self._c_restores.inc()
        return system, state
