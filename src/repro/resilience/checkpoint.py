"""Checkpoint–restart: periodic durable state for the production driver.

A checkpoint is an atomic snapshot of the **raw** integrator state
(positions, velocities, forces, individual times and timesteps — not a
predicted state) plus the driver bookkeeping needed to continue
bit-identically: counters, the energy reference, and the output
schedule.  Because the block scheduler is stateless (it reads ``t`` and
``dt`` each call), a resumed run replays exactly the block sequence the
interrupted run would have taken.

Files in the checkpoint directory::

    ckpt_000001.npz   snapshot + JSON state (atomic: tmp + os.replace)
    latest            text pointer to the newest complete checkpoint

The ``latest`` pointer is itself written **durably** (temp file +
fsync + rename + directory fsync), so a host crash at any instant
leaves either the previous checkpoint or the new one — never a torn
file under a live name, and never a pointer the filesystem forgets.
Restore is defensive on top of that: when the pointed-to (or newest)
checkpoint is truncated or corrupt, :meth:`CheckpointManager.load_latest`
falls back to the newest checkpoint that still loads, so one damaged
file cannot strand an otherwise resumable run.
"""

from __future__ import annotations

import os
from pathlib import Path
from time import perf_counter

from ..core.snapshots import fsync_directory, load_snapshot, save_snapshot
from ..errors import CheckpointError, SnapshotError

__all__ = ["CheckpointManager"]

_CKPT_PATTERN = "ckpt_{:06d}.npz"
_POINTER = "latest"


class CheckpointManager:
    """Writes and restores checkpoints in one directory."""

    def __init__(self, directory, obs=None) -> None:
        from ..obs import NULL_OBS

        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except (NotADirectoryError, FileExistsError) as exc:
            raise CheckpointError(
                f"checkpoint location {self.directory} is not a directory: {exc}"
            ) from exc
        self.obs = obs or NULL_OBS
        #: Path of the checkpoint the last :meth:`load_latest` used.
        self.loaded_path: Path | None = None
        self._c_writes = self.obs.metrics.counter("checkpoint.writes_total")
        self._c_restores = self.obs.metrics.counter("checkpoint.restores_total")
        self._c_skipped = self.obs.metrics.counter("checkpoint.skipped_total")
        self._h_write_s = self.obs.metrics.histogram("checkpoint.write_seconds")

    # -- discovery -------------------------------------------------------

    def _next_index(self) -> int:
        existing = sorted(self.directory.glob("ckpt_*.npz"))
        if not existing:
            return 1
        return int(existing[-1].stem.split("_")[1]) + 1

    def latest_path(self) -> Path | None:
        """Path of the newest complete checkpoint, or ``None``."""
        pointer = self.directory / _POINTER
        if pointer.exists():
            candidate = self.directory / pointer.read_text().strip()
            if candidate.exists():
                return candidate
        # pointer lost/stale: fall back to the newest file on disk
        existing = sorted(self.directory.glob("ckpt_*.npz"))
        return existing[-1] if existing else None

    # -- write -----------------------------------------------------------

    def write(self, system, state: dict) -> Path:
        """Checkpoint ``system`` + driver ``state``; returns the path.

        The snapshot write is atomic and directory-synced; the
        ``latest`` pointer is flipped only after the snapshot is
        durable, in a second fsync'd atomic rename, so a host crash
        between the two leaves the pointer at the previous complete
        checkpoint — never dangling at a half-written one.
        """
        t0 = perf_counter()
        path = self.directory / _CKPT_PATTERN.format(self._next_index())
        written = save_snapshot(path, system, metadata={"checkpoint": state})
        pointer = self.directory / _POINTER
        tmp = pointer.with_name(_POINTER + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(written.name + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, pointer)
        fsync_directory(self.directory)
        self._c_writes.inc()
        self._h_write_s.observe(perf_counter() - t0)
        return written

    # -- restore ---------------------------------------------------------

    def candidates(self) -> list[Path]:
        """Restore candidates, newest first (pointer target leads)."""
        existing = sorted(self.directory.glob("ckpt_*.npz"), reverse=True)
        pointer = self.directory / _POINTER
        if pointer.exists():
            target = self.directory / pointer.read_text().strip()
            if target.exists() and target in existing:
                existing.remove(target)
                existing.insert(0, target)
        return existing

    def load_latest(self):
        """Load the newest *valid* checkpoint; returns ``(system, state)``.

        Tries the pointer target first, then every remaining checkpoint
        newest-first: a truncated or corrupt newest file (host crash
        mid-write on a filesystem that reordered the pointer flip) costs
        one checkpoint interval of progress instead of the whole run.
        The chosen file is recorded in :attr:`loaded_path`.

        Raises
        ------
        CheckpointError
            If the directory holds no checkpoint, or none of the
            candidates is a loadable checkpoint (corrupt files, or
            plain snapshots without driver state embedded).
        """
        candidates = self.candidates()
        if not candidates:
            raise CheckpointError(
                f"no checkpoint found in {self.directory} — start the run "
                "with a checkpoint interval before trying to resume"
            )
        failures: list[str] = []
        for path in candidates:
            try:
                system, meta = load_snapshot(path)
            except SnapshotError as exc:
                failures.append(str(exc))
                continue
            state = meta.get("checkpoint")
            if state is None:
                failures.append(
                    f"{path} is a plain snapshot, not a checkpoint"
                )
                continue
            if failures:
                self._c_skipped.inc(len(failures))
            self._c_restores.inc()
            self.loaded_path = path
            return system, state
        detail = "; ".join(failures)
        raise CheckpointError(
            f"no valid checkpoint in {self.directory} "
            f"({len(candidates)} candidate(s) rejected: {detail})"
        )
