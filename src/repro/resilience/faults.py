"""Deterministic fault injection for the GRAPE-6 simulator.

Production GRAPE-6 runs lived with hardware attrition: chips with
defective pipelines were masked at bring-up, boards died mid-run, LVDS
cables dropped transfers.  The paper's multi-hour production run
survived because the host software detected bad results, masked the
offending hardware and restarted from checkpoints.  This module
reproduces the *causes* so :mod:`repro.resilience.recover` can be
exercised: a :class:`FaultPlan` schedules :class:`FaultSpec` events at
block indices, and a :class:`FaultInjector` attached to a
:class:`~repro.grape.system.Grape6Machine` applies them as the run
crosses each index.

Everything is seeded and deterministic — the same plan against the same
machine injects the same faults into the same chips, so chaos tests are
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from ..errors import ConfigurationError, SimulationKilled

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "FAULT_DOMAINS",
    "RANK_KINDS",
]


class FaultKind(str, Enum):
    """Injectable fault categories.

    Hardware faults (chip/pipeline/board/j-memory) require a
    hierarchy-mode machine — in flat mode there is no per-chip state to
    damage, so they are skipped.  Link, comm and host faults apply in
    both modes.  Rank faults target the multiprocess SPMD gang of
    :class:`~repro.parallel.proc.ProcEngine` — ``at_block`` is a
    *superstep* index there, not a machine block index.
    """

    CHIP_KILL = "chip_kill"          #: mask every pipeline of one chip
    PIPELINE_MASK = "pipeline_mask"  #: mask some pipelines of one chip
    BOARD_KILL = "board_kill"        #: mask every chip on one board
    JMEM_CORRUPT = "jmem_corrupt"    #: flip resident j-memory words to NaN
    LINK_DROP = "link_drop"          #: drop transfers on a hardware link
    LINK_DELAY = "link_delay"        #: one-shot bandwidth degradation
    COMM_DROP = "comm_drop"          #: drop a software-comm transfer
    HOST_KILL = "host_kill"          #: kill the run (checkpoint restart)
    RANK_KILL = "rank_kill"          #: SIGKILL one SPMD worker process
    RANK_STALL = "rank_stall"        #: wedge a worker (heartbeat stops)
    MSG_DELAY = "msg_delay"          #: hold one rank's deliveries briefly


#: Kinds that need a hierarchy-mode machine to have any effect.
HARDWARE_KINDS = frozenset(
    {
        FaultKind.CHIP_KILL,
        FaultKind.PIPELINE_MASK,
        FaultKind.BOARD_KILL,
        FaultKind.JMEM_CORRUPT,
    }
)

#: Kinds that target SPMD worker ranks (superstep-indexed).
RANK_KINDS = frozenset(
    {FaultKind.RANK_KILL, FaultKind.RANK_STALL, FaultKind.MSG_DELAY}
)

#: Which scheduling domain drives each kind.  ``machine`` kinds fire
#: from :meth:`FaultInjector.apply_due` at block indices, ``comm`` kinds
#: from :meth:`FaultInjector.comm_overhead` at comm-phase indices, and
#: ``rank`` kinds from :meth:`FaultInjector.rank_actions` at SPMD
#: superstep boundaries.  ``tools/check_fault_matrix.py`` fails the
#: build if a kind has no domain or a domain has no live driver.
FAULT_DOMAINS: dict[FaultKind, str] = {
    FaultKind.CHIP_KILL: "machine",
    FaultKind.PIPELINE_MASK: "machine",
    FaultKind.BOARD_KILL: "machine",
    FaultKind.JMEM_CORRUPT: "machine",
    FaultKind.LINK_DROP: "machine",
    FaultKind.LINK_DELAY: "machine",
    FaultKind.COMM_DROP: "comm",
    FaultKind.HOST_KILL: "machine",
    FaultKind.RANK_KILL: "rank",
    FaultKind.RANK_STALL: "rank",
    FaultKind.MSG_DELAY: "rank",
}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Parameters
    ----------
    kind:
        What breaks.
    at_block:
        Machine block index at which the fault fires (for
        :attr:`FaultKind.COMM_DROP`, the comm-phase index instead).
    target:
        Optional explicit coordinates — ``(cluster, node, board, chip)``
        prefixes for hardware faults, a link component name for link
        faults.  ``None`` picks deterministically from the plan's seed.
    params:
        Kind-specific knobs (``n_pipelines``, ``count``, ``factor``,
        ``component``, ``value``).
    """

    kind: FaultKind
    at_block: int
    target: tuple | str | None = None
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.at_block < 0:
            raise ConfigurationError("at_block must be >= 0")


class FaultPlan:
    """An ordered, one-shot schedule of faults.

    Each spec fires exactly once, at the first block (or comm phase)
    whose index reaches ``at_block`` — indices can be skipped by
    recovery re-evaluations, so the comparison is ``>=`` with
    consumption tracking rather than equality.
    """

    def __init__(self, specs, seed: int = 0) -> None:
        self.specs = sorted(specs, key=lambda s: s.at_block)
        self.seed = int(seed)
        self._fired: set[int] = set()

    def __len__(self) -> int:
        return len(self.specs)

    def due(
        self, index: int, comm: bool = False, domain: str | None = None
    ) -> list[FaultSpec]:
        """Specs that fire at ``index`` in the requested domain.

        ``domain`` is ``"machine"``, ``"comm"`` or ``"rank"`` (see
        :data:`FAULT_DOMAINS`); the legacy ``comm=True`` flag is
        shorthand for ``domain="comm"``.
        """
        if domain is None:
            domain = "comm" if comm else "machine"
        out = []
        for i, spec in enumerate(self.specs):
            if i in self._fired:
                continue
            if FAULT_DOMAINS[spec.kind] != domain:
                continue
            if index >= spec.at_block:
                self._fired.add(i)
                out.append(spec)
        return out

    @property
    def n_pending(self) -> int:
        return len(self.specs) - len(self._fired)

    @classmethod
    def random(
        cls,
        kinds,
        n_faults: int,
        max_block: int,
        seed: int = 0,
    ) -> "FaultPlan":
        """A seeded random plan of ``n_faults`` drawn from ``kinds``."""
        kinds = [FaultKind(k) for k in kinds]
        if not kinds:
            raise ConfigurationError("need at least one fault kind")
        rng = np.random.default_rng(seed)
        specs = [
            FaultSpec(
                kind=kinds[int(rng.integers(len(kinds)))],
                at_block=int(rng.integers(max_block)),
            )
            for _ in range(n_faults)
        ]
        return cls(specs, seed=seed)


class FaultInjector:
    """Applies a :class:`FaultPlan` to a machine as block indices pass.

    The machine calls :meth:`apply_due` at the top of every
    ``compute_block`` and :meth:`link_overhead` after pricing the step;
    :class:`~repro.parallel.comm.CommSimulator` calls
    :meth:`comm_overhead` per phase.  Injection methods are named
    ``_inject_<kind.value>`` — ``tools/check_fault_matrix.py`` fails the
    build if a :class:`FaultKind` has no implementation.
    """

    def __init__(self, plan: FaultPlan | None, machine=None, obs=None) -> None:
        self.plan = plan
        self.machine = machine
        self.rng = np.random.default_rng(plan.seed if plan else 0)
        #: armed link faults drained by :meth:`link_overhead`:
        #: ("drop", component, count) or ("delay", component, factor)
        self._pending_link: list[tuple] = []
        #: armed comm drops drained by :meth:`comm_overhead`
        self._pending_comm: list[FaultSpec] = []
        #: armed rank faults drained by :meth:`rank_actions`
        self._pending_rank: list[FaultSpec] = []
        self.injected = 0
        self.observe(obs)

    def observe(self, obs) -> None:
        from ..obs import NULL_OBS

        self.obs = obs or NULL_OBS
        m = self.obs.metrics
        self._c_injected = m.counter("faults.injected_total")
        self._c_retrans = m.counter("faults.link_retransmits_total")
        self._g_masked = m.gauge("faults.masked_chips")

    # -- scheduling ------------------------------------------------------

    def apply_due(self, block_index: int) -> None:
        """Fire every machine-domain fault scheduled up to ``block_index``."""
        if self.plan is None:
            return
        for spec in self.plan.due(block_index):
            getattr(self, f"_inject_{spec.kind.value}")(spec)

    def _count(self) -> None:
        self.injected += 1
        self._c_injected.inc()

    def _update_masked_gauge(self) -> None:
        if self.machine is not None:
            dead = sum(
                1
                for *_, chip in self.machine.iter_chips()
                if chip.pipelines.is_dead
            )
            self._g_masked.set(dead)

    # -- target selection ------------------------------------------------

    def _alive_chips(self):
        if self.machine is None:
            return []
        return [
            (ci, ni, bi, chi, chip)
            for ci, ni, bi, chi, chip in self.machine.iter_chips()
            if not chip.pipelines.is_dead
        ]

    def _pick_chip(self, spec: FaultSpec):
        """The targeted chip, or a seeded-random alive one (None in flat
        mode / when everything is already dead)."""
        chips = self._alive_chips()
        if not chips:
            return None
        if spec.target is not None:
            want = tuple(spec.target)
            for entry in chips:
                if entry[: len(want)] == want:
                    return entry[-1]
            return None
        return chips[int(self.rng.integers(len(chips)))][-1]

    def _pick_board(self, spec: FaultSpec):
        if self.machine is None:
            return None
        boards = [
            (ci, ni, bi, board)
            for ci, ni, bi, board in self.machine.iter_boards()
            if board.alive_chips()
        ]
        if not boards:
            return None
        if spec.target is not None:
            want = tuple(spec.target)
            for entry in boards:
                if entry[: len(want)] == want:
                    return entry[-1]
            return None
        return boards[int(self.rng.integers(len(boards)))][-1]

    # -- injections ------------------------------------------------------

    def _inject_chip_kill(self, spec: FaultSpec) -> None:
        chip = self._pick_chip(spec)
        if chip is None:
            return
        chip.pipelines.mask_pipelines(chip.pipelines.n_pipelines)
        self._count()
        self._update_masked_gauge()

    def _inject_pipeline_mask(self, spec: FaultSpec) -> None:
        chip = self._pick_chip(spec)
        if chip is None:
            return
        n = int(spec.params.get("n_pipelines", 1))
        pipes = chip.pipelines
        already = pipes.n_pipelines - pipes.active_pipelines
        pipes.mask_pipelines(min(pipes.n_pipelines, already + n))
        self._count()
        self._update_masked_gauge()

    def _inject_board_kill(self, spec: FaultSpec) -> None:
        board = self._pick_board(spec)
        if board is None:
            return
        for chip in board.chips:
            chip.pipelines.mask_pipelines(chip.pipelines.n_pipelines)
        self._count()
        self._update_masked_gauge()

    def _inject_jmem_corrupt(self, spec: FaultSpec) -> None:
        """Flip resident j-memory words to a poison value.

        The predictor then emits non-finite positions, the pipelines
        emit non-finite partial forces, and the per-block force guard
        trips — the detection path a real bit-flip would take.
        """
        chips = [e for e in self._alive_chips() if e[-1].n_resident > 0]
        if not chips:
            return
        if spec.target is not None:
            want = tuple(spec.target)
            chips = [e for e in chips if e[: len(want)] == want] or chips
        chip = chips[int(self.rng.integers(len(chips)))][-1]
        value = float(spec.params.get("value", np.nan))
        slot = int(self.rng.integers(chip.jmem.n))
        chip.jmem.pos[slot] = value
        self._count()

    def _arm_hardware_link(self, component: str, count: int) -> None:
        """Also arm a concrete link object so byte/retransmit counters
        move in hierarchy mode (the timing charge is separate)."""
        if self.machine is None or not self.machine.clusters:
            return
        if component == "lvds":
            boards = [b for *_, b in self.machine.iter_boards()]
            if boards:
                boards[int(self.rng.integers(len(boards)))].link_in.fail_next(count)
        elif component == "gbe":
            clusters = self.machine.clusters
            clusters[int(self.rng.integers(len(clusters)))].gbe.fail_next(count)

    def _inject_link_drop(self, spec: FaultSpec) -> None:
        component = str(spec.target or spec.params.get("component", "lvds"))
        if component not in ("lvds", "pci", "gbe"):
            raise ConfigurationError(f"unknown link component {component!r}")
        count = int(spec.params.get("count", 3))
        self._pending_link.append(("drop", component, count))
        self._arm_hardware_link(component, count)
        self._count()

    def _inject_link_delay(self, spec: FaultSpec) -> None:
        component = str(spec.target or spec.params.get("component", "lvds"))
        if component not in ("lvds", "pci", "gbe"):
            raise ConfigurationError(f"unknown link component {component!r}")
        factor = float(spec.params.get("factor", 4.0))
        self._pending_link.append(("delay", component, factor))
        self._count()

    def _inject_comm_drop(self, spec: FaultSpec) -> None:
        self._pending_comm.append(spec)
        self._count()

    def _inject_host_kill(self, spec: FaultSpec) -> None:
        self._count()
        raise SimulationKilled(
            f"fault injector: host killed at block {spec.at_block}"
        )

    def _inject_rank_kill(self, spec: FaultSpec) -> None:
        self._pending_rank.append(spec)
        self._count()

    def _inject_rank_stall(self, spec: FaultSpec) -> None:
        self._pending_rank.append(spec)
        self._count()

    def _inject_msg_delay(self, spec: FaultSpec) -> None:
        self._pending_rank.append(spec)
        self._count()

    def rank_actions(self, superstep: int) -> list[FaultSpec]:
        """Rank-domain faults due at ``superstep``, armed and drained.

        :class:`~repro.parallel.proc.ProcEngine` calls this at every
        superstep boundary (and once at run start) and applies the
        returned specs itself — SIGKILLing the target worker, setting
        its stall flag, or delaying its message deliveries.  The target
        rank is ``spec.target`` (or ``spec.params["rank"]``), defaulting
        to ``at_block % n_ranks`` so seeded random plans spread kills
        across the gang deterministically.
        """
        if self.plan is not None:
            for spec in self.plan.due(superstep, domain="rank"):
                getattr(self, f"_inject_{spec.kind.value}")(spec)
        out, self._pending_rank = self._pending_rank, []
        return out

    # -- overhead accounting ---------------------------------------------

    def _backoff_latency(self, component: str) -> float:
        tm = getattr(self.machine, "timing_model", None)
        if tm is None:
            return 1e-5
        return getattr(tm, f"{component}_latency")

    def link_overhead(self, step) -> dict:
        """Extra seconds per timing component from armed link faults.

        A drop of ``count`` transfers costs ``count`` repeats of the
        step's component time plus exponential-backoff waits; a delay
        stretches one component by its factor.  Drained on call.
        """
        if not self._pending_link:
            return {}
        out: dict[str, float] = {}
        for kind, component, arg in self._pending_link:
            base = getattr(step, component)
            latency = self._backoff_latency(component)
            if kind == "drop":
                count = int(arg)
                extra = sum(base + latency * 2.0**k for k in range(count))
                self._c_retrans.inc(count)
            else:
                extra = base * (float(arg) - 1.0)
            out[component] = out.get(component, 0.0) + extra
        self._pending_link.clear()
        return out

    def comm_overhead(self, phase_index: int, seconds: float) -> tuple[float, int]:
        """Retransmit cost for one software-comm phase.

        Returns ``(extra_seconds, n_retransmits)``; consumes comm-domain
        specs due at ``phase_index`` plus any already armed.
        """
        if self.plan is not None:
            for spec in self.plan.due(phase_index, comm=True):
                self._inject_comm_drop(spec)
        if not self._pending_comm:
            return 0.0, 0
        extra = 0.0
        retries = 0
        for spec in self._pending_comm:
            count = int(spec.params.get("count", 1))
            backoff = float(spec.params.get("backoff_s", 1e-4))
            extra += sum(seconds + backoff * 2.0**k for k in range(count))
            retries += count
        self._pending_comm.clear()
        return extra, retries
