"""Recovery: mask bad hardware, reload, re-evaluate, fall back to host.

The operational loop of a production GRAPE installation, reproduced in
software.  When a block's forces fail the sanity guard (or the hardware
raises), the :class:`RecoveryManager`:

1. reloads the j-distribution from the host's master copy — dead chips
   are skipped by the distribution layer, so masking plus reload
   re-routes their slice onto working silicon and cures j-memory
   corruption in one stroke;
2. re-evaluates the failed block on the remaining hardware;
3. if alive capacity no longer fits the particle set, degrades the
   machine to the host kernel permanently (``host_only``) — the run
   finishes slowly rather than dying;

and charges the re-evaluation to the timing model as overhead, so the
run's achieved-flops figure honestly reflects the lost time.
"""

from __future__ import annotations

import numpy as np

from ..errors import GrapeError, GrapeMemoryError
from .detect import force_guard, scan_jmem

__all__ = ["RecoveryManager"]


class RecoveryManager:
    """Detection hooks + block re-evaluation for one machine."""

    def __init__(self, machine, obs=None, max_attempts: int = 2) -> None:
        self.machine = machine
        self.max_attempts = int(max_attempts)
        #: Set when alive hardware can no longer hold the particle set;
        #: from then on every block runs on the host kernel.
        self.host_only = False
        self.observe(obs)

    def observe(self, obs) -> None:
        from ..obs import NULL_OBS

        self.obs = obs or NULL_OBS
        m = self.obs.metrics
        self._c_detected = m.counter("faults.detected_total")
        self._c_recovered = m.counter("faults.recovered_total")
        self._c_reloads = m.counter("recovery.reloads_total")
        self._c_fallback = m.counter("recovery.host_fallback_total")
        self._c_sweeps = m.counter("recovery.selftest_sweeps_total")
        self._c_seconds = m.counter("recovery.seconds")

    # -- detection -------------------------------------------------------

    def check_forces(self, acc: np.ndarray, jerk: np.ndarray) -> None:
        """Per-block sanity guard (raises HardwareFaultError on garbage)."""
        force_guard(acc, jerk)

    # -- recovery --------------------------------------------------------

    def _charge(self, n_active: int, n_total: int) -> None:
        """Price the re-evaluation + reload as timing-model overhead."""
        m = self.machine
        step = m.timing_model.block_step(n_active, n_total)
        reload_s = n_total * 88 / m.timing_model.pci_bandwidth
        m.totals.add_overhead(
            host=step.host,
            pci=step.pci + reload_s,
            lvds=step.lvds,
            pipe=step.pipe,
            gbe=step.gbe,
        )
        total = step.total + reload_s
        self._c_seconds.inc(total)
        if self.obs.enabled:
            self.obs.tracer.model_span(
                "recovery.reevaluate",
                total,
                attrs={"n_active": int(n_active), "n_total": int(n_total)},
            )

    def recover_block(self, system, active, t_now: float, exc: GrapeError):
        """Re-evaluate a failed block; returns ``(acc, jerk)``.

        Raises the detection error onward only if even the host kernel
        produces garbage (i.e. the problem is not hardware).
        """
        active = np.asarray(active)
        m = self.machine
        self._c_detected.inc()
        with self.obs.tracer.span(
            "recovery.block",
            error=type(exc).__name__,
            bad_chips=len(scan_jmem(m)),
        ):
            if not self.host_only:
                for _ in range(self.max_attempts):
                    try:
                        m.load(system)
                        self._c_reloads.inc()
                        if m.mode == "flat":
                            acc, jerk = m._compute_flat(system, active, t_now)
                        else:
                            acc, jerk = m._compute_hierarchy(system, active, t_now)
                        force_guard(acc, jerk)
                    except GrapeMemoryError:
                        self.host_only = True
                        break
                    except GrapeError:
                        continue
                    else:
                        self._charge(active.size, system.n)
                        self._c_recovered.inc()
                        return acc, jerk
            # Host-kernel fallback: correct but slow — exactly what the
            # operators did when a whole board was pulled mid-run.
            acc, jerk = m._compute_flat(system, active, t_now)
            force_guard(acc, jerk)
            self._c_fallback.inc()
            self._c_recovered.inc()
            self._charge(active.size, system.n)
            return acc, jerk

    # -- in-run self-test ------------------------------------------------

    def selftest_sweep(self, system, n_vectors: int = 8, rel_tol: float | None = None):
        """Self-test every chip mid-run, mask failures, restore j-memory.

        Returns the :class:`~repro.grape.selftest.SelfTestReport`
        (``None`` in flat mode — no per-chip hardware exists).  The test
        vectors clobber resident j-memory, so the live ``system`` is
        reloaded afterwards; if masking shrank capacity below the
        particle set, the machine degrades to ``host_only``.
        """
        from ..grape.selftest import self_test

        m = self.machine
        if not m.clusters or self.host_only:
            return None
        if rel_tol is None:
            rel_tol = 1e-3 if m.emulate_precision else 1e-8
        report = self_test(
            m, n_vectors=n_vectors, seed=m._block_index, rel_tol=rel_tol
        )
        for rep in report.failures():
            chip = (
                m.clusters[rep.cluster]
                .nodes[rep.node]
                .boards[rep.board]
                .chips[rep.chip]
            )
            chip.pipelines.mask_pipelines(chip.pipelines.n_pipelines)
        try:
            m.load(system)
        except GrapeMemoryError:
            self.host_only = True
        self._c_sweeps.inc()
        return report
