"""Fault injection, detection/recovery, and checkpoint–restart.

The paper's production run occupied 16 hosts and 2048 chips for many
hours — at that scale hardware faults are an operational certainty, and
the GRAPE-6 software stack survived them by masking bad chips,
re-evaluating suspect blocks, and restarting from checkpoints.  This
package reproduces that loop against the simulator:

* :mod:`~repro.resilience.faults` — seeded, deterministic fault
  injection (:class:`FaultPlan` / :class:`FaultInjector`);
* :mod:`~repro.resilience.detect` — the per-block force guard, j-memory
  scan and energy watchdog (:class:`EnergyWatchdog`);
* :mod:`~repro.resilience.recover` — mask / reload / re-evaluate with
  host-kernel fallback (:class:`RecoveryManager`);
* :mod:`~repro.resilience.checkpoint` — atomic checkpoint–restart for
  the production driver (:class:`CheckpointManager`).

Arm a machine with ``machine.attach_resilience(plan)``; everything
reports through :mod:`repro.obs` (``faults.*``, ``recovery.*``,
``checkpoint.*`` metric families).
"""

from .checkpoint import CheckpointManager
from .detect import EnergyWatchdog, force_guard, scan_jmem
from .faults import (
    FAULT_DOMAINS,
    RANK_KINDS,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
)
from .recover import RecoveryManager

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "FAULT_DOMAINS",
    "RANK_KINDS",
    "force_guard",
    "scan_jmem",
    "EnergyWatchdog",
    "RecoveryManager",
    "CheckpointManager",
]
