"""repro — reproduction of the SC2002 GRAPE-6 planetesimal simulation.

A production-quality Python library implementing, from scratch:

* the **block individual-timestep 4th-order Hermite** N-body engine used
  by the paper (``repro.core``);
* a functional + performance **simulator of the GRAPE-6 hardware** —
  pipelines, chips, processor boards, network boards, nodes, clusters
  (``repro.grape``);
* the paper's **host parallelisation strategies** over a simulated
  message-passing substrate (``repro.parallel``);
* **planetesimal-disk initial conditions and analysis** for the
  Uranus–Neptune problem (``repro.planetesimal``);
* the **baselines** the paper argues against: Barnes–Hut tree and
  shared-timestep integration (``repro.baselines``);
* the Gordon Bell **flop-accounting and performance model**
  (``repro.perf``).

Quickstart::

    from repro import quick_simulation
    sim = quick_simulation(n=512, seed=1)
    sim.evolve(t_end=10.0)
    print(sim.time, sim.particle_steps)

See ``examples/`` for full scenarios and ``benchmarks/`` for the
reproduction of every evaluation result in the paper.
"""

from . import constants, units
from .compare import SystemComparison, compare_systems
from .core import (
    HostDirectBackend,
    KeplerField,
    ParticleSystem,
    Simulation,
    TimestepParams,
)

__version__ = "1.0.0"

__all__ = [
    "constants",
    "units",
    "SystemComparison",
    "compare_systems",
    "HostDirectBackend",
    "KeplerField",
    "ParticleSystem",
    "Simulation",
    "TimestepParams",
    "quick_simulation",
    "__version__",
]


def quick_simulation(n: int = 256, seed: int = 0, eps: float | None = None):
    """Build a ready-to-run scaled planetesimal simulation.

    Creates an ``n``-planetesimal ring (paper geometry, scaled masses),
    two protoplanets, a solar external field and a host direct-summation
    backend.  Returns an initialised :class:`~repro.core.Simulation`.
    """
    from .constants import PAPER_SOFTENING_AU
    from .planetesimal import PlanetesimalDiskConfig, build_disk_system

    config = PlanetesimalDiskConfig(n_planetesimals=n, seed=seed)
    system = build_disk_system(config)
    eps = PAPER_SOFTENING_AU if eps is None else eps
    sim = Simulation(
        system,
        HostDirectBackend(eps=eps),
        external_field=KeplerField(mass=1.0),
        timestep_params=TimestepParams(),
    )
    sim.initialize()
    return sim
