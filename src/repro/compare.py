"""Comparison utilities for particle systems and runs.

Downstream users of a reproduction constantly ask "are these two states
the same?": restart vs original, backend A vs backend B, this commit vs
last commit.  :func:`compare_systems` answers it properly — matching
particles **by key** (so removals/mergers and reordering are handled),
reporting both phase-space and orbital-element deltas.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import ConfigurationError

__all__ = ["SystemComparison", "compare_systems"]


@dataclass(frozen=True)
class SystemComparison:
    """Deltas between two particle systems over their common keys."""

    n_common: int
    n_only_a: int
    n_only_b: int
    max_pos_diff: float
    rms_pos_diff: float
    max_vel_diff: float
    max_mass_diff: float
    #: RMS difference of osculating semi-major axes (bound bodies only;
    #: NaN when no common body is bound in both states)
    rms_da: float

    @property
    def identical_sets(self) -> bool:
        return self.n_only_a == 0 and self.n_only_b == 0

    def close(self, pos_tol: float = 1e-9, require_same_sets: bool = True) -> bool:
        """True when positions agree within ``pos_tol`` (and, by
        default, the particle sets are identical)."""
        if require_same_sets and not self.identical_sets:
            return False
        return self.max_pos_diff <= pos_tol

    def summary(self) -> str:
        return (
            f"{self.n_common} common particles "
            f"(+{self.n_only_a} only in A, +{self.n_only_b} only in B); "
            f"max |dx| = {self.max_pos_diff:.3e}, "
            f"rms |dx| = {self.rms_pos_diff:.3e}, "
            f"rms |da| = {self.rms_da:.3e}"
        )


def compare_systems(a, b, mu: float = 1.0) -> SystemComparison:
    """Compare two :class:`~repro.core.particles.ParticleSystem` states.

    Particles are matched by key; both systems should be at a common
    time for the phase-space deltas to be meaningful (use
    ``Simulation.predicted_state`` / ``synchronize`` first).
    """
    keys_a = set(int(k) for k in a.key)
    keys_b = set(int(k) for k in b.key)
    common = sorted(keys_a & keys_b)
    if not common:
        raise ConfigurationError("the systems share no particle keys")

    row_a = {int(k): i for i, k in enumerate(a.key)}
    row_b = {int(k): i for i, k in enumerate(b.key)}
    ia = np.array([row_a[k] for k in common])
    ib = np.array([row_b[k] for k in common])

    dpos = np.linalg.norm(a.pos[ia] - b.pos[ib], axis=1)
    dvel = np.linalg.norm(a.vel[ia] - b.vel[ib], axis=1)
    dmass = np.abs(a.mass[ia] - b.mass[ib])

    from .planetesimal.orbital import cartesian_to_elements

    el_a = cartesian_to_elements(a.pos[ia], a.vel[ia], mu=mu)
    el_b = cartesian_to_elements(b.pos[ib], b.vel[ib], mu=mu)
    bound = (el_a.e < 1.0) & (el_b.e < 1.0) & (el_a.a > 0) & (el_b.a > 0)
    if np.any(bound):
        rms_da = float(np.sqrt(np.mean((el_a.a[bound] - el_b.a[bound]) ** 2)))
    else:
        rms_da = float("nan")

    return SystemComparison(
        n_common=len(common),
        n_only_a=len(keys_a - keys_b),
        n_only_b=len(keys_b - keys_a),
        max_pos_diff=float(dpos.max()),
        rms_pos_diff=float(np.sqrt(np.mean(dpos**2))),
        max_vel_diff=float(dvel.max()),
        max_mass_diff=float(dmass.max()),
        rms_da=rms_da,
    )
